# Tier-1 verification and benchmark entry points (see ROADMAP.md).

GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with real concurrency: the parallel deployment
# builder, the sweep engine and the peer runtime underneath both.
race:
	$(GO) test -race ./internal/deploy/... ./internal/experiments/... ./internal/runtime/...

# verify is the tier-1 gate: build, vet, full test suite, race subset.
verify: build vet test race

# bench regenerates BENCH_setup.json: setup/broadcast microbenchmarks plus
# the fig2a/fig2b sweeps (ns/op and allocs/op) via cmd/p2pbench.
bench:
	$(GO) run ./cmd/p2pbench -o BENCH_setup.json

clean:
	$(GO) clean ./...
