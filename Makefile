# Tier-1 verification and benchmark entry points (see ROADMAP.md).

GO ?= go

.PHONY: build test vet race chaos lint obs-smoke scenario-smoke obs-live-smoke verify bench bench-telemetry bench-coalesce bench-mux bench-obsplane benchsmoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with real concurrency: the parallel deployment
# builder, the sweep engine, the peer runtime underneath both, the TCP
# transport with its pooled frame handoff, the multi-process scenario
# orchestrator, and the chaos suite's schedule driver.
race:
	$(GO) test -race ./internal/deploy/... ./internal/experiments/... ./internal/runtime/... ./internal/tcpnet/... ./internal/scenario/... ./internal/chaos/...

# chaos runs the deterministic fault-injection suite under the race
# detector: fixed-seed schedules (crash-restart, partitions, flips)
# against ERB/ERNG invariants plus the beacon bias battery. Failures
# print the seed to replay with `p2pexp -experiment chaos -chaos-seed`.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/...

# benchsmoke compiles and runs every benchmark for a single iteration so
# a broken benchmark cannot sit undetected until the next bench run.
benchsmoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# lint runs the project analyzers (cmd/p2plint: determinism, map-order,
# enclave-boundary error handling, lockstep, shadow, nilness, plus the
# interprocedural seal-boundary battery sealflow/keyleak/lockorder — see
# DESIGN.md §9 and §14) over the whole module and fails on gofmt drift.
# Suppressions require `//lint:allow <analyzer> <reason>`; stale
# suppressions are findings themselves.
lint:
	$(GO) run ./cmd/p2plint ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt drift in:"; echo "$$fmt_out"; exit 1; fi

# obs-smoke is the end-to-end observability check: replay one seeded
# crash-restart chaos schedule twice with the tracer and metrics on,
# validate the JSONL schema, and require the two traces byte-identical.
# Any nondeterminism that leaks into an event (wall clock, map order)
# fails the diff with the first diverging line.
obs-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/p2pexp -experiment chaos -chaos-seed 7 \
		-trace "$$dir/a.jsonl" -metrics-out "$$dir/a.prom" >/dev/null && \
	$(GO) run ./cmd/p2pexp -experiment chaos -chaos-seed 7 \
		-trace "$$dir/b.jsonl" -metrics-out "$$dir/b.prom" >/dev/null && \
	$(GO) run ./cmd/p2ptrace -check "$$dir/a.jsonl" && \
	$(GO) run ./cmd/p2ptrace -diff "$$dir/a.jsonl" "$$dir/b.jsonl"

# scenario-smoke is the multi-process end-to-end check (DESIGN.md §13):
# build the real node binary once, run two small manifests — honest ERB
# at n=4 and the ERNG slow-link profile — as actual TCP process fleets
# via cmd/p2pscenario, then validate every run's merged cross-process
# telemetry with p2ptrace -check. The generous Δ override keeps the
# round windows safe on loaded CI hosts; the invariants (agreement,
# acceptance, round bounds) are asserted by the runner itself.
scenario-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir/p2pnode" ./cmd/p2pnode && \
	$(GO) run ./cmd/p2pscenario -node-bin "$$dir/p2pnode" -out "$$dir" -keep \
		-testcase erb-honest -instances 4 -param delta=300ms \
		scenarios/honest-sweep.toml && \
	$(GO) run ./cmd/p2pscenario -node-bin "$$dir/p2pnode" -out "$$dir" -keep \
		-param delta=300ms scenarios/slow-link.toml && \
	for f in "$$dir"/*/merged.jsonl; do \
		$(GO) run ./cmd/p2ptrace -check "$$f" || exit 1; done

# obs-live-smoke is the live observability plane check (DESIGN.md §15):
# run a small fleet with -stream on, so every node streams its telemetry
# events, metric deltas and resource-probe gauges over the control
# connection while running; the runner asserts stream parity (streamed ≡
# exit-dumped events) as an invariant and archives streamed.jsonl, which
# is then schema-checked and span-reconstructed — the full path from
# per-process BeginSpan to the cross-process hop histogram.
obs-live-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir/p2pnode" ./cmd/p2pnode && \
	$(GO) run ./cmd/p2pscenario -node-bin "$$dir/p2pnode" -out "$$dir" -keep \
		-stream -testcase erb-honest -instances 4 -param delta=300ms \
		scenarios/honest-sweep.toml && \
	$(GO) run ./cmd/p2ptrace -check "$$dir"/*/streamed.jsonl && \
	$(GO) run ./cmd/p2ptrace -spans "$$dir"/*/streamed.jsonl

# verify is the tier-1 gate: build, vet, full test suite, race subset,
# chaos fault-injection suite, one-iteration benchmark smoke run, the
# project lint battery, the traced-replay determinism smoke, the
# multi-process scenario smoke, and the live-streaming observability
# smoke.
verify: build vet test race chaos benchsmoke lint obs-smoke scenario-smoke obs-live-smoke

# bench regenerates BENCH_setup.json: setup/broadcast microbenchmarks plus
# the fig2a/fig2b sweeps (ns/op and allocs/op) via cmd/p2pbench.
bench:
	$(GO) run ./cmd/p2pbench -o BENCH_setup.json

# bench-telemetry re-measures the telemetry overhead artifact: the two
# hot-path benchmarks, best-of-10, compared against the pre-telemetry
# baseline (see the methodology note in EXPERIMENTS.md — the baseline
# must be re-measured in the same window to mean anything).
bench-telemetry:
	$(GO) run ./cmd/p2pbench -count 10 -bench seal_open_hot,cluster_broadcast_n64 \
		-baseline BENCH_pretelemetry.json -o BENCH_telemetry.json

# bench-coalesce re-measures the frame-coalescing artifact: the ERB
# broadcast benchmarks, batched and unbatched, at N=64 and N=512,
# best-of-5, diffed against the pre-coalescing baseline
# (BENCH_telemetry.json). The snapshot carries both comparisons the
# coalescing PR is judged on: same-binary batched-vs-unbatched (the
# *_nobatch rows) and batched-vs-pre-PR (the embedded comparison block).
bench-coalesce:
	$(GO) run ./cmd/p2pbench -count 5 -bench cluster_broadcast \
		-baseline BENCH_telemetry.json -o BENCH_coalesce.json

# bench-mux re-measures the multiplexed-runtime artifact: aggregate
# broadcast throughput at N=64 with 1/10/100/1000 concurrent instances
# over one standing cluster, against three baselines measured in the
# same window — dedicated deployments (the pre-mux status quo: a fresh
# cluster per broadcast), serial broadcasts on the standing cluster
# (stricter: setup amortized away), and the mux with batching disabled
# (ablation). Best-of-3; the dedicated rows dominate the wall time.
bench-mux:
	$(GO) run ./cmd/p2pbench -count 3 -bench cluster_mux -o BENCH_mux.json

# bench-obsplane re-measures the live-observability artifact: the
# three-rung simnet ablation at N=64 (telemetry off / span recording on /
# recording plus a live streaming consumer — the record-vs-stream delta
# is the streaming overhead the PR is judged on, best-of-5) plus the
# deployment-level proof: a real N=128 process fleet run plain and
# streamed (-live, one run each, minutes of wall time — rounds are
# Δ-gated, so the two wall times must agree).
bench-obsplane:
	$(GO) run ./cmd/p2pbench -count 5 -bench obs_broadcast,obs_live -live \
		-o BENCH_obsplane.json

clean:
	$(GO) clean ./...
