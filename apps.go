package sgxp2p

import (
	"sgxp2p/internal/committee"
	"sgxp2p/internal/keygen"
	"sgxp2p/internal/loadbal"
	"sgxp2p/internal/randomwalk"
)

// Application types from the paper's Appendix H, re-exported so the
// examples and downstream users build on the beacon through one import.
type (
	// Key is a shared symmetric key derived from beacon output.
	Key = keygen.Key
	// KeySchedule derives a deterministic key sequence from a beacon.
	KeySchedule = keygen.Schedule
	// Balancer assigns tasks to workers with beacon randomness.
	Balancer = loadbal.Balancer
	// Assignment maps task ids to worker indices.
	Assignment = loadbal.Assignment
	// Graph is a P2P topology for random walks.
	Graph = randomwalk.Graph
	// Walker performs beacon-driven random walks.
	Walker = randomwalk.Walker
)

// NewKeySchedule builds a shared-key schedule over a beacon source with a
// domain-separating context string.
func NewKeySchedule(src Source, context string) (*KeySchedule, error) {
	return keygen.NewSchedule(src, context)
}

// DeriveKey is the pure key-derivation function behind KeySchedule,
// exposed for offline verification against recorded beacon traces.
func DeriveKey(context string, epoch uint64, entropy []byte) Key {
	return keygen.Derive(context, epoch, entropy)
}

// NewBalancer builds a beacon-driven load balancer over the given number
// of workers.
func NewBalancer(src Source, workers int) (*Balancer, error) {
	return loadbal.New(src, workers)
}

// AssignmentSpread summarizes an assignment as tasks-per-worker counts.
func AssignmentSpread(a Assignment, workers int) []int {
	return loadbal.Spread(a, workers)
}

// NewGraph builds an empty topology.
func NewGraph() *Graph { return randomwalk.NewGraph() }

// NewRing builds a ring-with-chords topology of n nodes.
func NewRing(n, chords int) *Graph { return randomwalk.Ring(n, chords) }

// NewWalker builds a beacon-driven random walker over a graph.
func NewWalker(src Source, g *Graph) (*Walker, error) {
	return randomwalk.New(src, g)
}

// Committee election (the Appendix H sharding use case).
type (
	// Partition is a committee assignment over the network.
	Partition = committee.Partition
	// Elector forms beacon-driven committees.
	Elector = committee.Elector
)

// NewElector builds an elector partitioning n nodes into k committees
// using beacon randomness.
func NewElector(src Source, n, k int) (*Elector, error) {
	return committee.New(src, n, k)
}

// FormCommittees is the pure partition function behind Elector, exposed
// for offline auditing against a beacon trace.
func FormCommittees(entropy []byte, n, k int) *Partition {
	return committee.Form(entropy, n, k)
}

// MinCommitteeSize returns the smallest committee size keeping an honest
// majority with probability at least 1-epsilon under byzantine fraction
// beta (Chernoff bound, as in the paper's Lemma F.1).
func MinCommitteeSize(beta, epsilon float64) (int, error) {
	return committee.MinCommitteeSize(beta, epsilon)
}
