// Load-balancing example (paper Appendix H): a byzantine-fault-tolerant
// dispatcher. Instead of a central load balancer (single point of failure
// and bias), a committee of enclaved nodes draws one common unbiased
// value per batch and every member computes the identical task-to-worker
// assignment.
package main

import (
	"fmt"
	"log"

	"sgxp2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 99})
	if err != nil {
		return err
	}
	beacon, err := cluster.NewBeacon(sgxp2p.BeaconBasic)
	if err != nil {
		return err
	}
	const workers = 6
	balancer, err := sgxp2p.NewBalancer(beacon, workers)
	if err != nil {
		return err
	}

	for batch := 0; batch < 3; batch++ {
		tasks := make([]string, 24)
		for i := range tasks {
			tasks[i] = fmt.Sprintf("job-%d-%02d", batch, i)
		}
		assignment, err := balancer.AssignBatch(tasks)
		if err != nil {
			return err
		}
		spread := sgxp2p.AssignmentSpread(assignment, workers)
		fmt.Printf("batch %d spread across %d workers: %v\n", batch, workers, spread)
		if batch == 0 {
			fmt.Println("  sample assignments:")
			for _, task := range tasks[:4] {
				fmt.Printf("    %s -> worker %d\n", task, assignment[task])
			}
		}
	}
	fmt.Println("\nany committee member (or auditor with the beacon trace) can recompute")
	fmt.Println("every assignment: dispatching is verifiable and unbiased.")
	return nil
}
