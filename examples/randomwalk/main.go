// Random-walk example (paper Appendix H): byzantine-resilient random
// walks over a P2P overlay. Peer-sampling walks keep overlays
// expander-like; if step choices could be biased, an adversary would herd
// walks into byzantine regions. Driving every hop from the common
// unbiased beacon makes the walk unbiased and verifiable by all nodes.
package main

import (
	"fmt"
	"log"

	"sgxp2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 7, T: 3, Seed: 12})
	if err != nil {
		return err
	}
	beacon, err := cluster.NewBeacon(sgxp2p.BeaconBasic)
	if err != nil {
		return err
	}

	// A 24-node ring-with-chords overlay topology.
	overlay := sgxp2p.NewRing(24, 2)
	walker, err := sgxp2p.NewWalker(beacon, overlay)
	if err != nil {
		return err
	}

	visits := make(map[sgxp2p.NodeID]int)
	for w := 0; w < 3; w++ {
		path, err := walker.Walk(0, 12)
		if err != nil {
			return err
		}
		fmt.Printf("walk %d: %v\n", w, path)
		for _, hop := range path[1:] {
			visits[hop]++
		}
	}
	fmt.Printf("\ndistinct overlay nodes visited: %d\n", len(visits))
	fmt.Println("every honest node observing the beacon computes these exact walks.")
	return nil
}
