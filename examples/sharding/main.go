// Sharding example (paper Appendix H, the secure-sharding use case): the
// network partitions itself into committees ("shards") using the common
// unbiased beacon value. Because the partition is a deterministic
// function of an unbiasable value, byzantine nodes cannot concentrate
// into a single shard beyond random chance, and every honest node derives
// the identical partition — no coordinator required.
package main

import (
	"fmt"
	"log"

	"sgxp2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The control-plane cluster that runs the beacon.
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 7, T: 3, Seed: 21})
	if err != nil {
		return err
	}
	beacon, err := cluster.NewBeacon(sgxp2p.BeaconBasic)
	if err != nil {
		return err
	}

	// How large must a shard be to keep an honest majority with
	// probability 99.9% when 30% of the network is byzantine?
	minSize, err := sgxp2p.MinCommitteeSize(0.30, 0.001)
	if err != nil {
		return err
	}
	fmt.Printf("min shard size for beta=0.30, eps=0.1%%: %d nodes\n\n", minSize)

	// Partition a 120-node data plane into 4 shards, reshuffling each
	// epoch so an adaptive adversary cannot settle into one shard.
	const dataNodes, shards = 120, 4
	elector, err := sgxp2p.NewElector(beacon, dataNodes, shards)
	if err != nil {
		return err
	}
	for epoch := 0; epoch < 3; epoch++ {
		partition, err := elector.Elect()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d shard sizes: %v\n", epoch, partition.Sizes())
		fmt.Printf("  node 0 -> shard %d, node 59 -> shard %d, node 119 -> shard %d\n",
			partition.CommitteeOf(0), partition.CommitteeOf(59), partition.CommitteeOf(119))
	}

	fmt.Println("\nevery honest node recomputes the same partition from the beacon trace;")
	fmt.Println("an auditor can verify any epoch with sgxp2p.FormCommittees(entropy, n, k).")
	return nil
}
