// Beacon example (paper Appendix H): a random beacon service emitting a
// fresh common unbiased value every epoch, with byzantine nodes trying —
// and structurally failing — to bias it, plus a shared key schedule
// derived from the beacon.
package main

import (
	"fmt"
	"log"

	"sgxp2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 9 nodes, 4 byzantine: one delays everything it sends (the
	// look-ahead attack A4), one omits selectively by destination (A3).
	// Neither can read, forge or bias the sealed coins.
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{
		N: 9, T: 4, Seed: 7,
		Adversary: map[sgxp2p.NodeID]sgxp2p.Behavior{
			0: sgxp2p.DelayAll(),
			1: sgxp2p.OmitTo(func(dst sgxp2p.NodeID) bool { return dst%2 == 0 }),
		},
	})
	if err != nil {
		return err
	}
	beacon, err := cluster.NewBeacon(sgxp2p.BeaconBasic)
	if err != nil {
		return err
	}

	fmt.Println("random beacon, one ERNG epoch per emission:")
	emissions, err := beacon.RunEpochs(5)
	if err != nil {
		return err
	}
	for _, e := range emissions {
		fmt.Printf("  epoch %d: %s  (%d contributors, virtual t=%v)\n",
			e.Epoch, e.Value, len(e.Contributors), e.At)
	}

	// Every honest node derives the identical key schedule from the
	// beacon trace — no key-distribution protocol needed.
	fmt.Println("\nshared keys derived from the beacon trace:")
	for i, e := range emissions {
		key := sgxp2p.DeriveKey("group-transport", uint64(i), e.Value[:])
		fmt.Printf("  epoch %d key: %s\n", i, key)
	}

	fmt.Printf("\nbyzantine delayer halted: %v; selective omitter halted: %v\n",
		cluster.Halted(0), cluster.Halted(1))
	return nil
}
