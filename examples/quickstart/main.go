// Quickstart: build a simulated enclaved P2P network, reliably broadcast
// a message through ERB, and generate a common unbiased random number
// through ERNG — the two primitives of "Robust P2P Primitives Using SGX
// Enclaves" (ICDCS 2020).
package main

import (
	"fmt"
	"log"

	"sgxp2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 7-node network tolerating 3 byzantine nodes (N = 2t+1). Nodes 0
	// and 1 are byzantine: one omits every message, one corrupts every
	// envelope. Thanks to the enclave channel both reduce to omissions.
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{
		N: 7, T: 3, Seed: 2026,
		Adversary: map[sgxp2p.NodeID]sgxp2p.Behavior{
			0: sgxp2p.OmitAll(),
			1: sgxp2p.CorruptEverything(),
		},
	})
	if err != nil {
		return err
	}

	// Reliable broadcast from node 4.
	payload := sgxp2p.ValueFromString("ship the release")
	results, err := cluster.Broadcast(4, payload)
	if err != nil {
		return err
	}
	fmt.Println("ERB broadcast from node 4:")
	for id := sgxp2p.NodeID(0); id < 7; id++ {
		res, ok := results[id]
		switch {
		case !ok:
			fmt.Printf("  node %d: churned out (halt-on-divergence)\n", id)
		case res.Accepted:
			fmt.Printf("  node %d: accepted %s in round %d\n", id, res.Value, res.Round)
		default:
			fmt.Printf("  node %d: decided bottom\n", id)
		}
	}

	// A common unbiased random number.
	emission, err := cluster.GenerateRandom()
	if err != nil {
		return err
	}
	fmt.Printf("\nERNG beacon: value %s, %d contributors, at virtual time %v\n",
		emission.Value, len(emission.Contributors), emission.At)

	tr := cluster.Traffic()
	fmt.Printf("\ntraffic so far: %d messages, %.2f MB\n",
		tr.Messages, float64(tr.Bytes)/(1<<20))
	return nil
}
