// Package xcrypto provides the cryptographic substrate used by the enclave
// model and the blinded Peer channel: X25519 Diffie-Hellman key agreement,
// an encrypt-then-MAC symmetric channel cipher (AES-CTR + HMAC-SHA256,
// matching the SKE+MAC composition of the paper's Appendix A, Figure 4),
// Ed25519 signatures for the digital-signature broadcast baseline, and
// SHA-256 program measurements.
//
// Everything here is built from the Go standard library only.
package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Sizes of the fixed-width cryptographic values used on the wire.
const (
	// KeySize is the size in bytes of symmetric keys (AES-256 and HMAC keys).
	KeySize = 32
	// MACSize is the size in bytes of the HMAC-SHA256 authentication tag.
	MACSize = 32
	// NonceSize is the size in bytes of the per-message nonce (AES-CTR IV).
	NonceSize = 16
	// MeasurementSize is the size in bytes of a program measurement H(pi).
	MeasurementSize = 32
	// SignatureSize is the size in bytes of an Ed25519 signature.
	SignatureSize = ed25519.SignatureSize
	// PublicKeySize is the size in bytes of an X25519 public key.
	PublicKeySize = 32
)

// Errors returned by the channel cipher and signature helpers.
var (
	// ErrAuthFailed indicates that a ciphertext failed MAC verification:
	// either the bytes were tampered with in transit or they were produced
	// under a different key.
	ErrAuthFailed = errors.New("xcrypto: message authentication failed")
	// ErrShortCiphertext indicates a ciphertext too short to contain the
	// mandatory nonce and MAC tag.
	ErrShortCiphertext = errors.New("xcrypto: ciphertext too short")
	// ErrBadSignature indicates an invalid Ed25519 signature.
	ErrBadSignature = errors.New("xcrypto: bad signature")
)

// Measurement is the SHA-256 hash of an enclave program, the H(pi) value
// that the blinded channel binds into every message (property P1).
type Measurement [MeasurementSize]byte

// Measure computes the measurement of a program identified by its code.
// In the real SGX deployment this is MRENCLAVE; here the "code" is any
// canonical byte representation of the protocol program and version.
func Measure(program []byte) Measurement {
	return sha256.Sum256(program)
}

// String implements fmt.Stringer with a short hex prefix.
func (m Measurement) String() string {
	return fmt.Sprintf("%x", m[:4])
}

// SessionKeys holds the pair of directional symmetric keys derived from a
// Diffie-Hellman exchange: key1 encrypts, key2 authenticates, exactly as in
// Figure 4 of the paper where Init outputs K = (key1, key2).
type SessionKeys struct {
	Enc [KeySize]byte
	Mac [KeySize]byte
}

// KeyPair is an X25519 key pair used in the channel setup phase.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateKeyPair creates a fresh X25519 key pair from the given entropy
// source. Pass nil to use crypto/rand. The key is derived from exactly 32
// bytes of the source (ecdh.GenerateKey would nondeterministically consume
// an extra byte, which would break seeded reproducible deployments).
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var seed [32]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, fmt.Errorf("xcrypto: X25519 key entropy: %w", err)
	}
	priv, err := ecdh.X25519().NewPrivateKey(seed[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: generate X25519 key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the 32-byte X25519 public key.
func (kp *KeyPair) Public() [PublicKeySize]byte {
	var out [PublicKeySize]byte
	copy(out[:], kp.priv.PublicKey().Bytes())
	return out
}

// DeriveSessionKeys completes the Diffie-Hellman exchange against the remote
// public key and derives the directional session keys. Both sides derive the
// same keys because the KDF input orders the two public keys canonically.
func (kp *KeyPair) DeriveSessionKeys(remote [PublicKeySize]byte) (SessionKeys, error) {
	var keys SessionKeys
	remotePub, err := ecdh.X25519().NewPublicKey(remote[:])
	if err != nil {
		return keys, fmt.Errorf("xcrypto: parse remote public key: %w", err)
	}
	shared, err := kp.priv.ECDH(remotePub)
	if err != nil {
		return keys, fmt.Errorf("xcrypto: ECDH: %w", err)
	}
	local := kp.Public()
	lo, hi := local[:], remote[:]
	if lessBytes(hi, lo) {
		lo, hi = hi, lo
	}
	keys.Enc = kdf(shared, lo, hi, "enc")
	keys.Mac = kdf(shared, lo, hi, "mac")
	return keys, nil
}

// PairID canonically identifies an unordered pair of X25519 public keys:
// the two keys concatenated in ascending byte order. Because both the real
// ECDH derivation and the model key exchange are symmetric in the pair,
// PairID is the natural cache key for memoizing pairwise session keys
// (see enclave.KeyCache): the (i,j) and (j,i) directions map to the same
// entry.
type PairID [2 * PublicKeySize]byte

// MakePairID builds the canonical pair identifier for two public keys.
func MakePairID(a, b [PublicKeySize]byte) PairID {
	var out PairID
	if lessBytes(b[:], a[:]) {
		a, b = b, a
	}
	copy(out[:PublicKeySize], a[:])
	copy(out[PublicKeySize:], b[:])
	return out
}

// kdf derives one labeled 32-byte key from the shared secret and the two
// canonically ordered public keys.
func kdf(shared, lo, hi []byte, label string) [KeySize]byte {
	h := sha256.New()
	h.Write([]byte("sgxp2p-kdf-v1/"))
	h.Write([]byte(label))
	h.Write(shared)
	h.Write(lo)
	h.Write(hi)
	var out [KeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}

func lessBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Seal encrypts and authenticates plaintext under the session keys using
// AES-256-CTR with a fresh nonce followed by HMAC-SHA256 over nonce and
// ciphertext (encrypt-then-MAC). The output layout is
//
//	nonce [16] || ciphertext [len(plaintext)] || mac [32]
//
// so SealedSize(len(plaintext)) bytes in total.
func Seal(keys SessionKeys, rng io.Reader, plaintext []byte) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	out := make([]byte, NonceSize+len(plaintext)+MACSize)
	nonce := out[:NonceSize]
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("xcrypto: nonce: %w", err)
	}
	block, err := aes.NewCipher(keys.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: aes: %w", err)
	}
	cipher.NewCTR(block, nonce).XORKeyStream(out[NonceSize:NonceSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, keys.Mac[:])
	mac.Write(out[:NonceSize+len(plaintext)])
	mac.Sum(out[:NonceSize+len(plaintext)])
	return out, nil
}

// Open verifies and decrypts a sealed message produced by Seal, returning
// the plaintext. It returns ErrAuthFailed if the MAC does not verify.
func Open(keys SessionKeys, sealed []byte) ([]byte, error) {
	if len(sealed) < NonceSize+MACSize {
		return nil, ErrShortCiphertext
	}
	body := sealed[:len(sealed)-MACSize]
	tag := sealed[len(sealed)-MACSize:]
	mac := hmac.New(sha256.New, keys.Mac[:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrAuthFailed
	}
	nonce := body[:NonceSize]
	ct := body[NonceSize:]
	block, err := aes.NewCipher(keys.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: aes: %w", err)
	}
	plaintext := make([]byte, len(ct))
	cipher.NewCTR(block, nonce).XORKeyStream(plaintext, ct)
	return plaintext, nil
}

// SealedSize returns the on-wire size of a sealed message carrying a
// plaintext of the given length.
func SealedSize(plaintextLen int) int {
	return NonceSize + plaintextLen + MACSize
}

// SigningKey is an Ed25519 signing key used by the digital-signature
// baseline protocols (RBsig) and by the simulated attestation service.
type SigningKey struct {
	priv ed25519.PrivateKey
}

// VerifyKey is the public half of a SigningKey.
type VerifyKey struct {
	pub ed25519.PublicKey
}

// GenerateSigningKey creates a fresh Ed25519 key pair from the given entropy
// source. Pass nil to use crypto/rand.
func GenerateSigningKey(rng io.Reader) (*SigningKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: generate ed25519 key: %w", err)
	}
	return &SigningKey{priv: priv}, nil
}

// VerifyKey returns the public verification key.
func (sk *SigningKey) VerifyKey() VerifyKey {
	return VerifyKey{pub: sk.priv.Public().(ed25519.PublicKey)}
}

// Sign signs the message.
func (sk *SigningKey) Sign(msg []byte) []byte {
	return ed25519.Sign(sk.priv, msg)
}

// Verify checks a signature over msg, returning ErrBadSignature on failure.
func (vk VerifyKey) Verify(msg, sig []byte) error {
	if len(vk.pub) != ed25519.PublicKeySize || !ed25519.Verify(vk.pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Bytes returns the raw public key bytes.
func (vk VerifyKey) Bytes() []byte {
	out := make([]byte, len(vk.pub))
	copy(out, vk.pub)
	return out
}

// VerifyKeyFromBytes reconstructs a VerifyKey from raw bytes.
func VerifyKeyFromBytes(b []byte) (VerifyKey, error) {
	if len(b) != ed25519.PublicKeySize {
		return VerifyKey{}, fmt.Errorf("xcrypto: verify key must be %d bytes, got %d", ed25519.PublicKeySize, len(b))
	}
	pub := make(ed25519.PublicKey, len(b))
	copy(pub, b)
	return VerifyKey{pub: pub}, nil
}

// RandomUint64 draws a uniform 64-bit value from the given entropy source.
func RandomUint64(rng io.Reader) (uint64, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var buf [8]byte
	if _, err := io.ReadFull(rng, buf[:]); err != nil {
		return 0, fmt.Errorf("xcrypto: random: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// RandomBelow draws a uniform value in [0, n) from the given entropy source
// using rejection sampling so the result is exactly uniform. n must be > 0.
func RandomBelow(rng io.Reader, n uint64) (uint64, error) {
	if n == 0 {
		return 0, errors.New("xcrypto: RandomBelow with n == 0")
	}
	if n == 1 {
		return 0, nil
	}
	// Largest multiple of n that fits in a uint64; values at or above it
	// are rejected to avoid modulo bias.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v, err := RandomUint64(rng)
		if err != nil {
			return 0, err
		}
		if v < limit {
			return v % n, nil
		}
	}
}
