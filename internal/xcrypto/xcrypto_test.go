package xcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// detRand returns a deterministic io.Reader for reproducible key material in
// tests. Never use outside tests.
func detRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func mustKeyPair(t *testing.T, seed int64) *KeyPair {
	t.Helper()
	kp, err := GenerateKeyPair(detRand(seed))
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	return kp
}

func sessionFor(t *testing.T) (SessionKeys, SessionKeys) {
	t.Helper()
	a := mustKeyPair(t, 1)
	b := mustKeyPair(t, 2)
	ka, err := a.DeriveSessionKeys(b.Public())
	if err != nil {
		t.Fatalf("a.DeriveSessionKeys: %v", err)
	}
	kb, err := b.DeriveSessionKeys(a.Public())
	if err != nil {
		t.Fatalf("b.DeriveSessionKeys: %v", err)
	}
	return ka, kb
}

func TestDeriveSessionKeysAgree(t *testing.T) {
	ka, kb := sessionFor(t)
	if ka != kb {
		t.Fatalf("session keys disagree: %x vs %x", ka.Enc[:4], kb.Enc[:4])
	}
	if ka.Enc == ka.Mac {
		t.Fatal("encryption and MAC keys must differ")
	}
}

func TestDeriveSessionKeysDistinctPairs(t *testing.T) {
	a := mustKeyPair(t, 1)
	b := mustKeyPair(t, 2)
	c := mustKeyPair(t, 3)
	kab, err := a.DeriveSessionKeys(b.Public())
	if err != nil {
		t.Fatal(err)
	}
	kac, err := a.DeriveSessionKeys(c.Public())
	if err != nil {
		t.Fatal(err)
	}
	if kab == kac {
		t.Fatal("different peers must yield different session keys")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	ka, kb := sessionFor(t)
	msgs := [][]byte{nil, {}, []byte("x"), []byte("hello enclave"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, msg := range msgs {
		sealed, err := Seal(ka, detRand(9), msg)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", len(msg), err)
		}
		if len(sealed) != SealedSize(len(msg)) {
			t.Fatalf("sealed size = %d, want %d", len(sealed), SealedSize(len(msg)))
		}
		got, err := Open(kb, sealed)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", len(msg), err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch: got %q want %q", got, msg)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	ka, _ := sessionFor(t)
	sealed, err := Seal(ka, detRand(9), []byte("broadcast payload"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sealed); i++ {
		mutated := append([]byte(nil), sealed...)
		mutated[i] ^= 0x01
		if _, err := Open(ka, mutated); err == nil {
			t.Fatalf("tampering byte %d was not detected", i)
		}
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	ka, _ := sessionFor(t)
	other := mustKeyPair(t, 7)
	third := mustKeyPair(t, 8)
	kOther, err := other.DeriveSessionKeys(third.Public())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := Seal(ka, detRand(9), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(kOther, sealed); err == nil {
		t.Fatal("message opened under an unrelated key")
	}
}

func TestOpenRejectsShortCiphertext(t *testing.T) {
	ka, _ := sessionFor(t)
	if _, err := Open(ka, make([]byte, NonceSize+MACSize-1)); err != ErrShortCiphertext {
		t.Fatalf("got %v, want ErrShortCiphertext", err)
	}
}

func TestSealProducesFreshNonces(t *testing.T) {
	ka, _ := sessionFor(t)
	s1, err := Seal(ka, nil, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Seal(ka, nil, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Fatal("two seals of the same plaintext must differ (fresh nonce)")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	m1 := Measure([]byte("erb-v1"))
	m2 := Measure([]byte("erb-v1"))
	m3 := Measure([]byte("erb-v2"))
	if m1 != m2 {
		t.Fatal("measurement must be deterministic")
	}
	if m1 == m3 {
		t.Fatal("different programs must have different measurements")
	}
	if m1.String() == "" {
		t.Fatal("measurement string must be non-empty")
	}
}

func TestSignVerify(t *testing.T) {
	sk, err := GenerateSigningKey(detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("INIT:42")
	sig := sk.Sign(msg)
	if len(sig) != SignatureSize {
		t.Fatalf("signature size = %d, want %d", len(sig), SignatureSize)
	}
	if err := sk.VerifyKey().Verify(msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := sk.VerifyKey().Verify([]byte("INIT:43"), sig); err == nil {
		t.Fatal("signature over different message accepted")
	}
	sig[0] ^= 1
	if err := sk.VerifyKey().Verify(msg, sig); err == nil {
		t.Fatal("corrupted signature accepted")
	}
}

func TestVerifyKeyFromBytesRoundTrip(t *testing.T) {
	sk, err := GenerateSigningKey(detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	vk := sk.VerifyKey()
	vk2, err := VerifyKeyFromBytes(vk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("echo")
	if err := vk2.Verify(msg, sk.Sign(msg)); err != nil {
		t.Fatalf("reconstructed key failed to verify: %v", err)
	}
	if _, err := VerifyKeyFromBytes([]byte("short")); err == nil {
		t.Fatal("short key bytes accepted")
	}
}

func TestRandomBelowBounds(t *testing.T) {
	rng := detRand(11)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v, err := RandomBelow(rng, n)
			if err != nil {
				t.Fatal(err)
			}
			if v >= n {
				t.Fatalf("RandomBelow(%d) = %d out of range", n, v)
			}
		}
	}
	if _, err := RandomBelow(rng, 0); err == nil {
		t.Fatal("RandomBelow(0) must error")
	}
}

func TestRandomBelowRoughlyUniform(t *testing.T) {
	rng := detRand(13)
	const n = 8
	const draws = 8000
	var counts [n]int
	for i := 0; i < draws; i++ {
		v, err := RandomBelow(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

// Property: Seal followed by Open is the identity for any payload.
func TestQuickSealOpenIdentity(t *testing.T) {
	ka, kb := sessionFor(t)
	rng := detRand(17)
	f := func(payload []byte) bool {
		sealed, err := Seal(ka, rng, payload)
		if err != nil {
			return false
		}
		got, err := Open(kb, sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit flip anywhere in the sealed envelope is rejected.
func TestQuickTamperDetection(t *testing.T) {
	ka, _ := sessionFor(t)
	rng := detRand(19)
	f := func(payload []byte, pos uint16, bit uint8) bool {
		sealed, err := Seal(ka, rng, payload)
		if err != nil {
			return false
		}
		i := int(pos) % len(sealed)
		sealed[i] ^= 1 << (bit % 8)
		_, err = Open(ka, sealed)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal1KiB(b *testing.B) {
	kp1, _ := GenerateKeyPair(detRand(1))
	kp2, _ := GenerateKeyPair(detRand(2))
	keys, _ := kp1.DeriveSessionKeys(kp2.Public())
	payload := make([]byte, 1024)
	rng := detRand(3)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(keys, rng, payload); err != nil {
			b.Fatal(err)
		}
	}
}
