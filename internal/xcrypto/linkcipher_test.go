package xcrypto

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
)

// testKeys derives a deterministic key pair for cipher tests.
func testKeys(seed byte) SessionKeys {
	var keys SessionKeys
	for i := range keys.Enc {
		keys.Enc[i] = seed + byte(i)
		keys.Mac[i] = seed ^ byte(i*3+1)
	}
	return keys
}

// TestLinkCipherSealByteIdentical pins the tentpole equivalence: under
// the same keys and the same nonce stream, LinkCipher.SealAppend emits
// exactly the bytes the one-shot Seal does (which uses the stdlib
// crypto/cipher CTR implementation, so this also pins the manual CTR).
func TestLinkCipherSealByteIdentical(t *testing.T) {
	keys := testKeys(7)
	lc, err := NewLinkCipher(keys)
	if err != nil {
		t.Fatal(err)
	}
	// Plaintext lengths spanning zero, partial, exact and multi-block.
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 100, 257, 1024} {
		plaintext := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(plaintext)
		// Identical nonce streams for the two paths.
		rngA := rand.New(rand.NewSource(99))
		rngB := rand.New(rand.NewSource(99))
		want, err := Seal(keys, rngA, plaintext)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lc.SealAppend(nil, rngB, plaintext)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("len %d: SealAppend differs from Seal", n)
		}
		// Both one-shot Open and prepared OpenAppend accept the result.
		viaOpen, err := Open(keys, got)
		if err != nil {
			t.Fatal(err)
		}
		viaAppend, err := lc.OpenAppend(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaOpen, plaintext) || !bytes.Equal(viaAppend, plaintext) {
			t.Fatalf("len %d: recovered plaintext differs", n)
		}
	}
}

// TestLinkCipherAppendsToPrefix checks the append contract: existing dst
// content is preserved and the envelope/plaintext lands after it.
func TestLinkCipherAppendsToPrefix(t *testing.T) {
	keys := testKeys(3)
	lc, err := NewLinkCipher(keys)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	plaintext := []byte("the payload")
	out, err := lc.SealAppend(append([]byte(nil), prefix...), rand.New(rand.NewSource(5)), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("SealAppend clobbered the dst prefix")
	}
	env := out[len(prefix):]
	if len(env) != SealedSize(len(plaintext)) {
		t.Fatalf("envelope size %d, want %d", len(env), SealedSize(len(plaintext)))
	}
	opened, err := lc.OpenAppend(append([]byte(nil), prefix...), env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(opened, prefix) || !bytes.Equal(opened[len(prefix):], plaintext) {
		t.Fatalf("OpenAppend result %q", opened)
	}
}

// TestLinkCipherOpenRejects mirrors Open's rejections: short input, and
// any single flipped bit across the whole envelope. dst must stay
// untouched on failure.
func TestLinkCipherOpenRejects(t *testing.T) {
	keys := testKeys(11)
	lc, err := NewLinkCipher(keys)
	if err != nil {
		t.Fatal(err)
	}
	env, err := lc.SealAppend(nil, rand.New(rand.NewSource(1)), []byte("guarded"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.OpenAppend(nil, env[:NonceSize+MACSize-1]); err != ErrShortCiphertext {
		t.Fatalf("short input: got %v", err)
	}
	for i := range env {
		bad := append([]byte(nil), env...)
		bad[i] ^= 0x20
		dst := []byte("keep")
		out, err := lc.OpenAppend(dst, bad)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if out != nil || string(dst) != "keep" {
			t.Fatalf("flip at byte %d mutated dst", i)
		}
	}
}

// TestOneShotAppendHelpers checks the keys-only entry points used by the
// generic Sealer implementations.
func TestOneShotAppendHelpers(t *testing.T) {
	keys := testKeys(21)
	plaintext := []byte("one-shot")
	env, err := SealAppend(keys, rand.New(rand.NewSource(4)), nil, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Seal(keys, rand.New(rand.NewSource(4)), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env, want) {
		t.Fatal("one-shot SealAppend differs from Seal")
	}
	got, err := OpenAppend(keys, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("one-shot OpenAppend round trip failed")
	}
}

// TestCTRXORMatchesStdlib drives the manual CTR directly against
// crypto/cipher.NewCTR over many lengths and IVs, including IVs that
// overflow the low counter bytes mid-message.
func TestCTRXORMatchesStdlib(t *testing.T) {
	keys := testKeys(42)
	lc, err := NewLinkCipher(keys)
	if err != nil {
		t.Fatal(err)
	}
	block, err := aes.NewCipher(keys.Enc[:])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 64; trial++ {
		iv := make([]byte, NonceSize)
		rng.Read(iv)
		if trial%4 == 0 {
			// Force carry propagation through the counter tail.
			for i := NonceSize / 2; i < NonceSize; i++ {
				iv[i] = 0xFF
			}
		}
		src := make([]byte, rng.Intn(200))
		rng.Read(src)
		want := make([]byte, len(src))
		cipher.NewCTR(block, iv).XORKeyStream(want, src)
		got := make([]byte, len(src))
		lc.ctrXOR(iv, got, src)
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d (len %d): ctrXOR diverges from crypto/cipher CTR", trial, len(src))
		}
	}
}

// TestLinkCipherSteadyStateAllocs pins the zero-allocation property of
// the warm hot path: sealing into a buffer with capacity and opening
// into a warm scratch must not allocate.
func TestLinkCipherSteadyStateAllocs(t *testing.T) {
	keys := testKeys(63)
	lc, err := NewLinkCipher(keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	plaintext := make([]byte, 100)
	env := make([]byte, 0, SealedSize(len(plaintext)))
	scratch := make([]byte, 0, len(plaintext))
	// Warm up: the reused HMAC caches its marshaled pad states on first
	// use, and the rng warms its own internals.
	for i := 0; i < 3; i++ {
		if env, err = lc.SealAppend(env[:0], rng, plaintext); err != nil {
			t.Fatal(err)
		}
		if scratch, err = lc.OpenAppend(scratch[:0], env); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		env, err = lc.SealAppend(env[:0], rng, plaintext)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = lc.OpenAppend(scratch[:0], env)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm seal+open allocated %.1f times per op, want 0", allocs)
	}
}
