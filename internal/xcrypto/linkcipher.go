// Prepared per-link cipher state for the channel hot path.
//
// The one-shot Seal/Open functions rebuild the AES-256 key schedule and
// the HMAC-SHA256 inner/outer pads from the raw session keys on every
// envelope. Those derivations are pure functions of the (immutable) link
// keys, so a LinkCipher computes them once at link establishment and
// every subsequent SealAppend/OpenAppend reuses them, appending into
// caller-provided buffers instead of allocating fresh ones. With a warm
// destination buffer the steady-state seal and open paths allocate
// nothing.
package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
)

// LinkCipher is the prepared cipher state of one secure link: the AES-256
// block (expanded key schedule) and a reusable HMAC-SHA256 instance whose
// key pads were absorbed once at construction. Envelopes it produces and
// accepts are byte-identical to the one-shot Seal/Open under the same
// keys and nonce stream (pinned by the package equivalence tests).
//
// A LinkCipher is NOT safe for concurrent use: the HMAC state and the CTR
// scratch blocks are reused across calls. Each link owns one instance and
// the peer runtime serializes all sends and receives on its event loop.
type LinkCipher struct {
	block cipher.Block
	mac   hash.Hash
	// ctr and ks are the CTR-mode counter and keystream scratch blocks.
	// They live in the struct (not the stack) so the interface call to
	// block.Encrypt cannot force a per-envelope heap allocation.
	ctr [NonceSize]byte
	ks  [NonceSize]byte
	// sum receives the computed tag during OpenAppend verification.
	sum [MACSize]byte
}

// NewLinkCipher prepares per-link cipher state from the session keys:
// the AES key expansion and the HMAC pad absorption happen here, once.
func NewLinkCipher(keys SessionKeys) (*LinkCipher, error) {
	block, err := aes.NewCipher(keys.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: aes: %w", err)
	}
	return &LinkCipher{block: block, mac: hmac.New(sha256.New, keys.Mac[:])}, nil
}

// SealAppend encrypts and authenticates plaintext exactly like Seal but
// appends the envelope to dst and returns the extended slice. Pass a
// slice with spare capacity to seal without allocating; pass nil to get
// a fresh, exactly-sized envelope. rng nil means crypto/rand.
func (c *LinkCipher) SealAppend(dst []byte, rng io.Reader, plaintext []byte) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	start := len(dst)
	dst = appendGrow(dst, SealedSize(len(plaintext)))
	body := dst[start : start+NonceSize+len(plaintext)]
	if _, err := io.ReadFull(rng, body[:NonceSize]); err != nil {
		return nil, fmt.Errorf("xcrypto: nonce: %w", err)
	}
	c.ctrXOR(body[:NonceSize], body[NonceSize:], plaintext)
	c.mac.Reset()
	c.mac.Write(body)
	c.mac.Sum(body) // appends the tag in place: dst has the capacity
	return dst, nil
}

// OpenAppend verifies sealed exactly like Open but appends the recovered
// plaintext to dst and returns the extended slice. dst is untouched when
// verification fails.
func (c *LinkCipher) OpenAppend(dst, sealed []byte) ([]byte, error) {
	if len(sealed) < NonceSize+MACSize {
		return nil, ErrShortCiphertext
	}
	body := sealed[:len(sealed)-MACSize]
	tag := sealed[len(sealed)-MACSize:]
	c.mac.Reset()
	c.mac.Write(body)
	if !hmac.Equal(c.mac.Sum(c.sum[:0]), tag) {
		return nil, ErrAuthFailed
	}
	start := len(dst)
	dst = appendGrow(dst, len(body)-NonceSize)
	c.ctrXOR(body[:NonceSize], dst[start:], body[NonceSize:])
	return dst, nil
}

// SealAppend is the one-shot form of LinkCipher.SealAppend for callers
// without prepared link state: same bytes, but the key schedule and HMAC
// pads are rebuilt from keys.
func SealAppend(keys SessionKeys, rng io.Reader, dst, plaintext []byte) ([]byte, error) {
	c, err := NewLinkCipher(keys)
	if err != nil {
		return nil, err
	}
	return c.SealAppend(dst, rng, plaintext)
}

// OpenAppend is the one-shot form of LinkCipher.OpenAppend.
func OpenAppend(keys SessionKeys, dst, sealed []byte) ([]byte, error) {
	c, err := NewLinkCipher(keys)
	if err != nil {
		return nil, err
	}
	return c.OpenAppend(dst, sealed)
}

// ctrXOR applies AES-CTR over src into dst with the same semantics as
// crypto/cipher.NewCTR: the full 16-byte IV is the initial counter,
// incremented big-endian per block (pinned byte-identical by
// TestCTRXORMatchesStdlib). Using the struct's scratch blocks keeps the
// per-envelope path free of heap allocations.
func (c *LinkCipher) ctrXOR(iv, dst, src []byte) {
	copy(c.ctr[:], iv)
	for len(src) > 0 {
		c.block.Encrypt(c.ks[:], c.ctr[:])
		n := len(src)
		if n > len(c.ks) {
			n = len(c.ks)
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ c.ks[i]
		}
		src, dst = src[n:], dst[n:]
		for i := len(c.ctr) - 1; i >= 0; i-- {
			c.ctr[i]++
			if c.ctr[i] != 0 {
				break
			}
		}
	}
}

// appendGrow extends dst by n bytes, reallocating to exactly len(dst)+n
// when the capacity is short, and returns the extended slice. The new
// bytes are stale when capacity was reused, so callers must overwrite
// every byte of the extension.
func appendGrow(dst []byte, n int) []byte {
	if total := len(dst) + n; total <= cap(dst) {
		return dst[:total]
	}
	grown := make([]byte, len(dst)+n)
	copy(grown, dst)
	return grown
}
