package committee_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sgxp2p/internal/committee"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

type stubSource struct {
	rng *rand.Rand
	err error
}

func (s *stubSource) Next() (wire.Value, error) {
	if s.err != nil {
		return wire.Value{}, s.err
	}
	var v wire.Value
	s.rng.Read(v[:])
	return v, nil
}

func TestFormCoversAllNodesOnce(t *testing.T) {
	p := committee.Form([]byte("entropy"), 100, 7)
	seen := make(map[wire.NodeID]bool)
	for c, members := range p.Committees {
		for _, id := range members {
			if seen[id] {
				t.Fatalf("node %d assigned twice", id)
			}
			seen[id] = true
			if p.CommitteeOf(id) != c {
				t.Fatalf("CommitteeOf(%d) = %d, want %d", id, p.CommitteeOf(id), c)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("%d nodes assigned, want 100", len(seen))
	}
}

func TestFormBalanced(t *testing.T) {
	p := committee.Form([]byte("x"), 103, 10)
	sizes := p.Sizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("committee sizes unbalanced: %v", sizes)
	}
}

func TestFormDeterministic(t *testing.T) {
	a := committee.Form([]byte("same"), 40, 4)
	b := committee.Form([]byte("same"), 40, 4)
	for i := range a.Committees {
		if len(a.Committees[i]) != len(b.Committees[i]) {
			t.Fatal("partitions differ for equal entropy")
		}
		for j := range a.Committees[i] {
			if a.Committees[i][j] != b.Committees[i][j] {
				t.Fatal("partitions differ for equal entropy")
			}
		}
	}
	c := committee.Form([]byte("different"), 40, 4)
	same := true
	for i := range a.Committees {
		for j := range a.Committees[i] {
			if a.Committees[i][j] != c.Committees[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different entropy produced identical partition")
	}
}

func TestElectUsesBeacon(t *testing.T) {
	e, err := committee.New(&stubSource{rng: rand.New(rand.NewSource(1))}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e.Elect()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Elect()
	if err != nil {
		t.Fatal(err)
	}
	if p1.CommitteeOf(0) == -1 || p2.CommitteeOf(0) == -1 {
		t.Fatal("node 0 unassigned")
	}
	moved := false
	for id := wire.NodeID(0); id < 30; id++ {
		if p1.CommitteeOf(id) != p2.CommitteeOf(id) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("two elections produced identical partitions")
	}
}

func TestByzantineDispersion(t *testing.T) {
	// Mark the first 30% of nodes byzantine; over many beacon draws the
	// per-committee byzantine fraction should look binomial, never
	// concentrated: with m=25, beta=0.3, a majority-byzantine committee
	// has probability < exp(-2*25*0.04) ~ 0.13 per committee; across 50
	// draws x 4 committees we allow a small number of exceedances but not
	// systematic capture.
	const n, k, byz = 100, 4, 30
	rng := rand.New(rand.NewSource(9))
	captured := 0
	for draw := 0; draw < 50; draw++ {
		var entropy [32]byte
		rng.Read(entropy[:])
		p := committee.Form(entropy[:], n, k)
		for _, members := range p.Committees {
			count := 0
			for _, id := range members {
				if int(id) < byz {
					count++
				}
			}
			if count > len(members)/2 {
				captured++
			}
		}
	}
	if captured > 20 { // 10% of 200 committee draws
		t.Fatalf("byzantine nodes captured %d/200 committees despite unbiased election", captured)
	}
}

func TestValidation(t *testing.T) {
	src := &stubSource{rng: rand.New(rand.NewSource(1))}
	if _, err := committee.New(nil, 10, 2); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := committee.New(src, 0, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := committee.New(src, 5, 9); err == nil {
		t.Error("k>n accepted")
	}
	e, err := committee.New(&stubSource{err: errors.New("down")}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Elect(); err == nil {
		t.Error("beacon error not propagated")
	}
	if committee.Form([]byte("x"), 10, 2).CommitteeOf(99) != -1 {
		t.Error("unknown node has a committee")
	}
}

func TestHonestMajorityMath(t *testing.T) {
	// Probability increases with committee size and decreases with beta.
	if committee.HonestMajorityProbability(20, 0.3) >= committee.HonestMajorityProbability(100, 0.3) {
		t.Error("probability not increasing in m")
	}
	if committee.HonestMajorityProbability(50, 0.2) <= committee.HonestMajorityProbability(50, 0.4) {
		t.Error("probability not decreasing in beta")
	}
	if committee.HonestMajorityProbability(50, 0.6) != 0 {
		t.Error("beta >= 1/2 must give 0")
	}
	m, err := committee.MinCommitteeSize(0.3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if got := committee.HonestMajorityProbability(m, 0.3); got < 0.999 {
		t.Fatalf("MinCommitteeSize(0.3, 0.001) = %d gives probability %v", m, got)
	}
	if _, err := committee.MinCommitteeSize(0.5, 0.01); err == nil {
		t.Error("beta=0.5 accepted")
	}
	if _, err := committee.MinCommitteeSize(0.3, 0); err == nil {
		t.Error("epsilon=0 accepted")
	}
}

// Property: every node is assigned exactly once, committees are balanced
// within one, for arbitrary entropy and sizes.
func TestQuickFormInvariants(t *testing.T) {
	f := func(entropy [32]byte, nRaw, kRaw uint8) bool {
		n := int(nRaw%120) + 1
		k := int(kRaw)%n + 1
		p := committee.Form(entropy[:], n, k)
		seen := make(map[wire.NodeID]bool, n)
		min, max := n+1, 0
		for _, members := range p.Committees {
			if len(members) < min {
				min = len(members)
			}
			if len(members) > max {
				max = len(members)
			}
			for _, id := range members {
				if seen[id] || int(id) >= n {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == n && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadUniformAcrossDraws(t *testing.T) {
	// Node 0's committee over many draws should be ~uniform over k.
	const k = 8
	counts := make([]int, k)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		var entropy [32]byte
		rng.Read(entropy[:])
		counts[committee.Form(entropy[:], 64, k).CommitteeOf(0)]++
	}
	chi, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 30 { // 7 dof, 99.9th percentile ~24.3, margin
		t.Fatalf("committee choice chi-square %.1f: %v", chi, counts)
	}
}
