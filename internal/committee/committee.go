// Package committee implements the committee-election application behind
// the paper's Appendix H sharding use case (it cites Elastico-style
// secure sharding): the network partitions itself into k committees using
// the common unbiased beacon value. Because the partition is a
// deterministic function of an unbiasable value, an adversary controlling
// t <= beta*N nodes cannot concentrate its nodes into one committee beyond
// what an honest-random assignment would give, and every honest node
// computes the identical partition.
package committee

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"sgxp2p/internal/beacon"
	"sgxp2p/internal/wire"
)

// Partition is a committee assignment: Committees[c] lists the members of
// committee c in ascending id order.
type Partition struct {
	Committees [][]wire.NodeID
	byNode     map[wire.NodeID]int
}

// CommitteeOf returns the committee index of a node (-1 if unknown).
func (p *Partition) CommitteeOf(id wire.NodeID) int {
	c, ok := p.byNode[id]
	if !ok {
		return -1
	}
	return c
}

// Sizes returns the member count of every committee.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Committees))
	for i, c := range p.Committees {
		out[i] = len(c)
	}
	return out
}

// Elector forms beacon-driven committees.
type Elector struct {
	src beacon.Source
	n   int
	k   int
}

// New builds an elector partitioning n nodes into k committees.
func New(src beacon.Source, n, k int) (*Elector, error) {
	if src == nil {
		return nil, errors.New("committee: nil beacon source")
	}
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("committee: invalid n=%d k=%d", n, k)
	}
	return &Elector{src: src, n: n, k: k}, nil
}

// Elect draws one beacon value and forms the partition. Assignment uses a
// beacon-keyed pseudorandom permutation rank, then round-robin slicing, so
// committee sizes differ by at most one.
func (e *Elector) Elect() (*Partition, error) {
	v, err := e.src.Next()
	if err != nil {
		return nil, fmt.Errorf("committee: beacon: %w", err)
	}
	return Form(v[:], e.n, e.k), nil
}

// Form is the pure partition function: nodes are ranked by
// H(entropy, id) and dealt round-robin into k committees. Exposed so any
// observer of the beacon trace can re-derive (and audit) the partition.
func Form(entropy []byte, n, k int) *Partition {
	type ranked struct {
		id   wire.NodeID
		rank uint64
	}
	nodes := make([]ranked, n)
	for i := 0; i < n; i++ {
		h := sha256.New()
		h.Write([]byte("sgxp2p/committee/v1/"))
		h.Write(entropy)
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(i))
		h.Write(idb[:])
		sum := h.Sum(nil)
		nodes[i] = ranked{id: wire.NodeID(i), rank: binary.LittleEndian.Uint64(sum[:8])}
	}
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a].rank != nodes[b].rank {
			return nodes[a].rank < nodes[b].rank
		}
		return nodes[a].id < nodes[b].id
	})
	p := &Partition{
		Committees: make([][]wire.NodeID, k),
		byNode:     make(map[wire.NodeID]int, n),
	}
	for i, nd := range nodes {
		c := i % k
		p.Committees[c] = append(p.Committees[c], nd.id)
		p.byNode[nd.id] = c
	}
	for _, members := range p.Committees {
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	}
	return p
}

// HonestMajorityProbability estimates, via the Chernoff bound the paper's
// Lemma F.1 uses, a lower bound on the probability that ONE committee of
// size m keeps an honest majority when a fraction beta < 1/2 of the
// network is byzantine: P[byz >= m/2] <= exp(-2*m*(1/2 - beta)^2).
func HonestMajorityProbability(m int, beta float64) float64 {
	if m <= 0 || beta < 0 || beta >= 0.5 {
		return 0
	}
	gap := 0.5 - beta
	return 1 - math.Exp(-2*float64(m)*gap*gap)
}

// MinCommitteeSize returns the smallest committee size whose
// honest-majority probability (per HonestMajorityProbability) is at least
// 1 - epsilon, for byzantine fraction beta.
func MinCommitteeSize(beta, epsilon float64) (int, error) {
	if beta < 0 || beta >= 0.5 {
		return 0, fmt.Errorf("committee: byzantine fraction %v out of [0, 0.5)", beta)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("committee: epsilon %v out of (0, 1)", epsilon)
	}
	gap := 0.5 - beta
	m := math.Log(1/epsilon) / (2 * gap * gap)
	return int(math.Ceil(m)), nil
}
