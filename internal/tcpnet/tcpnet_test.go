package tcpnet_test

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/tcpnet"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

func TestFrameDelivery(t *testing.T) {
	a, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Connect(map[wire.NodeID]string{1: b.Addr()})

	got := make(chan string, 1)
	b.SetHandler(func(src wire.NodeID, payload []byte) {
		if src == 0 {
			got <- string(payload)
		}
	})
	a.Send(1, []byte("over tcp"))
	select {
	case s := <-got:
		if s != "over tcp" {
			t.Fatalf("payload %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for delivery")
	}
}

func TestAfterRunsOnLoop(t *testing.T) {
	p, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	done := make(chan struct{})
	p.After(10*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("After callback never ran")
	}
	if p.Now() <= 0 {
		t.Fatal("Now must advance")
	}
}

func TestCloseIdempotent(t *testing.T) {
	p, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	p.Detach()
	p.Send(1, []byte("dropped")) // must not panic after close
}

// finishProbe wraps an ERB engine and signals completion.
type finishProbe struct {
	eng  *erb.Engine
	done chan struct{}
}

func (f *finishProbe) OnRound(rnd uint32)          { f.eng.OnRound(rnd) }
func (f *finishProbe) OnMessage(msg *wire.Message) { f.eng.OnMessage(msg) }
func (f *finishProbe) OnFinish()                   { f.eng.OnFinish(); close(f.done) }

func TestERBOverRealTCP(t *testing.T) {
	// End-to-end: 5 enclaved peers with real AES+HMAC channels over real
	// TCP sockets on localhost run one ERB broadcast.
	const n, byz = 5, 2
	const delta = 150 * time.Millisecond

	ports := make([]*tcpnet.Port, n)
	addrs := make(map[wire.NodeID]string, n)
	for i := 0; i < n; i++ {
		p, err := tcpnet.Listen(wire.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		ports[i] = p
		addrs[wire.NodeID(i)] = p.Addr()
	}
	origin := time.Now()
	for _, p := range ports {
		p.Connect(addrs)
		p.SetOrigin(origin)
	}

	service, err := enclave.NewAttestationService(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	program := []byte("erb-over-tcp-v1")
	encls := make([]*enclave.Enclave, n)
	roster := runtime.Roster{
		Quotes:      make([]enclave.Quote, n),
		ServiceKey:  service.VerifyKey(),
		Measurement: measurement(program),
	}
	clock := enclave.NewWallClock()
	for i := 0; i < n; i++ {
		e, err := enclave.Launch(program, wire.NodeID(i), rand.Reader, clock)
		if err != nil {
			t.Fatal(err)
		}
		encls[i] = e
		roster.Quotes[i] = service.Attest(e)
	}

	peers := make([]*runtime.Peer, n)
	for i := 0; i < n; i++ {
		p, err := runtime.NewPeer(encls[i], ports[i], roster, runtime.Config{
			N: n, T: byz, Delta: delta,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	if err := runtime.Setup(peers); err != nil {
		t.Fatal(err)
	}

	probes := make([]*finishProbe, n)
	for i := 0; i < n; i++ {
		eng, err := erb.NewEngine(peers[i], erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
		if err != nil {
			t.Fatal(err)
		}
		probes[i] = &finishProbe{eng: eng, done: make(chan struct{})}
		if i == 0 {
			eng.SetInput(wire.Value{0xCA, 0xFE})
		}
	}
	// Start on each node's event loop: peer state is loop-confined.
	for i := 0; i < n; i++ {
		i := i
		ports[i].After(0, func() {
			peers[i].Start(probes[i], probes[i].eng.Rounds())
		})
	}

	deadline := time.After(time.Duration(byz+4) * 2 * delta * 4)
	for i := 0; i < n; i++ {
		select {
		case <-probes[i].done:
		case <-deadline:
			t.Fatalf("peer %d did not finish in time", i)
		}
	}
	for i := 0; i < n; i++ {
		res, ok := probes[i].eng.Result(0)
		if !ok || !res.Accepted || res.Value != (wire.Value{0xCA, 0xFE}) {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
	}
}

func measurement(program []byte) xcrypto.Measurement {
	return xcrypto.Measure(program)
}

// TestConcurrentSendPooledFrames hammers the pooled frame path from many
// goroutines at once: every payload must arrive intact even though the
// frame buffers cycle through a shared sync.Pool. Run under -race this
// pins the handoff between Send, the writer goroutine and pool reuse.
func TestConcurrentSendPooledFrames(t *testing.T) {
	a, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Connect(map[wire.NodeID]string{1: b.Addr()})

	const senders, perSender = 8, 50
	type rec struct {
		sender byte
		ok     bool
	}
	got := make(chan rec, senders*perSender)
	b.SetHandler(func(src wire.NodeID, payload []byte) {
		if len(payload) < 2 {
			got <- rec{}
			return
		}
		// Payload is sender id, seq, then a run of the sender byte; any
		// pooled-buffer corruption shows up as a foreign byte.
		r := rec{sender: payload[0], ok: true}
		for _, c := range payload[2:] {
			if c != payload[0] {
				r.ok = false
				break
			}
		}
		got <- r
	})

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := make([]byte, 2+16+s)
				payload[0] = byte(s)
				payload[1] = byte(i)
				for j := 2; j < len(payload); j++ {
					payload[j] = byte(s)
				}
				a.Send(1, payload)
			}
		}(s)
	}
	wg.Wait()

	// The writer queue drops under backpressure by design, so require
	// only that everything delivered is intact and that a healthy
	// fraction arrives.
	delivered := 0
	deadline := time.After(10 * time.Second)
	for delivered < senders*perSender {
		select {
		case r := <-got:
			if !r.ok {
				t.Fatalf("corrupted payload from sender %d", r.sender)
			}
			delivered++
		case <-deadline:
			if delivered < senders*perSender/2 {
				t.Fatalf("only %d/%d payloads delivered", delivered, senders*perSender)
			}
			return
		}
	}
}
