// Package tcpnet implements the runtime.Transport interface over real TCP
// connections, so the enclaved protocols run unmodified over an actual
// network stack (the live-demo counterpart of internal/simnet, as the
// paper's prototype ran on DeterLab machines).
//
// Framing is a minimal length-prefixed format:
//
//	src uint32 | len uint32 | payload [len]byte
//
// Each Port owns one event loop goroutine; message deliveries and timer
// callbacks are serialized onto it, giving protocols the same
// single-threaded execution model they have in the simulator.
//
// Connections are dialed asynchronously and re-dialed after failures: a
// peer process that crashes and restarts on the same address is picked up
// transparently (frames lost in between are omissions, which the lockstep
// protocols already tolerate), and a peer that never comes up costs
// nothing but a bounded dial backoff — Send never blocks the event loop.
// Per-destination send delays (SetSendDelay) shape individual links for
// slow-network scenarios the simulator cannot express end-to-end.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// maxFrame bounds accepted payload sizes (defense against garbage
// input). With per-round frame coalescing an envelope can carry a whole
// round's messages to one peer — on a large topology with concurrent
// initiators that is thousands of batched entries, so the bound is
// sized for a worst-case batch frame, not a single message.
const maxFrame = 8 << 20

// loopBuffer is the event-loop queue depth.
const loopBuffer = 4096

// dialTimeout bounds one connection attempt.
const dialTimeout = 5 * time.Second

// redialBackoff is how long a destination stays marked down after a
// failed dial or a broken connection before Send tries again. It bounds
// the dial rate toward a crashed peer without stalling anything: sends
// during the backoff are dropped as omissions.
const redialBackoff = 200 * time.Millisecond

// Port is a TCP-backed transport for one node.
type Port struct {
	self   wire.NodeID
	ln     net.Listener
	origin time.Time

	mu        sync.Mutex
	addrs     map[wire.NodeID]string
	conns     map[wire.NodeID]*outConn
	downUntil map[wire.NodeID]time.Time
	delays    map[wire.NodeID]time.Duration
	delayAll  time.Duration
	outSocks  map[net.Conn]struct{}
	inbound   map[net.Conn]struct{}
	handler   func(src wire.NodeID, payload []byte)
	closed    bool

	loop chan func()
	done chan struct{}
	wg   sync.WaitGroup

	// ctr holds the transport metric handles; an atomic pointer because
	// Send and the read loops touch it from different goroutines while
	// SetMetrics may install it after the port is live.
	ctr atomic.Pointer[portCounters]
}

// portCounters are the TCP transport's metric handles.
type portCounters struct {
	framesSent     *telemetry.Counter
	framesDropped  *telemetry.Counter
	framesReceived *telemetry.Counter
	bytesSent      *telemetry.Counter
	bytesReceived  *telemetry.Counter
	reconnects     *telemetry.Counter
}

// SetMetrics registers the transport counters in m and attaches them to
// the port. A nil registry detaches them.
func (p *Port) SetMetrics(m *telemetry.Metrics) {
	if m == nil {
		p.ctr.Store(nil)
		return
	}
	p.ctr.Store(&portCounters{
		framesSent:     m.Counter("tcp_frames_sent_total"),
		framesDropped:  m.Counter("tcp_frames_dropped_total"),
		framesReceived: m.Counter("tcp_frames_received_total"),
		bytesSent:      m.Counter("tcp_bytes_sent_total"),
		bytesReceived:  m.Counter("tcp_bytes_received_total"),
		reconnects:     m.Counter("tcp_reconnects_total"),
	})
}

var _ runtime.Transport = (*Port)(nil)

// QueueStats is a point-in-time reading of the port's outbound writer
// queues — the obsplane resource probe samples it into gauges so a live
// run shows which links are backing up before the frames start dropping.
type QueueStats struct {
	// Links is the number of live outbound connections.
	Links int
	// Total is the number of frames queued across all links.
	Total int
	// Max is the deepest single link queue.
	Max int
}

// QueueStats samples the outbound queue depths. Total and Max are
// order-free folds over the connection map, so the reading is stable
// regardless of iteration order.
func (p *Port) QueueStats() QueueStats {
	var qs QueueStats
	p.mu.Lock()
	for _, oc := range p.conns {
		depth := len(oc.ch)
		qs.Links++
		qs.Total += depth
		if depth > qs.Max {
			qs.Max = depth
		}
	}
	p.mu.Unlock()
	return qs
}

// outConn is an outbound connection with an async writer. The dial
// happens on the writer goroutine, so Send never blocks the caller:
// frames queued while the dial is in flight go out as soon as the
// connection is up, and a failed dial drops them as omissions. dead is
// closed (once) when the connection is retired — by a write failure or
// by the peer-death monitor spotting the remote FIN/RST — and tells the
// writer to stop.
type outConn struct {
	dst  wire.NodeID
	ch   chan *frame
	dead chan struct{}
	once sync.Once
}

// frame is one pooled outbound wire frame (header + payload). Send
// builds frames from framePool and the writer goroutine returns them
// after the socket write, so the steady-state TCP send path recycles
// its buffers instead of allocating one per envelope. The pool entry is
// a pointer-to-struct so Put never re-boxes the slice header.
type frame struct {
	buf []byte
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame builds a pooled frame carrying one payload from src.
func newFrame(src wire.NodeID, payload []byte) *frame {
	f := framePool.Get().(*frame)
	need := 8 + len(payload)
	if cap(f.buf) < need {
		f.buf = make([]byte, need)
	} else {
		f.buf = f.buf[:need]
	}
	binary.LittleEndian.PutUint32(f.buf, uint32(src))
	binary.LittleEndian.PutUint32(f.buf[4:], uint32(len(payload)))
	copy(f.buf[8:], payload)
	return f
}

// Listen opens a listening socket for a node. Use Addr to learn the bound
// address (pass "127.0.0.1:0" for an ephemeral port), then Connect to
// install the address table once all peers are known.
func Listen(self wire.NodeID, addr string) (*Port, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Port{
		self:      self,
		ln:        ln,
		origin:    time.Now(), //lint:allow detrand tcpnet is the real-network transport; rounds are anchored to a wall-clock origin by design
		addrs:     make(map[wire.NodeID]string),
		conns:     make(map[wire.NodeID]*outConn),
		downUntil: make(map[wire.NodeID]time.Time),
		delays:    make(map[wire.NodeID]time.Duration),
		outSocks:  make(map[net.Conn]struct{}),
		inbound:   make(map[net.Conn]struct{}),
		loop:      make(chan func(), loopBuffer),
		done:      make(chan struct{}),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.runLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Port) Addr() string { return p.ln.Addr().String() }

// Connect installs the peer address table and eagerly establishes the
// outbound connections. Without the pre-dial, every link is first dialed
// by the first Send toward it — at scale that lands all N*(N-1) dials of
// a fleet inside one round window (the whole network echoes in the same
// round), and the dial burst alone can blow the Δ delivery bound. Dialing
// at Connect time moves that cost into setup, where the synchronized
// start instant leaves room for it. Failed dials are not fatal here:
// the connection record retires through the usual dropConn path and the
// first Send re-dials.
func (p *Port) Connect(addrs map[wire.NodeID]string) {
	ids := make([]int, 0, len(addrs))
	p.mu.Lock()
	for id, a := range addrs {
		p.addrs[id] = a
		ids = append(ids, int(id))
	}
	p.mu.Unlock()
	sort.Ints(ids)
	for _, id := range ids {
		if wire.NodeID(id) == p.self {
			continue
		}
		_, _ = p.outbound(wire.NodeID(id))
	}
}

// SetSendDelay shapes the outbound link to one destination: every frame
// toward dst waits d on the writer goroutine before hitting the socket,
// adding one-way latency and capping the link's frame rate — the
// slow-link hook of the scenario runner. Zero removes the shaping.
// Inbound traffic and other destinations are unaffected.
func (p *Port) SetSendDelay(dst wire.NodeID, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d <= 0 {
		delete(p.delays, dst)
		return
	}
	p.delays[dst] = d
}

// SetSendDelayAll shapes every outbound link of this node at once (a
// "slow node" rather than a slow link). Zero removes the shaping.
func (p *Port) SetSendDelayAll(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p.delayAll = d
}

// sendDelay returns the shaping delay toward dst.
func (p *Port) sendDelay(dst wire.NodeID) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.delays[dst]; ok && d > p.delayAll {
		return d
	}
	return p.delayAll
}

// SetOrigin re-anchors the transport clock, letting multiple processes
// agree on a common time origin (the synchronized start, assumption S2).
func (p *Port) SetOrigin(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.origin = t
}

// Now implements runtime.Transport.
func (p *Port) Now() time.Duration {
	p.mu.Lock()
	origin := p.origin
	p.mu.Unlock()
	return time.Since(origin) //lint:allow detrand virtual now on the real transport is elapsed wall time since the shared origin
}

// SetHandler implements runtime.Transport.
func (p *Port) SetHandler(h func(src wire.NodeID, payload []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// After implements runtime.Transport: fn runs on the event loop.
func (p *Port) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() { p.post(fn) }) //lint:allow lockstep the real transport schedules round ticks on host time; lockstep is enforced by the engine above it
}

// post enqueues fn on the event loop, dropping it if the port is closed.
func (p *Port) post(fn func()) {
	select {
	case <-p.done:
	case p.loop <- fn:
	}
}

// runLoop executes posted callbacks serially.
func (p *Port) runLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case fn := <-p.loop:
			fn()
		}
	}
}

// Send implements runtime.Transport. The payload is copied into a pooled
// frame, so the caller's envelope buffer is released as soon as Send
// returns, and frames cycle between Send and the writer goroutines
// through framePool instead of allocating per envelope. Send never
// blocks: an unconnected destination gets an asynchronous dial, an
// unreachable one a bounded backoff during which frames drop as
// omissions.
func (p *Port) Send(dst wire.NodeID, payload []byte) {
	ctr := p.ctr.Load()
	oc, err := p.outbound(dst)
	if err != nil {
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
		return // unreachable peer: equivalent to an omission
	}
	f := newFrame(p.self, payload)
	select {
	case oc.ch <- f:
		if ctr != nil {
			ctr.framesSent.Inc()
			ctr.bytesSent.Add(uint64(len(payload)))
		}
	case <-p.done:
		framePool.Put(f)
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
	default:
		// Writer queue full: drop (bounded memory; omission-equivalent).
		framePool.Put(f)
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
	}
}

// outbound returns the connection record for dst, creating it (and
// kicking off an asynchronous dial on the writer goroutine) if none is
// live. During the post-failure backoff window it returns an error and
// the caller drops the frame.
func (p *Port) outbound(dst wire.NodeID) (*outConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("tcpnet: closed")
	}
	if oc, ok := p.conns[dst]; ok {
		p.mu.Unlock()
		return oc, nil
	}
	if until, ok := p.downUntil[dst]; ok {
		if time.Now().Before(until) { //lint:allow detrand redial backoff on the real transport is wall-clock by nature
			p.mu.Unlock()
			return nil, fmt.Errorf("tcpnet: peer %d in redial backoff", dst)
		}
		delete(p.downUntil, dst)
	}
	addr, ok := p.addrs[dst]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: no address for peer %d", dst)
	}
	oc := &outConn{dst: dst, ch: make(chan *frame, 1024), dead: make(chan struct{})}
	p.conns[dst] = oc
	p.wg.Add(1)
	p.mu.Unlock()
	go p.writeLoop(oc, addr)
	return oc, nil
}

// dropConn retires a connection record after a dial failure, a write
// failure or a detected peer death: the record leaves the table so the
// next Send re-dials (after the backoff), and any frames still queued
// behind the failure return to the pool.
func (p *Port) dropConn(oc *outConn) {
	oc.once.Do(func() { close(oc.dead) })
	p.mu.Lock()
	if p.conns[oc.dst] == oc {
		delete(p.conns, oc.dst)
		p.downUntil[oc.dst] = time.Now().Add(redialBackoff) //lint:allow detrand redial backoff on the real transport is wall-clock by nature
	}
	p.mu.Unlock()
	for {
		select {
		case f := <-oc.ch:
			framePool.Put(f)
		default:
			return
		}
	}
}

// writeLoop dials the destination, then drains the outbound queue onto
// the connection, returning each frame to the pool once the socket write
// completes. On any failure the record is dropped so a later Send
// re-dials — the reconnect path a peer restart takes.
func (p *Port) writeLoop(oc *outConn, addr string) {
	defer p.wg.Done()
	d := net.Dialer{Timeout: dialTimeout, Cancel: p.done}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		p.dropConn(oc)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.outSocks[conn] = struct{}{}
	p.mu.Unlock()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.outSocks, conn)
		p.mu.Unlock()
	}()
	// Peer-death monitor: nothing is ever received on an outbound
	// connection, so a returning read means the remote side closed (its
	// process died or restarted). Detecting it eagerly — instead of on
	// the next failing write, which on a freshly dead socket can be one
	// buffered write too late — retires the record at crash time, so the
	// very next Send re-dials the restarted peer.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		one := make([]byte, 1)
		_, _ = conn.Read(one)
		p.dropConn(oc)
		_ = conn.Close()
	}()
	for {
		select {
		case <-p.done:
			return
		case <-oc.dead:
			return
		case f := <-oc.ch:
			if delay := p.sendDelay(oc.dst); delay > 0 {
				select {
				case <-p.done:
					framePool.Put(f)
					return
				case <-oc.dead:
					framePool.Put(f)
					return
				//lint:allow lockstep link shaping delays the wall-clock wire, not protocol rounds
				case <-time.After(delay):
				}
			}
			_, werr := conn.Write(f.buf)
			framePool.Put(f)
			if werr != nil {
				p.dropConn(oc)
				if ctr := p.ctr.Load(); ctr != nil {
					ctr.reconnects.Inc()
				}
				return
			}
		}
	}
}

// acceptLoop accepts inbound connections.
func (p *Port) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.inbound[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

// readLoop parses frames off one inbound connection and posts them to the
// event loop.
func (p *Port) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.inbound, conn)
		p.mu.Unlock()
	}()
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		src := wire.NodeID(binary.LittleEndian.Uint32(header))
		size := binary.LittleEndian.Uint32(header[4:])
		if size > maxFrame {
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if ctr := p.ctr.Load(); ctr != nil {
			ctr.framesReceived.Inc()
			ctr.bytesReceived.Add(uint64(size))
		}
		p.post(func() {
			p.mu.Lock()
			h := p.handler
			closed := p.closed
			p.mu.Unlock()
			if h != nil && !closed {
				h(src, payload)
			}
		})
	}
}

// Detach implements runtime.Transport: the node leaves the network.
func (p *Port) Detach() { p.Close() }

// Close shuts the port down and waits for its goroutines.
func (p *Port) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.conns = make(map[wire.NodeID]*outConn)
	socks := make([]net.Conn, 0, len(p.outSocks)+len(p.inbound))
	for c := range p.outSocks {
		socks = append(socks, c) //lint:allow maporder connection close order is irrelevant; the set is drained, not serialized
	}
	for c := range p.inbound {
		socks = append(socks, c) //lint:allow maporder connection close order is irrelevant; the set is drained, not serialized
	}
	p.mu.Unlock()
	close(p.done)
	_ = p.ln.Close()
	for _, c := range socks {
		_ = c.Close()
	}
	p.wg.Wait()
}
