// Package tcpnet implements the runtime.Transport interface over real TCP
// connections, so the enclaved protocols run unmodified over an actual
// network stack (the live-demo counterpart of internal/simnet, as the
// paper's prototype ran on DeterLab machines).
//
// Framing is a minimal length-prefixed format:
//
//	src uint32 | len uint32 | payload [len]byte
//
// Each Port owns one event loop goroutine; message deliveries and timer
// callbacks are serialized onto it, giving protocols the same
// single-threaded execution model they have in the simulator.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// maxFrame bounds accepted payload sizes (defense against garbage
// input). With per-round frame coalescing an envelope can carry a whole
// round's messages to one peer — on a large topology with concurrent
// initiators that is thousands of batched entries, so the bound is
// sized for a worst-case batch frame, not a single message.
const maxFrame = 8 << 20

// loopBuffer is the event-loop queue depth.
const loopBuffer = 4096

// Port is a TCP-backed transport for one node.
type Port struct {
	self   wire.NodeID
	ln     net.Listener
	origin time.Time

	mu      sync.Mutex
	addrs   map[wire.NodeID]string
	conns   map[wire.NodeID]*outConn
	inbound map[net.Conn]struct{}
	handler func(src wire.NodeID, payload []byte)
	closed  bool

	loop chan func()
	done chan struct{}
	wg   sync.WaitGroup

	// ctr holds the transport metric handles; an atomic pointer because
	// Send and the read loops touch it from different goroutines while
	// SetMetrics may install it after the port is live.
	ctr atomic.Pointer[portCounters]
}

// portCounters are the TCP transport's metric handles.
type portCounters struct {
	framesSent     *telemetry.Counter
	framesDropped  *telemetry.Counter
	framesReceived *telemetry.Counter
	bytesSent      *telemetry.Counter
	bytesReceived  *telemetry.Counter
}

// SetMetrics registers the transport counters in m and attaches them to
// the port. A nil registry detaches them.
func (p *Port) SetMetrics(m *telemetry.Metrics) {
	if m == nil {
		p.ctr.Store(nil)
		return
	}
	p.ctr.Store(&portCounters{
		framesSent:     m.Counter("tcp_frames_sent_total"),
		framesDropped:  m.Counter("tcp_frames_dropped_total"),
		framesReceived: m.Counter("tcp_frames_received_total"),
		bytesSent:      m.Counter("tcp_bytes_sent_total"),
		bytesReceived:  m.Counter("tcp_bytes_received_total"),
	})
}

var _ runtime.Transport = (*Port)(nil)

// outConn is an outbound connection with an async writer.
type outConn struct {
	conn net.Conn
	ch   chan *frame
}

// frame is one pooled outbound wire frame (header + payload). Send
// builds frames from framePool and the writer goroutine returns them
// after the socket write, so the steady-state TCP send path recycles
// its buffers instead of allocating one per envelope. The pool entry is
// a pointer-to-struct so Put never re-boxes the slice header.
type frame struct {
	buf []byte
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame builds a pooled frame carrying one payload from src.
func newFrame(src wire.NodeID, payload []byte) *frame {
	f := framePool.Get().(*frame)
	need := 8 + len(payload)
	if cap(f.buf) < need {
		f.buf = make([]byte, need)
	} else {
		f.buf = f.buf[:need]
	}
	binary.LittleEndian.PutUint32(f.buf, uint32(src))
	binary.LittleEndian.PutUint32(f.buf[4:], uint32(len(payload)))
	copy(f.buf[8:], payload)
	return f
}

// Listen opens a listening socket for a node. Use Addr to learn the bound
// address (pass "127.0.0.1:0" for an ephemeral port), then Connect to
// install the address table once all peers are known.
func Listen(self wire.NodeID, addr string) (*Port, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Port{
		self:    self,
		ln:      ln,
		origin:  time.Now(), //lint:allow detrand tcpnet is the real-network transport; rounds are anchored to a wall-clock origin by design
		addrs:   make(map[wire.NodeID]string),
		conns:   make(map[wire.NodeID]*outConn),
		inbound: make(map[net.Conn]struct{}),
		loop:    make(chan func(), loopBuffer),
		done:    make(chan struct{}),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.runLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Port) Addr() string { return p.ln.Addr().String() }

// Connect installs the peer address table.
func (p *Port) Connect(addrs map[wire.NodeID]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, a := range addrs {
		p.addrs[id] = a
	}
}

// SetOrigin re-anchors the transport clock, letting multiple processes
// agree on a common time origin (the synchronized start, assumption S2).
func (p *Port) SetOrigin(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.origin = t
}

// Now implements runtime.Transport.
func (p *Port) Now() time.Duration {
	p.mu.Lock()
	origin := p.origin
	p.mu.Unlock()
	return time.Since(origin) //lint:allow detrand virtual now on the real transport is elapsed wall time since the shared origin
}

// SetHandler implements runtime.Transport.
func (p *Port) SetHandler(h func(src wire.NodeID, payload []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// After implements runtime.Transport: fn runs on the event loop.
func (p *Port) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() { p.post(fn) }) //lint:allow lockstep the real transport schedules round ticks on host time; lockstep is enforced by the engine above it
}

// post enqueues fn on the event loop, dropping it if the port is closed.
func (p *Port) post(fn func()) {
	select {
	case <-p.done:
	case p.loop <- fn:
	}
}

// runLoop executes posted callbacks serially.
func (p *Port) runLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case fn := <-p.loop:
			fn()
		}
	}
}

// Send implements runtime.Transport. The payload is copied into a pooled
// frame, so the caller's envelope buffer is released as soon as Send
// returns, and frames cycle between Send and the writer goroutines
// through framePool instead of allocating per envelope.
func (p *Port) Send(dst wire.NodeID, payload []byte) {
	ctr := p.ctr.Load()
	oc, err := p.outbound(dst)
	if err != nil {
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
		return // unreachable peer: equivalent to an omission
	}
	f := newFrame(p.self, payload)
	select {
	case oc.ch <- f:
		if ctr != nil {
			ctr.framesSent.Inc()
			ctr.bytesSent.Add(uint64(len(payload)))
		}
	case <-p.done:
		framePool.Put(f)
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
	default:
		// Writer queue full: drop (bounded memory; omission-equivalent).
		framePool.Put(f)
		if ctr != nil {
			ctr.framesDropped.Inc()
		}
	}
}

// outbound returns (dialing if necessary) the connection to dst.
func (p *Port) outbound(dst wire.NodeID) (*outConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("tcpnet: closed")
	}
	if oc, ok := p.conns[dst]; ok {
		p.mu.Unlock()
		return oc, nil
	}
	addr, ok := p.addrs[dst]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for peer %d", dst)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %d@%s: %w", dst, addr, err)
	}
	oc := &outConn{conn: conn, ch: make(chan *frame, 1024)}
	p.mu.Lock()
	if existing, ok := p.conns[dst]; ok {
		p.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	p.conns[dst] = oc
	p.mu.Unlock()
	p.wg.Add(1)
	go p.writeLoop(oc)
	return oc, nil
}

// writeLoop drains an outbound queue onto its connection, returning each
// frame to the pool once the socket write completes.
func (p *Port) writeLoop(oc *outConn) {
	defer p.wg.Done()
	defer oc.conn.Close()
	for {
		select {
		case <-p.done:
			return
		case f := <-oc.ch:
			_, err := oc.conn.Write(f.buf)
			framePool.Put(f)
			if err != nil {
				return
			}
		}
	}
}

// acceptLoop accepts inbound connections.
func (p *Port) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.inbound[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

// readLoop parses frames off one inbound connection and posts them to the
// event loop.
func (p *Port) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.inbound, conn)
		p.mu.Unlock()
	}()
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		src := wire.NodeID(binary.LittleEndian.Uint32(header))
		size := binary.LittleEndian.Uint32(header[4:])
		if size > maxFrame {
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if ctr := p.ctr.Load(); ctr != nil {
			ctr.framesReceived.Inc()
			ctr.bytesReceived.Add(uint64(size))
		}
		p.post(func() {
			p.mu.Lock()
			h := p.handler
			closed := p.closed
			p.mu.Unlock()
			if h != nil && !closed {
				h(src, payload)
			}
		})
	}
}

// Detach implements runtime.Transport: the node leaves the network.
func (p *Port) Detach() { p.Close() }

// Close shuts the port down and waits for its goroutines.
func (p *Port) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.conns = make(map[wire.NodeID]*outConn)
	inbound := make([]net.Conn, 0, len(p.inbound))
	for c := range p.inbound {
		inbound = append(inbound, c) //lint:allow maporder connection close order is irrelevant; the set is drained, not serialized
	}
	p.mu.Unlock()
	close(p.done)
	_ = p.ln.Close()
	for _, oc := range conns {
		_ = oc.conn.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	p.wg.Wait()
}
