package tcpnet_test

import (
	mrand "math/rand"
	"testing"
	"time"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/tcpnet"
	"sgxp2p/internal/wire"
)

// TestReconnectAfterPeerRestart pins the reconnect contract: when a peer
// process dies and a new one comes up on the same address, a sender's
// cached connection breaks once, the broken record is dropped, and the
// next Send after the redial backoff dials the fresh listener. Frames
// lost in between are omissions — exactly what the lockstep protocols
// already tolerate.
func TestReconnectAfterPeerRestart(t *testing.T) {
	a, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a.Connect(map[wire.NodeID]string{1: addr})

	got := make(chan string, 16)
	handler := func(src wire.NodeID, payload []byte) {
		if src == 0 {
			got <- string(payload)
		}
	}
	b.SetHandler(handler)
	a.Send(1, []byte("before restart"))
	select {
	case s := <-got:
		if s != "before restart" {
			t.Fatalf("payload %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout before restart")
	}

	// The peer "crashes": its listener and connections go away.
	b.Close()

	// Sends into the void are dropped as omissions; they must not block
	// and must not wedge the sender's connection table.
	for i := 0; i < 3; i++ {
		a.Send(1, []byte("lost"))
		time.Sleep(50 * time.Millisecond)
	}

	// The peer "restarts" on the same address.
	b2, err := tcpnet.Listen(1, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b2.SetHandler(handler)

	// Keep sending: once the redial backoff lapses, a fresh dial reaches
	// the new listener and delivery resumes.
	deadline := time.After(10 * time.Second)
	for {
		a.Send(1, []byte("after restart"))
		select {
		case s := <-got:
			if s == "after restart" {
				return
			}
		case <-deadline:
			t.Fatal("delivery never resumed after peer restart")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestSendNeverBlocksOnDeadPeer pins that Send to an unreachable peer
// returns promptly — the dial is asynchronous and failures enter a
// bounded backoff — so one dead peer cannot stall a node's event loop
// and make it miss lockstep rounds (the hang the scenario runner's
// preflight guards against).
func TestSendNeverBlocksOnDeadPeer(t *testing.T) {
	a, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A dead destination: nobody listens here (port from a closed listener).
	dead, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()
	a.Connect(map[wire.NodeID]string{1: deadAddr})

	start := time.Now()
	for i := 0; i < 100; i++ {
		a.Send(1, []byte("omission"))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("100 sends to a dead peer took %v; Send must not block on dialing", elapsed)
	}
}

// TestSendDelayShapesLink pins the slow-link shaping hook: a configured
// per-destination delay defers frames toward that peer without touching
// other links.
func TestSendDelayShapesLink(t *testing.T) {
	a, err := tcpnet.Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := tcpnet.Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.Connect(map[wire.NodeID]string{1: b.Addr(), 2: c.Addr()})

	const shaped = 300 * time.Millisecond
	a.SetSendDelay(1, shaped)

	slow := make(chan time.Time, 1)
	fast := make(chan time.Time, 1)
	b.SetHandler(func(src wire.NodeID, payload []byte) { slow <- time.Now() })
	c.SetHandler(func(src wire.NodeID, payload []byte) { fast <- time.Now() })

	start := time.Now()
	a.Send(1, []byte("shaped"))
	a.Send(2, []byte("unshaped"))

	select {
	case at := <-fast:
		if d := at.Sub(start); d > shaped {
			t.Fatalf("unshaped link took %v, shaping leaked across destinations", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unshaped frame never arrived")
	}
	select {
	case at := <-slow:
		if d := at.Sub(start); d < shaped {
			t.Fatalf("shaped link delivered after %v, want >= %v", d, shaped)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shaped frame never arrived")
	}
}

// restartableNode bundles everything one live node needs so the test can
// crash and relaunch it with identical deterministic key material.
type restartableNode struct {
	port  *tcpnet.Port
	encl  *enclave.Enclave
	peer  *runtime.Peer
	probe *finishProbe
}

// launchNode builds node id's full stack on addr. The enclave draws all
// randomness from a seed derived exactly like cmd/p2pnode's demo key
// exchange, so a relaunch re-derives the identical X25519 keypair and
// hence identical pairwise session keys (PR 3's restart lifecycle, here
// over real TCP).
func launchNode(t *testing.T, id wire.NodeID, addr string, n, byz int, delta time.Duration,
	seed int64, program []byte, roster runtime.Roster, seqs []uint64) *restartableNode {
	t.Helper()
	port, err := tcpnet.Listen(id, addr)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(seed ^ int64(id+1)*0x9E3779B9))
	encl, err := enclave.Launch(program, id, rng, enclave.NewWallClock())
	if err != nil {
		port.Close()
		t.Fatal(err)
	}
	peer, err := runtime.NewPeer(encl, port, roster, runtime.Config{N: n, T: byz, Delta: delta})
	if err != nil {
		port.Close()
		t.Fatal(err)
	}
	if err := peer.InstallSeqs(seqs); err != nil {
		port.Close()
		t.Fatal(err)
	}
	return &restartableNode{port: port, encl: encl, peer: peer}
}

// TestERBEpochAfterRestartOverTCP is the end-to-end reconnect test: five
// enclaved peers over real TCP run one ERB epoch, node 4 crashes (its
// process state, port and connections vanish), and a relaunched node 4 —
// same deterministic identity, same address, re-derived session keys —
// joins epoch 2. Epoch 2 must terminate with every node, including the
// restarted one, accepting the initiator's value: the survivors' cached
// connections to the old incarnation broke and were re-dialed, and the
// restarted enclave's re-derived keys opened the survivors' sealed
// frames without any channel re-establishment.
func TestERBEpochAfterRestartOverTCP(t *testing.T) {
	const n, byz = 5, 2
	const delta = 200 * time.Millisecond
	const seed = int64(99)
	program := []byte("erb-restart-over-tcp-v1")

	// Deterministic roster: every enclave's quote derives from the seed,
	// exactly like cmd/p2pnode's shared-secret demo attestation.
	service, err := enclave.NewAttestationService(mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	roster := runtime.Roster{
		Quotes:      make([]enclave.Quote, n),
		ServiceKey:  service.VerifyKey(),
		Measurement: measurement(program),
	}
	initialSeqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		rng := mrand.New(mrand.NewSource(seed ^ int64(i+1)*0x9E3779B9))
		e, lerr := enclave.Launch(program, wire.NodeID(i), rng, enclave.NewWallClock())
		if lerr != nil {
			t.Fatal(lerr)
		}
		roster.Quotes[i] = service.Attest(e)
		s, serr := e.RandomSeq()
		if serr != nil {
			t.Fatal(serr)
		}
		initialSeqs[i] = s
	}

	nodes := make([]*restartableNode, n)
	addrs := make(map[wire.NodeID]string, n)
	for i := 0; i < n; i++ {
		nodes[i] = launchNode(t, wire.NodeID(i), "127.0.0.1:0", n, byz, delta, seed, program, roster, initialSeqs)
		addrs[wire.NodeID(i)] = nodes[i].port.Addr()
	}
	defer func() {
		for _, nd := range nodes {
			nd.port.Close()
		}
	}()
	for _, nd := range nodes {
		nd.port.Connect(addrs)
	}

	runEpoch := func(epoch int, participants []*restartableNode, value wire.Value) {
		t.Helper()
		for i, nd := range participants {
			if nd == nil {
				continue
			}
			eng, eerr := erb.NewEngine(nd.peer, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
			if eerr != nil {
				t.Fatal(eerr)
			}
			if i == 0 {
				eng.SetInput(value)
			}
			nd.probe = &finishProbe{eng: eng, done: make(chan struct{})}
			peer, probe := nd.peer, nd.probe
			nd.port.After(0, func() { peer.Start(probe, probe.eng.Rounds()) })
		}
		deadline := time.After(time.Duration(byz+4) * 2 * delta * 4)
		for i, nd := range participants {
			if nd == nil {
				continue
			}
			select {
			case <-nd.probe.done:
			case <-deadline:
				t.Fatalf("epoch %d: peer %d did not finish", epoch, i)
			}
			res, ok := nd.probe.eng.Result(0)
			if !ok || !res.Accepted || res.Value != value {
				t.Fatalf("epoch %d: peer %d result %+v ok=%v", epoch, i, res, ok)
			}
		}
	}

	// Epoch 1: everybody up.
	runEpoch(1, nodes, wire.Value{0xE0, 0x01})

	// Node 4 crashes: the whole process state goes away.
	crashed := nodes[n-1]
	crashedAddr := crashed.port.Addr()
	crashed.port.Close()
	nodes[n-1] = nil

	// Survivors advance to the next epoch.
	for _, nd := range nodes {
		if nd != nil {
			peer := nd.peer
			nd.port.After(0, func() { peer.BumpSeqs() })
		}
	}

	// Node 4 restarts on the same address with the same identity: the
	// deterministic relaunch replays the identical key material, and the
	// bumped sequence table is recomputed, not copied (one epoch passed).
	bumped := make([]uint64, n)
	for i, s := range initialSeqs {
		bumped[i] = s + 1
	}
	restarted := launchNode(t, wire.NodeID(n-1), crashedAddr, n, byz, delta, seed, program, roster, bumped)
	restarted.peer.AlignInstance(1) // one epoch passed; survivors bumped their instance counter once
	restarted.port.Connect(addrs)
	nodes[n-1] = restarted

	// Give every side's broken connections a moment to be detected and
	// then run epoch 2 across all five nodes, restarted one included.
	time.Sleep(2 * redialBackoffForTest())
	runEpoch(2, nodes, wire.Value{0xE0, 0x02})
}

// redialBackoffForTest mirrors tcpnet's internal backoff constant; the
// sleep above only needs the right order of magnitude.
func redialBackoffForTest() time.Duration { return 200 * time.Millisecond }
