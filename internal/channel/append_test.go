package channel

import (
	"bytes"
	"math/rand"
	"testing"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/xcrypto"
)

// pairedEnclaves launches two enclaves running the test program, for
// benchmarks that build links directly.
func pairedEnclaves(tb testing.TB) [2]*enclave.Enclave {
	tb.Helper()
	clock := &fakeClock{}
	a, err := enclave.Launch(program, 0, rand.New(rand.NewSource(1)), clock)
	if err != nil {
		tb.Fatal(err)
	}
	b, err := enclave.Launch(program, 1, rand.New(rand.NewSource(2)), clock)
	if err != nil {
		tb.Fatal(err)
	}
	return [2]*enclave.Enclave{a, b}
}

// TestSealAppendByteIdenticalToSeal pins the Sealer interface contract:
// for the same sealer state, SealAppend appends exactly the bytes Seal
// returns. The ModelSealer is stateful (a counter), so each path gets a
// fresh instance; the RealSealer draws a random nonce, so its
// byte-identity is pinned at the xcrypto layer with a seeded rng
// (TestLinkCipherSealByteIdentical) and its envelopes are checked
// semantically here.
func TestSealAppendByteIdenticalToSeal(t *testing.T) {
	keys := xcrypto.SessionKeys{Enc: [32]byte{1}, Mac: [32]byte{2}}
	viaSeal, viaAppend := NewModelSealer(), NewModelSealer()
	var dst []byte
	for i := 0; i < 5; i++ {
		msg := testMsg(0)
		msg.Seq = uint64(i)
		enc, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		want, err := viaSeal.Seal(keys, enc)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		if got, err = viaAppend.SealAppend(keys, dst[:0], enc); err != nil {
			t.Fatal(err)
		}
		dst = got // reuse the scratch across iterations, like the runtime
		if !bytes.Equal(want, got) {
			t.Fatalf("msg %d: SealAppend differs from Seal", i)
		}
	}
}

// TestOpenAppendMatchesOpen proves Open and OpenAppend agree on both the
// accept/reject decision and the recovered plaintext, for both sealers,
// including with a reused scratch buffer.
func TestOpenAppendMatchesOpen(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			var scratch []byte
			for i := 0; i < 4; i++ {
				msg := testMsg(0)
				msg.Seq = uint64(i)
				env, err := la.Seal(msg)
				if err != nil {
					t.Fatal(err)
				}
				viaOpen, err := lb.sealer.Open(lb.keys, env)
				if err != nil {
					t.Fatal(err)
				}
				viaAppend, err := lb.sealer.OpenAppend(lb.keys, scratch[:0], env)
				if err != nil {
					t.Fatal(err)
				}
				scratch = viaAppend
				if !bytes.Equal(viaOpen, viaAppend) {
					t.Fatalf("msg %d: OpenAppend plaintext differs from Open", i)
				}
				// Every single-byte corruption is rejected by both paths.
				for _, pos := range []int{0, len(env) / 2, len(env) - 1} {
					bad := append([]byte(nil), env...)
					bad[pos] ^= 0x08
					_, errOpen := lb.sealer.Open(lb.keys, bad)
					_, errAppend := lb.sealer.OpenAppend(lb.keys, nil, bad)
					if (errOpen == nil) != (errAppend == nil) {
						t.Fatalf("byte %d: Open and OpenAppend disagree", pos)
					}
					if errAppend == nil {
						t.Fatalf("byte %d: corruption accepted", pos)
					}
				}
			}
		})
	}
}

// TestSealEncodedAppendByteIdentical extends the encode-once equivalence
// to the append path: SealEncodedAppend(dst, enc) appends exactly the
// envelope Seal(msg) produces for the same sealer state.
func TestSealEncodedAppendByteIdentical(t *testing.T) {
	la1, _ := pairedLinks(t, func() Sealer { return NewModelSealer() })
	la2, _ := pairedLinks(t, func() Sealer { return NewModelSealer() })
	var dst []byte
	for i := 0; i < 5; i++ {
		msg := testMsg(0)
		msg.Seq = uint64(i)
		want, err := la1.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := la2.SealEncodedAppend(dst[:0], enc)
		if err != nil {
			t.Fatal(err)
		}
		dst = got
		if !bytes.Equal(want, got) {
			t.Fatalf("msg %d: SealEncodedAppend differs from Seal", i)
		}
	}
}

// TestOpenEncodedAppendRoundTrip drives the full append hot path for
// both sealers: seal into a reused envelope buffer, open into a reused
// scratch, and check message, plaintext and sender enforcement.
func TestOpenEncodedAppendRoundTrip(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			var env, scratch []byte
			for i := 0; i < 4; i++ {
				msg := testMsg(0)
				msg.Seq = uint64(i)
				enc, err := msg.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if env, err = la.SealEncodedAppend(env[:0], enc); err != nil {
					t.Fatal(err)
				}
				got, plaintext, err := lb.OpenEncodedAppend(scratch[:0], env)
				if err != nil {
					t.Fatal(err)
				}
				scratch = plaintext
				if got.String() != msg.String() || got.Value != msg.Value {
					t.Fatalf("round trip mismatch: %v vs %v", got, msg)
				}
				if !bytes.Equal(plaintext, enc) {
					t.Fatal("OpenEncodedAppend plaintext differs from the sealed encoding")
				}
			}
			// Sender mismatch and truncation still reject.
			msg := testMsg(5)
			enc, err := msg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			env, err = la.SealEncodedAppend(nil, enc)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := lb.OpenEncodedAppend(nil, env); err != ErrSenderMismatch {
				t.Fatalf("got %v, want ErrSenderMismatch", err)
			}
			if _, _, err := lb.OpenEncodedAppend(nil, env[:10]); err == nil {
				t.Fatal("accepted truncated envelope")
			}
		})
	}
}

// TestMixedSealAndSealAppendCounter proves the ModelSealer counter is
// shared between the two seal forms: an interleaved sequence matches an
// all-Seal sequence byte for byte.
func TestMixedSealAndSealAppendCounter(t *testing.T) {
	keys := xcrypto.SessionKeys{Enc: [32]byte{9}, Mac: [32]byte{7}}
	reference, mixed := NewModelSealer(), NewModelSealer()
	payload := []byte("counter check")
	for i := 0; i < 6; i++ {
		want, err := reference.Seal(keys, payload)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		if i%2 == 0 {
			got, err = mixed.SealAppend(keys, nil, payload)
		} else {
			got, err = mixed.Seal(keys, payload)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("step %d: mixed Seal/SealAppend diverged from all-Seal", i)
		}
	}
}

// BenchmarkPreparedRealSealOpen measures the prepared AES+HMAC link hot
// path with reused buffers (compare BenchmarkRealSealOpen, the one-shot
// form).
func BenchmarkPreparedRealSealOpen(b *testing.B) {
	a := pairedEnclaves(b)
	la, err := NewLink(a[0], 1, a[1].DHPublic(), RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	lb, err := NewLink(a[1], 0, a[0].DHPublic(), RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	msg := testMsg(0)
	enc, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var env, scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err = la.SealEncodedAppend(env[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
		if _, scratch, err = lb.OpenEncodedAppend(scratch[:0], env); err != nil {
			b.Fatal(err)
		}
	}
}
