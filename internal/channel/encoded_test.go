package channel

import (
	"bytes"
	"testing"
)

// TestSealEncodedByteIdentical pins the encode-once contract: for the same
// sealer state, SealEncoded(msg.Encode()) produces the exact envelope
// Seal(msg) would. The ModelSealer is stateful (a counter), so the two
// paths are compared on separate links built over the same enclave pair —
// both start from a fresh counter.
func TestSealEncodedByteIdentical(t *testing.T) {
	la1, _ := pairedLinks(t, func() Sealer { return NewModelSealer() })
	la2, _ := pairedLinks(t, func() Sealer { return NewModelSealer() })
	for i := 0; i < 5; i++ {
		msg := testMsg(0)
		msg.Seq = uint64(i)
		viaSeal, err := la1.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		viaEncoded, err := la2.SealEncoded(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaSeal, viaEncoded) {
			t.Fatalf("msg %d: Seal and SealEncoded envelopes differ", i)
		}
	}
}

// TestSealEncodedRoundTrip proves the encode-once seal path is accepted by
// the normal receive path for both sealers (the RealSealer draws a random
// nonce, so its envelopes are compared semantically, not byte-wise).
func TestSealEncodedRoundTrip(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			msg := testMsg(0)
			enc, err := msg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			env, err := la.SealEncoded(enc)
			if err != nil {
				t.Fatal(err)
			}
			got, plaintext, err := lb.OpenEncoded(env)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != msg.String() || got.Value != msg.Value {
				t.Fatalf("round trip mismatch: %v vs %v", got, msg)
			}
			if !bytes.Equal(plaintext, enc) {
				t.Fatal("OpenEncoded plaintext differs from the sealed encoding")
			}
		})
	}
}

// TestOpenEncodedRejects mirrors Open's rejections for the new API.
func TestOpenEncodedRejects(t *testing.T) {
	la, _ := pairedLinks(t, func() Sealer { return NewModelSealer() })
	// A link back to self never exists; sealing to lb and opening on la
	// (same direction it was sealed in) must fail the sender check.
	msg := testMsg(0)
	env, err := la.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := la.OpenEncoded(env); err == nil {
		t.Fatal("la accepted an envelope claiming la's own id as sender")
	}
	if _, _, err := la.OpenEncoded(env[:10]); err == nil {
		t.Fatal("accepted truncated envelope")
	}
}
