// Package channel implements the paper's Blinded Peer channel
// (Appendix A, Figure 4): the secure pairwise channel between two enclaves
// that yields properties P2 (message integrity & authenticity) and P3
// (blind-box computation), and — together with the enclave's
// measurement-bound key derivation — the program-binding half of P1.
//
// A Link corresponds to one (sender, receiver) enclave pair after the
// setup phase: it owns the directional session keys derived from the
// Diffie-Hellman exchange and turns wire.Message values into sealed
// envelopes and back. Everything that crosses the trust boundary to the
// untrusted OS is a sealed envelope: the adversary can drop, hold,
// duplicate or corrupt envelopes but cannot read or forge them, which is
// exactly the reduction of Theorem A.2 (byzantine => replay/omit/delay).
//
// Sealing is pluggable via the Sealer interface:
//
//   - RealSealer computes the actual AES-CTR + HMAC-SHA256 composition of
//     the paper and is used in unit tests and the live TCP deployment.
//   - ModelSealer produces envelopes with identical layout and size whose
//     integrity/key binding is checked with a keyed checksum instead of a
//     full MAC. Experiments at N = 2^10 scale use it so the figure sweeps
//     run quickly; the package tests prove both sealers accept and reject
//     exactly the same events, so results are unaffected.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Counters are the channel-layer metric handles, shared by all of a peer's
// links so the registry sees per-node totals. A nil *Counters (no metrics
// registry) costs the hot path exactly one pointer check.
type Counters struct {
	Seals        *telemetry.Counter
	Opens        *telemetry.Counter
	OpenFailures *telemetry.Counter
	SealedBytes  *telemetry.Counter
	OpenedBytes  *telemetry.Counter
}

// NewCounters registers the channel counters in m; nil m yields nil (the
// disabled state).
func NewCounters(m *telemetry.Metrics) *Counters {
	if m == nil {
		return nil
	}
	return &Counters{
		Seals:        m.Counter("channel_seals_total"),
		Opens:        m.Counter("channel_opens_total"),
		OpenFailures: m.Counter("channel_open_failures_total"),
		SealedBytes:  m.Counter("channel_sealed_bytes_total"),
		OpenedBytes:  m.Counter("channel_opened_bytes_total"),
	}
}

// Errors returned when opening envelopes.
var (
	// ErrAuth indicates an envelope that failed authentication: tampered,
	// replayed from a different pair, or produced by a different program.
	ErrAuth = errors.New("channel: envelope authentication failed")
	// ErrSenderMismatch indicates a structurally valid message whose
	// Sender field does not match the link's remote peer. With honest
	// enclaves this cannot happen; it guards protocol invariants.
	ErrSenderMismatch = errors.New("channel: sender does not match link peer")
)

// Sealer converts plaintext to sealed envelopes under session keys.
// Implementations must be deterministic in size: SealedSize(n) bytes for
// an n-byte plaintext.
//
// The append-style variants are the hot path: they write into a
// caller-provided buffer so a warm caller seals and opens without
// allocating. For any sealer state, SealAppend must append exactly the
// bytes Seal would return, and OpenAppend must accept and reject exactly
// the envelopes Open would (pinned by the package equivalence tests).
type Sealer interface {
	// Seal produces the envelope.
	Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error)
	// Open verifies and recovers the plaintext, returning an error for
	// any envelope not produced under keys.
	Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error)
	// SealedSize returns the envelope size for a plaintext length.
	SealedSize(plaintextLen int) int
	// SealAppend appends the envelope for plaintext to dst and returns
	// the extended slice.
	SealAppend(keys xcrypto.SessionKeys, dst, plaintext []byte) ([]byte, error)
	// OpenAppend appends the recovered plaintext to dst and returns the
	// extended slice; dst is untouched when verification fails.
	OpenAppend(keys xcrypto.SessionKeys, dst, sealed []byte) ([]byte, error)
}

// RealSealer performs genuine AES-256-CTR encryption with an HMAC-SHA256
// tag (encrypt-then-MAC), the composition proven secure in Theorem A.1.
type RealSealer struct{}

// Seal implements Sealer.
func (RealSealer) Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error) {
	return xcrypto.Seal(keys, nil, plaintext)
}

// Open implements Sealer.
func (RealSealer) Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error) {
	out, err := xcrypto.Open(keys, sealed)
	if err != nil {
		return nil, ErrAuth
	}
	return out, nil
}

// SealedSize implements Sealer.
func (RealSealer) SealedSize(plaintextLen int) int {
	return xcrypto.SealedSize(plaintextLen)
}

// SealAppend implements Sealer. Links established with a RealSealer do
// not call it — they hold a prepared xcrypto.LinkCipher and skip the
// per-envelope key-schedule rebuild this one-shot form pays.
func (RealSealer) SealAppend(keys xcrypto.SessionKeys, dst, plaintext []byte) ([]byte, error) {
	return xcrypto.SealAppend(keys, nil, dst, plaintext)
}

// OpenAppend implements Sealer.
func (RealSealer) OpenAppend(keys xcrypto.SessionKeys, dst, sealed []byte) ([]byte, error) {
	out, err := xcrypto.OpenAppend(keys, dst, sealed)
	if err != nil {
		return nil, ErrAuth
	}
	return out, nil
}

// ModelSealer is the simulation-mode sealer: identical envelope geometry
// (16-byte header, payload, 32-byte tag), with a keyed 64-bit checksum in
// place of the HMAC and a key fingerprint binding the envelope to the
// session (and therefore to the program measurement mixed into the keys).
// Confidentiality is modelled rather than computed: the payload bytes are
// physically present, but the only code that ever handles envelopes below
// the trust boundary is the adversary package, whose API operates on
// opaque envelopes. A corrupted, cross-pair or wrong-program envelope is
// rejected exactly as the RealSealer would reject it.
type ModelSealer struct {
	counter uint64
}

// NewModelSealer returns a fresh ModelSealer.
func NewModelSealer() *ModelSealer { return &ModelSealer{} }

const (
	modelHeader = 16
	modelTag    = 32
)

// Seal implements Sealer.
func (s *ModelSealer) Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error) {
	dst := make([]byte, 0, modelHeader+len(plaintext)+modelTag)
	return s.SealAppend(keys, dst, plaintext)
}

// SealAppend implements Sealer. The counter is shared with Seal, so mixed
// usage stays byte-identical to an all-Seal sequence.
func (s *ModelSealer) SealAppend(keys xcrypto.SessionKeys, dst, plaintext []byte) ([]byte, error) {
	s.counter++
	start := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, s.counter)
	dst = binary.LittleEndian.AppendUint64(dst, 0) // header padding
	dst = append(dst, plaintext...)
	sum := modelChecksum(keys, dst[start:])
	// Fill the whole 32-byte tag region so flips anywhere in it are
	// detected, as they would be against a real HMAC.
	for i := 0; i < modelTag; i += 8 {
		dst = binary.LittleEndian.AppendUint64(dst, sum)
	}
	return dst, nil
}

// Open implements Sealer.
func (s *ModelSealer) Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error) {
	// Return a copy: envelopes may be aliased by replaying adversaries.
	return s.OpenAppend(keys, nil, sealed)
}

// OpenAppend implements Sealer.
func (s *ModelSealer) OpenAppend(keys xcrypto.SessionKeys, dst, sealed []byte) ([]byte, error) {
	if len(sealed) < modelHeader+modelTag {
		return nil, ErrAuth
	}
	body := sealed[:len(sealed)-modelTag]
	sum := modelChecksum(keys, body)
	tag := sealed[len(body):]
	for i := 0; i < modelTag; i += 8 {
		if binary.LittleEndian.Uint64(tag[i:]) != sum {
			return nil, ErrAuth
		}
	}
	return append(dst, body[modelHeader:]...), nil
}

// SealedSize implements Sealer.
func (s *ModelSealer) SealedSize(plaintextLen int) int {
	return modelHeader + plaintextLen + modelTag
}

// FNV-1a parameters of the model checksum (identical to hash/fnv's
// 64-bit variant; hand-rolled so the MAC-key prefix state can be
// precomputed per link).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold folds data into an FNV-1a state, byte for byte.
func fnvFold(h uint64, data []byte) uint64 {
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// modelChecksum computes the keyed checksum standing in for the HMAC:
// FNV-1a over MAC key || body.
func modelChecksum(keys xcrypto.SessionKeys, body []byte) uint64 {
	return fnvFold(fnvFold(fnvOffset64, keys.Mac[:]), body)
}

// modelCipher is the prepared per-link state of a ModelSealer link — the
// simulation analogue of xcrypto.LinkCipher: the FNV state after folding
// the link's 32-byte MAC key is derived once at link establishment, so
// every envelope checksum starts from the precomputed seed instead of
// re-hashing the key. The envelope counter stays on the shared
// *ModelSealer, so the envelope stream is byte-identical to the generic
// Sealer path (pinned by the package equivalence tests).
type modelCipher struct {
	s       *ModelSealer
	macSeed uint64
}

func (c *modelCipher) sealAppend(dst, plaintext []byte) ([]byte, error) {
	c.s.counter++
	start := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, c.s.counter)
	dst = binary.LittleEndian.AppendUint64(dst, 0) // header padding
	dst = append(dst, plaintext...)
	sum := fnvFold(c.macSeed, dst[start:])
	for i := 0; i < modelTag; i += 8 {
		dst = binary.LittleEndian.AppendUint64(dst, sum)
	}
	return dst, nil
}

func (c *modelCipher) openAppend(dst, sealed []byte) ([]byte, error) {
	if len(sealed) < modelHeader+modelTag {
		return nil, ErrAuth
	}
	body := sealed[:len(sealed)-modelTag]
	sum := fnvFold(c.macSeed, body)
	tag := sealed[len(body):]
	for i := 0; i < modelTag; i += 8 {
		if binary.LittleEndian.Uint64(tag[i:]) != sum {
			return nil, ErrAuth
		}
	}
	return append(dst, body[modelHeader:]...), nil
}

// Link is one direction-agnostic secure channel between the local enclave
// and one remote peer, established during the setup phase.
type Link struct {
	// The dispatch pointers every seal/open touches lead the struct so
	// they share the Link's first cache line: a large topology holds one
	// Link per directed pair, and the per-envelope hot path reads only
	// these three fields.
	//
	// cipher is the prepared per-link cipher state built at link
	// establishment for RealSealer links: the AES key schedule and the
	// HMAC pads are derived once here instead of on every envelope.
	// Stateful (scratch blocks, HMAC state), hence per-link and never
	// shared through the enclave key cache.
	cipher *xcrypto.LinkCipher
	// model is the prepared per-link state for *ModelSealer links (the
	// precomputed MAC-key FNV seed), nil otherwise.
	model *modelCipher
	// ctr, when non-nil, tallies seal/open traffic. Every seal and open
	// funnels through sealAppend/openAppend, so counting there covers all
	// entry points.
	ctr    *Counters
	local  wire.NodeID
	remote wire.NodeID
	keys   xcrypto.SessionKeys
	sealer Sealer
}

// SetCounters attaches metric counters to the link (nil detaches them).
func (l *Link) SetCounters(c *Counters) { l.ctr = c }

// NewLink derives the session keys with the remote enclave's public key
// and returns the established link. It fails if the local enclave has
// halted. For the real AES+HMAC sealer the per-link cipher state is
// prepared here, once, so every later seal and open skips the key
// schedule and HMAC pad derivation.
func NewLink(local *enclave.Enclave, remote wire.NodeID, remotePub [xcrypto.PublicKeySize]byte, sealer Sealer) (*Link, error) {
	if sealer == nil {
		return nil, errors.New("channel: nil sealer")
	}
	keys, err := local.SessionKeys(remotePub)
	if err != nil {
		return nil, fmt.Errorf("channel: link to %d: %w", remote, err)
	}
	l := &Link{local: local.ID(), remote: remote, keys: keys, sealer: sealer}
	if _, ok := sealer.(RealSealer); ok {
		if l.cipher, err = xcrypto.NewLinkCipher(keys); err != nil {
			return nil, fmt.Errorf("channel: link to %d: %w", remote, err)
		}
	}
	if ms, ok := sealer.(*ModelSealer); ok {
		l.model = &modelCipher{s: ms, macSeed: fnvFold(fnvOffset64, keys.Mac[:])}
	}
	return l, nil
}

// sealAppend appends the envelope for plaintext to dst via the prepared
// cipher when the link has one, the sealer otherwise.
func (l *Link) sealAppend(dst, plaintext []byte) ([]byte, error) {
	var out []byte
	var err error
	switch {
	case l.cipher != nil:
		out, err = l.cipher.SealAppend(dst, nil, plaintext)
	case l.model != nil:
		out, err = l.model.sealAppend(dst, plaintext)
	default:
		out, err = l.sealer.SealAppend(l.keys, dst, plaintext)
	}
	if err == nil && l.ctr != nil {
		l.ctr.Seals.Inc()
		l.ctr.SealedBytes.Add(uint64(len(out) - len(dst)))
	}
	return out, err
}

// openAppend appends the verified plaintext of sealed to dst.
func (l *Link) openAppend(dst, sealed []byte) ([]byte, error) {
	var out []byte
	var err error
	switch {
	case l.cipher != nil:
		out, err = l.cipher.OpenAppend(dst, sealed)
		if err != nil {
			err = ErrAuth
		}
	case l.model != nil:
		out, err = l.model.openAppend(dst, sealed)
	default:
		out, err = l.sealer.OpenAppend(l.keys, dst, sealed)
	}
	if l.ctr != nil {
		if err != nil {
			l.ctr.OpenFailures.Inc()
		} else {
			l.ctr.Opens.Inc()
			l.ctr.OpenedBytes.Add(uint64(len(out) - len(dst)))
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Remote returns the peer on the far side of the link.
func (l *Link) Remote() wire.NodeID { return l.remote }

// Seal encodes and seals a protocol message for the remote peer.
func (l *Link) Seal(msg *wire.Message) ([]byte, error) {
	plaintext, err := msg.Encode()
	if err != nil {
		return nil, fmt.Errorf("channel: encode: %w", err)
	}
	return l.SealEncodedAppend(nil, plaintext)
}

// SealEncoded seals an already-encoded message for the remote peer. It is
// the multicast hot path: a message sent to N-1 destinations is encoded
// once by the runtime and sealed per link, instead of being re-encoded
// inside every Seal. The envelope is byte-identical to Seal(msg) for the
// same sealer state (proven by the package's equivalence tests).
func (l *Link) SealEncoded(encoded []byte) ([]byte, error) {
	return l.SealEncodedAppend(nil, encoded)
}

// SealEncodedAppend is SealEncoded appending the envelope to dst. It
// pre-grows dst to the exact envelope size, so sealing into a nil dst
// costs one exactly-sized allocation and sealing into a warm buffer
// costs none; the envelope bytes are identical to SealEncoded for the
// same sealer state. The runtime seals every envelope into one reused
// per-peer scratch buffer — the Transport.Send contract makes the
// payload valid only during the call, and transports that keep
// envelopes (queues, adversarial holds) copy them.
func (l *Link) SealEncodedAppend(dst, encoded []byte) ([]byte, error) {
	if need := l.sealer.SealedSize(len(encoded)); cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	return l.sealAppend(dst, encoded)
}

// SealBatchAppend seals a wire batch container (wire.AppendBatchEntry)
// for the remote peer, appending the envelope to dst. The container is
// opaque plaintext to the channel, so this is SealEncodedAppend under a
// name marking the coalesced-outbox entry point: one seal pass covers
// every message in the batch.
func (l *Link) SealBatchAppend(dst, batch []byte) ([]byte, error) {
	return l.SealEncodedAppend(dst, batch)
}

// OpenRawAppend verifies and decrypts an envelope without interpreting
// the plaintext, appending it to dst. The runtime's receive path opens
// raw first, then dispatches on the plaintext's first byte: a batch
// container is unbatched entry by entry, a bare message is decoded
// directly — with the per-message decode and sender checks applied by
// the caller either way (wire.Decode plus a Sender == Remote() check,
// exactly what OpenEncodedAppend enforces).
func (l *Link) OpenRawAppend(dst, sealed []byte) ([]byte, error) {
	return l.openAppend(dst, sealed)
}

// Open verifies, decrypts and decodes an envelope received from the remote
// peer. Any failure means the envelope must be treated as an omission
// (Theorem A.2, step 1).
func (l *Link) Open(sealed []byte) (*wire.Message, error) {
	msg, _, err := l.OpenEncoded(sealed)
	return msg, err
}

// OpenEncoded is Open returning the decoded message together with its
// encoded plaintext. The receive path uses the plaintext to compute the
// ACK digest H(val) directly, instead of re-encoding the message it just
// decoded.
func (l *Link) OpenEncoded(sealed []byte) (*wire.Message, []byte, error) {
	return l.OpenEncodedAppend(nil, sealed)
}

// OpenEncodedAppend is OpenEncoded decrypting into dst: the returned
// plaintext is dst extended by the envelope's payload bytes. The receive
// hot path passes a per-peer scratch buffer (sliced to length 0), so a
// warm receive verifies, decrypts and digests without allocating the
// plaintext. The returned plaintext aliases dst's backing array and is
// only valid until the buffer's next use; the decoded message owns no
// part of it.
func (l *Link) OpenEncodedAppend(dst, sealed []byte) (*wire.Message, []byte, error) {
	plaintext, err := l.openAppend(dst, sealed)
	if err != nil {
		return nil, nil, err
	}
	msg, err := wire.Decode(plaintext[len(dst):])
	if err != nil {
		return nil, nil, fmt.Errorf("channel: decode: %w", err)
	}
	if msg.Sender != l.remote {
		return nil, nil, ErrSenderMismatch
	}
	return msg, plaintext, nil
}

// SealedMessageSize returns the on-wire envelope size for a message,
// letting callers budget traffic without sealing.
func (l *Link) SealedMessageSize(msg *wire.Message) int {
	return l.sealer.SealedSize(msg.EncodedSize())
}

// FrameTag returns the link-unique identifier of a sealed envelope: the
// first eight header bytes, which both sealers fill with per-envelope
// material (the ModelSealer's strictly increasing counter, the
// RealSealer's random AES-CTR nonce prefix). Sender and receiver read
// the same bytes off the same envelope, so the tag lets an
// acknowledgment name a whole sealed frame without hashing it — content
// binding is inherited from the envelope's own authentication (P2): a
// receiver can only have opened the exact bytes the tag came from.
// Counter tags never repeat on a link; random nonce prefixes collide
// with probability 2^-64 per frame pair, which downstream users accept
// (a collision merely merges two ACK credits within one round).
func FrameTag(sealed []byte) uint64 {
	if len(sealed) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(sealed)
}
