// Package channel implements the paper's Blinded Peer channel
// (Appendix A, Figure 4): the secure pairwise channel between two enclaves
// that yields properties P2 (message integrity & authenticity) and P3
// (blind-box computation), and — together with the enclave's
// measurement-bound key derivation — the program-binding half of P1.
//
// A Link corresponds to one (sender, receiver) enclave pair after the
// setup phase: it owns the directional session keys derived from the
// Diffie-Hellman exchange and turns wire.Message values into sealed
// envelopes and back. Everything that crosses the trust boundary to the
// untrusted OS is a sealed envelope: the adversary can drop, hold,
// duplicate or corrupt envelopes but cannot read or forge them, which is
// exactly the reduction of Theorem A.2 (byzantine => replay/omit/delay).
//
// Sealing is pluggable via the Sealer interface:
//
//   - RealSealer computes the actual AES-CTR + HMAC-SHA256 composition of
//     the paper and is used in unit tests and the live TCP deployment.
//   - ModelSealer produces envelopes with identical layout and size whose
//     integrity/key binding is checked with a keyed checksum instead of a
//     full MAC. Experiments at N = 2^10 scale use it so the figure sweeps
//     run quickly; the package tests prove both sealers accept and reject
//     exactly the same events, so results are unaffected.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Errors returned when opening envelopes.
var (
	// ErrAuth indicates an envelope that failed authentication: tampered,
	// replayed from a different pair, or produced by a different program.
	ErrAuth = errors.New("channel: envelope authentication failed")
	// ErrSenderMismatch indicates a structurally valid message whose
	// Sender field does not match the link's remote peer. With honest
	// enclaves this cannot happen; it guards protocol invariants.
	ErrSenderMismatch = errors.New("channel: sender does not match link peer")
)

// Sealer converts plaintext to sealed envelopes under session keys.
// Implementations must be deterministic in size: SealedSize(n) bytes for
// an n-byte plaintext.
type Sealer interface {
	// Seal produces the envelope.
	Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error)
	// Open verifies and recovers the plaintext, returning an error for
	// any envelope not produced under keys.
	Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error)
	// SealedSize returns the envelope size for a plaintext length.
	SealedSize(plaintextLen int) int
}

// RealSealer performs genuine AES-256-CTR encryption with an HMAC-SHA256
// tag (encrypt-then-MAC), the composition proven secure in Theorem A.1.
type RealSealer struct{}

// Seal implements Sealer.
func (RealSealer) Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error) {
	return xcrypto.Seal(keys, nil, plaintext)
}

// Open implements Sealer.
func (RealSealer) Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error) {
	out, err := xcrypto.Open(keys, sealed)
	if err != nil {
		return nil, ErrAuth
	}
	return out, nil
}

// SealedSize implements Sealer.
func (RealSealer) SealedSize(plaintextLen int) int {
	return xcrypto.SealedSize(plaintextLen)
}

// ModelSealer is the simulation-mode sealer: identical envelope geometry
// (16-byte header, payload, 32-byte tag), with a keyed 64-bit checksum in
// place of the HMAC and a key fingerprint binding the envelope to the
// session (and therefore to the program measurement mixed into the keys).
// Confidentiality is modelled rather than computed: the payload bytes are
// physically present, but the only code that ever handles envelopes below
// the trust boundary is the adversary package, whose API operates on
// opaque envelopes. A corrupted, cross-pair or wrong-program envelope is
// rejected exactly as the RealSealer would reject it.
type ModelSealer struct {
	counter uint64
}

// NewModelSealer returns a fresh ModelSealer.
func NewModelSealer() *ModelSealer { return &ModelSealer{} }

const (
	modelHeader = 16
	modelTag    = 32
)

// Seal implements Sealer.
func (s *ModelSealer) Seal(keys xcrypto.SessionKeys, plaintext []byte) ([]byte, error) {
	s.counter++
	out := make([]byte, modelHeader+len(plaintext)+modelTag)
	binary.LittleEndian.PutUint64(out, s.counter)
	copy(out[modelHeader:], plaintext)
	sum := modelChecksum(keys, out[:modelHeader+len(plaintext)])
	tag := out[modelHeader+len(plaintext):]
	// Fill the whole 32-byte tag region so flips anywhere in it are
	// detected, as they would be against a real HMAC.
	for i := 0; i < modelTag; i += 8 {
		binary.LittleEndian.PutUint64(tag[i:], sum)
	}
	return out, nil
}

// Open implements Sealer.
func (s *ModelSealer) Open(keys xcrypto.SessionKeys, sealed []byte) ([]byte, error) {
	if len(sealed) < modelHeader+modelTag {
		return nil, ErrAuth
	}
	body := sealed[:len(sealed)-modelTag]
	sum := modelChecksum(keys, body)
	tag := sealed[len(body):]
	for i := 0; i < modelTag; i += 8 {
		if binary.LittleEndian.Uint64(tag[i:]) != sum {
			return nil, ErrAuth
		}
	}
	// Return a copy: envelopes may be aliased by replaying adversaries.
	return append([]byte(nil), body[modelHeader:]...), nil
}

// SealedSize implements Sealer.
func (s *ModelSealer) SealedSize(plaintextLen int) int {
	return modelHeader + plaintextLen + modelTag
}

// modelChecksum computes the keyed checksum standing in for the HMAC.
func modelChecksum(keys xcrypto.SessionKeys, body []byte) uint64 {
	h := fnv.New64a()
	h.Write(keys.Mac[:])
	h.Write(body)
	return h.Sum64()
}

// Link is one direction-agnostic secure channel between the local enclave
// and one remote peer, established during the setup phase.
type Link struct {
	local  wire.NodeID
	remote wire.NodeID
	keys   xcrypto.SessionKeys
	sealer Sealer
}

// NewLink derives the session keys with the remote enclave's public key
// and returns the established link. It fails if the local enclave has
// halted.
func NewLink(local *enclave.Enclave, remote wire.NodeID, remotePub [xcrypto.PublicKeySize]byte, sealer Sealer) (*Link, error) {
	if sealer == nil {
		return nil, errors.New("channel: nil sealer")
	}
	keys, err := local.SessionKeys(remotePub)
	if err != nil {
		return nil, fmt.Errorf("channel: link to %d: %w", remote, err)
	}
	return &Link{local: local.ID(), remote: remote, keys: keys, sealer: sealer}, nil
}

// Remote returns the peer on the far side of the link.
func (l *Link) Remote() wire.NodeID { return l.remote }

// Seal encodes and seals a protocol message for the remote peer.
func (l *Link) Seal(msg *wire.Message) ([]byte, error) {
	plaintext, err := msg.Encode()
	if err != nil {
		return nil, fmt.Errorf("channel: encode: %w", err)
	}
	return l.sealer.Seal(l.keys, plaintext)
}

// SealEncoded seals an already-encoded message for the remote peer. It is
// the multicast hot path: a message sent to N-1 destinations is encoded
// once by the runtime and sealed per link, instead of being re-encoded
// inside every Seal. The envelope is byte-identical to Seal(msg) for the
// same sealer state (proven by the package's equivalence tests).
func (l *Link) SealEncoded(encoded []byte) ([]byte, error) {
	return l.sealer.Seal(l.keys, encoded)
}

// Open verifies, decrypts and decodes an envelope received from the remote
// peer. Any failure means the envelope must be treated as an omission
// (Theorem A.2, step 1).
func (l *Link) Open(sealed []byte) (*wire.Message, error) {
	msg, _, err := l.OpenEncoded(sealed)
	return msg, err
}

// OpenEncoded is Open returning the decoded message together with its
// encoded plaintext. The receive path uses the plaintext to compute the
// ACK digest H(val) directly, instead of re-encoding the message it just
// decoded.
func (l *Link) OpenEncoded(sealed []byte) (*wire.Message, []byte, error) {
	plaintext, err := l.sealer.Open(l.keys, sealed)
	if err != nil {
		return nil, nil, err
	}
	msg, err := wire.Decode(plaintext)
	if err != nil {
		return nil, nil, fmt.Errorf("channel: decode: %w", err)
	}
	if msg.Sender != l.remote {
		return nil, nil, ErrSenderMismatch
	}
	return msg, plaintext, nil
}

// SealedMessageSize returns the on-wire envelope size for a message,
// letting callers budget traffic without sealing.
func (l *Link) SealedMessageSize(msg *wire.Message) int {
	return l.sealer.SealedSize(msg.EncodedSize())
}
