package channel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

var program = []byte("erb-v1")

func launch(t *testing.T, id wire.NodeID, seed int64, prog []byte) *enclave.Enclave {
	t.Helper()
	e, err := enclave.Launch(prog, id, rand.New(rand.NewSource(seed)), &fakeClock{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return e
}

func pairedLinks(t *testing.T, sealer func() Sealer) (*Link, *Link) {
	t.Helper()
	a := launch(t, 0, 1, program)
	b := launch(t, 1, 2, program)
	la, err := NewLink(a, 1, b.DHPublic(), sealer())
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLink(b, 0, a.DHPublic(), sealer())
	if err != nil {
		t.Fatal(err)
	}
	return la, lb
}

func testMsg(sender wire.NodeID) *wire.Message {
	return &wire.Message{
		Type: wire.TypeInit, Sender: sender, Initiator: sender,
		Seq: 7, Round: 1, HasValue: true, Value: wire.Value{0xAA},
	}
}

// sealers lists both Sealer implementations; every behavioural test runs
// against both to prove protocol-equivalence of the model.
var sealers = []struct {
	name string
	mk   func() Sealer
}{
	{name: "real", mk: func() Sealer { return RealSealer{} }},
	{name: "model", mk: func() Sealer { return NewModelSealer() }},
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			msg := testMsg(0)
			env, err := la.Seal(msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(env) != la.SealedMessageSize(msg) {
				t.Fatalf("envelope size %d, want %d", len(env), la.SealedMessageSize(msg))
			}
			got, err := lb.Open(env)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != msg.String() || got.Value != msg.Value {
				t.Fatalf("round trip mismatch: %v vs %v", got, msg)
			}
		})
	}
}

func TestEnvelopeSizesIdenticalAcrossSealers(t *testing.T) {
	// The traffic experiments rely on ModelSealer producing byte-identical
	// sizes to RealSealer.
	msg := testMsg(0)
	n := msg.EncodedSize()
	real, model := RealSealer{}.SealedSize(n), NewModelSealer().SealedSize(n)
	if real != model {
		t.Fatalf("sealed sizes differ: real=%d model=%d", real, model)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			env, err := la.Seal(testMsg(0))
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range []int{0, len(env) / 2, len(env) - 1} {
				bad := append([]byte(nil), env...)
				bad[i] ^= 0x40
				if _, err := lb.Open(bad); err == nil {
					t.Fatalf("corruption at byte %d accepted", i)
				}
			}
		})
	}
}

func TestOpenRejectsCrossPairEnvelope(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			a := launch(t, 0, 1, program)
			b := launch(t, 1, 2, program)
			c := launch(t, 2, 3, program)
			lab, err := NewLink(a, 1, b.DHPublic(), s.mk())
			if err != nil {
				t.Fatal(err)
			}
			lcb, err := NewLink(c, 1, b.DHPublic(), s.mk())
			if err != nil {
				t.Fatal(err)
			}
			_ = lcb
			// b's link towards c must reject an envelope a sealed for b.
			lbc, err := NewLink(b, 2, c.DHPublic(), s.mk())
			if err != nil {
				t.Fatal(err)
			}
			env, err := lab.Seal(testMsg(0))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := lbc.Open(env); err == nil {
				t.Fatal("cross-pair envelope accepted")
			}
		})
	}
}

func TestOpenRejectsWrongProgram(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			honest := launch(t, 0, 1, program)
			evil := launch(t, 1, 2, []byte("erb-v1-BACKDOORED"))
			lEvil, err := NewLink(evil, 0, honest.DHPublic(), s.mk())
			if err != nil {
				t.Fatal(err)
			}
			lHonest, err := NewLink(honest, 1, evil.DHPublic(), s.mk())
			if err != nil {
				t.Fatal(err)
			}
			env, err := lEvil.Seal(testMsg(1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := lHonest.Open(env); err == nil {
				t.Fatal("envelope from modified program accepted (violates P1)")
			}
		})
	}
}

func TestOpenRejectsSenderMismatch(t *testing.T) {
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			msg := testMsg(5) // claims sender 5, but link peer is 0
			env, err := la.Seal(msg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := lb.Open(env); !errors.Is(err, ErrSenderMismatch) {
				t.Fatalf("got %v, want ErrSenderMismatch", err)
			}
		})
	}
}

func TestReplayedEnvelopeStillOpens(t *testing.T) {
	// The channel itself does not dedupe: replay defence (P6) lives in the
	// protocol's sequence/round checks. A byte-identical replay must open
	// to a byte-identical message, which the protocol then rejects by seq.
	for _, s := range sealers {
		t.Run(s.name, func(t *testing.T) {
			la, lb := pairedLinks(t, s.mk)
			env, err := la.Seal(testMsg(0))
			if err != nil {
				t.Fatal(err)
			}
			m1, err := lb.Open(env)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := lb.Open(append([]byte(nil), env...))
			if err != nil {
				t.Fatal(err)
			}
			if m1.Seq != m2.Seq || m1.Round != m2.Round {
				t.Fatal("replay should decode identically; protocol rejects it by seq")
			}
		})
	}
}

func TestNewLinkHaltedEnclave(t *testing.T) {
	a := launch(t, 0, 1, program)
	b := launch(t, 1, 2, program)
	a.Halt()
	if _, err := NewLink(a, 1, b.DHPublic(), RealSealer{}); err == nil {
		t.Fatal("link from halted enclave established")
	}
}

func TestNewLinkNilSealer(t *testing.T) {
	a := launch(t, 0, 1, program)
	b := launch(t, 1, 2, program)
	if _, err := NewLink(a, 1, b.DHPublic(), nil); err == nil {
		t.Fatal("nil sealer accepted")
	}
}

// Property: for random messages and random single-byte corruptions, the two
// sealers agree on accept/reject (protocol equivalence of the model).
func TestQuickSealerEquivalence(t *testing.T) {
	aR := launch(t, 0, 1, program)
	bR := launch(t, 1, 2, program)
	laReal, err := NewLink(aR, 1, bR.DHPublic(), RealSealer{})
	if err != nil {
		t.Fatal(err)
	}
	lbReal, err := NewLink(bR, 0, aR.DHPublic(), RealSealer{})
	if err != nil {
		t.Fatal(err)
	}
	laModel, err := NewLink(aR, 1, bR.DHPublic(), NewModelSealer())
	if err != nil {
		t.Fatal(err)
	}
	lbModel, err := NewLink(bR, 0, aR.DHPublic(), NewModelSealer())
	if err != nil {
		t.Fatal(err)
	}
	f := func(val wire.Value, seq uint64, round uint32, corrupt bool, pos uint16) bool {
		msg := &wire.Message{
			Type: wire.TypeEcho, Sender: 0, Initiator: 0,
			Seq: seq, Round: round, HasValue: true, Value: val,
		}
		envR, err := laReal.Seal(msg)
		if err != nil {
			return false
		}
		envM, err := laModel.Seal(msg)
		if err != nil {
			return false
		}
		if len(envR) != len(envM) {
			return false
		}
		if corrupt {
			i := int(pos) % len(envR)
			envR[i] ^= 0x10
			envM[i] ^= 0x10
		}
		_, errR := lbReal.Open(envR)
		_, errM := lbModel.Open(envM)
		return (errR == nil) == (errM == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkModelSealOpen(b *testing.B) {
	clock := &fakeClock{}
	a, _ := enclave.Launch(program, 0, rand.New(rand.NewSource(1)), clock)
	c, _ := enclave.Launch(program, 1, rand.New(rand.NewSource(2)), clock)
	la, err := NewLink(a, 1, c.DHPublic(), NewModelSealer())
	if err != nil {
		b.Fatal(err)
	}
	lb, err := NewLink(c, 0, a.DHPublic(), NewModelSealer())
	if err != nil {
		b.Fatal(err)
	}
	msg := testMsg(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := la.Seal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lb.Open(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealSealOpen(b *testing.B) {
	clock := &fakeClock{}
	a, _ := enclave.Launch(program, 0, rand.New(rand.NewSource(1)), clock)
	c, _ := enclave.Launch(program, 1, rand.New(rand.NewSource(2)), clock)
	la, err := NewLink(a, 1, c.DHPublic(), RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	lb, err := NewLink(c, 0, a.DHPublic(), RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	msg := testMsg(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := la.Seal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lb.Open(env); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = xcrypto.KeySize // keep import for documentation references
