package channel

import (
	"bytes"
	"testing"

	"sgxp2p/internal/xcrypto"
)

// fuzzKeys is the fixed session-key pair the sealer fuzzers run under.
func fuzzKeys() xcrypto.SessionKeys {
	var keys xcrypto.SessionKeys
	for i := range keys.Enc {
		keys.Enc[i] = byte(i + 1)
		keys.Mac[i] = byte(0xA5 ^ i)
	}
	return keys
}

// fuzzSealerOpen feeds arbitrary bytes to a sealer's Open and OpenAppend:
// neither may panic, both must agree on accept/reject and plaintext, and
// any accepted input must re-seal to the same size class. The Theorem A.2
// reduction (byzantine => omission) depends on corrupt envelopes being
// *rejected*, never crashing the enclave runtime.
func fuzzSealerOpen(f *testing.F, mk func() Sealer) {
	keys := fuzzKeys()
	seedSealer := mk()
	valid, err := seedSealer.Seal(keys, []byte("fuzz seed payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated tag
	f.Add(valid[:15])           // shorter than any header
	f.Add([]byte{})             // empty
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)                        // bit-flipped body
	f.Add(bytes.Repeat([]byte{0xFF}, 48)) // minimum-size garbage
	sealer := mk()
	f.Fuzz(func(t *testing.T, data []byte) {
		viaOpen, errOpen := sealer.Open(keys, data)
		viaAppend, errAppend := sealer.OpenAppend(keys, nil, data)
		if (errOpen == nil) != (errAppend == nil) {
			t.Fatalf("Open err=%v but OpenAppend err=%v", errOpen, errAppend)
		}
		if errOpen == nil && !bytes.Equal(viaOpen, viaAppend) {
			t.Fatal("Open and OpenAppend recovered different plaintexts")
		}
	})
}

// FuzzRealSealerOpen fuzzes the AES-CTR + HMAC-SHA256 open path on
// truncated, bit-flipped and arbitrary envelopes.
func FuzzRealSealerOpen(f *testing.F) {
	fuzzSealerOpen(f, func() Sealer { return RealSealer{} })
}

// FuzzModelSealerOpen fuzzes the simulation-mode open path the same way.
func FuzzModelSealerOpen(f *testing.F) {
	fuzzSealerOpen(f, func() Sealer { return NewModelSealer() })
}

// FuzzLinkCipherOpen fuzzes the prepared-cipher open path used by
// RealSealer links, cross-checking it against the one-shot xcrypto.Open.
func FuzzLinkCipherOpen(f *testing.F) {
	keys := fuzzKeys()
	lc, err := xcrypto.NewLinkCipher(keys)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := xcrypto.Seal(keys, nil, []byte("prepared seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:xcrypto.NonceSize])
	mutated := append([]byte(nil), valid...)
	mutated[0] ^= 0x80
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		viaOneShot, errOneShot := xcrypto.Open(keys, data)
		viaPrepared, errPrepared := lc.OpenAppend(nil, data)
		if (errOneShot == nil) != (errPrepared == nil) {
			t.Fatalf("Open err=%v but LinkCipher.OpenAppend err=%v", errOneShot, errPrepared)
		}
		if errOneShot == nil && !bytes.Equal(viaOneShot, viaPrepared) {
			t.Fatal("one-shot and prepared opens recovered different plaintexts")
		}
	})
}
