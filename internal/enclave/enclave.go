// Package enclave models the trusted hardware side of a peer: an SGX-like
// enclave providing the paper's four features —
//
//	F1 enclaved execution   (state below the trust boundary is inaccessible
//	                         to the untrusted OS layer),
//	F2 unbiased randomness  (ReadRand backed by a CSPRNG, standing in for
//	                         RDRAND / sgx_read_rand),
//	F3 remote attestation   (quotes over the program measurement signed by
//	                         a simulated attestation service), and
//	F4 trusted elapsed time (a monotonic clock relative to a reference
//	                         point, standing in for sgx_get_trusted_time).
//
// The paper itself evaluated in SGX *simulation mode* with a simulated
// Intel attestation service; this package is the Go analogue. The security
// boundary is enforced structurally: protocol code runs against *Enclave
// and the adversarial OS layer only ever handles sealed envelopes (see
// internal/channel and internal/adversary).
package enclave

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Errors returned by the attestation service and enclave operations.
var (
	// ErrBadQuote indicates an attestation quote whose signature does not
	// verify — a forged or corrupted quote.
	ErrBadQuote = errors.New("enclave: attestation quote signature invalid")
	// ErrWrongMeasurement indicates a verified quote whose program
	// measurement differs from the expected protocol program (attack A1:
	// the remote peer runs a modified program).
	ErrWrongMeasurement = errors.New("enclave: remote enclave runs a different program")
	// ErrHalted indicates an operation on an enclave that has executed
	// Halt (property P4) — its state st is bottom and stays bottom.
	ErrHalted = errors.New("enclave: halted")
)

// Clock is a monotonic time source. In simulation it is the virtual clock;
// in live mode it is the wall clock. The enclave trusts it (F4); the
// untrusted OS cannot influence the value protocol code observes.
type Clock interface {
	// Now returns the elapsed time since an arbitrary fixed origin.
	Now() time.Duration
}

// WallClock is a Clock backed by the real monotonic wall clock, for live
// (TCP) deployments.
type WallClock struct {
	origin time.Time
}

// NewWallClock returns a WallClock anchored at the current instant.
func NewWallClock() *WallClock {
	return &WallClock{origin: time.Now()}
}

// Now implements Clock.
func (c *WallClock) Now() time.Duration { return time.Since(c.origin) }

// Enclave is one peer's trusted execution environment. All fields are
// unexported: the OS layer cannot reach enclave state (F1). An Enclave is
// not safe for concurrent use; in the simulator each node's events run on
// one goroutine, and the TCP runtime serializes access.
type Enclave struct {
	id          wire.NodeID
	measurement xcrypto.Measurement
	rng         io.Reader
	clock       Clock
	launchedAt  time.Duration
	reference   time.Duration
	dh          *xcrypto.KeyPair
	modelKEX    bool
	keyCache    *KeyCache
	halted      bool
}

// pairKey identifies one memoized session-key derivation: the unordered
// public-key pair, the program measurement mixed into the keys, and the
// derivation mode (a model-KEX enclave must never share entries with a
// real-ECDH one).
type pairKey struct {
	pair     xcrypto.PairID
	meas     xcrypto.Measurement
	modelKEX bool
}

// KeyCache memoizes pairwise session keys across the enclaves of one
// deployment. The Diffie-Hellman derivation is symmetric in the pair —
// both the real ECDH and the model KEX order the public keys canonically —
// so when enclave i derives the link keys toward j, enclave j's derivation
// toward i is the identical computation. Sharing one cache across a
// simulated deployment therefore halves the O(N^2) setup-phase key
// agreement work, and makes repeated derivations (dynamic joins, link
// re-establishment) free.
//
// The cache is safe for concurrent use: the deployment builder constructs
// peers on a worker pool. It exists purely as a simulation-side
// optimization — a live SGX node holds only its own private key and cannot
// share derivations — which is why it is opt-in via WithKeyCache and never
// enabled by the TCP runtime.
type KeyCache struct {
	mu sync.Mutex
	m  map[pairKey]xcrypto.SessionKeys
}

// NewKeyCache creates an empty cache, typically one per deployment.
func NewKeyCache() *KeyCache {
	return &KeyCache{m: make(map[pairKey]xcrypto.SessionKeys)}
}

func (c *KeyCache) get(k pairKey) (xcrypto.SessionKeys, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.m[k]
	return keys, ok
}

func (c *KeyCache) put(k pairKey, keys xcrypto.SessionKeys) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = keys
}

// Len returns the number of memoized pair derivations.
func (c *KeyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Option configures Launch.
type Option func(*Enclave)

// WithModelKEX replaces the X25519 computation in SessionKeys with a
// hash-based derivation over the (attested) public keys and the program
// measurement. Both sides still derive equal keys, distinct pairs and
// distinct programs still derive unrelated keys, but no elliptic-curve
// work happens — the simulation-mode analogue of channel.ModelSealer,
// used by large-N experiment sweeps whose setup phase would otherwise be
// dominated by N^2 ECDH operations. The structural guarantee is
// unchanged: only the two enclaves (which alone hold the derivation
// path) ever produce these keys. Never use outside simulations.
func WithModelKEX() Option {
	return func(e *Enclave) { e.modelKEX = true }
}

// WithKeyCache shares a deployment-wide session-key cache with this
// enclave, so the symmetric (i,j)/(j,i) derivations are computed once per
// pair instead of twice. Simulation-only; see KeyCache.
func WithKeyCache(c *KeyCache) Option {
	return func(e *Enclave) { e.keyCache = c }
}

// Launch creates a fresh enclave running the given protocol program. A
// relaunch produces entirely new key material and sequence state, which is
// why (per Section 3.1 / P6) a restarted byzantine enclave cannot rejoin an
// ongoing execution. rng nil means crypto/rand; clock must be non-nil.
func Launch(program []byte, id wire.NodeID, rng io.Reader, clock Clock, opts ...Option) (*Enclave, error) {
	if clock == nil {
		return nil, errors.New("enclave: nil clock")
	}
	if rng == nil {
		rng = rand.Reader
	}
	dh, err := xcrypto.GenerateKeyPair(rng)
	if err != nil {
		return nil, fmt.Errorf("enclave: launch: %w", err)
	}
	now := clock.Now()
	e := &Enclave{
		id:          id,
		measurement: xcrypto.Measure(program),
		rng:         rng,
		clock:       clock,
		launchedAt:  now,
		reference:   now,
		dh:          dh,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// ID returns the peer identifier this enclave was launched for.
func (e *Enclave) ID() wire.NodeID { return e.id }

// Measurement returns H(pi), the measurement of the loaded program.
func (e *Enclave) Measurement() xcrypto.Measurement { return e.measurement }

// DHPublic returns the enclave's Diffie-Hellman public key, generated
// inside the enclave during launch (the setup phase of Section 4.1).
func (e *Enclave) DHPublic() [xcrypto.PublicKeySize]byte { return e.dh.Public() }

// SessionKeys derives the shared directional keys with a remote enclave,
// binding the program measurement into the derivation: two enclaves agree
// on keys only if they run the same program, which is how property P1/P2
// rejects messages from modified programs (Theorem A.2, step 2).
//
// The returned keys are raw material, not prepared cipher state: the
// channel layer hands them to channel.NewLink, which (for the real
// sealer) expands them once into a per-link xcrypto.LinkCipher — AES key
// schedule plus HMAC pad states. That prepared state lives in the Link,
// never in the enclave KeyCache; the cache stores only the 64 key bytes,
// so cache eviction or a fresh derivation can never invalidate a live
// link's cipher.
func (e *Enclave) SessionKeys(remote [xcrypto.PublicKeySize]byte) (xcrypto.SessionKeys, error) {
	if e.halted {
		return xcrypto.SessionKeys{}, ErrHalted
	}
	var ck pairKey
	if e.keyCache != nil {
		ck = pairKey{
			pair:     xcrypto.MakePairID(e.DHPublic(), remote),
			meas:     e.measurement,
			modelKEX: e.modelKEX,
		}
		if keys, ok := e.keyCache.get(ck); ok {
			return keys, nil
		}
	}
	var keys xcrypto.SessionKeys
	if e.modelKEX {
		keys = modelSessionKeys(e.DHPublic(), remote)
	} else {
		var err error
		keys, err = e.dh.DeriveSessionKeys(remote)
		if err != nil {
			return xcrypto.SessionKeys{}, err
		}
	}
	// Mix H(pi) into both keys so that a peer running program pi' != pi
	// derives unrelated keys and every envelope it produces fails to
	// authenticate. The cached value is the bound result: a cache hit is
	// only possible for an enclave with the identical measurement.
	keys.Enc = bindMeasurement(keys.Enc, e.measurement, "enc")
	keys.Mac = bindMeasurement(keys.Mac, e.measurement, "mac")
	if e.keyCache != nil {
		e.keyCache.put(ck, keys)
	}
	return keys, nil
}

func bindMeasurement(key [xcrypto.KeySize]byte, m xcrypto.Measurement, label string) [xcrypto.KeySize]byte {
	return xcrypto.Measure(append(append([]byte("bind/"+label+"/"), key[:]...), m[:]...))
}

// modelSessionKeys derives pairwise-symmetric session keys from the two
// public keys, ordered canonically (see WithModelKEX).
func modelSessionKeys(a, b [xcrypto.PublicKeySize]byte) xcrypto.SessionKeys {
	lo, hi := a, b
	for i := range lo {
		if lo[i] != hi[i] {
			if lo[i] > hi[i] {
				lo, hi = hi, lo
			}
			break
		}
	}
	body := append(append([]byte("model-kex/"), lo[:]...), hi[:]...)
	var keys xcrypto.SessionKeys
	keys.Enc = xcrypto.Measure(append(body, 'e'))
	keys.Mac = xcrypto.Measure(append(append([]byte(nil), body...), 'm'))
	return keys
}

// ReadRand fills buf with unbiased randomness (F2). The OS never observes
// these bytes (property P3): they exist only inside enclave state and
// sealed envelopes.
func (e *Enclave) ReadRand(buf []byte) error {
	if e.halted {
		return ErrHalted
	}
	if _, err := io.ReadFull(e.rng, buf); err != nil {
		return fmt.Errorf("enclave: rdrand: %w", err)
	}
	return nil
}

// RandomValue draws a fresh k-bit protocol value (k = 256).
func (e *Enclave) RandomValue() (wire.Value, error) {
	var v wire.Value
	if err := e.ReadRand(v[:]); err != nil {
		return v, err
	}
	return v, nil
}

// RandomBelow draws a uniform value in [0, n) (used by the optimized ERNG
// cluster sampling).
func (e *Enclave) RandomBelow(n uint64) (uint64, error) {
	if e.halted {
		return 0, ErrHalted
	}
	return xcrypto.RandomBelow(e.rng, n)
}

// RandomSeq draws an initial sequence number for the setup phase.
func (e *Enclave) RandomSeq() (uint64, error) {
	if e.halted {
		return 0, ErrHalted
	}
	return xcrypto.RandomUint64(e.rng)
}

// ElapsedTime returns the trusted elapsed time since the current reference
// point (F4, sgx_get_trusted_time).
func (e *Enclave) ElapsedTime() time.Duration {
	return e.clock.Now() - e.reference
}

// ResetReference moves the trusted-time reference point to now. Protocols
// call it at the synchronized start (assumption S2) so that round numbers
// computed from ElapsedTime agree across honest peers.
func (e *Enclave) ResetReference() {
	e.reference = e.clock.Now()
}

// Round returns the current round under lockstep execution (P5): rounds
// last 2*delta and are numbered from 1.
func (e *Enclave) Round(delta time.Duration) uint32 {
	if delta <= 0 {
		return 1
	}
	return uint32(e.ElapsedTime()/(2*delta)) + 1
}

// Halt executes the halt-on-divergence rule (P4): the enclave sets its
// state to bottom and refuses all further operations, churning the peer
// out of the network.
func (e *Enclave) Halt() { e.halted = true }

// Halted reports whether the enclave has halted.
func (e *Enclave) Halted() bool { return e.halted }

// Quote is a remote-attestation quote: the attestation service's statement
// that an enclave with the given measurement and report data is genuine.
// ReportData binds the enclave's DH public key and node id to the quote so
// the key exchange of the setup phase is authenticated (F3).
type Quote struct {
	NodeID      wire.NodeID
	Measurement xcrypto.Measurement
	DHPublic    [xcrypto.PublicKeySize]byte
	Signature   []byte
}

// quoteBody serializes the signed portion of a quote.
func quoteBody(id wire.NodeID, m xcrypto.Measurement, pub [xcrypto.PublicKeySize]byte) []byte {
	body := make([]byte, 0, 4+len(m)+len(pub))
	body = append(body, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	body = append(body, m[:]...)
	body = append(body, pub[:]...)
	return body
}

// AttestationService is the simulated Intel attestation service (IAS): a
// trusted signer that vouches for genuine enclaves. One instance is shared
// by a deployment; its verification key is baked into every peer.
type AttestationService struct {
	mu  sync.Mutex
	key *xcrypto.SigningKey
}

// NewAttestationService creates a service with a fresh signing key. rng
// nil means crypto/rand.
func NewAttestationService(rng io.Reader) (*AttestationService, error) {
	key, err := xcrypto.GenerateSigningKey(rng)
	if err != nil {
		return nil, fmt.Errorf("enclave: attestation service: %w", err)
	}
	return &AttestationService{key: key}, nil
}

// VerifyKey returns the service's public verification key, distributed to
// all peers out of band (like the IAS root certificate).
func (s *AttestationService) VerifyKey() xcrypto.VerifyKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.key.VerifyKey()
}

// Attest issues a quote for the enclave. In real SGX this is the
// EREPORT/quoting-enclave/IAS flow; the simulation collapses it to one
// signature over (id, measurement, DH public key).
func (s *AttestationService) Attest(e *Enclave) Quote {
	// Read the key under the lock, sign outside it: Ed25519 signing is a
	// pure function of the (immutable) key, and holding the lock across it
	// would serialize the deployment builder's parallel attestation phase.
	s.mu.Lock()
	key := s.key
	s.mu.Unlock()
	q := Quote{
		NodeID:      e.ID(),
		Measurement: e.Measurement(),
		DHPublic:    e.DHPublic(),
	}
	q.Signature = key.Sign(quoteBody(q.NodeID, q.Measurement, q.DHPublic))
	return q
}

// VerifyQuote checks a quote against the service verification key and the
// expected program measurement. It returns ErrBadQuote for signature
// failures and ErrWrongMeasurement when a genuine enclave runs the wrong
// program.
func VerifyQuote(serviceKey xcrypto.VerifyKey, expected xcrypto.Measurement, q Quote) error {
	if err := serviceKey.Verify(quoteBody(q.NodeID, q.Measurement, q.DHPublic), q.Signature); err != nil {
		return ErrBadQuote
	}
	if q.Measurement != expected {
		return ErrWrongMeasurement
	}
	return nil
}
