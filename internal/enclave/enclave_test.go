package enclave

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sgxp2p/internal/wire"
)

// fakeClock is a settable Clock for tests.
type fakeClock struct {
	now time.Duration
}

func (c *fakeClock) Now() time.Duration { return c.now }

var testProgram = []byte("erb-protocol-v1")

func launch(t *testing.T, id wire.NodeID, seed int64, clock Clock) *Enclave {
	t.Helper()
	if clock == nil {
		clock = &fakeClock{}
	}
	e, err := Launch(testProgram, id, rand.New(rand.NewSource(seed)), clock)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return e
}

func TestLaunchRequiresClock(t *testing.T) {
	if _, err := Launch(testProgram, 0, nil, nil); err == nil {
		t.Fatal("Launch with nil clock must fail")
	}
}

func TestSessionKeysAgreeBetweenSameProgram(t *testing.T) {
	a := launch(t, 0, 1, nil)
	b := launch(t, 1, 2, nil)
	ka, err := a.SessionKeys(b.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.SessionKeys(a.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("enclaves running the same program must derive equal session keys")
	}
}

func TestModelKEXEquivalence(t *testing.T) {
	clock := &fakeClock{}
	a, err := Launch(testProgram, 0, rand.New(rand.NewSource(1)), clock, WithModelKEX())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Launch(testProgram, 1, rand.New(rand.NewSource(2)), clock, WithModelKEX())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Launch(testProgram, 2, rand.New(rand.NewSource(3)), clock, WithModelKEX())
	if err != nil {
		t.Fatal(err)
	}
	evil, err := Launch([]byte("evil"), 3, rand.New(rand.NewSource(4)), clock, WithModelKEX())
	if err != nil {
		t.Fatal(err)
	}
	kab, err := a.SessionKeys(b.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	kba, err := b.SessionKeys(a.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if kab != kba {
		t.Fatal("model KEX must be symmetric")
	}
	kac, err := a.SessionKeys(c.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if kab == kac {
		t.Fatal("model KEX must separate pairs")
	}
	kevil, err := evil.SessionKeys(a.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if kevil == kab {
		t.Fatal("model KEX must separate programs")
	}
}

func TestSessionKeysDifferAcrossPrograms(t *testing.T) {
	clock := &fakeClock{}
	a := launch(t, 0, 1, clock)
	evil, err := Launch([]byte("erb-protocol-v1-TAMPERED"), 1, rand.New(rand.NewSource(2)), clock)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.SessionKeys(evil.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	kevil, err := evil.SessionKeys(a.DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if ka == kevil {
		t.Fatal("a tampered program must derive different session keys (Theorem A.2 step 2)")
	}
}

func TestRelaunchProducesFreshKeys(t *testing.T) {
	clock := &fakeClock{}
	e1 := launch(t, 0, 1, clock)
	e2 := launch(t, 0, 99, clock) // relaunch with fresh entropy
	if e1.DHPublic() == e2.DHPublic() {
		t.Fatal("relaunched enclave must not recover previous key material")
	}
}

func TestRandomValueDistinct(t *testing.T) {
	e := launch(t, 0, 1, nil)
	v1, err := e.RandomValue()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.RandomValue()
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Fatal("successive random values must differ")
	}
	if v1.IsZero() {
		t.Fatal("random value is all zero (astronomically unlikely)")
	}
}

func TestElapsedTimeAndRound(t *testing.T) {
	clock := &fakeClock{now: 100 * time.Second}
	e := launch(t, 0, 1, clock)
	if got := e.ElapsedTime(); got != 0 {
		t.Fatalf("ElapsedTime at launch = %v, want 0", got)
	}
	const delta = time.Second
	tests := []struct {
		advance time.Duration
		want    uint32
	}{
		{0, 1},
		{time.Second, 1},
		{2*time.Second - time.Nanosecond, 1},
		{2 * time.Second, 2},
		{5 * time.Second, 3},
		{20 * time.Second, 11},
	}
	for _, tt := range tests {
		clock.now = 100*time.Second + tt.advance
		if got := e.Round(delta); got != tt.want {
			t.Errorf("Round after %v = %d, want %d", tt.advance, got, tt.want)
		}
	}
	if got := e.Round(0); got != 1 {
		t.Errorf("Round with non-positive delta = %d, want 1", got)
	}
}

func TestResetReference(t *testing.T) {
	clock := &fakeClock{}
	e := launch(t, 0, 1, clock)
	clock.now = 50 * time.Second
	e.ResetReference()
	if got := e.ElapsedTime(); got != 0 {
		t.Fatalf("ElapsedTime after reset = %v, want 0", got)
	}
	clock.now = 53 * time.Second
	if got := e.ElapsedTime(); got != 3*time.Second {
		t.Fatalf("ElapsedTime = %v, want 3s", got)
	}
}

func TestHaltIsTerminal(t *testing.T) {
	e := launch(t, 0, 1, nil)
	e.Halt()
	if !e.Halted() {
		t.Fatal("Halted() false after Halt")
	}
	if _, err := e.RandomValue(); err != ErrHalted {
		t.Fatalf("RandomValue after halt: got %v, want ErrHalted", err)
	}
	if _, err := e.RandomBelow(10); err != ErrHalted {
		t.Fatalf("RandomBelow after halt: got %v, want ErrHalted", err)
	}
	if _, err := e.RandomSeq(); err != ErrHalted {
		t.Fatalf("RandomSeq after halt: got %v, want ErrHalted", err)
	}
	if _, err := e.SessionKeys(e.DHPublic()); err != ErrHalted {
		t.Fatalf("SessionKeys after halt: got %v, want ErrHalted", err)
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	svc, err := NewAttestationService(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	e := launch(t, 7, 1, nil)
	q := svc.Attest(e)
	if q.NodeID != 7 {
		t.Fatalf("quote node id = %d, want 7", q.NodeID)
	}
	if err := VerifyQuote(svc.VerifyKey(), e.Measurement(), q); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
}

func TestAttestationRejectsForgery(t *testing.T) {
	svc, err := NewAttestationService(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	e := launch(t, 7, 1, nil)
	q := svc.Attest(e)

	// Tampered signature.
	bad := q
	bad.Signature = append([]byte(nil), q.Signature...)
	bad.Signature[0] ^= 1
	if err := VerifyQuote(svc.VerifyKey(), e.Measurement(), bad); err != ErrBadQuote {
		t.Fatalf("tampered quote: got %v, want ErrBadQuote", err)
	}

	// Swapped DH key (the A2 forgery the setup phase must catch).
	bad = q
	bad.DHPublic[0] ^= 1
	if err := VerifyQuote(svc.VerifyKey(), e.Measurement(), bad); err != ErrBadQuote {
		t.Fatalf("quote with substituted DH key: got %v, want ErrBadQuote", err)
	}

	// Quote from a different attestation service.
	other, err := NewAttestationService(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(other.VerifyKey(), e.Measurement(), q); err != ErrBadQuote {
		t.Fatalf("cross-service quote: got %v, want ErrBadQuote", err)
	}
}

func TestAttestationRejectsWrongProgram(t *testing.T) {
	svc, err := NewAttestationService(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	evil, err := Launch([]byte("malicious"), 3, rand.New(rand.NewSource(2)), &fakeClock{})
	if err != nil {
		t.Fatal(err)
	}
	q := svc.Attest(evil)
	want := launch(t, 0, 1, nil).Measurement()
	if err := VerifyQuote(svc.VerifyKey(), want, q); err != ErrWrongMeasurement {
		t.Fatalf("wrong-program quote: got %v, want ErrWrongMeasurement", err)
	}
}

// Property: RandomBelow stays in range for arbitrary bounds.
func TestQuickRandomBelow(t *testing.T) {
	e := launch(t, 0, 1, nil)
	f := func(n uint32) bool {
		bound := uint64(n%1000) + 1
		v, err := e.RandomBelow(bound)
		return err == nil && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: round numbers are nondecreasing as the clock advances.
func TestQuickRoundMonotone(t *testing.T) {
	clock := &fakeClock{}
	e := launch(t, 0, 1, clock)
	f := func(steps []uint16) bool {
		clock.now = 0
		prev := e.Round(time.Second)
		for _, s := range steps {
			clock.now += time.Duration(s) * time.Millisecond
			r := e.Round(time.Second)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
