// Package overlay relaxes the paper's full-connectivity assumption S5
// the way Appendix G describes: "the direct point-to-point broadcast in
// our protocol can be replaced with a flooding algorithm", provided the
// topology keeps honest nodes connected (a sparse expander or random
// graph).
//
// A Router wraps a node's transport so that every envelope travels only
// along overlay edges: the sender floods a routed frame to its neighbors,
// every router forwards unseen frames onward, and the frame's payload is
// delivered when it reaches its addressee. Envelope contents stay sealed
// end-to-end — intermediate routers (including byzantine ones) forward
// opaque bytes and can at worst drop them, which the connectivity
// assumption absorbs.
//
// The Router implements runtime.Transport, so the protocols run over a
// sparse overlay without a single line of change.
package overlay

import (
	"encoding/binary"
	"errors"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// header layout: src(4) dst(4) seq(8) ttl(2) len(4).
const headerSize = 4 + 4 + 8 + 2 + 4

// maxSeen bounds the deduplication memory; when reached, the older
// generation is discarded (two-generation scheme).
const maxSeen = 1 << 16

// ErrNoNeighbors indicates a router built with an empty adjacency.
var ErrNoNeighbors = errors.New("overlay: node has no neighbors")

// frameKey identifies a frame for deduplication.
type frameKey struct {
	src wire.NodeID
	seq uint64
}

// Router is the flooding overlay layer of one node.
type Router struct {
	id        wire.NodeID
	neighbors []wire.NodeID
	under     runtime.Transport
	handler   func(src wire.NodeID, payload []byte)
	seq       uint64
	seen      map[frameKey]bool
	seenPrev  map[frameKey]bool
	ttl       uint16
	detached  bool

	// Stats counters.
	originated uint64
	forwarded  uint64
	delivered  uint64
	duplicates uint64
}

var _ runtime.Transport = (*Router)(nil)

// Stats reports the router's activity.
type Stats struct {
	Originated uint64 // frames this node created
	Forwarded  uint64 // frames relayed onward
	Delivered  uint64 // frames delivered to the local handler
	Duplicates uint64 // frames dropped by deduplication
}

// NewRouter builds the overlay layer for a node: under is the physical
// transport (a simnet port or TCP port), neighbors its overlay adjacency,
// ttl the forwarding budget (0 defaults to 64 hops).
func NewRouter(id wire.NodeID, neighbors []wire.NodeID, under runtime.Transport, ttl uint16) (*Router, error) {
	if under == nil {
		return nil, errors.New("overlay: nil transport")
	}
	if len(neighbors) == 0 {
		return nil, ErrNoNeighbors
	}
	if ttl == 0 {
		ttl = 64
	}
	adj := make([]wire.NodeID, 0, len(neighbors))
	for _, nb := range neighbors {
		if nb != id {
			adj = append(adj, nb)
		}
	}
	r := &Router{
		id:        id,
		neighbors: adj,
		under:     under,
		seen:      make(map[frameKey]bool),
		seenPrev:  make(map[frameKey]bool),
		ttl:       ttl,
	}
	under.SetHandler(r.receive)
	return r, nil
}

// Neighbors returns the overlay adjacency (copy).
func (r *Router) Neighbors() []wire.NodeID {
	return append([]wire.NodeID(nil), r.neighbors...)
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() Stats {
	return Stats{
		Originated: r.originated,
		Forwarded:  r.forwarded,
		Delivered:  r.delivered,
		Duplicates: r.duplicates,
	}
}

// Send implements runtime.Transport: wrap the payload in a routed frame
// and flood it to the overlay neighbors.
func (r *Router) Send(dst wire.NodeID, payload []byte) {
	if r.detached {
		return
	}
	r.seq++
	frame := encodeFrame(r.id, dst, r.seq, r.ttl, payload)
	r.remember(frameKey{src: r.id, seq: r.seq})
	r.originated++
	r.flood(frame, wire.NoNode)
}

// flood sends a frame to all neighbors except the arrival hop.
func (r *Router) flood(frame []byte, except wire.NodeID) {
	for _, nb := range r.neighbors {
		if nb == except {
			continue
		}
		// Each neighbor gets its own copy: the underlying transport owns
		// the slice after Send.
		r.under.Send(nb, append([]byte(nil), frame...))
	}
}

// receive handles a frame arriving over an overlay edge.
func (r *Router) receive(hop wire.NodeID, data []byte) {
	if r.detached {
		return
	}
	src, dst, seq, ttl, payload, ok := decodeFrame(data)
	if !ok {
		return
	}
	key := frameKey{src: src, seq: seq}
	if r.isSeen(key) {
		r.duplicates++
		return
	}
	r.remember(key)
	if dst == r.id {
		r.delivered++
		if r.handler != nil {
			r.handler(src, payload)
		}
		return
	}
	if ttl <= 1 {
		return
	}
	r.forwarded++
	r.flood(encodeFrame(src, dst, seq, ttl-1, payload), hop)
}

// isSeen checks both deduplication generations.
func (r *Router) isSeen(key frameKey) bool {
	return r.seen[key] || r.seenPrev[key]
}

// remember records a frame key, rotating generations at capacity.
func (r *Router) remember(key frameKey) {
	if len(r.seen) >= maxSeen {
		r.seenPrev = r.seen
		r.seen = make(map[frameKey]bool, maxSeen/2)
	}
	r.seen[key] = true
}

// SetHandler implements runtime.Transport.
func (r *Router) SetHandler(h func(src wire.NodeID, payload []byte)) {
	r.handler = h
}

// Detach implements runtime.Transport: the node leaves the overlay (it
// stops originating, forwarding and delivering).
func (r *Router) Detach() {
	r.detached = true
	r.under.Detach()
}

// After implements runtime.Transport.
func (r *Router) After(d time.Duration, fn func()) { r.under.After(d, fn) }

// Now implements runtime.Transport.
func (r *Router) Now() time.Duration { return r.under.Now() }

// Diameter computes the hop diameter of an overlay described by a
// neighbor function over n nodes (BFS from every node). It returns -1 for
// a disconnected overlay. Callers size the lockstep round bound as
// Delta >= Diameter * linkDelta so flooded envelopes and their
// acknowledgments fit in one round.
func Diameter(neighbors func(id wire.NodeID, n int) []wire.NodeID, n int) int {
	diameter := 0
	dist := make([]int, n)
	queue := make([]wire.NodeID, 0, n)
	for start := 0; start < n; start++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		queue = append(queue[:0], wire.NodeID(start))
		visited := 1
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range neighbors(cur, n) {
				if int(nb) >= n || nb == cur || dist[nb] >= 0 {
					continue
				}
				dist[nb] = dist[cur] + 1
				visited++
				if dist[nb] > diameter {
					diameter = dist[nb]
				}
				queue = append(queue, nb)
			}
		}
		if visited < n {
			return -1
		}
	}
	return diameter
}

// encodeFrame serializes a routed frame.
func encodeFrame(src, dst wire.NodeID, seq uint64, ttl uint16, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(src))
	binary.LittleEndian.PutUint32(out[4:], uint32(dst))
	binary.LittleEndian.PutUint64(out[8:], seq)
	binary.LittleEndian.PutUint16(out[16:], ttl)
	binary.LittleEndian.PutUint32(out[18:], uint32(len(payload)))
	copy(out[headerSize:], payload)
	return out
}

// decodeFrame parses a routed frame.
func decodeFrame(data []byte) (src, dst wire.NodeID, seq uint64, ttl uint16, payload []byte, ok bool) {
	if len(data) < headerSize {
		return 0, 0, 0, 0, nil, false
	}
	src = wire.NodeID(binary.LittleEndian.Uint32(data))
	dst = wire.NodeID(binary.LittleEndian.Uint32(data[4:]))
	seq = binary.LittleEndian.Uint64(data[8:])
	ttl = binary.LittleEndian.Uint16(data[16:])
	n := binary.LittleEndian.Uint32(data[18:])
	if int(n) != len(data)-headerSize {
		return 0, 0, 0, 0, nil, false
	}
	return src, dst, seq, ttl, data[headerSize:], true
}
