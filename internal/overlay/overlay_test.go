package overlay_test

import (
	"testing"
	"testing/quick"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/overlay"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/simnet"
	"sgxp2p/internal/vclock"
	"sgxp2p/internal/wire"
)

// ringNeighbors builds a ring-with-chords adjacency: each node links to
// ring successor/predecessor and a chord at distance 5.
func ringNeighbors(id wire.NodeID, n int) []wire.NodeID {
	i := int(id)
	return []wire.NodeID{
		wire.NodeID((i + 1) % n),
		wire.NodeID((i - 1 + n) % n),
		wire.NodeID((i + 5) % n),
		wire.NodeID((i - 5 + n) % n),
	}
}

// lineNeighbors builds a path topology 0-1-2-...-n-1.
func lineNeighbors(id wire.NodeID, n int) []wire.NodeID {
	var out []wire.NodeID
	if int(id) > 0 {
		out = append(out, id-1)
	}
	if int(id) < n-1 {
		out = append(out, id+1)
	}
	return out
}

func TestDiameter(t *testing.T) {
	if d := overlay.Diameter(lineNeighbors, 5); d != 4 {
		t.Fatalf("line diameter = %d, want 4", d)
	}
	if d := overlay.Diameter(ringNeighbors, 16); d <= 0 || d > 5 {
		t.Fatalf("ring+chords diameter = %d, want small positive", d)
	}
	disconnected := func(id wire.NodeID, n int) []wire.NodeID { return nil }
	if d := overlay.Diameter(disconnected, 3); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}

func TestRouterValidation(t *testing.T) {
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{N: 2, Delta: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := overlay.NewRouter(0, nil, net.Port(0), 0); err != overlay.ErrNoNeighbors {
		t.Fatalf("empty adjacency: %v", err)
	}
	if _, err := overlay.NewRouter(0, []wire.NodeID{1}, nil, 0); err == nil {
		t.Fatal("nil transport accepted")
	}
	// Self-loops are stripped; only a self-loop means no neighbors.
	if _, err := overlay.NewRouter(0, []wire.NodeID{0, 1}, net.Port(0), 0); err != nil {
		t.Fatalf("adjacency with self-loop rejected: %v", err)
	}
}

func TestMultiHopDelivery(t *testing.T) {
	// A 6-node line: a payload from 0 to 5 must flood across 5 hops.
	const n = 6
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{N: n, Delta: 100 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	routers := make([]*overlay.Router, n)
	for i := 0; i < n; i++ {
		r, err := overlay.NewRouter(wire.NodeID(i), lineNeighbors(wire.NodeID(i), n), net.Port(wire.NodeID(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = r
	}
	var got []byte
	var from wire.NodeID
	routers[5].SetHandler(func(src wire.NodeID, payload []byte) {
		from = src
		got = payload
	})
	delivered2 := 0
	routers[2].SetHandler(func(wire.NodeID, []byte) { delivered2++ })
	routers[0].Send(5, []byte("across the line"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "across the line" || from != 0 {
		t.Fatalf("delivery: src=%d payload=%q", from, got)
	}
	if delivered2 != 0 {
		t.Fatal("transit node delivered a frame not addressed to it")
	}
	if routers[2].Stats().Forwarded == 0 {
		t.Fatal("transit node forwarded nothing")
	}
	if routers[0].Stats().Originated != 1 {
		t.Fatalf("origin stats %+v", routers[0].Stats())
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	const n = 6
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{N: n, Delta: 100 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	routers := make([]*overlay.Router, n)
	for i := 0; i < n; i++ {
		// TTL 3: frames can travel at most 3 hops.
		r, err := overlay.NewRouter(wire.NodeID(i), lineNeighbors(wire.NodeID(i), n), net.Port(wire.NodeID(i)), 3)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = r
	}
	delivered := false
	routers[5].SetHandler(func(wire.NodeID, []byte) { delivered = true })
	routers[0].Send(5, []byte("too far"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("frame crossed 5 hops despite TTL 3")
	}
}

func TestDeduplication(t *testing.T) {
	// In a cycle, frames come back around; dedup must stop re-flooding.
	const n = 5
	ring := func(id wire.NodeID, nn int) []wire.NodeID {
		return []wire.NodeID{wire.NodeID((int(id) + 1) % nn), wire.NodeID((int(id) - 1 + nn) % nn)}
	}
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{N: n, Delta: 50 * time.Millisecond, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	routers := make([]*overlay.Router, n)
	for i := 0; i < n; i++ {
		r, err := overlay.NewRouter(wire.NodeID(i), ring(wire.NodeID(i), n), net.Port(wire.NodeID(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = r
	}
	deliveries := 0
	routers[2].SetHandler(func(wire.NodeID, []byte) { deliveries++ })
	routers[0].Send(2, []byte("once"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 {
		t.Fatalf("delivered %d times, want exactly 1", deliveries)
	}
	dups := uint64(0)
	for _, r := range routers {
		dups += r.Stats().Duplicates
	}
	if dups == 0 {
		t.Fatal("a cycle must produce duplicate frames (then drop them)")
	}
}

func TestERBOverSparseOverlay(t *testing.T) {
	// The headline S5 relaxation: a full ERB broadcast over a 16-node
	// ring+chords overlay (diameter ~4) instead of a complete graph.
	const n, byz = 16, 7
	diam := overlay.Diameter(ringNeighbors, n)
	if diam <= 0 {
		t.Fatal("overlay disconnected")
	}
	link := 50 * time.Millisecond
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 71,
		Delta:     time.Duration(diam+1) * link,
		LinkDelta: link,
		Neighbors: ringNeighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*erb.Engine, n)
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	engines[0].SetInput(wire.Value{0x5E})
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		res, ok := eng.Result(0)
		if !ok || !res.Accepted || res.Value != (wire.Value{0x5E}) {
			t.Fatalf("node %d over sparse overlay: %+v ok=%v", i, res, ok)
		}
	}
}

func TestERBOverOverlayWithByzantineRelays(t *testing.T) {
	// Byzantine OSes at the physical layer drop every frame they should
	// forward. The ring+chords overlay keeps the honest subgraph
	// connected, so agreement must survive.
	const n, byz = 16, 3
	diam := overlay.Diameter(ringNeighbors, n)
	link := 50 * time.Millisecond
	d, err := deploy.New(deploy.Options{
		N: n, T: 7, Seed: 72,
		Delta:     time.Duration(2*diam+2) * link,
		LinkDelta: link,
		Neighbors: ringNeighbors,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= byz {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.OmitAll(), int64(id))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*erb.Engine, n)
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{T: 7, ExpectedInitiators: []wire.NodeID{8}})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	engines[8].SetInput(wire.Value{0xB2})
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	var accepted, bottom int
	for i := byz; i < n; i++ {
		res, ok := engines[i].Result(8)
		if !ok {
			if d.Peers[i].Halted() {
				continue
			}
			t.Fatalf("honest node %d undecided", i)
		}
		if res.Accepted {
			if res.Value != (wire.Value{0xB2}) {
				t.Fatalf("node %d accepted wrong value %v", i, res.Value)
			}
			accepted++
		} else {
			bottom++
		}
	}
	if accepted > 0 && bottom > 0 {
		t.Fatalf("agreement violated over byzantine overlay: %d accepted, %d bottom", accepted, bottom)
	}
	if accepted == 0 {
		t.Fatal("no honest node accepted despite connected honest subgraph")
	}
}

// Property: frame encode/decode round-trips through the router's wire
// format (exercised indirectly via a two-node overlay).
func TestQuickPayloadIntegrity(t *testing.T) {
	f := func(payload []byte) bool {
		sim := vclock.New()
		net, err := simnet.New(sim, simnet.Config{N: 2, Delta: 10 * time.Millisecond, Seed: 5})
		if err != nil {
			return false
		}
		a, err := overlay.NewRouter(0, []wire.NodeID{1}, net.Port(0), 0)
		if err != nil {
			return false
		}
		b, err := overlay.NewRouter(1, []wire.NodeID{0}, net.Port(1), 0)
		if err != nil {
			return false
		}
		var got []byte
		ok := false
		b.SetHandler(func(src wire.NodeID, p []byte) {
			got = p
			ok = src == 0
		})
		a.Send(1, append([]byte(nil), payload...))
		if err := sim.Run(); err != nil {
			return false
		}
		if !ok || len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
