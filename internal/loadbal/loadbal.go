// Package loadbal implements the random-load-balancing application of the
// paper's Appendix H: instead of a centralized dispatcher (a single point
// of failure and bias), a committee of nodes uses the common unbiased
// beacon value to assign incoming tasks to workers. Every honest
// committee member computes the identical assignment, and byzantine
// members cannot steer tasks toward or away from any worker because they
// cannot bias the beacon.
package loadbal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxp2p/internal/beacon"
)

// Assignment maps task identifiers to worker indices.
type Assignment map[string]int

// Balancer assigns tasks to workers using beacon randomness.
type Balancer struct {
	src     beacon.Source
	workers int
	round   uint64
}

// New builds a balancer dispatching onto the given number of workers.
func New(src beacon.Source, workers int) (*Balancer, error) {
	if src == nil {
		return nil, errors.New("loadbal: nil beacon source")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("loadbal: need at least one worker, got %d", workers)
	}
	return &Balancer{src: src, workers: workers}, nil
}

// Workers returns the worker count.
func (b *Balancer) Workers() int { return b.workers }

// AssignBatch draws one beacon value and deterministically assigns every
// task in the batch. Identical batches and beacon outputs yield identical
// assignments at every honest node.
func (b *Balancer) AssignBatch(tasks []string) (Assignment, error) {
	v, err := b.src.Next()
	if err != nil {
		return nil, fmt.Errorf("loadbal: beacon: %w", err)
	}
	round := b.round
	b.round++
	out := make(Assignment, len(tasks))
	for _, task := range tasks {
		out[task] = Assign(v[:], round, task, b.workers)
	}
	return out, nil
}

// Assign is the pure assignment function: worker = H(entropy, round,
// task) mod workers. Exposed for offline verification of a dispatcher's
// decisions against the public beacon trace.
func Assign(entropy []byte, round uint64, task string, workers int) int {
	h := sha256.New()
	h.Write([]byte("sgxp2p/loadbal/v1/"))
	h.Write(entropy)
	var rb [8]byte
	binary.LittleEndian.PutUint64(rb[:], round)
	h.Write(rb[:])
	h.Write([]byte(task))
	sum := h.Sum(nil)
	idx := binary.LittleEndian.Uint64(sum[:8])
	return int(idx % uint64(workers))
}

// Spread summarizes an assignment: tasks per worker.
func Spread(a Assignment, workers int) []int {
	counts := make([]int, workers)
	for _, w := range a {
		if w >= 0 && w < workers {
			counts[w]++
		}
	}
	return counts
}
