package loadbal_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sgxp2p/internal/loadbal"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

type stubSource struct {
	rng *rand.Rand
	err error
}

func (s *stubSource) Next() (wire.Value, error) {
	if s.err != nil {
		return wire.Value{}, s.err
	}
	var v wire.Value
	s.rng.Read(v[:])
	return v, nil
}

func taskNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("task-%04d", i)
	}
	return out
}

func TestAssignBatchDeterministicAcrossNodes(t *testing.T) {
	// Two "nodes" observing the same beacon assign identically.
	b1, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(7))}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(7))}, 10)
	if err != nil {
		t.Fatal(err)
	}
	tasks := taskNames(100)
	a1, err := b1.AssignBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b2.AssignBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if a1[task] != a2[task] {
			t.Fatalf("task %s assigned to %d vs %d", task, a1[task], a2[task])
		}
	}
}

func TestAssignmentsInRange(t *testing.T) {
	b, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(8))}, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.AssignBatch(taskNames(500))
	if err != nil {
		t.Fatal(err)
	}
	for task, w := range a {
		if w < 0 || w >= 7 {
			t.Fatalf("task %s assigned out-of-range worker %d", task, w)
		}
	}
}

func TestSpreadRoughlyUniform(t *testing.T) {
	const workers = 16
	b, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(9))}, workers)
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.AssignBatch(taskNames(8000))
	if err != nil {
		t.Fatal(err)
	}
	counts := loadbal.Spread(a, workers)
	chi, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	// 15 degrees of freedom; 99.9th percentile ~ 37.7. Generous margin.
	if chi > 45 {
		t.Fatalf("assignment spread chi-square %.1f too high: %v", chi, counts)
	}
}

func TestRoundsProduceDifferentAssignments(t *testing.T) {
	b, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(10))}, 8)
	if err != nil {
		t.Fatal(err)
	}
	tasks := taskNames(64)
	a1, err := b.AssignBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.AssignBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, task := range tasks {
		if a1[task] == a2[task] {
			same++
		}
	}
	if same == len(tasks) {
		t.Fatal("two rounds produced identical assignments")
	}
}

func TestValidation(t *testing.T) {
	if _, err := loadbal.New(nil, 3); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := loadbal.New(&stubSource{rng: rand.New(rand.NewSource(1))}, 0); err == nil {
		t.Error("zero workers accepted")
	}
	b, err := loadbal.New(&stubSource{err: errors.New("down")}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AssignBatch(taskNames(1)); err == nil {
		t.Error("beacon error not propagated")
	}
	if b.Workers() != 3 {
		t.Error("Workers() wrong")
	}
}

func TestAssignPureStability(t *testing.T) {
	e := []byte{1, 2, 3}
	if loadbal.Assign(e, 0, "a", 5) != loadbal.Assign(e, 0, "a", 5) {
		t.Fatal("Assign not deterministic")
	}
	// Different rounds should (almost surely) move at least some tasks.
	moved := false
	for i := 0; i < 32; i++ {
		task := fmt.Sprintf("t%d", i)
		if loadbal.Assign(e, 0, task, 5) != loadbal.Assign(e, 1, task, 5) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("round number has no effect")
	}
}
