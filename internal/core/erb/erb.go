// Package erb implements the paper's first primary contribution: the
// Enclaved Reliable Broadcast protocol (Algorithm 2).
//
// ERB reliably broadcasts a message from an initiator to all peers of a
// synchronous network with N >= 2t+1 nodes, of which up to t are byzantine
// OSes running genuine enclaves. Thanks to the blinded channel and the
// lockstep runtime, the adversary is confined to omitting messages, and
// the protocol achieves
//
//   - round complexity   min{f+2, t+2}, where f <= t is the number of
//     nodes actually misbehaving in this instance, and
//   - communication complexity O(N^2) — every node multicasts at most one
//     ECHO and answers with ACKs,
//
// improving on the O(N^3) of prior omission-model protocols through the
// active halt-on-divergence rule (property P4): a sender that does not
// collect at least t acknowledgments within the round churns itself out.
//
// An Engine can run many concurrent Broadcast instances (one per
// initiator), which is exactly how the ERNG protocols of Section 5 use it,
// and can be scoped to a subset of the network (the representative cluster
// of the optimized ERNG) via Config.Members.
package erb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Config parametrizes an Engine.
type Config struct {
	// Members is the set of peers participating in this broadcast scope.
	// Nil means the whole network [0, N). The local peer must be a
	// member to participate actively; non-members' messages are ignored.
	Members []wire.NodeID
	// T is the byzantine bound within Members. The protocol runs T+2
	// rounds and accepts on N_m - T distinct echoes (N_m = len(Members)).
	T int
	// AckThreshold is the minimum number of acknowledgments a multicast
	// must gather to avoid halting (Algorithm 2: halt when Nack < t).
	// Zero defaults to T. Negative disables ACK tracking entirely.
	AckThreshold int
	// StartRound is the lockstep round at which initiators multicast
	// INIT. Zero defaults to 1. The optimized ERNG embeds ERB starting
	// at round 2 of its own schedule.
	StartRound uint32
	// ExpectedInitiators lists the initiators whose broadcasts this
	// engine tracks; instances from other initiators are ignored. Nil
	// means "any member". Results are defined for expected initiators
	// (or any initiator heard from, when nil).
	ExpectedInitiators []wire.NodeID
}

// Result is the outcome of one broadcast instance at this node.
type Result struct {
	// Accepted is true when a value was accepted; false means bottom
	// (the initiator failed or stayed silent).
	Accepted bool
	// Value is the accepted message m (zero when !Accepted).
	Value wire.Value
	// Round is the lockstep round at which the decision was made.
	Round uint32
	// At is the virtual time of the decision.
	At time.Duration
}

// nodeSet is a dense bitset over NodeIDs with a running count — the
// Secho set of Algorithm 2. Node ids are small dense integers, so a few
// words replace the per-instance map and the per-message hashing the
// delivery path used to pay.
type nodeSet struct {
	words []uint64
	count int
}

// add records id and reports whether it was newly set.
func (s *nodeSet) add(id wire.NodeID) bool {
	w, bit := int(id)/64, uint(id)%64
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&(1<<bit) != 0 {
		return false
	}
	s.words[w] |= 1 << bit
	s.count++
	return true
}

// instance is the per-initiator broadcast state of Algorithm 2.
type instance struct {
	initiator wire.NodeID
	value     wire.Value // m~: current candidate
	hasValue  bool
	echo      nodeSet // Secho
	queued    bool    // ECHO queued for next round start
	echoed    bool    // ECHO already multicast
	decided   bool
	result    Result
}

// Engine drives all broadcast instances of one protocol epoch at one peer.
// It implements runtime.Protocol.
//
// Membership, expected-initiator filtering and the per-initiator
// instance table are dense slices indexed by NodeID rather than maps:
// ids are dense small integers and every one of these structures is hit
// once or more per delivered message.
type Engine struct {
	peer       runtime.Host
	cfg        Config
	self       wire.NodeID
	selfMember bool
	member     []bool // dense Members set; nil = full roster (ids 0..nm-1)
	mcast      []wire.NodeID
	nm         int // number of members
	hasExpect  bool
	expect     []bool // dense ExpectedInitiators set (nil when exactly one is expected)

	// Single-expected-initiator fast path: the shape every multiplexed
	// broadcast builds (one engine per request, one initiator each), so
	// thousands of engines per epoch. The instance lives inline and the
	// dense expect/instances tables stay unallocated.
	expectOne   wire.NodeID // the initiator, when hasExpect && expect == nil
	instOne     instance    // its instance storage
	instOneLive bool        // instOne is tracked

	input     *wire.Value
	instances []*instance // indexed by initiator, nil until tracked
	pending   []*instance // instances with an ECHO queued for next round
	accepted  int         // instances decided with a value (not bottom)
	metrics   erbMetrics
}

// singleExpect reports the single-expected-initiator shape.
func (e *Engine) singleExpect() bool { return e.hasExpect && e.expect == nil }

// isMember reports whether id is in the broadcast scope. A nil member
// slice is the full roster: membership is a range check, with no dense
// set materialized per engine.
func (e *Engine) isMember(id wire.NodeID) bool {
	if e.member == nil {
		return int(id) < e.nm
	}
	return int(id) < len(e.member) && e.member[id]
}

// erbMetrics are the engine's metric handles; nil handles (no registry)
// are no-ops.
type erbMetrics struct {
	accepts     *telemetry.Counter
	bottoms     *telemetry.Counter
	acceptRound *telemetry.Histogram
}

// valueFP condenses a broadcast value into the 64-bit fingerprint trace
// events carry in Arg.
func valueFP(v wire.Value) uint64 {
	return binary.BigEndian.Uint64(v[:8])
}

var _ runtime.Protocol = (*Engine)(nil)

// NewEngine validates the configuration and builds an engine bound to a
// runtime host — a dedicated *runtime.Peer or a multiplexed
// *runtime.Instance; the engine is identical either way.
func NewEngine(peer runtime.Host, cfg Config) (*Engine, error) {
	if peer == nil {
		return nil, errors.New("erb: nil peer")
	}
	nm := len(cfg.Members)
	if cfg.Members == nil {
		// Full-roster scope, the default: kept implicit instead of
		// materializing the identity list. Membership becomes a range
		// check and multicasts pass nil destinations — the runtime's
		// all-peers fast path, which also keeps flush windows
		// frame-ackable. A multiplexed epoch builds thousands of engines,
		// so the two saved allocations (list + dense set) matter.
		nm = peer.N()
	}
	if nm < 2 {
		return nil, fmt.Errorf("erb: need at least 2 members, got %d", nm)
	}
	if cfg.T < 0 || 2*cfg.T+1 > nm {
		return nil, fmt.Errorf("erb: byzantine bound t=%d violates N_m >= 2t+1 for N_m=%d", cfg.T, nm)
	}
	if cfg.StartRound == 0 {
		cfg.StartRound = 1
	}
	if cfg.AckThreshold == 0 {
		cfg.AckThreshold = cfg.T
	}
	e := &Engine{
		peer: peer,
		cfg:  cfg,
		self: peer.ID(),
		nm:   nm,
	}
	size := nm // full roster: ids are 0..N-1
	if cfg.Members != nil {
		maxID := wire.NodeID(0)
		for _, id := range cfg.Members {
			if id > maxID {
				maxID = id
			}
		}
		size = int(maxID) + 1
		e.member = make([]bool, size)
		for _, id := range cfg.Members {
			e.member[id] = true
		}
		e.mcast = cfg.Members
	}
	e.selfMember = e.isMember(e.self)
	if m := peer.Metrics(); m != nil {
		e.metrics = erbMetrics{
			accepts:     m.Counter("erb_accepts_total"),
			bottoms:     m.Counter("erb_bottoms_total"),
			acceptRound: m.Histogram("erb_accept_round", []float64{1, 2, 3, 4, 5, 6, 8}),
		}
	}
	if cfg.ExpectedInitiators != nil {
		e.hasExpect = true
		for _, id := range cfg.ExpectedInitiators {
			if !e.isMember(id) {
				return nil, fmt.Errorf("erb: expected initiator %d is not a member", id)
			}
		}
		if len(cfg.ExpectedInitiators) == 1 {
			// The multiplexed-broadcast shape: one engine per request, one
			// expected initiator each, thousands of engines per epoch. The
			// expect set, the instance table and the instance itself stay
			// inline — zero dense tables per engine.
			e.expectOne = cfg.ExpectedInitiators[0]
			return e, nil
		}
		e.expect = make([]bool, size)
		for _, id := range cfg.ExpectedInitiators {
			e.expect[id] = true
		}
	}
	e.instances = make([]*instance, size)
	return e, nil
}

// Rounds returns the number of lockstep rounds the engine needs from
// round 1 through its deadline: StartRound + T + 1.
func (e *Engine) Rounds() int {
	return int(e.cfg.StartRound) + e.cfg.T + 1
}

// SetInput makes this peer an initiator broadcasting v in this epoch.
// Must be called before the start round fires.
func (e *Engine) SetInput(v wire.Value) {
	e.input = &v
}

// Result returns this node's decision for the given initiator's broadcast.
// The boolean reports whether a decision exists (it always does after the
// engine finished, for expected initiators).
func (e *Engine) Result(initiator wire.NodeID) (Result, bool) {
	if e.singleExpect() {
		if initiator != e.expectOne || !e.instOneLive || !e.instOne.decided {
			return Result{}, false
		}
		return e.instOne.result, true
	}
	if int(initiator) >= len(e.instances) {
		return Result{}, false
	}
	inst := e.instances[initiator]
	if inst == nil || !inst.decided {
		return Result{}, false
	}
	return inst.result, true
}

// Results returns all decided instances keyed by initiator.
func (e *Engine) Results() map[wire.NodeID]Result {
	out := make(map[wire.NodeID]Result)
	if e.singleExpect() {
		if e.instOneLive && e.instOne.decided {
			out[e.expectOne] = e.instOne.result
		}
		return out
	}
	for id, inst := range e.instances {
		if inst != nil && inst.decided {
			out[wire.NodeID(id)] = inst.result
		}
	}
	return out
}

// DecidedAll reports whether every expected initiator's instance decided.
// With ExpectedInitiators nil it reports whether all known instances did.
func (e *Engine) DecidedAll() bool {
	if e.hasExpect {
		for _, id := range e.cfg.ExpectedInitiators {
			if _, ok := e.Result(id); !ok {
				return false
			}
		}
		return true
	}
	known := 0
	for _, inst := range e.instances {
		if inst == nil {
			continue
		}
		known++
		if !inst.decided {
			return false
		}
	}
	return known > 0
}

// deadline is the last round of the instance window.
func (e *Engine) deadline() uint32 {
	return e.cfg.StartRound + uint32(e.cfg.T) + 1
}

// acceptThreshold is |Secho| needed to accept: N_m - T.
func (e *Engine) acceptThreshold() int {
	return e.nm - e.cfg.T
}

// getInstance returns (creating if needed) the state for an initiator's
// broadcast, or nil if the initiator is not tracked.
//
// The initiator is deliberately NOT required to be in Members: enclave
// execution integrity (P1) already guarantees that only genuinely selected
// nodes initiate, and in the optimized ERNG the local view of the cluster
// may lack byzantine members whose CHOSEN announcement was selectively
// omitted. Requiring initiator membership would make honest nodes refuse
// to acknowledge relays of such instances, starving honest echoers below
// the ACK threshold and churning them out. Relays are still only accepted
// from members, and explicit ExpectedInitiators still filter.
func (e *Engine) getInstance(initiator wire.NodeID) *instance {
	if e.singleExpect() {
		if initiator != e.expectOne {
			return nil
		}
		if !e.instOneLive {
			e.instOneLive = true
			e.instOne.initiator = initiator
		}
		return &e.instOne
	}
	if e.hasExpect && (int(initiator) >= len(e.expect) || !e.expect[initiator]) {
		return nil
	}
	if int(initiator) >= len(e.instances) {
		grown := make([]*instance, int(initiator)+1)
		copy(grown, e.instances)
		e.instances = grown
	}
	inst := e.instances[initiator]
	if inst == nil {
		inst = &instance{initiator: initiator}
		e.instances[initiator] = inst
	}
	return inst
}

// OnRound implements runtime.Protocol: flush queued ECHOs, then (at the
// start round) launch our own broadcast if we are an initiator.
func (e *Engine) OnRound(rnd uint32) {
	if !e.selfMember {
		return
	}
	// Queued ECHO multicasts fire at the beginning of the round after the
	// value was learned (the Wait(rnd) of Algorithm 2).
	pending := e.pending
	e.pending = nil
	for _, inst := range pending {
		if e.peer.Halted() {
			return
		}
		e.multicastEcho(inst, rnd)
	}
	if rnd == e.cfg.StartRound && e.input != nil {
		e.startBroadcast(rnd)
	}
	// Past the deadline nothing further can be accepted; decide bottom.
	if rnd > e.deadline() {
		e.finalize(rnd)
	}
}

// startBroadcast is the initiator path of Algorithm 2: set m~, add self to
// Secho, multicast INIT to all members.
func (e *Engine) startBroadcast(rnd uint32) {
	self := e.self
	inst := e.getInstance(self)
	if inst == nil || inst.hasValue {
		return
	}
	inst.value = *e.input
	inst.hasValue = true
	inst.echo.add(self)
	inst.echoed = true // the INIT plays the role of the initiator's ECHO
	msg := &wire.Message{
		Type:      wire.TypeInit,
		Sender:    self,
		Initiator: self,
		Instance:  e.peer.Instance(),
		Seq:       e.peer.SeqOf(self),
		Round:     rnd,
		HasValue:  true,
		Value:     inst.value,
	}
	e.peer.Trace(telemetry.KindInit, wire.NoNode, valueFP(inst.value))
	if err := e.peer.Multicast(e.mcast, msg, e.cfg.AckThreshold); err != nil {
		// Halted mid-multicast: nothing further to do.
		return
	}
	e.maybeAccept(inst, rnd)
}

// multicastEcho relays the learned value to all members.
func (e *Engine) multicastEcho(inst *instance, rnd uint32) {
	if inst.echoed || !inst.hasValue {
		return
	}
	inst.echoed = true
	e.peer.Trace(telemetry.KindEcho, inst.initiator, valueFP(inst.value))
	msg := &wire.Message{
		Type:      wire.TypeEcho,
		Sender:    e.self,
		Initiator: inst.initiator,
		Instance:  e.peer.Instance(),
		Seq:       e.peer.SeqOf(inst.initiator),
		Round:     rnd,
		HasValue:  true,
		Value:     inst.value,
	}
	_ = e.peer.Multicast(e.mcast, msg, e.cfg.AckThreshold) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
}

// OnMessage implements runtime.Protocol. The runtime already enforced
// authenticity (P2), program identity (P1) and the lockstep round check
// (P5); the engine enforces membership, instance and sequence freshness
// (P6) and runs the Echo/Decision phases of Algorithm 2.
func (e *Engine) OnMessage(msg *wire.Message) {
	if !e.selfMember {
		return
	}
	// INITs are self-identifying and genuine under P1 even when the
	// initiator is missing from the local member view (see getInstance);
	// ECHO relays only count from known members.
	if msg.Type == wire.TypeEcho && !e.isMember(msg.Sender) {
		return
	}
	if msg.Instance != e.peer.Instance() {
		return // stale epoch (replay), treated as omission
	}
	rnd := e.peer.Round()
	if rnd > e.deadline() {
		return
	}
	switch msg.Type {
	case wire.TypeInit:
		e.onInit(msg, rnd)
	case wire.TypeEcho:
		e.onEcho(msg, rnd)
	default:
		// Other message types belong to other protocols sharing the
		// peer (e.g. ERNG's CHOSEN/FINAL); not ours to handle.
	}
}

// onInit handles an INIT from the initiator.
func (e *Engine) onInit(msg *wire.Message, rnd uint32) {
	if msg.Sender != msg.Initiator || !msg.HasValue {
		return
	}
	if msg.Seq != e.peer.SeqOf(msg.Initiator) {
		return // replayed or stale (P6)
	}
	inst := e.getInstance(msg.Initiator)
	if inst == nil || inst.hasValue {
		return
	}
	if err := e.peer.SendAck(msg.Sender, msg); err != nil {
		return
	}
	inst.value = msg.Value
	inst.hasValue = true
	inst.echo.add(msg.Initiator)
	inst.echo.add(e.self)
	e.queueEcho(inst)
	e.maybeAccept(inst, rnd)
}

// onEcho handles an ECHO relay from any member.
func (e *Engine) onEcho(msg *wire.Message, rnd uint32) {
	if !msg.HasValue {
		return
	}
	if msg.Seq != e.peer.SeqOf(msg.Initiator) {
		return // replayed or stale (P6)
	}
	inst := e.getInstance(msg.Initiator)
	if inst == nil {
		return
	}
	if inst.hasValue && inst.value != msg.Value {
		// With genuine enclaves all relays of one (initiator, seq) carry
		// the same m; a mismatch can only be an in-flight corruption that
		// somehow survived, so it is treated as an omission.
		return
	}
	if err := e.peer.SendAck(msg.Sender, msg); err != nil {
		return
	}
	if !inst.hasValue {
		inst.value = msg.Value
		inst.hasValue = true
		inst.echo.add(e.self)
		e.queueEcho(inst)
	}
	inst.echo.add(msg.Sender)
	e.maybeAccept(inst, rnd)
}

// queueEcho schedules the ECHO multicast for the beginning of the next
// round (Wait(rnd) in Algorithm 2).
func (e *Engine) queueEcho(inst *instance) {
	if inst.queued || inst.echoed {
		return
	}
	inst.queued = true
	e.pending = append(e.pending, inst)
}

// maybeAccept runs the decision rule: accept m once |Secho| >= N_m - t.
func (e *Engine) maybeAccept(inst *instance, rnd uint32) {
	if inst.decided || !inst.hasValue {
		return
	}
	if inst.echo.count >= e.acceptThreshold() {
		inst.decided = true
		e.accepted++
		inst.result = Result{
			Accepted: true,
			Value:    inst.value,
			Round:    rnd,
			At:       e.peer.Now(),
		}
		e.peer.Trace(telemetry.KindAccept, inst.initiator, valueFP(inst.value))
		e.metrics.accepts.Inc()
		e.metrics.acceptRound.Observe(float64(rnd))
	}
}

// AcceptedCount returns the number of instances that have accepted a
// value so far (bottom decisions excluded). It lets compositions like the
// ERNG detect all-accepted early stopping in O(1).
func (e *Engine) AcceptedCount() int { return e.accepted }

// OnFinish implements runtime.Protocol: decide bottom for anything still
// open.
func (e *Engine) OnFinish() {
	e.finalize(e.deadline() + 1)
}

// finalize decides bottom for all undecided tracked instances, creating
// bottom decisions for expected initiators never heard from. Peers outside
// the member scope do not participate and record nothing.
func (e *Engine) finalize(rnd uint32) {
	if !e.selfMember {
		return
	}
	// Bottom decisions must run in a deterministic order — they emit trace
	// events, and the exported stream is required to be byte-identical
	// across runs of the same seed. With explicit expected initiators the
	// config slice is that order (and instances only exist for expected
	// initiators); otherwise the dense instance table walks known
	// initiators in ascending id order.
	if e.hasExpect {
		for _, id := range e.cfg.ExpectedInitiators {
			e.decideBottom(e.getInstance(id), rnd)
		}
		return
	}
	for _, inst := range e.instances {
		if inst != nil {
			e.decideBottom(inst, rnd)
		}
	}
}

// decideBottom closes one undecided instance with a bottom result.
func (e *Engine) decideBottom(inst *instance, rnd uint32) {
	if inst == nil || inst.decided {
		return
	}
	inst.decided = true
	inst.result = Result{
		Accepted: false,
		Round:    rnd,
		At:       e.peer.Now(),
	}
	e.peer.Trace(telemetry.KindBottom, inst.initiator, 0)
	e.metrics.bottoms.Inc()
}
