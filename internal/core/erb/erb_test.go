package erb_test

import (
	"testing"
	"time"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// dropTransport is a byzantine OS that selectively omits outbound
// envelopes (attack A3). It forwards everything else unchanged.
type dropTransport struct {
	inner runtime.Transport
	drop  func(dst wire.NodeID) bool
}

func (d *dropTransport) Send(dst wire.NodeID, payload []byte) {
	if d.drop != nil && d.drop(dst) {
		return
	}
	d.inner.Send(dst, payload)
}

func (d *dropTransport) SetHandler(h func(src wire.NodeID, payload []byte)) { d.inner.SetHandler(h) }
func (d *dropTransport) Detach()                                            { d.inner.Detach() }
func (d *dropTransport) After(t time.Duration, fn func())                   { d.inner.After(t, fn) }
func (d *dropTransport) Now() time.Duration                                 { return d.inner.Now() }

// buildEngines creates one ERB engine per peer and starts them all for the
// engine's round count.
func buildEngines(t *testing.T, d *deploy.Deployment, cfg erb.Config) []*erb.Engine {
	t.Helper()
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, cfg)
		if err != nil {
			t.Fatalf("NewEngine(%d): %v", i, err)
		}
		engines[i] = eng
	}
	return engines
}

func startAll(d *deploy.Deployment, engines []*erb.Engine) {
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
}

func value(b byte) wire.Value {
	var v wire.Value
	v[0] = b
	return v
}

func TestHonestBroadcastAllAcceptInTwoRounds(t *testing.T) {
	const n, byz = 7, 3
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	engines[0].SetInput(value(0xCD))
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		res, ok := eng.Result(0)
		if !ok {
			t.Fatalf("peer %d has no result", i)
		}
		if !res.Accepted || res.Value != value(0xCD) {
			t.Fatalf("peer %d result %+v, want accepted 0xCD", i, res)
		}
		if res.Round > 2 {
			t.Fatalf("peer %d accepted in round %d, want <= 2 (early stopping, honest case)", i, res.Round)
		}
		if d.Peers[i].Halted() {
			t.Fatalf("honest peer %d halted", i)
		}
	}
}

func TestSilentInitiatorAllDecideBottom(t *testing.T) {
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	// Initiator 0 never calls SetInput: models a crashed initiator.
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		res, ok := eng.Result(0)
		if !ok {
			t.Fatalf("peer %d has no result", i)
		}
		if res.Accepted {
			t.Fatalf("peer %d accepted %v from a silent initiator", i, res.Value)
		}
	}
}

func TestOmitAllInitiatorHaltsOthersDecideBottom(t *testing.T) {
	const n, byz = 7, 3
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 5,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if id != 0 {
				return tr
			}
			return &dropTransport{inner: tr, drop: func(wire.NodeID) bool { return true }}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	engines[0].SetInput(value(1))
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Peers[0].Halted() {
		t.Fatal("initiator whose OS omitted every INIT did not halt (P4 violated)")
	}
	for i := 1; i < n; i++ {
		res, ok := engines[i].Result(0)
		if !ok || res.Accepted {
			t.Fatalf("peer %d: result %+v ok=%v, want bottom", i, res, ok)
		}
	}
}

func TestSelectiveOmissionStillAgrees(t *testing.T) {
	// The byzantine initiator's OS delivers INIT only to peer 1 (identity-
	// based selective omission, A3). Validity for byzantine senders is not
	// required, but agreement is: either all honest nodes accept m, or all
	// decide bottom. Here peer 1 relays, so everyone accepts by round f+2.
	const n, byz = 7, 3
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 6,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if id != 0 {
				return tr
			}
			return &dropTransport{inner: tr, drop: func(dst wire.NodeID) bool { return dst != 1 }}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	engines[0].SetInput(value(0x77))
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Peers[0].Halted() {
		t.Fatal("selectively-omitting initiator did not halt")
	}
	for i := 1; i < n; i++ {
		res, ok := engines[i].Result(0)
		if !ok {
			t.Fatalf("peer %d undecided", i)
		}
		if !res.Accepted || res.Value != value(0x77) {
			t.Fatalf("peer %d: %+v, want accepted 0x77 (agreement)", i, res)
		}
		if res.Round > 3 {
			t.Fatalf("peer %d accepted in round %d, want <= f+2 = 3", i, res.Round)
		}
	}
}

func TestAgreementPropertyUnderRandomOmissions(t *testing.T) {
	// For a sweep of seeds, a byzantine initiator plus byzantine relays
	// that drop random subsets must never break agreement among honest
	// nodes: all accept the same value or all decide bottom.
	const n, byz = 9, 4
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		d, err := deploy.New(deploy.Options{
			N: n, T: byz, Seed: seed,
			Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
				if int(id) >= byz {
					return tr // honest
				}
				mask := seed*7 + int64(id)
				return &dropTransport{inner: tr, drop: func(dst wire.NodeID) bool {
					return (mask>>(dst%8))&1 == 0
				}}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
		engines[0].SetInput(value(byte(seed + 1)))
		startAll(d, engines)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		var accepted, bottom int
		var got wire.Value
		for i := byz; i < n; i++ {
			res, ok := engines[i].Result(0)
			if !ok {
				t.Fatalf("seed %d: honest peer %d undecided", seed, i)
			}
			if res.Accepted {
				accepted++
				got = res.Value
			} else {
				bottom++
			}
		}
		if accepted > 0 && bottom > 0 {
			t.Fatalf("seed %d: agreement violated: %d accepted, %d bottom", seed, accepted, bottom)
		}
		if accepted > 0 && got != value(byte(seed+1)) {
			t.Fatalf("seed %d: honest nodes accepted forged value %v", seed, got)
		}
	}
}

func TestConcurrentInstancesAllAccept(t *testing.T) {
	// Every node initiates (the unoptimized-ERNG workload): all honest
	// nodes must accept all N values.
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz})
	for i, eng := range engines {
		eng.SetInput(value(byte(i + 1)))
	}
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		if !eng.DecidedAll() {
			t.Fatalf("peer %d has undecided instances", i)
		}
		for init := wire.NodeID(0); init < n; init++ {
			res, ok := eng.Result(init)
			if !ok || !res.Accepted || res.Value != value(byte(init+1)) {
				t.Fatalf("peer %d result for initiator %d: %+v ok=%v", i, init, res, ok)
			}
		}
	}
}

func TestClusterScopedBroadcast(t *testing.T) {
	// ERB scoped to members {1,3,5} of a 7-node network: non-members see
	// nothing, members agree.
	const n = 7
	members := []wire.NodeID{1, 3, 5}
	d, err := deploy.New(deploy.Options{N: n, T: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := erb.Config{Members: members, T: 1, ExpectedInitiators: []wire.NodeID{3}}
	engines := buildEngines(t, d, cfg)
	engines[3].SetInput(value(0x5A))
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range members {
		res, ok := engines[id].Result(3)
		if !ok || !res.Accepted || res.Value != value(0x5A) {
			t.Fatalf("member %d: %+v ok=%v", id, res, ok)
		}
	}
	for _, id := range []wire.NodeID{0, 2, 4, 6} {
		if _, ok := engines[id].Result(3); ok {
			t.Fatalf("non-member %d observed the cluster broadcast", id)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := erb.NewEngine(nil, erb.Config{}); err == nil {
		t.Error("nil peer accepted")
	}
	if _, err := erb.NewEngine(d.Peers[0], erb.Config{T: 3}); err == nil {
		t.Error("t > (N-1)/2 accepted")
	}
	if _, err := erb.NewEngine(d.Peers[0], erb.Config{T: -1}); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := erb.NewEngine(d.Peers[0], erb.Config{Members: []wire.NodeID{0}}); err == nil {
		t.Error("single-member scope accepted")
	}
	if _, err := erb.NewEngine(d.Peers[0], erb.Config{T: 2, ExpectedInitiators: []wire.NodeID{99}}); err == nil {
		t.Error("expected initiator outside members accepted")
	}
}

func TestRoundsAccountsForStartRound(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := erb.NewEngine(d.Peers[0], erb.Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Rounds(); got != 4 { // t+2 with start round 1
		t.Fatalf("Rounds = %d, want 4", got)
	}
	eng2, err := erb.NewEngine(d.Peers[0], erb.Config{T: 2, StartRound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Rounds(); got != 6 {
		t.Fatalf("Rounds with StartRound=3 = %d, want 6", got)
	}
}

func TestIntegrityAcceptAtMostOnce(t *testing.T) {
	// Integrity (Definition 2.1): each honest node accepts exactly one
	// result per instance, and it is the initiator's value.
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{2}})
	engines[2].SetInput(value(0x42))
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		first, ok := eng.Result(2)
		if !ok {
			t.Fatalf("peer %d undecided", i)
		}
		// Results are stable after decision: querying again yields the
		// identical decision (accept-once).
		second, _ := eng.Result(2)
		if first != second {
			t.Fatalf("peer %d decision changed: %+v -> %+v", i, first, second)
		}
	}
}

func TestTwoConsecutiveInstancesWithSeqBump(t *testing.T) {
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
		engines[0].SetInput(value(byte(0x10 + epoch)))
		startAll(d, engines)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		for i, eng := range engines {
			res, ok := eng.Result(0)
			if !ok || !res.Accepted || res.Value != value(byte(0x10+epoch)) {
				t.Fatalf("epoch %d peer %d: %+v ok=%v", epoch, i, res, ok)
			}
		}
		for _, p := range d.Peers {
			p.BumpSeqs()
		}
	}
}

func TestTrafficQuadratic(t *testing.T) {
	// Communication complexity: the honest-case message count must grow
	// quadratically (Lemma C.7: at most 2N^2 messages).
	counts := make(map[int]uint64)
	for _, n := range []int{8, 16, 32} {
		byz := (n - 1) / 2
		d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
		engines[0].SetInput(value(1))
		d.Net.ResetTraffic()
		startAll(d, engines)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		counts[n] = d.Net.Traffic().Messages
		if max := uint64(2 * n * n); counts[n] > max {
			t.Fatalf("N=%d: %d messages exceeds 2N^2 = %d", n, counts[n], max)
		}
	}
	// Quadratic growth: doubling N should roughly quadruple messages.
	r1 := float64(counts[16]) / float64(counts[8])
	r2 := float64(counts[32]) / float64(counts[16])
	for _, r := range []float64{r1, r2} {
		if r < 2.5 || r > 6 {
			t.Fatalf("message growth ratio %.2f outside quadratic band [2.5, 6] (counts=%v)", r, counts)
		}
	}
}

func TestResultsAndAcceptedCount(t *testing.T) {
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz})
	for i, eng := range engines {
		eng.SetInput(value(byte(i + 1)))
	}
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		results := eng.Results()
		if len(results) != n {
			t.Fatalf("peer %d Results() has %d entries, want %d", i, len(results), n)
		}
		for init, res := range results {
			if !res.Accepted || res.Value != value(byte(init+1)) {
				t.Fatalf("peer %d Results()[%d] = %+v", i, init, res)
			}
		}
		if got := eng.AcceptedCount(); got != n {
			t.Fatalf("peer %d AcceptedCount = %d, want %d", i, got, n)
		}
		if !eng.DecidedAll() {
			t.Fatalf("peer %d DecidedAll false with everything accepted", i)
		}
	}
}

func TestStaleEpochMessagesIgnored(t *testing.T) {
	// An engine for instance k must ignore messages stamped with a
	// different instance even when seq and round would match: freshness
	// across epochs (P6) at the protocol layer.
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	// Craft a raw INIT claiming a future instance and inject it via the
	// peer's own multicast (the enclave would never do this; the test
	// reaches under the protocol to check the guard).
	rogue := &wire.Message{
		Type: wire.TypeInit, Sender: 0, Initiator: 0,
		Instance: d.Peers[0].Instance() + 7,
		Seq:      d.Peers[0].SeqOf(0), Round: 1, HasValue: true, Value: value(0xEE),
	}
	probeStart := func() {
		_ = d.Peers[0].Multicast(nil, rogue, 0)
	}
	d.Sim.After(0, probeStart)
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		res, ok := engines[i].Result(0)
		if !ok {
			t.Fatalf("peer %d undecided", i)
		}
		if res.Accepted {
			t.Fatalf("peer %d accepted a cross-instance message", i)
		}
	}
}

func TestEchoWithoutValueIgnored(t *testing.T) {
	// Structurally invalid protocol messages (ECHO with no value, INIT
	// where sender != initiator) are discarded without effect.
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEngines(t, d, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
	inject := func() {
		noValue := &wire.Message{
			Type: wire.TypeEcho, Sender: 1, Initiator: 0,
			Instance: d.Peers[1].Instance(),
			Seq:      d.Peers[1].SeqOf(0), Round: 1,
		}
		_ = d.Peers[1].Multicast(nil, noValue, 0)
		impersonation := &wire.Message{
			Type: wire.TypeInit, Sender: 2, Initiator: 0,
			Instance: d.Peers[2].Instance(),
			Seq:      d.Peers[2].SeqOf(0), Round: 1, HasValue: true, Value: value(0xDD),
		}
		_ = d.Peers[2].Multicast(nil, impersonation, 0)
	}
	d.Sim.After(0, inject)
	startAll(d, engines)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res, ok := engines[i].Result(0)
		if ok && res.Accepted {
			t.Fatalf("peer %d accepted from malformed messages: %+v", i, res)
		}
	}
}
