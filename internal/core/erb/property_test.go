package erb_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// randomBehavior draws one of the byzantine OS strategies.
func randomBehavior(rng *rand.Rand, seed int64) adversary.Behavior {
	switch rng.Intn(5) {
	case 0:
		return adversary.OmitAll()
	case 1:
		mask := rng.Int63()
		return adversary.OmitTo(func(dst wire.NodeID) bool { return (mask>>(dst%16))&1 == 1 })
	case 2:
		return adversary.OmitProbabilistic(rng.Float64(), seed)
	case 3:
		return adversary.CorruptEverything()
	default:
		return adversary.DelayAll()
	}
}

// scenario runs one randomized byzantine scenario and checks the three
// reliable-broadcast properties among honest nodes:
//
//	agreement — all honest decide the same outcome,
//	integrity — an accepted value is exactly the initiator's input,
//	validity  — with an honest initiator, all honest nodes accept.
func scenario(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(8)     // 5..12 nodes
	byz := rng.Intn(n / 2)   // 0..floor((n-1)/2) byzantine
	tBound := (n - 1) / 2    // protocol provisioned for the max
	initiator := rng.Intn(n) // may be byzantine
	input := wire.Value{byte(seed), byte(seed >> 8), 0xE7}

	byzSet := make(map[wire.NodeID]adversary.Behavior, byz)
	perm := rng.Perm(n)
	for i := 0; i < byz; i++ {
		byzSet[wire.NodeID(perm[i])] = randomBehavior(rng, seed+int64(i))
	}
	d, err := deploy.New(deploy.Options{
		N: n, T: tBound, Seed: seed,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			b, ok := byzSet[id]
			if !ok {
				return tr
			}
			return adversary.Wrap(id, tr, b, seed+int64(id))
		},
	})
	if err != nil {
		t.Fatalf("seed %d: deploy: %v", seed, err)
	}
	engines := make([]*erb.Engine, n)
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{T: tBound, ExpectedInitiators: []wire.NodeID{wire.NodeID(initiator)}})
		if err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		engines[i] = eng
	}
	engines[initiator].SetInput(input)
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}

	var accepted, bottom int
	for i := 0; i < n; i++ {
		if _, isByz := byzSet[wire.NodeID(i)]; isByz || d.Peers[i].Halted() {
			continue
		}
		res, ok := engines[i].Result(wire.NodeID(initiator))
		if !ok {
			t.Fatalf("seed %d: honest node %d undecided", seed, i)
		}
		if res.Accepted {
			// Integrity: only the genuine input can ever be accepted.
			if res.Value != input {
				t.Fatalf("seed %d: honest node %d accepted forged value %v", seed, i, res.Value)
			}
			accepted++
		} else {
			bottom++
		}
	}
	// Agreement.
	if accepted > 0 && bottom > 0 {
		t.Fatalf("seed %d: agreement violated (%d accepted, %d bottom)", seed, accepted, bottom)
	}
	// Validity: honest initiators always succeed.
	if _, isByz := byzSet[wire.NodeID(initiator)]; !isByz && accepted == 0 {
		t.Fatalf("seed %d: honest initiator's broadcast not accepted", seed)
	}
	return true
}

// TestQuickReliableBroadcastProperties fuzzes randomized byzantine
// scenarios: sizes, fault sets, strategies and initiators all drawn from
// the seed. This is the end-to-end check of result R1 — whatever mix of
// forging, corruption, delays and omissions the OS layer attempts, the
// system behaves exactly like a general-omission execution.
func TestQuickReliableBroadcastProperties(t *testing.T) {
	f := func(seed int64) bool { return scenario(t, seed) }
	cfgQ := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfgQ.MaxCount = 10
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDelayedReleaseNeverForges arms a delaying adversary, releases
// its stale envelopes at a random later time, and checks nothing but the
// genuine value is ever delivered or accepted.
func TestQuickDelayedReleaseNeverForges(t *testing.T) {
	f := func(seed int64, releaseAtRound uint8) bool {
		const n, byz = 7, 3
		var os0 *adversary.OS
		d, err := deploy.New(deploy.Options{
			N: n, T: byz, Seed: seed,
			Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
				if id != 1 {
					return tr
				}
				os0 = adversary.Wrap(id, tr, adversary.DelayAll(), seed)
				return os0
			},
		})
		if err != nil {
			return false
		}
		input := wire.Value{0xAB, byte(seed)}
		engines := make([]*erb.Engine, n)
		for i, p := range d.Peers {
			eng, err := erb.NewEngine(p, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{0}})
			if err != nil {
				return false
			}
			engines[i] = eng
		}
		engines[0].SetInput(input)
		for i, p := range d.Peers {
			p.Start(engines[i], engines[i].Rounds())
		}
		release := d.RoundDuration() * time.Duration(releaseAtRound%6)
		d.Sim.At(release+d.RoundDuration()/3, func() { os0.Release() })
		if err := d.Run(); err != nil {
			return false
		}
		for i := 2; i < n; i++ {
			res, ok := engines[i].Result(0)
			if !ok || !res.Accepted || res.Value != input {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
