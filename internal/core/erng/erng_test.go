package erng_test

import (
	"testing"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// basicHarness runs the unoptimized ERNG over a deployment and returns the
// per-node results.
func runBasic(t *testing.T, d *deploy.Deployment, byz int) []erng.Result {
	t.Helper()
	protos := make([]*erng.Basic, len(d.Peers))
	for i, p := range d.Peers {
		b, err := erng.NewBasic(p, byz)
		if err != nil {
			t.Fatalf("NewBasic(%d): %v", i, err)
		}
		protos[i] = b
		p.Start(b, b.Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	results := make([]erng.Result, len(protos))
	for i, b := range protos {
		res, ok := b.Result()
		if !ok {
			if d.Peers[i].Halted() {
				continue // churned out by P4; no decision expected
			}
			t.Fatalf("peer %d undecided", i)
		}
		results[i] = res
	}
	return results
}

func runOptimized(t *testing.T, d *deploy.Deployment, byz int, mode erng.Mode, gamma int) ([]erng.Result, []*erng.Optimized) {
	t.Helper()
	protos := make([]*erng.Optimized, len(d.Peers))
	for i, p := range d.Peers {
		o, err := erng.NewOptimized(p, byz, mode, gamma)
		if err != nil {
			t.Fatalf("NewOptimized(%d): %v", i, err)
		}
		protos[i] = o
		p.Start(o, o.Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	results := make([]erng.Result, len(protos))
	for i, o := range protos {
		res, ok := o.Result()
		if !ok {
			if d.Peers[i].Halted() {
				continue // churned out by P4; no decision expected
			}
			t.Fatalf("peer %d undecided", i)
		}
		results[i] = res
	}
	return results, protos
}

// checkCommon asserts all results agree on (OK, Value, Contributors) and
// returns the common result.
func checkCommon(t *testing.T, results []erng.Result) erng.Result {
	t.Helper()
	first := results[0]
	for i, r := range results[1:] {
		if r.OK != first.OK || r.Value != first.Value {
			t.Fatalf("node %d disagrees: (%v, %v) vs (%v, %v)", i+1, r.OK, r.Value, first.OK, first.Value)
		}
		if len(r.Contributors) != len(first.Contributors) {
			t.Fatalf("node %d contributor count %d vs %d", i+1, len(r.Contributors), len(first.Contributors))
		}
		for j := range r.Contributors {
			if r.Contributors[j] != first.Contributors[j] {
				t.Fatalf("node %d contributors %v vs %v", i+1, r.Contributors, first.Contributors)
			}
		}
	}
	return first
}

func TestBasicHonestAllAgree(t *testing.T) {
	const n, byz = 7, 3
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	results := runBasic(t, d, byz)
	common := checkCommon(t, results)
	if !common.OK {
		t.Fatal("honest run output bottom")
	}
	if len(common.Contributors) != n {
		t.Fatalf("contributors = %v, want all %d nodes", common.Contributors, n)
	}
	if common.Value.IsZero() {
		t.Fatal("output is zero (astronomically unlikely)")
	}
}

func TestBasicRoundsIsTPlusTwo(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 7, T: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	b, err := erng.NewBasic(d.Peers[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Rounds(); got != 5 {
		t.Fatalf("Rounds = %d, want t+2 = 5", got)
	}
	if _, err := erng.NewBasic(nil, 1); err == nil {
		t.Fatal("nil peer accepted")
	}
}

func TestBasicSilentByzantineExcluded(t *testing.T) {
	const n, byz = 7, 3
	silent := map[wire.NodeID]bool{0: true, 1: true}
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 32,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if !silent[id] {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.OmitAll(), 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := runBasic(t, d, byz)
	// Honest nodes are 2..6; check their agreement only.
	common := checkCommon(t, results[2:])
	if !common.OK {
		t.Fatal("run output bottom")
	}
	if len(common.Contributors) != n-2 {
		t.Fatalf("contributors = %v, want %d honest nodes", common.Contributors, n-2)
	}
	for _, c := range common.Contributors {
		if silent[c] {
			t.Fatalf("silent byzantine %d contributed", c)
		}
	}
}

func TestBasicSelectiveOmissionKeepsAgreement(t *testing.T) {
	const n, byz = 9, 4
	for seed := int64(0); seed < 8; seed++ {
		d, err := deploy.New(deploy.Options{
			N: n, T: byz, Seed: 40 + seed,
			Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
				if int(id) >= byz {
					return tr
				}
				mask := seed*13 + int64(id)*7
				return adversary.Wrap(id, tr, adversary.OmitTo(func(dst wire.NodeID) bool {
					return (mask>>(dst%8))&1 == 1
				}), seed)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		results := runBasic(t, d, byz)
		common := checkCommon(t, results[byz:])
		if !common.OK {
			t.Fatalf("seed %d: honest nodes output bottom", seed)
		}
		// All honest contributions must be present (validity).
		have := make(map[wire.NodeID]bool, len(common.Contributors))
		for _, c := range common.Contributors {
			have[c] = true
		}
		for id := byz; id < n; id++ {
			if !have[wire.NodeID(id)] {
				t.Fatalf("seed %d: honest contribution %d missing", seed, id)
			}
		}
	}
}

func TestBasicDelayLookAheadNeutralized(t *testing.T) {
	// A4: byzantine node 0 holds all its outbound envelopes, "looks ahead",
	// and releases them in a later round. Its contribution must not enter
	// the final set of any honest node, and agreement must hold.
	const n, byz = 7, 3
	var os0 *adversary.OS
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 33,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if id != 0 {
				return tr
			}
			os0 = adversary.Wrap(id, tr, adversary.DelayAll(), 1)
			return os0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Release mid-round-3 (stamps are round 1/2: all stale on arrival).
	d.Sim.At(d.RoundDuration()*2+d.RoundDuration()/2, func() { os0.Release() })
	results := runBasic(t, d, byz)
	common := checkCommon(t, results[1:])
	if !common.OK {
		t.Fatal("honest majority output bottom")
	}
	for _, c := range common.Contributors {
		if c == 0 {
			t.Fatal("delayed (look-ahead) contribution was accepted")
		}
	}
}

func TestBasicFreshAcrossEpochs(t *testing.T) {
	const n, byz = 5, 2
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	first := checkCommon(t, runBasic(t, d, byz))
	for _, p := range d.Peers {
		p.BumpSeqs()
	}
	second := checkCommon(t, runBasic(t, d, byz))
	if first.Value == second.Value {
		t.Fatal("two epochs produced identical outputs")
	}
}

func TestOptimizedFallbackHonest(t *testing.T) {
	const n, byz = 30, 10
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	results, protos := runOptimized(t, d, byz, erng.ModeAuto, 0)
	common := checkCommon(t, results)
	if !common.OK {
		t.Fatal("honest fallback run output bottom")
	}
	if protos[0].Params().Mode != erng.ModeFallback {
		t.Fatalf("N=%d resolved to mode %v, want fallback", n, protos[0].Params().Mode)
	}
	// Contributors must be cluster members.
	cluster := make(map[wire.NodeID]bool)
	for _, id := range protos[0].ClusterView() {
		cluster[id] = true
	}
	for _, c := range common.Contributors {
		if !cluster[c] {
			t.Fatalf("contributor %d outside cluster %v", c, protos[0].ClusterView())
		}
	}
	// Fallback cluster should be roughly 2N/3.
	if got := len(protos[0].ClusterView()); got < n/3 || got > n {
		t.Fatalf("cluster size %d implausible for 2N/3 sampling", got)
	}
}

func TestOptimizedSampledHonest(t *testing.T) {
	const n, byz = 300, 100
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	results, protos := runOptimized(t, d, byz, erng.ModeSampled, 0)
	common := checkCommon(t, results)
	if !common.OK {
		t.Fatal("honest sampled run output bottom")
	}
	p := protos[0].Params()
	if p.Mode != erng.ModeSampled {
		t.Fatal("expected sampled mode")
	}
	cluster := len(protos[0].ClusterView())
	if cluster < p.Gamma || cluster > 6*p.Gamma {
		t.Fatalf("cluster size %d far from 2*gamma = %d", cluster, 2*p.Gamma)
	}
	// O(log N) rounds: far fewer than the basic protocol's t+2.
	if protos[0].Rounds() >= byz+2 {
		t.Fatalf("optimized rounds %d not below basic %d", protos[0].Rounds(), byz+2)
	}
}

func TestOptimizedWithByzantineOmitters(t *testing.T) {
	const n, byz = 30, 9 // t <= N/3
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 37,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= byz {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.OmitProbabilistic(0.7, int64(id)), int64(id))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := runOptimized(t, d, byz, erng.ModeFallback, 0)
	common := checkCommon(t, results[byz:])
	if !common.OK {
		t.Fatal("byzantine omitters forced bottom output")
	}
}

func TestOptimizedTrafficBelowBasic(t *testing.T) {
	const n, byz = 24, 8
	run := func(optimized bool) uint64 {
		d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 38})
		if err != nil {
			t.Fatal(err)
		}
		d.Net.ResetTraffic()
		if optimized {
			_, _ = runOptimized(t, d, byz, erng.ModeFallback, 0)
		} else {
			runBasic(t, d, byz)
		}
		return d.Net.Traffic().Bytes
	}
	basic := run(false)
	opt := run(true)
	if opt >= basic {
		t.Fatalf("optimized traffic %d not below basic %d", opt, basic)
	}
}

func TestResolveParamsValidation(t *testing.T) {
	if _, err := erng.ResolveParams(3, 1, erng.ModeAuto, 0); err == nil {
		t.Error("N=3 accepted")
	}
	if _, err := erng.ResolveParams(30, 11, erng.ModeAuto, 0); err == nil {
		t.Error("t > N/3 accepted")
	}
	if _, err := erng.ResolveParams(30, -1, erng.ModeAuto, 0); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := erng.ResolveParams(16, 5, erng.ModeSampled, 8); err == nil {
		t.Error("sampled mode with absurd gamma for tiny N accepted")
	}
	p, err := erng.ResolveParams(1024, 341, erng.ModeAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != erng.ModeSampled {
		t.Fatalf("large N resolved to %v, want sampled", p.Mode)
	}
	if p.Rounds() != p.MaxClusterT+4 {
		t.Fatalf("Rounds = %d, want MaxClusterT+4 = %d", p.Rounds(), p.MaxClusterT+4)
	}
	small, err := erng.ResolveParams(30, 10, erng.ModeAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.Mode != erng.ModeFallback {
		t.Fatalf("small N resolved to %v, want fallback", small.Mode)
	}
	if small.InitRange != 1 {
		t.Fatal("fallback must let every member initiate")
	}
}

func TestOptimizedDeterministicForSeed(t *testing.T) {
	run := func() erng.Result {
		d, err := deploy.New(deploy.Options{N: 30, T: 10, Seed: 39})
		if err != nil {
			t.Fatal(err)
		}
		results, _ := runOptimized(t, d, 10, erng.ModeFallback, 0)
		return checkCommon(t, results)
	}
	a, b := run(), run()
	if a.Value != b.Value || a.OK != b.OK {
		t.Fatal("same seed produced different outputs")
	}
}

func TestBasicTerminationTimeHonest(t *testing.T) {
	// Honest values are all accepted within ~2 rounds even though the
	// deadline is t+2; decisions carry the early timestamps.
	const n, byz = 9, 4
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 41, Delta: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	results := runBasic(t, d, byz)
	common := checkCommon(t, results)
	if !common.OK {
		t.Fatal("bottom output")
	}
	// With every instance accepted, nodes finalize early (the behaviour
	// behind the flat region of Fig. 2b): well before the t+2 deadline.
	deadline := time.Duration(byz+2) * 2 * time.Second
	for i, r := range results {
		if r.At >= deadline {
			t.Fatalf("node %d decided at %v, want early (< %v)", i, r.At, deadline)
		}
		if r.At > 3*2*time.Second {
			t.Fatalf("node %d decided at %v, want within ~2 rounds", i, r.At)
		}
	}
}
