package erng

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Optimized is the cluster-sampled ERNG of Algorithm 6. It implements
// runtime.Protocol. The schedule is
//
//	round 1            cluster selection: private draw, CHOSEN multicast
//	round 2            second draw; chosen initiators start cluster ERB
//	rounds 2..T_c+3    embedded ERB window inside the cluster
//	round T_c+4        cluster members multicast FINAL(M_i) to everyone;
//	                   all nodes accept the majority set and XOR it
//
// where T_c = Params.MaxClusterT (gamma in the paper's notation).
type Optimized struct {
	peer   runtime.Host
	params Params

	chosen   bool
	schosen  map[wire.NodeID]bool
	eng      *erb.Engine // nil for non-cluster nodes
	finalSet map[[32]byte]*finalTally
	decided  bool
	result   Result
}

// finalTally counts identical FINAL sets by content hash.
type finalTally struct {
	set     []wire.SetEntry
	senders map[wire.NodeID]bool
}

var _ runtime.Protocol = (*Optimized)(nil)

// NewOptimized builds the optimized ERNG for a network tolerating
// t <= N/3. Use ResolveParams (or the zero Mode for auto) to pick the
// sampling parameters.
func NewOptimized(peer runtime.Host, t int, mode Mode, gammaOverride int) (*Optimized, error) {
	if peer == nil {
		return nil, errors.New("erng: nil peer")
	}
	params, err := ResolveParams(peer.N(), t, mode, gammaOverride)
	if err != nil {
		return nil, err
	}
	return &Optimized{
		peer:     peer,
		params:   params,
		schosen:  make(map[wire.NodeID]bool),
		finalSet: make(map[[32]byte]*finalTally),
	}, nil
}

// Params returns the resolved sampling parameters.
func (o *Optimized) Params() Params { return o.params }

// Rounds returns the total lockstep rounds.
func (o *Optimized) Rounds() int { return o.params.Rounds() }

// Result returns the node's decision once the protocol finished.
func (o *Optimized) Result() (Result, bool) { return o.result, o.decided }

// ClusterView returns this node's view of the representative cluster
// (sorted), for tests and experiments.
func (o *Optimized) ClusterView() []wire.NodeID {
	return sortedIDs(o.schosen)
}

// Chosen reports whether this node joined the cluster.
func (o *Optimized) Chosen() bool { return o.chosen }

// OnRound implements runtime.Protocol.
func (o *Optimized) OnRound(rnd uint32) {
	switch {
	case rnd == 1:
		o.selectionPhase(rnd)
	case rnd == 2:
		o.startClusterERB(rnd)
	case int(rnd) == o.Rounds():
		o.finalPhase(rnd)
	default:
		if o.eng != nil {
			o.eng.OnRound(rnd)
		}
	}
}

// selectionPhase is round 1 of Algorithm 6: draw privately inside the
// enclave (P3: the OS learns membership only when CHOSEN is multicast,
// never the draw itself) and announce membership.
func (o *Optimized) selectionPhase(rnd uint32) {
	draw, err := o.peer.Enclave().RandomBelow(o.params.JoinRange)
	if err != nil {
		return
	}
	if !o.params.joined(draw) {
		return
	}
	o.chosen = true
	o.schosen[o.peer.ID()] = true
	o.peer.Trace(telemetry.KindChosen, wire.NoNode, 0)
	msg := &wire.Message{
		Type:      wire.TypeChosen,
		Sender:    o.peer.ID(),
		Initiator: o.peer.ID(),
		Instance:  o.peer.Instance(),
		Seq:       o.peer.SeqOf(o.peer.ID()),
		Round:     rnd,
	}
	_ = o.peer.Multicast(nil, msg, 0) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
}

// startClusterERB is round 2: cluster members build the embedded ERB
// engine over their view of Schosen, draw the second-cluster lottery and
// initiate if selected.
func (o *Optimized) startClusterERB(rnd uint32) {
	if !o.chosen {
		return
	}
	members := sortedIDs(o.schosen)
	if len(members) < 2 {
		return // degenerate cluster; the run will output bottom
	}
	tc := (len(members) - 1) / 2
	if tc > o.params.MaxClusterT {
		tc = o.params.MaxClusterT
	}
	eng, err := erb.NewEngine(o.peer, erb.Config{
		Members:    members,
		T:          tc,
		StartRound: 2,
	})
	if err != nil {
		return
	}
	o.eng = eng
	o.peer.Trace(telemetry.KindCluster, wire.NoNode, uint64(len(members)))
	draw, err := o.peer.Enclave().RandomBelow(o.params.InitRange)
	if err != nil {
		return
	}
	if draw == 0 {
		v, err := o.peer.Enclave().RandomValue()
		if err != nil {
			return
		}
		o.eng.SetInput(v)
	}
	o.eng.OnRound(rnd)
}

// finalPhase is the last round: cluster members snapshot their agreed set
// M_i and multicast FINAL to the whole network.
func (o *Optimized) finalPhase(rnd uint32) {
	if o.eng != nil {
		o.eng.OnRound(rnd) // finalizes any still-open instances to bottom
		set := acceptedSet(o.eng.Results())
		msg := &wire.Message{
			Type:      wire.TypeFinal,
			Sender:    o.peer.ID(),
			Initiator: o.peer.ID(),
			Instance:  o.peer.Instance(),
			Seq:       o.peer.SeqOf(o.peer.ID()),
			Round:     rnd,
			Set:       set,
		}
		_ = o.peer.Multicast(nil, msg, 0) //lint:allow sealerr a halted sender's tally is discarded along with the node; self-tally below is then moot
		// The sender counts its own set toward the tally.
		o.tallyFinal(o.peer.ID(), set, rnd)
	}
}

// OnMessage implements runtime.Protocol.
func (o *Optimized) OnMessage(msg *wire.Message) {
	if msg.Instance != o.peer.Instance() {
		return
	}
	switch msg.Type {
	case wire.TypeChosen:
		o.onChosen(msg)
	case wire.TypeInit, wire.TypeEcho:
		if o.eng != nil {
			o.eng.OnMessage(msg)
		}
	case wire.TypeFinal:
		o.onFinal(msg)
	default:
	}
}

// onChosen records a cluster membership announcement (round 1 only).
func (o *Optimized) onChosen(msg *wire.Message) {
	if msg.Round != 1 || msg.Sender != msg.Initiator {
		return
	}
	if msg.Seq != o.peer.SeqOf(msg.Sender) {
		return // replay (P6)
	}
	o.schosen[msg.Sender] = true
}

// onFinal records a FINAL set from a cluster member and decides when a
// majority of the (locally observed) cluster sent the identical set.
func (o *Optimized) onFinal(msg *wire.Message) {
	if int(msg.Round) != o.Rounds() || msg.Sender != msg.Initiator {
		return
	}
	if msg.Seq != o.peer.SeqOf(msg.Sender) {
		return // replay (P6)
	}
	if !o.schosen[msg.Sender] {
		return // FINAL from outside the observed cluster
	}
	o.tallyFinal(msg.Sender, msg.Set, msg.Round)
}

// tallyFinal counts one sender's set and decides on majority agreement.
func (o *Optimized) tallyFinal(sender wire.NodeID, set []wire.SetEntry, rnd uint32) {
	if o.decided {
		return
	}
	key := hashSet(set)
	tally, ok := o.finalSet[key]
	if !ok {
		tally = &finalTally{
			set:     append([]wire.SetEntry(nil), set...),
			senders: make(map[wire.NodeID]bool),
		}
		o.finalSet[key] = tally
	}
	tally.senders[sender] = true
	if len(tally.senders) >= o.finalThreshold() {
		o.result = foldSet(tally.set, rnd, o.peer.Now())
		o.decided = true
		o.peer.Trace(telemetry.KindDecide, wire.NoNode, uint64(len(o.result.Contributors)))
	}
}

// finalThreshold is the number of identical FINAL sets required: a
// majority of the locally observed cluster. With more than gamma honest
// and fewer than gamma byzantine members (Lemma F.1) the honest common
// set always reaches it.
func (o *Optimized) finalThreshold() int {
	return len(o.schosen)/2 + 1
}

// OnFinish implements runtime.Protocol.
func (o *Optimized) OnFinish() {
	if o.eng != nil {
		o.eng.OnFinish()
	}
	if !o.decided {
		o.result = Result{Round: uint32(o.Rounds()), At: o.peer.Now()}
		o.decided = true
		o.peer.Trace(telemetry.KindDecide, wire.NoNode, 0)
	}
}

// hashSet computes the canonical content hash of a FINAL set.
func hashSet(set []wire.SetEntry) [32]byte {
	h := sha256.New()
	var buf [4 + wire.ValueSize]byte
	for _, e := range set {
		buf[0] = byte(e.Initiator)
		buf[1] = byte(e.Initiator >> 8)
		buf[2] = byte(e.Initiator >> 16)
		buf[3] = byte(e.Initiator >> 24)
		copy(buf[4:], e.Value[:])
		h.Write(buf[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// sortedIDs returns the keys of a node set in ascending order.
func sortedIDs(set map[wire.NodeID]bool) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer for debugging.
func (o *Optimized) String() string {
	return fmt.Sprintf("erng.Optimized{chosen=%v cluster=%d decided=%v}", o.chosen, len(o.schosen), o.decided)
}
