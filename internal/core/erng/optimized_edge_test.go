package erng_test

import (
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

func TestOptimizedChosenOmittedToSome(t *testing.T) {
	// Byzantine cluster members whose CHOSEN announcements reach only part
	// of the network create divergent cluster views; the FINAL majority
	// rule must still converge all honest nodes onto one output.
	const n, byz = 30, 9
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 81,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= byz {
				return tr
			}
			// Drop to odd-numbered destinations only: half the network
			// never learns these nodes' cluster membership.
			return adversary.Wrap(id, tr, adversary.OmitTo(func(dst wire.NodeID) bool {
				return dst%2 == 1
			}), int64(id))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, protos := runOptimized(t, d, byz, erng.ModeFallback, 0)
	// Views may differ in size across nodes...
	sizes := make(map[int]bool)
	for i := byz; i < n; i++ {
		sizes[len(protos[i].ClusterView())] = true
	}
	// ...but the decisions must not.
	common := checkCommon(t, results[byz:])
	if !common.OK {
		t.Fatal("divergent cluster views forced bottom in a runnable configuration")
	}
}

func TestOptimizedRejectsStaleEpochMessages(t *testing.T) {
	// Replay a full recorded epoch into the next one: all stale CHOSEN /
	// INIT / ECHO / FINAL envelopes must be discarded (P6), leaving the
	// second epoch's output intact and fresh.
	const n, byz = 12, 4
	oses := make(map[wire.NodeID]*adversary.OS, n)
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 82,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			os := adversary.Wrap(id, tr, nil, int64(id)) // honest recorder
			oses[id] = os
			return os
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := runOptimized(t, d, byz, erng.ModeFallback, 0)
	firstCommon := checkCommon(t, first)
	for _, p := range d.Peers {
		p.BumpSeqs()
	}
	// Second epoch with every node's first-epoch tape replayed at start.
	d.Sim.After(0, func() {
		for _, os := range oses {
			os.ReplayTape()
		}
	})
	second, _ := runOptimized(t, d, byz, erng.ModeFallback, 0)
	secondCommon := checkCommon(t, second)
	if !secondCommon.OK {
		t.Fatal("replayed tape broke the second epoch")
	}
	if secondCommon.Value == firstCommon.Value {
		t.Fatal("second epoch reproduced the first value (stale state accepted?)")
	}
}

func TestOptimizedClusterViewSorted(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 30, T: 10, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	_, protos := runOptimized(t, d, 10, erng.ModeFallback, 0)
	view := protos[0].ClusterView()
	for i := 1; i < len(view); i++ {
		if view[i] <= view[i-1] {
			t.Fatalf("cluster view not strictly sorted: %v", view)
		}
	}
	if protos[0].String() == "" {
		t.Fatal("String() empty")
	}
}

func TestOptimizedGammaOverride(t *testing.T) {
	// An explicit gamma forces sampled mode on a mid-size network.
	const n, byz = 120, 40
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 84})
	if err != nil {
		t.Fatal(err)
	}
	results, protos := runOptimized(t, d, byz, erng.ModeSampled, 10)
	p := protos[0].Params()
	if p.Mode != erng.ModeSampled || p.Gamma != 10 {
		t.Fatalf("params %+v, want sampled gamma=10", p)
	}
	common := checkCommon(t, results)
	if !common.OK {
		t.Fatal("sampled run with explicit gamma output bottom")
	}
	if got := protos[0].Rounds(); got != 14 {
		t.Fatalf("rounds = %d, want gamma+4 = 14", got)
	}
}

func TestOptimizedNonChosenNeverInitiates(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 30, T: 10, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	results, protos := runOptimized(t, d, 10, erng.ModeFallback, 0)
	common := checkCommon(t, results)
	chosen := make(map[wire.NodeID]bool)
	for i, pr := range protos {
		if pr.Chosen() {
			chosen[wire.NodeID(i)] = true
		}
	}
	for _, c := range common.Contributors {
		if !chosen[c] {
			t.Fatalf("contributor %d never joined the cluster", c)
		}
	}
}
