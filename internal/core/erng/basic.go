package erng

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Result is the outcome of an ERNG run at one node.
type Result struct {
	// OK is false when the protocol output bottom (no contribution was
	// accepted — only possible when every initiator failed).
	OK bool
	// Value is the common unbiased random number r.
	Value wire.Value
	// Contributors lists the initiators whose values entered Sfinal, in
	// ascending id order.
	Contributors []wire.NodeID
	// Round is the lockstep round of the decision; At its virtual time.
	Round uint32
	At    time.Duration
}

// Basic is the unoptimized ERNG of Algorithm 3: one concurrent ERB
// instance per node, XOR of the accepted set. It implements
// runtime.Protocol.
type Basic struct {
	peer       runtime.Host
	t          int
	startRound uint32
	eng        *erb.Engine
	decided    bool
	result     Result
}

var _ runtime.Protocol = (*Basic)(nil)

// NewBasic builds the unoptimized ERNG for a network tolerating t < N/2.
// The node's random contribution is drawn inside the enclave (F2) at
// round 1 — the OS never observes it before it is committed (P3).
func NewBasic(peer runtime.Host, t int) (*Basic, error) {
	return NewBasicAt(peer, t, 1)
}

// NewBasicAt is NewBasic with an explicit start round: the embedded ERB
// launches (and the enclave contribution is drawn) at startRound instead
// of round 1. A multiplexed instance passes its admission round, so the
// same protocol runs at any offset of the shared lockstep schedule.
func NewBasicAt(peer runtime.Host, t int, startRound uint32) (*Basic, error) {
	if peer == nil {
		return nil, errors.New("erng: nil peer")
	}
	if startRound == 0 {
		startRound = 1
	}
	all := make([]wire.NodeID, peer.N())
	for i := range all {
		all[i] = wire.NodeID(i)
	}
	eng, err := erb.NewEngine(peer, erb.Config{
		T:                  t,
		StartRound:         startRound,
		ExpectedInitiators: all,
	})
	if err != nil {
		return nil, fmt.Errorf("erng: embedded ERB: %w", err)
	}
	return &Basic{peer: peer, t: t, startRound: startRound, eng: eng}, nil
}

// Rounds returns the last lockstep round the protocol needs (its start
// round plus t+1; t+2 total from a round-1 start).
func (b *Basic) Rounds() int { return b.eng.Rounds() }

// Result returns the node's decision once the protocol finished.
func (b *Basic) Result() (Result, bool) {
	return b.result, b.decided
}

// OnRound implements runtime.Protocol.
func (b *Basic) OnRound(rnd uint32) {
	if rnd == b.startRound {
		v, err := b.peer.Enclave().RandomValue()
		if err != nil {
			// Halted enclave: nothing to contribute.
			return
		}
		b.eng.SetInput(v)
	}
	b.eng.OnRound(rnd)
	b.maybeFinishEarly()
}

// OnMessage implements runtime.Protocol.
func (b *Basic) OnMessage(msg *wire.Message) {
	b.eng.OnMessage(msg)
	b.maybeFinishEarly()
}

// maybeFinishEarly folds the set as soon as every instance has accepted a
// value: the set can only shrink to bottom entries after this point, never
// change, so the fold is already final. This is the early stopping the
// paper's evaluation exhibits (Fig. 2b is flat while the network is
// honest); when any instance is still open the node waits for the t+2
// deadline as in Algorithm 3. Every contribution was committed in round 1
// inside enclaves, so deciding early gives the adversary no look-ahead.
func (b *Basic) maybeFinishEarly() {
	if b.decided || b.eng.AcceptedCount() != b.peer.N() {
		return
	}
	b.result = foldSet(acceptedSet(b.eng.Results()), b.peer.Round(), b.peer.Now())
	b.decided = true
	b.peer.Trace(telemetry.KindDecide, wire.NoNode, uint64(len(b.result.Contributors)))
}

// OnFinish implements runtime.Protocol: fold the accepted set.
func (b *Basic) OnFinish() {
	b.eng.OnFinish()
	if b.decided {
		return
	}
	set := acceptedSet(b.eng.Results())
	b.result = foldSet(set, b.peer.Round(), b.peer.Now())
	b.decided = true
	b.peer.Trace(telemetry.KindDecide, wire.NoNode, uint64(len(b.result.Contributors)))
}

// acceptedSet filters ERB results down to accepted (initiator, value)
// pairs in canonical (ascending initiator) order.
func acceptedSet(results map[wire.NodeID]erb.Result) []wire.SetEntry {
	out := make([]wire.SetEntry, 0, len(results))
	for id, res := range results {
		if res.Accepted {
			out = append(out, wire.SetEntry{Initiator: id, Value: res.Value})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Initiator < out[j].Initiator })
	return out
}

// foldSet XORs a canonical set into a Result.
func foldSet(set []wire.SetEntry, rnd uint32, at time.Duration) Result {
	res := Result{Round: rnd, At: at}
	if len(set) == 0 {
		return res
	}
	res.OK = true
	res.Contributors = make([]wire.NodeID, len(set))
	for i, e := range set {
		res.Contributors[i] = e.Initiator
		res.Value = res.Value.XOR(e.Value)
	}
	return res
}
