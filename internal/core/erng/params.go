// Package erng implements the paper's second primary contribution: the
// Enclaved Random Number Generation protocols of Section 5.
//
//   - Basic (Algorithm 3): every node broadcasts an enclave-generated
//     random value via ERB; the beacon output is the XOR of the accepted
//     set. Tolerates t < N/2 with O(N) rounds and O(N^3) communication.
//   - Optimized (Algorithm 6): a representative cluster is sampled with
//     private enclave randomness (blind-box, P3), ERB runs only inside the
//     cluster, and the cluster disseminates the agreed set to everyone.
//     Tolerates t <= N/3 with O(log N) rounds and O(N log N)
//     communication when N is large enough; for small N it falls back —
//     exactly as the paper's evaluation does — to a cluster of about 2/3
//     of the network.
package erng

import (
	"fmt"
	"math"
)

// Mode selects how the optimized protocol samples its cluster.
type Mode int

// Sampling modes.
const (
	// ModeAuto picks ModeSampled when N is large enough for the Chernoff
	// bounds of Lemma F.1 to be meaningful, ModeFallback otherwise.
	ModeAuto Mode = iota
	// ModeSampled is the asymptotic construction: the first cluster joins
	// with probability ~2*gamma/N, the second initiates with probability
	// 1/ceil(sqrt(gamma)).
	ModeSampled
	// ModeFallback fixes the cluster at ~2/3 of the network and lets
	// every cluster member initiate, matching the paper's evaluation at
	// small N (Section 6.2).
	ModeFallback
)

// Params are the resolved sampling parameters of one optimized-ERNG run.
type Params struct {
	// Mode is the resolved sampling mode (never ModeAuto).
	Mode Mode
	// Gamma is the statistical parameter of Algorithm 6.
	Gamma int
	// JoinRange is the size of the uniform draw for first-cluster
	// selection: a node joins when its draw is 0 (sampled mode) — the
	// draw from {0, ..., N/(2*gamma)-1} of Algorithm 6. In fallback mode
	// a node joins when its draw from {0,1,2} is nonzero (probability
	// 2/3).
	JoinRange uint64
	// InitRange is the second-cluster draw range gamma'; a cluster
	// member initiates an ERB instance when its draw is 0. 1 means
	// every member initiates (fallback).
	InitRange uint64
	// MaxClusterT is the byzantine bound the embedded cluster ERB is
	// provisioned for; it determines the global round schedule.
	MaxClusterT int
}

// Rounds returns the total lockstep rounds of the optimized protocol:
// the paper's gamma+4 schedule generalized to the provisioned cluster
// bound (round 1 CHOSEN, rounds 2..T+3 embedded ERB window, final round
// FINAL dissemination).
func (p Params) Rounds() int {
	return p.MaxClusterT + 4
}

// minSampledN is the network size below which the sampled construction
// cannot pick a cluster that is simultaneously small (join range >= 3)
// and safe (gamma large enough for the tail bounds); below it ModeAuto
// resolves to ModeFallback, like the paper's evaluation.
const minSampledN = 256

// ResolveParams computes the sampling parameters for a network of size n
// tolerating t <= n/3 byzantine nodes. gammaOverride > 0 forces gamma in
// sampled mode; mode ModeAuto selects by size.
func ResolveParams(n, t int, mode Mode, gammaOverride int) (Params, error) {
	if n < 4 {
		return Params{}, fmt.Errorf("erng: optimized ERNG needs at least 4 nodes, got %d", n)
	}
	if t < 0 || 3*t > n {
		return Params{}, fmt.Errorf("erng: optimized ERNG requires t <= N/3, got t=%d N=%d", t, n)
	}
	if mode == ModeAuto {
		if n >= minSampledN || gammaOverride > 0 {
			mode = ModeSampled
		} else {
			mode = ModeFallback
		}
	}
	switch mode {
	case ModeSampled:
		gamma := gammaOverride
		if gamma <= 0 {
			// gamma = Theta(log N): 3*ln N keeps the Lemma F.1 failure
			// probabilities e^(-gamma/24), e^(-gamma/41) shrinking with N
			// while the cluster stays O(log N).
			gamma = int(math.Ceil(3 * math.Log(float64(n))))
		}
		if gamma < 4 {
			gamma = 4
		}
		joinRange := uint64(math.Round(float64(n) / (2 * float64(gamma))))
		if joinRange < 2 {
			return Params{}, fmt.Errorf("erng: N=%d too small for sampled cluster with gamma=%d (join range %d)", n, gamma, joinRange)
		}
		initRange := uint64(math.Ceil(math.Sqrt(float64(gamma))))
		if initRange < 1 {
			initRange = 1
		}
		return Params{
			Mode:        ModeSampled,
			Gamma:       gamma,
			JoinRange:   joinRange,
			InitRange:   initRange,
			MaxClusterT: gamma,
		}, nil
	case ModeFallback:
		// Cluster ~ 2N/3 (join with probability 2/3); every member
		// initiates. The cluster can contain every byzantine node, so the
		// embedded ERB is provisioned for t_c up to N/3 plus slack for
		// sampling variance.
		gamma := (n + 2) / 3
		return Params{
			Mode:        ModeFallback,
			Gamma:       gamma,
			JoinRange:   3,
			InitRange:   1,
			MaxClusterT: gamma + 2,
		}, nil
	default:
		return Params{}, fmt.Errorf("erng: unknown mode %d", mode)
	}
}

// joined reports whether a first-cluster draw means "join" under the mode.
func (p Params) joined(draw uint64) bool {
	if p.Mode == ModeFallback {
		return draw != 0 // probability 2/3
	}
	return draw == 0 // probability 1/JoinRange ~ 2*gamma/N
}
