package randomwalk_test

import (
	"errors"
	"math/rand"
	"testing"

	"sgxp2p/internal/randomwalk"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

type stubSource struct {
	rng *rand.Rand
	err error
}

func (s *stubSource) Next() (wire.Value, error) {
	if s.err != nil {
		return wire.Value{}, s.err
	}
	var v wire.Value
	s.rng.Read(v[:])
	return v, nil
}

func TestGraphBasics(t *testing.T) {
	g := randomwalk.NewGraph()
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // idempotent
	g.AddEdge(1, 2)
	g.AddEdge(3, 3) // self loop ignored
	if got := len(g.Neighbors(0)); got != 1 {
		t.Fatalf("node 0 degree %d, want 1", got)
	}
	if got := len(g.Neighbors(1)); got != 2 {
		t.Fatalf("node 1 degree %d, want 2", got)
	}
	if g.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.Nodes())
	}
}

func TestRingConnected(t *testing.T) {
	g := randomwalk.Ring(20, 2)
	for i := 0; i < 20; i++ {
		if len(g.Neighbors(wire.NodeID(i))) < 2 {
			t.Fatalf("ring node %d degree %d too low", i, len(g.Neighbors(wire.NodeID(i))))
		}
	}
}

func TestWalkStaysOnEdges(t *testing.T) {
	g := randomwalk.Ring(32, 3)
	w, err := randomwalk.New(&stubSource{rng: rand.New(rand.NewSource(4))}, g)
	if err != nil {
		t.Fatal(err)
	}
	path, err := w.Walk(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 51 {
		t.Fatalf("path length %d, want 51", len(path))
	}
	for i := 1; i < len(path); i++ {
		nbrs := g.Neighbors(path[i-1])
		found := false
		for _, n := range nbrs {
			if n == path[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("hop %d: %d -> %d is not an edge", i, path[i-1], path[i])
		}
	}
}

func TestWalkDeterministicAcrossNodes(t *testing.T) {
	g := randomwalk.Ring(32, 3)
	w1, _ := randomwalk.New(&stubSource{rng: rand.New(rand.NewSource(5))}, g)
	w2, _ := randomwalk.New(&stubSource{rng: rand.New(rand.NewSource(5))}, g)
	p1, err := w1.Walk(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w2.Walk(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("step %d differs: %d vs %d", i, p1[i], p2[i])
		}
	}
}

func TestStepChoicesRoughlyUniform(t *testing.T) {
	const degree = 8
	counts := make([]int, degree)
	rng := rand.New(rand.NewSource(6))
	var e wire.Value
	for i := 0; i < 8000; i++ {
		rng.Read(e[:])
		counts[randomwalk.Step(e[:], uint64(i), 3, degree)]++
	}
	chi, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	// 7 degrees of freedom; 99.9th percentile ~ 24.3. Generous margin.
	if chi > 30 {
		t.Fatalf("step choice chi-square %.1f too high: %v", chi, counts)
	}
}

func TestWalkValidation(t *testing.T) {
	g := randomwalk.Ring(8, 1)
	if _, err := randomwalk.New(nil, g); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := randomwalk.New(&stubSource{rng: rand.New(rand.NewSource(1))}, randomwalk.NewGraph()); err == nil {
		t.Error("empty graph accepted")
	}
	w, err := randomwalk.New(&stubSource{rng: rand.New(rand.NewSource(1))}, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Walk(99, 5); err == nil {
		t.Error("walk from isolated node accepted")
	}
	wErr, err := randomwalk.New(&stubSource{err: errors.New("down")}, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wErr.Walk(0, 5); err == nil {
		t.Error("beacon error not propagated")
	}
}
