// Package randomwalk implements the random-walk application of the
// paper's Appendix H: byzantine-resilient random walks over a P2P
// topology. Sampling peers by random walk is a standard way to maintain
// expander-like overlays; if the step choices can be biased, an adversary
// herds walks toward byzantine regions. Here every step is drawn from the
// common unbiased beacon value, so all honest nodes compute the same walk
// and no participant can steer it.
package randomwalk

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxp2p/internal/beacon"
	"sgxp2p/internal/wire"
)

// Graph is an undirected P2P topology given as adjacency lists.
type Graph struct {
	adj map[wire.NodeID][]wire.NodeID
}

// NewGraph builds an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[wire.NodeID][]wire.NodeID)}
}

// AddEdge inserts an undirected edge (idempotent).
func (g *Graph) AddEdge(a, b wire.NodeID) {
	if a == b {
		return
	}
	if !contains(g.adj[a], b) {
		g.adj[a] = append(g.adj[a], b)
	}
	if !contains(g.adj[b], a) {
		g.adj[b] = append(g.adj[b], a)
	}
}

// Neighbors returns the adjacency list of a node (shared slice; callers
// must not mutate).
func (g *Graph) Neighbors(id wire.NodeID) []wire.NodeID {
	return g.adj[id]
}

// Nodes returns the number of nodes with at least one edge.
func (g *Graph) Nodes() int { return len(g.adj) }

func contains(list []wire.NodeID, id wire.NodeID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// Ring builds a ring of n nodes with k chords per node (a simple
// expander-ish overlay used by the example and tests).
func Ring(n, chords int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddEdge(wire.NodeID(i), wire.NodeID((i+1)%n))
		for c := 2; c < 2+chords; c++ {
			g.AddEdge(wire.NodeID(i), wire.NodeID((i+c*c)%n))
		}
	}
	return g
}

// Walker performs beacon-driven random walks.
type Walker struct {
	src beacon.Source
	g   *Graph
}

// New builds a walker over a graph and beacon source.
func New(src beacon.Source, g *Graph) (*Walker, error) {
	if src == nil {
		return nil, errors.New("randomwalk: nil beacon source")
	}
	if g == nil || g.Nodes() == 0 {
		return nil, errors.New("randomwalk: empty graph")
	}
	return &Walker{src: src, g: g}, nil
}

// Walk performs a walk of the given number of steps from start, drawing
// one beacon value and expanding it into per-step choices. It returns the
// visited nodes including the start.
func (w *Walker) Walk(start wire.NodeID, steps int) ([]wire.NodeID, error) {
	if len(w.g.Neighbors(start)) == 0 {
		return nil, fmt.Errorf("randomwalk: start node %d has no edges", start)
	}
	v, err := w.src.Next()
	if err != nil {
		return nil, fmt.Errorf("randomwalk: beacon: %w", err)
	}
	path := make([]wire.NodeID, 0, steps+1)
	path = append(path, start)
	cur := start
	for s := 0; s < steps; s++ {
		nbrs := w.g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[Step(v[:], uint64(s), cur, len(nbrs))]
		path = append(path, cur)
	}
	return path, nil
}

// Step is the pure per-hop choice: index = H(entropy, step, position) mod
// degree. Exposed so a walk can be re-verified against the beacon trace.
func Step(entropy []byte, step uint64, at wire.NodeID, degree int) int {
	h := sha256.New()
	h.Write([]byte("sgxp2p/randomwalk/v1/"))
	h.Write(entropy)
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], step)
	binary.LittleEndian.PutUint32(buf[8:], uint32(at))
	h.Write(buf[:])
	sum := h.Sum(nil)
	return int(binary.LittleEndian.Uint64(sum[:8]) % uint64(degree))
}
