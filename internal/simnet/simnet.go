// Package simnet implements the simulated synchronous network the
// experiments run on: the Go analogue of the paper's DeterLab testbed
// (40 machines sharing one 128 MB/s link, up to 2^10 peers).
//
// The network is driven by the discrete-event engine in internal/vclock.
// Every message experiences
//
//   - a propagation latency, uniform in [BaseLatency, Delta] (the TCP/IP
//     substrate's bounded delivery delay, assumption S3), plus
//   - serialization on a single shared link of configurable bandwidth,
//     modelled as a FIFO queue, which reproduces the bandwidth-bottleneck
//     knee the paper observes in Figures 2a/2b.
//
// The network also keeps the traffic accounting (message and byte counts,
// per node and total) that the communication-complexity experiments of
// Figure 3 report, and supports detaching nodes, which is how
// halt-on-divergence (P4) churn is reflected at the transport level.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/vclock"
	"sgxp2p/internal/wire"
)

// Handler receives a delivered payload on the destination node. The
// payload buffer belongs to the network and is recycled once the handler
// returns; a handler that keeps the bytes must copy them.
type Handler func(src wire.NodeID, payload []byte)

// Config describes the simulated network.
type Config struct {
	// N is the number of nodes.
	N int
	// Delta is the one-way delivery bound (assumption S3): propagation
	// latency never exceeds it. A round lasts 2*Delta.
	Delta time.Duration
	// BaseLatency is the minimum propagation latency. Defaults to
	// Delta/10.
	BaseLatency time.Duration
	// Bandwidth is the shared-link bandwidth in bytes per second.
	// Zero means unlimited (no serialization delay).
	Bandwidth float64
	// Seed seeds the latency jitter. Runs with equal seeds are
	// bit-for-bit reproducible.
	Seed int64
}

// DefaultBandwidth matches the paper's testbed: a shared 128 MB/s link.
const DefaultBandwidth = 128 << 20

// Traffic aggregates transport-level accounting.
type Traffic struct {
	// Messages is the number of payloads handed to the network.
	Messages uint64
	// Bytes is the total payload bytes handed to the network.
	Bytes uint64
	// Dropped counts messages discarded because the source or
	// destination had been detached (churned out by P4).
	Dropped uint64
	// Late counts deliveries whose total delay (queueing + propagation)
	// exceeded Delta — a sign the configured Delta is too small for the
	// offered load, exactly the condition that forced the authors to
	// raise Delta for the ERNG runs.
	Late uint64
}

// Network is the simulated network. It is single-threaded: all sends and
// deliveries happen on the event loop of the underlying vclock.Sim.
type Network struct {
	sim *vclock.Sim
	cfg Config
	rng *rand.Rand
	// nodes packs each node's delivery state (handler, detach flag,
	// detach epoch) into one slot, so the per-delivery destination
	// checks are one indexed load instead of three scattered slices.
	nodes    []nodeSlot
	linkFree time.Duration
	traffic  Traffic
	perNode  []Traffic
	trace    *telemetry.Tracer
	ctr      *netCounters
	// free is the delivery-record free list. A record carries its payload
	// buffer and a prebound fire closure, so a steady-state send allocates
	// nothing: the payload is copied into the recycled buffer and the
	// recycled closure is scheduled. Records return to the list after
	// their handler ran (the single-threaded event loop guarantees the
	// handler cannot outlive the delivery event).
	free []*delivery
}

// nodeSlot is one node's delivery state. epoch counts the node's
// detachments: deliveries capture the destination epoch at send time
// and drop if it changed — frames in flight when a machine crashes are
// lost even if it reboots before their arrival time.
type nodeSlot struct {
	handler  Handler
	epoch    int
	detached bool
}

// delivery is one in-flight frame: destination epoch captured at send
// time, the payload copy, and the prebound callback handed to the
// simulator.
type delivery struct {
	n        *Network
	src, dst wire.NodeID
	ep       int
	payload  []byte
	fire     func()
}

// run delivers (or drops) the frame, then recycles the record.
func (d *delivery) run() {
	n := d.n
	// Only the destination is re-checked at delivery time: envelopes
	// already in flight when their sender halts still arrive, as they
	// would on a real network. An epoch change means the destination
	// crashed after the send — the frame is lost even if it rebooted.
	if ns := &n.nodes[int(d.dst)]; ns.detached || ns.epoch != d.ep {
		n.traffic.Dropped++
		if n.ctr != nil {
			n.ctr.dropped.Inc()
		}
	} else if ns.handler != nil {
		ns.handler(d.src, d.payload)
	}
	n.free = append(n.free, d)
}

// getDelivery pops a recycled record or builds a fresh one.
func (n *Network) getDelivery() *delivery {
	if len(n.free) > 0 {
		d := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		return d
	}
	d := &delivery{n: n}
	d.fire = d.run
	return d
}

// netCounters are the transport-level metric handles; nil when the network
// runs without a metrics registry.
type netCounters struct {
	messages      *telemetry.Counter
	bytes         *telemetry.Counter
	dropped       *telemetry.Counter
	late          *telemetry.Counter
	envelopeBytes *telemetry.Histogram
}

// SetTelemetry attaches a tracer (detach/reattach churn events) and a
// metrics registry (traffic counters, envelope-size histogram) to the
// network. Either may be nil.
func (n *Network) SetTelemetry(tr *telemetry.Tracer, m *telemetry.Metrics) {
	n.trace = tr
	if m == nil {
		n.ctr = nil
		return
	}
	n.ctr = &netCounters{
		messages:      m.Counter("net_messages_total"),
		bytes:         m.Counter("net_bytes_total"),
		dropped:       m.Counter("net_dropped_total"),
		late:          m.Counter("net_late_total"),
		envelopeBytes: m.Histogram("net_envelope_bytes", []float64{64, 128, 256, 512, 1024, 4096, 16384}),
	}
}

// New creates a network of cfg.N disconnected ports on the given simulator.
func New(sim *vclock.Sim, cfg Config) (*Network, error) {
	if sim == nil {
		return nil, errors.New("simnet: nil simulator")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("simnet: invalid node count %d", cfg.N)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("simnet: invalid delta %v", cfg.Delta)
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = cfg.Delta / 10
	}
	if cfg.BaseLatency > cfg.Delta {
		return nil, fmt.Errorf("simnet: base latency %v exceeds delta %v", cfg.BaseLatency, cfg.Delta)
	}
	// Every event this network schedules — deliveries (≤ Delta ahead) and
	// the runtimes' lockstep ticks (2·Delta ahead) — sits within a few
	// Delta of now, which is exactly the locality the simulator's calendar
	// tier wants to know about.
	sim.SetHorizon(cfg.Delta)
	return &Network{
		sim:     sim,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make([]nodeSlot, cfg.N),
		perNode: make([]Traffic, cfg.N),
	}, nil
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *vclock.Sim { return n.sim }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// After schedules fn after the given virtual delay. It exists so protocol
// runtimes can depend on a narrow scheduling interface. The event is
// fire-and-forget (Schedule), so no cancellation handle is allocated.
func (n *Network) After(d time.Duration, fn func()) {
	n.sim.ScheduleAfter(d, fn)
}

// SetHandler registers the delivery callback for a node.
func (n *Network) SetHandler(id wire.NodeID, h Handler) {
	n.nodes[id].handler = h
}

// AddNode grows the network by one node and returns its id (dynamic
// membership, Appendix G).
func (n *Network) AddNode() wire.NodeID {
	id := wire.NodeID(len(n.nodes))
	n.nodes = append(n.nodes, nodeSlot{})
	n.perNode = append(n.perNode, Traffic{})
	n.cfg.N++
	return id
}

// Detach removes a node from the network: subsequent sends from or to it
// are dropped, and frames already in flight toward it are lost (its
// epoch advances, see Send). This is the transport-level effect of
// halt-on-divergence and of a machine crash. Out-of-range ids and
// already-detached nodes are no-ops.
func (n *Network) Detach(id wire.NodeID) {
	if int(id) >= len(n.nodes) || n.nodes[int(id)].detached {
		return
	}
	n.nodes[int(id)].detached = true
	n.nodes[int(id)].epoch++
	if n.trace != nil {
		n.trace.Record(id, 0, telemetry.KindDetach, wire.NoNode, 0, "")
	}
}

// Detached reports whether a node has been detached.
func (n *Network) Detached(id wire.NodeID) bool {
	return int(id) < len(n.nodes) && n.nodes[int(id)].detached
}

// Reattach restores a detached node — the transport-level half of a
// crash–restart (deploy.Restart): subsequent sends from and to the node
// flow again. Messages in flight at detach time stay dropped even if the
// reboot beats their arrival, exactly like frames lost while a real
// machine was down. Out-of-range ids are no-ops.
func (n *Network) Reattach(id wire.NodeID) {
	if int(id) >= len(n.nodes) {
		return
	}
	n.nodes[int(id)].detached = false
	if n.trace != nil {
		n.trace.Record(id, 0, telemetry.KindReattach, wire.NoNode, 0, "")
	}
}

// Send transmits payload from src to dst. The payload is copied into a
// pooled delivery record before Send returns, so the caller may reuse
// its buffer immediately — this is what lets the runtime seal every
// envelope into one per-peer scratch buffer. Delivery is scheduled on
// the simulator after queueing and propagation delay.
func (n *Network) Send(src, dst wire.NodeID, payload []byte) {
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) || src == dst {
		return
	}
	if n.nodes[int(src)].detached || n.nodes[int(dst)].detached {
		n.traffic.Dropped++
		if n.ctr != nil {
			n.ctr.dropped.Inc()
		}
		return
	}
	size := len(payload)
	n.traffic.Messages++
	n.traffic.Bytes += uint64(size)
	n.perNode[int(src)].Messages++
	n.perNode[int(src)].Bytes += uint64(size)
	if n.ctr != nil {
		n.ctr.messages.Inc()
		n.ctr.bytes.Add(uint64(size))
		n.ctr.envelopeBytes.Observe(float64(size))
	}

	now := n.sim.Now()
	start := now
	if n.cfg.Bandwidth > 0 {
		if n.linkFree > start {
			start = n.linkFree
		}
		tx := time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
		n.linkFree = start + tx
		start = n.linkFree
	}
	// Latency is strictly below Delta so that a message sent at a round
	// boundary is always delivered before the next boundary's lockstep
	// tick, never exactly on it.
	latency := n.cfg.BaseLatency
	if spread := n.cfg.Delta - n.cfg.BaseLatency; spread > 0 {
		latency += time.Duration(n.rng.Int63n(int64(spread)))
	}
	arrival := start + latency
	if arrival-now > n.cfg.Delta {
		n.traffic.Late++
		if n.ctr != nil {
			n.ctr.late.Inc()
		}
	}
	d := n.getDelivery()
	d.src, d.dst, d.ep = src, dst, n.nodes[int(dst)].epoch
	d.payload = append(d.payload[:0], payload...)
	n.sim.Schedule(arrival, d.fire)
}

// Traffic returns a snapshot of the aggregate traffic counters.
func (n *Network) Traffic() Traffic { return n.traffic }

// NodeTraffic returns a snapshot of one node's outbound traffic counters.
func (n *Network) NodeTraffic(id wire.NodeID) Traffic { return n.perNode[int(id)] }

// ResetTraffic zeroes all traffic counters. Experiments call it between
// the setup phase and the measured protocol instance so Figure 3 reports
// protocol traffic only, like the paper.
func (n *Network) ResetTraffic() {
	n.traffic = Traffic{}
	for i := range n.perNode {
		n.perNode[i] = Traffic{}
	}
}

// Port binds a node id to the network behind the narrow Transport-style
// interface protocol runtimes use.
type Port struct {
	net *Network
	id  wire.NodeID
}

// Port returns the port for a node.
func (n *Network) Port(id wire.NodeID) *Port {
	return &Port{net: n, id: id}
}

// ID returns the node id this port belongs to.
func (p *Port) ID() wire.NodeID { return p.id }

// Send transmits payload to dst.
func (p *Port) Send(dst wire.NodeID, payload []byte) {
	p.net.Send(p.id, dst, payload)
}

// SetHandler registers the delivery callback. The parameter uses the raw
// function type so *Port satisfies transport interfaces declared in other
// packages.
func (p *Port) SetHandler(h func(src wire.NodeID, payload []byte)) {
	p.net.SetHandler(p.id, h)
}

// Detach removes this node from the network.
func (p *Port) Detach() {
	p.net.Detach(p.id)
}

// After schedules fn after the given virtual delay.
func (p *Port) After(d time.Duration, fn func()) {
	p.net.After(d, fn)
}

// Now returns the current virtual time.
func (p *Port) Now() time.Duration {
	return p.net.Now()
}
