package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"sgxp2p/internal/vclock"
	"sgxp2p/internal/wire"
)

func newNet(t *testing.T, n int, bandwidth float64) (*vclock.Sim, *Network) {
	t.Helper()
	sim := vclock.New()
	net, err := New(sim, Config{N: n, Delta: time.Second, Bandwidth: bandwidth, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim, net
}

func TestNewValidation(t *testing.T) {
	sim := vclock.New()
	if _, err := New(nil, Config{N: 1, Delta: time.Second}); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := New(sim, Config{N: 0, Delta: time.Second}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(sim, Config{N: 1}); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := New(sim, Config{N: 1, Delta: time.Second, BaseLatency: 2 * time.Second}); err == nil {
		t.Error("base latency above delta accepted")
	}
}

func TestDeliveryWithinDelta(t *testing.T) {
	sim, net := newNet(t, 4, 0)
	var deliveredAt time.Duration
	var from wire.NodeID
	var got []byte
	net.SetHandler(1, func(src wire.NodeID, payload []byte) {
		deliveredAt = sim.Now()
		from = src
		got = payload
	})
	net.Send(0, 1, []byte("hello"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" || from != 0 {
		t.Fatalf("delivery mismatch: src=%d payload=%q", from, got)
	}
	if deliveredAt <= 0 || deliveredAt > time.Second {
		t.Fatalf("delivered at %v, want (0, 1s]", deliveredAt)
	}
	if net.Traffic().Late != 0 {
		t.Fatalf("unexpected late deliveries: %d", net.Traffic().Late)
	}
}

func TestSelfAndOutOfRangeSendsIgnored(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	net.SetHandler(0, func(wire.NodeID, []byte) { t.Error("self-delivery happened") })
	net.Send(0, 0, []byte("self"))
	net.Send(0, 99, []byte("oob"))
	net.Send(99, 0, []byte("oob-src"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tr := net.Traffic(); tr.Messages != 0 {
		t.Fatalf("counted %d messages, want 0", tr.Messages)
	}
}

func TestTrafficAccounting(t *testing.T) {
	sim, net := newNet(t, 3, 0)
	for id := wire.NodeID(0); id < 3; id++ {
		net.SetHandler(id, func(wire.NodeID, []byte) {})
	}
	net.Send(0, 1, make([]byte, 100))
	net.Send(0, 2, make([]byte, 50))
	net.Send(1, 2, make([]byte, 25))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	tr := net.Traffic()
	if tr.Messages != 3 || tr.Bytes != 175 {
		t.Fatalf("traffic = %+v, want 3 msgs / 175 bytes", tr)
	}
	if n0 := net.NodeTraffic(0); n0.Messages != 2 || n0.Bytes != 150 {
		t.Fatalf("node 0 traffic = %+v", n0)
	}
	net.ResetTraffic()
	if tr := net.Traffic(); tr.Messages != 0 || tr.Bytes != 0 {
		t.Fatalf("traffic after reset = %+v", tr)
	}
	if n0 := net.NodeTraffic(0); n0.Messages != 0 {
		t.Fatalf("node traffic after reset = %+v", n0)
	}
}

func TestDetachDropsBothDirections(t *testing.T) {
	sim, net := newNet(t, 3, 0)
	delivered := 0
	for id := wire.NodeID(0); id < 3; id++ {
		net.SetHandler(id, func(wire.NodeID, []byte) { delivered++ })
	}
	net.Detach(1)
	if !net.Detached(1) {
		t.Fatal("Detached(1) = false")
	}
	net.Send(0, 1, []byte("to detached"))
	net.Send(1, 2, []byte("from detached"))
	net.Send(0, 2, []byte("ok"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d messages, want 1", delivered)
	}
	if tr := net.Traffic(); tr.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped)
	}
}

func TestDetachMidFlightDropsDelivery(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	net.SetHandler(1, func(wire.NodeID, []byte) { t.Error("delivered to node detached mid-flight") })
	net.Send(0, 1, []byte("in flight"))
	// Detach before any delivery event can fire (deliveries are > 0).
	net.Detach(1)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tr := net.Traffic(); tr.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 bytes/s: each 500-byte message takes 500ms on the link, so ten
	// messages serialize to 5s of queueing even though latency <= 1s.
	sim := vclock.New()
	net, err := New(sim, Config{N: 2, Delta: time.Second, Bandwidth: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	count := 0
	net.SetHandler(1, func(wire.NodeID, []byte) {
		count++
		last = sim.Now()
	})
	for i := 0; i < 10; i++ {
		net.Send(0, 1, make([]byte, 500))
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("delivered %d, want 10", count)
	}
	if last < 5*time.Second {
		t.Fatalf("last delivery at %v, want >= 5s (link-limited)", last)
	}
	if net.Traffic().Late == 0 {
		t.Fatal("expected late deliveries under link saturation")
	}
}

func TestUnlimitedBandwidthNoQueueing(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	var last time.Duration
	net.SetHandler(1, func(wire.NodeID, []byte) { last = sim.Now() })
	for i := 0; i < 100; i++ {
		net.Send(0, 1, make([]byte, 1<<20))
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if last > time.Second {
		t.Fatalf("last delivery at %v, want <= delta with unlimited bandwidth", last)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		sim := vclock.New()
		net, err := New(sim, Config{N: 4, Delta: time.Second, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var times []time.Duration
		for id := wire.NodeID(0); id < 4; id++ {
			net.SetHandler(id, func(wire.NodeID, []byte) { times = append(times, sim.Now()) })
		}
		for i := 0; i < 20; i++ {
			net.Send(wire.NodeID(i%4), wire.NodeID((i+1)%4), make([]byte, 64))
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: not deterministic", i, a[i], b[i])
		}
	}
}

func TestPortWrapsNetwork(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	p0, p1 := net.Port(0), net.Port(1)
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Fatal("port ids wrong")
	}
	got := ""
	p1.SetHandler(func(src wire.NodeID, payload []byte) { got = string(payload) })
	p0.Send(1, []byte("via port"))
	fired := false
	p0.After(2*time.Second, func() { fired = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "via port" {
		t.Fatalf("payload = %q", got)
	}
	if !fired {
		t.Fatal("After callback did not fire")
	}
	if p0.Now() != sim.Now() {
		t.Fatal("Port.Now disagrees with simulator")
	}
	p1.Detach()
	if !net.Detached(1) {
		t.Fatal("Port.Detach did not detach")
	}
}

// Property: with unlimited bandwidth, every delivery happens within
// (0, Delta] of its send time, for arbitrary send schedules.
func TestQuickLatencyBound(t *testing.T) {
	f := func(seed int64, sends []uint8) bool {
		sim := vclock.New()
		net, err := New(sim, Config{N: 8, Delta: time.Second, Seed: seed})
		if err != nil {
			return false
		}
		ok := true
		sentAt := make(map[int]time.Duration)
		idx := 0
		for id := wire.NodeID(0); id < 8; id++ {
			net.SetHandler(id, func(src wire.NodeID, payload []byte) {
				i := int(payload[0]) | int(payload[1])<<8
				d := sim.Now() - sentAt[i]
				if d <= 0 || d > time.Second {
					ok = false
				}
			})
		}
		for _, s := range sends {
			src := wire.NodeID(s % 8)
			dst := wire.NodeID((s / 8) % 8)
			if src == dst {
				continue
			}
			i := idx
			idx++
			sentAt[i] = sim.Now()
			net.Send(src, dst, []byte{byte(i), byte(i >> 8)})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		return ok && net.Traffic().Late == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	sim := vclock.New()
	net, err := New(sim, Config{N: 2, Delta: time.Second, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	net.SetHandler(1, func(wire.NodeID, []byte) {})
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(0, 1, payload)
		sim.RunUntil(sim.Now() + time.Second)
	}
}

func TestAddNodeGrowsNetwork(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	id := net.AddNode()
	if id != 2 {
		t.Fatalf("new id = %d, want 2", id)
	}
	if net.Config().N != 3 {
		t.Fatalf("config N = %d, want 3", net.Config().N)
	}
	var got string
	net.SetHandler(id, func(src wire.NodeID, payload []byte) { got = string(payload) })
	net.Send(0, id, []byte("welcome"))
	var echoed string
	net.SetHandler(0, func(src wire.NodeID, payload []byte) {
		if src == id {
			echoed = string(payload)
		}
	})
	net.Send(id, 0, []byte("thanks"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "welcome" || echoed != "thanks" {
		t.Fatalf("bidirectional traffic with joined node failed: %q %q", got, echoed)
	}
	if tr := net.NodeTraffic(id); tr.Messages != 1 {
		t.Fatalf("joined node traffic %+v", tr)
	}
	net.Detach(id)
	if !net.Detached(id) {
		t.Fatal("joined node cannot be detached")
	}
}
