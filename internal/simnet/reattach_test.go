package simnet

import (
	"testing"

	"sgxp2p/internal/wire"
)

// TestReattachRestoresDelivery: after Reattach, traffic flows again in
// both directions — the transport-level half of a machine reboot.
func TestReattachRestoresDelivery(t *testing.T) {
	sim, net := newNet(t, 3, 0)
	delivered := 0
	for id := wire.NodeID(0); id < 3; id++ {
		net.SetHandler(id, func(wire.NodeID, []byte) { delivered++ })
	}
	net.Detach(1)
	net.Send(0, 1, []byte("while down"))
	net.Send(1, 2, []byte("from down"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d messages while detached, want 0", delivered)
	}

	net.Reattach(1)
	if net.Detached(1) {
		t.Fatal("Detached(1) = true after Reattach")
	}
	net.Send(0, 1, []byte("to rebooted"))
	net.Send(1, 2, []byte("from rebooted"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d messages after reattach, want 2", delivered)
	}
	if tr := net.Traffic(); tr.Dropped != 2 {
		t.Fatalf("dropped = %d, want the 2 sent while down", tr.Dropped)
	}
}

// TestReattachDoesNotResurrectInFlight: a message in flight when the
// destination detaches is gone for good — reattaching before its
// delivery time does not bring it back. A crashed machine loses what
// was addressed to it.
func TestReattachDoesNotResurrectInFlight(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	net.SetHandler(1, func(wire.NodeID, []byte) {
		t.Error("in-flight message delivered across a detach/reattach")
	})
	net.Send(0, 1, []byte("in flight"))
	// Detach and immediately reattach, both before the delivery event
	// fires: the drop decision is made at detach time, not delivery time.
	net.Detach(1)
	net.Reattach(1)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tr := net.Traffic(); tr.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped)
	}
}

// TestReattachIdempotent: reattaching a live node is a no-op.
func TestReattachIdempotent(t *testing.T) {
	sim, net := newNet(t, 2, 0)
	got := 0
	net.SetHandler(1, func(wire.NodeID, []byte) { got++ })
	net.Reattach(1)
	net.Reattach(99) // out of range: ignored
	net.Send(0, 1, []byte("still one delivery"))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
}
