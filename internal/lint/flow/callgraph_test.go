package flow

// Edge-case tests for call-graph construction: the resolution rules that are
// easy to get subtly wrong — closures capturing receivers, method values
// used as callbacks, interface dispatch over multiple implementers, and
// recursive components in the bottom-up SCC order.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildTestGraph typechecks a single import-free source file and builds the
// call graph over it as a one-package module.
func buildTestGraph(t *testing.T, src string) (*Graph, *PackageInfo) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var conf types.Config
	tpkg, err := conf.Check("edge", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &PackageInfo{Path: "edge", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return BuildGraph([]*PackageInfo{pkg}), pkg
}

// nodeNamed finds the graph node with the exact diagnostic name.
func nodeNamed(t *testing.T, g *Graph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	var all []string
	for _, n := range g.Nodes {
		all = append(all, n.Name)
	}
	t.Fatalf("no node named %q among %v", name, all)
	return nil
}

func calleeNames(n *FuncNode) []string {
	var names []string
	for _, c := range n.Callees {
		names = append(names, c.Name)
	}
	return names
}

func hasCallee(n *FuncNode, name string) bool {
	for _, c := range n.Callees {
		if strings.Contains(c.Name, name) {
			return true
		}
	}
	return false
}

// A closure capturing its enclosing method's receiver must produce a call
// edge from the literal's node to the method it invokes on the captured
// receiver, and the enclosing method's Callees must absorb it so bottom-up
// summary order sees the callee first.
func TestClosureCapturingReceiver(t *testing.T) {
	g, _ := buildTestGraph(t, `package edge
type T struct{ n int }
func (t *T) helper() int { return t.n }
func (t *T) outer() func() int {
	return func() int { return t.helper() }
}
`)
	lit := nodeNamed(t, g, "edge.(T).outer$1")
	if !hasCallee(lit, "helper") {
		t.Errorf("closure node callees = %v, want edge to helper", calleeNames(lit))
	}
	outer := nodeNamed(t, g, "edge.(T).outer")
	if !hasCallee(outer, "helper") {
		t.Errorf("outer callees = %v, want nested literal's helper edge absorbed", calleeNames(outer))
	}
}

// A method value bound to a variable and later invoked is a call through a
// function-typed value: resolution falls back to the address-taken set with
// a matching receiver-stripped signature.
func TestMethodValueAsCallback(t *testing.T) {
	g, _ := buildTestGraph(t, `package edge
type T struct{ n int }
func (t *T) M() int { return t.n }
func direct(t *T) int {
	f := t.M
	return f()
}
func run(cb func() int) int { return cb() }
func indirect(t *T) int { return run(t.M) }
`)
	direct := nodeNamed(t, g, "edge.direct")
	if !hasCallee(direct, ".M") {
		t.Errorf("direct callees = %v, want method value f() resolved to T.M", calleeNames(direct))
	}
	run := nodeNamed(t, g, "edge.run")
	if !hasCallee(run, ".M") {
		t.Errorf("run callees = %v, want callback cb() resolved to address-taken T.M", calleeNames(run))
	}
}

// A call through an interface must fan out to every in-module implementing
// type's method — and only to implementers.
func TestInterfaceDispatchMultipleImplementers(t *testing.T) {
	g, _ := buildTestGraph(t, `package edge
type I interface{ Do() int }
type A struct{}
func (A) Do() int { return 1 }
type B struct{}
func (*B) Do() int { return 2 }
type C struct{}
func (C) Other() int { return 3 }
func dispatch(i I) int { return i.Do() }
`)
	dispatch := nodeNamed(t, g, "edge.dispatch")
	var sites []*FuncNode
	for _, targets := range dispatch.Sites {
		sites = targets
	}
	if len(sites) != 2 {
		t.Fatalf("i.Do() resolved to %v, want exactly A.Do and B.Do", sites)
	}
	got := map[string]bool{}
	for _, n := range sites {
		got[n.Name] = true
	}
	for _, want := range []string{"edge.(A).Do", "edge.(B).Do"} {
		if !got[want] {
			t.Errorf("i.Do() candidates %v missing %s", sites, want)
		}
	}
}

// Mutually recursive functions form one SCC, and SCCOrder is bottom-up: the
// component of a callee appears no later than its caller's.
func TestRecursiveSCCOrder(t *testing.T) {
	g, _ := buildTestGraph(t, `package edge
func leaf() int { return 1 }
func even(n int) bool {
	if n == 0 {
		return leaf() == 1
	}
	return odd(n - 1)
}
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
func top(n int) bool { return even(n) }
`)
	order := g.SCCOrder()
	compOf := map[*FuncNode]int{}
	for i, comp := range order {
		for _, n := range comp {
			compOf[n] = i
		}
	}
	leaf := nodeNamed(t, g, "edge.leaf")
	even := nodeNamed(t, g, "edge.even")
	odd := nodeNamed(t, g, "edge.odd")
	top := nodeNamed(t, g, "edge.top")
	if compOf[even] != compOf[odd] {
		t.Errorf("even and odd are mutually recursive but landed in components %d and %d", compOf[even], compOf[odd])
	}
	if len(order[compOf[even]]) != 2 {
		t.Errorf("recursive component has %d members, want 2", len(order[compOf[even]]))
	}
	if !(compOf[leaf] < compOf[even] && compOf[even] < compOf[top]) {
		t.Errorf("SCC order not bottom-up: leaf=%d even/odd=%d top=%d", compOf[leaf], compOf[even], compOf[top])
	}
}
