// Package flow is the interprocedural layer under p2plint's seal-boundary
// analyzers (DESIGN.md §14): a module-wide call graph over go/ast + go/types
// with per-function summaries computed bottom-up over strongly connected
// components. It stays on the Go standard library, like the rest of
// internal/lint — no SSA, no x/tools.
//
// The package provides three building blocks:
//
//   - Graph (callgraph.go): every function declaration, method and function
//     literal in the module, with call edges. Dynamic calls are resolved
//     conservatively: interface method calls fan out to every in-module type
//     that implements the interface, and calls through function values fan
//     out to every address-taken function or method value with a matching
//     signature.
//   - the taint engine (taint.go): given a Spec naming taint sources,
//     sanitizers and sinks, it computes per-function summaries (which
//     parameters reach which sinks/results) in bottom-up SCC order and
//     reports every source-to-sink path as a Finding at the point where the
//     taint was introduced into the sink-reaching flow.
//   - the lock-order analysis (locks.go): per-function sets of mutexes
//     acquired (directly and transitively) and a module-wide
//     lock-acquisition graph whose cycles are potential deadlocks.
//
// Analyzers built on this package live in internal/lint (sealflow, keyleak,
// lockorder) and translate Findings into lint.Diagnostics.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PackageInfo is one loaded, type-checked package handed to the engine. It
// mirrors the fields of lint.Package without importing it (internal/lint
// imports flow, not the other way around).
type PackageInfo struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// PathMatches reports whether a package import path denotes the
// module-relative package pkg ("internal/channel"): equal or ending in
// "/"+pkg. Testdata fakes loaded under relative paths match the same way
// the real module packages do.
func PathMatches(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// PathIn reports whether path matches any of pkgs (see PathMatches).
func PathIn(path string, pkgs ...string) bool {
	for _, p := range pkgs {
		if PathMatches(path, p) {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of a method's receiver type with pointers
// stripped, or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return typeName(sig.Recv().Type())
}

// typeName returns the defined-type name of t with pointers stripped, or ""
// when t is not a (pointer to a) named type.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typePkgPath returns the import path of the package that defines t (with
// pointers stripped), or "" for unnamed types.
func typePkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}
