package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Spec configures one taint analysis: where taint is born (calls or types),
// what launders it, and where it must never arrive.
type Spec struct {
	// Kind names the tainted quantity in findings ("payload plaintext",
	// "key material").
	Kind string
	// Advice is appended to every finding after the flow description.
	Advice string
	// SourceCall reports that a call to fn (static callee; possibly
	// external to the module) returns tainted values. All non-error
	// results are tainted.
	SourceCall func(fn *types.Func) bool
	// SourceType reports that every value of type t is inherently tainted
	// (nil disables type-based sources).
	SourceType func(t types.Type) bool
	// SanitizerCall reports that fn's results are clean regardless of
	// argument taint, and that taint must not be tracked into fn.
	SanitizerCall func(fn *types.Func) bool
	// SinkArgs reports that fn is a sink: it returns the sensitive
	// positions in the plain argument list (receiver excluded) and a
	// description for findings. A nil args slice with ok=true marks every
	// argument sensitive. ok is false for non-sinks.
	SinkArgs func(fn *types.Func) (args []int, desc string, ok bool)
	// IgnorePkg, when non-nil, exempts whole packages from sink checks
	// (their own summaries are still computed, so taint still tracks
	// through them).
	IgnorePkg func(path string) bool
}

// Finding is one source-to-sink flow.
type Finding struct {
	Pos     token.Pos
	Message string
}

// source describes where a taint was born.
type source struct {
	what string
}

// sinkRec describes a sink reachable from a tainted value, possibly through
// a chain of calls.
type sinkRec struct {
	sink string
	via  string
}

// taint is the lattice value of one expression or variable: the set of
// enclosing-function parameters whose taint it carries (bitset, receiver is
// bit 0) plus the sources that reach it unconditionally.
type taint struct {
	params uint64
	srcs   []source
}

func (t taint) empty() bool { return t.params == 0 && len(t.srcs) == 0 }

const maxSrcs = 3

func mergeSrcs(dst []source, more []source) ([]source, bool) {
	changed := false
outer:
	for _, s := range more {
		for _, d := range dst {
			if d.what == s.what {
				continue outer
			}
		}
		if len(dst) >= maxSrcs {
			break
		}
		dst = append(dst, s)
		changed = true
	}
	return dst, changed
}

func (t taint) union(o taint) taint {
	out := taint{params: t.params | o.params}
	out.srcs = append(out.srcs, t.srcs...)
	out.srcs, _ = mergeSrcs(out.srcs, o.srcs)
	return out
}

// Summary is one function's taint behaviour as seen by its callers. Param
// indices cover the receiver (index 0 for methods) followed by the declared
// parameters.
type Summary struct {
	nParams int
	// resultParams[r] = param bitset flowing into result r.
	resultParams []uint64
	// resultSrcs[r] = sources flowing into result r unconditionally.
	resultSrcs [][]source
	// paramSinks[p] = sinks transitively reachable from param p.
	paramSinks [][]sinkRec
	// paramWrites[p] = param bitset written into param p's referent
	// (pointer/slice/map params and receivers).
	paramWrites []uint64
	// paramWriteSrcs[p] = sources written into param p's referent.
	paramWriteSrcs [][]source
}

func newSummary(nParams, nResults int) *Summary {
	return &Summary{
		nParams:        nParams,
		resultParams:   make([]uint64, nResults),
		resultSrcs:     make([][]source, nResults),
		paramSinks:     make([][]sinkRec, nParams),
		paramWrites:    make([]uint64, nParams),
		paramWriteSrcs: make([][]source, nParams),
	}
}

func (s *Summary) addSink(p int, rec sinkRec) bool {
	if p < 0 || p >= s.nParams {
		return false
	}
	// Identity is the sink alone: the first-recorded (shortest) via chain
	// wins, so fixpoint iterations don't multiply one flow into a chain
	// per call-path length.
	for _, r := range s.paramSinks[p] {
		if r.sink == rec.sink {
			return false
		}
	}
	if len(s.paramSinks[p]) >= 8 {
		return false
	}
	s.paramSinks[p] = append(s.paramSinks[p], rec)
	return true
}

// ResultSources returns the labels of the sources that flow unconditionally
// into result r, for analyzer post-passes over the computed summaries.
func (s *Summary) ResultSources(r int) []string {
	if r < 0 || r >= len(s.resultSrcs) {
		return nil
	}
	out := make([]string, 0, len(s.resultSrcs[r]))
	for _, src := range s.resultSrcs[r] {
		out = append(out, src.what)
	}
	sort.Strings(out)
	return out
}

// Taint runs the analysis over the whole graph and returns the findings
// sorted by position.
func Taint(g *Graph, spec *Spec) []Finding {
	findings, _ := TaintSummaries(g, spec)
	return findings
}

// TaintSummaries is Taint plus the per-function summaries the fixpoint
// converged on, so analyzers can run post-passes (e.g. keyleak's
// exported-return check) without re-walking the module.
func TaintSummaries(g *Graph, spec *Spec) ([]Finding, map[*FuncNode]*Summary) {
	e := &taintEngine{
		g:        g,
		spec:     spec,
		sums:     make(map[*FuncNode]*Summary),
		reported: make(map[string]Finding),
	}
	for _, comp := range g.SCCOrder() {
		for iter := 0; iter < 32; iter++ {
			changed := false
			for _, n := range comp {
				if e.analyze(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	out := make([]Finding, 0, len(e.reported))
	for _, f := range e.reported {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Message < out[j].Message
	})
	return out, e.sums
}

type taintEngine struct {
	g        *Graph
	spec     *Spec
	sums     map[*FuncNode]*Summary
	reported map[string]Finding
}

// funcState is the per-analysis mutable state of one function.
type funcState struct {
	e          *taintEngine
	n          *FuncNode
	paramBit   map[types.Object]int
	results    []types.Object // named result objects (nil entries for unnamed)
	obj        map[types.Object]taint
	sum        *Summary
	changed    bool
	sumChanged bool
	// callMemo bounds re-evaluation of nested calls within one pass.
	callMemo map[*ast.CallExpr]taint
}

func (e *taintEngine) analyze(n *FuncNode) bool {
	if n.Body == nil {
		return false
	}
	nResults := n.Sig.Results().Len()
	st := &funcState{
		e:        e,
		n:        n,
		paramBit: make(map[types.Object]int),
		obj:      make(map[types.Object]taint),
		sum:      e.sums[n],
	}
	if st.sum == nil {
		st.sum = newSummary(paramCount(n.Sig), nResults)
		e.sums[n] = st.sum
	}
	st.bindParams()
	// Fixpoint over the (flow-insensitive) body walk: taint only grows.
	for iter := 0; iter < 32; iter++ {
		st.changed = false
		st.callMemo = make(map[*ast.CallExpr]taint)
		st.walk(n.Body, 0)
		if !st.changed {
			break
		}
	}
	// changed is reset by the last stable iteration; report whether the
	// summary grew at any point during this analysis via sumChanged.
	return st.sumChanged
}

func paramCount(sig *types.Signature) int {
	c := sig.Params().Len()
	if sig.Recv() != nil {
		c++
	}
	return c
}

// bindParams maps receiver and parameter objects to bit positions, and
// collects named result objects.
func (st *funcState) bindParams() {
	sig := st.n.Sig
	bit := 0
	if recv := sig.Recv(); recv != nil {
		st.paramBit[recv] = bit
		bit++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		st.paramBit[sig.Params().At(i)] = bit
		bit++
	}
	// The AST declares its own idents for receiver/params; their Defs are
	// normally the same objects as the signature's, but bind them
	// explicitly so the mapping cannot depend on go/types sharing.
	info := st.n.Pkg.Info
	bindField := func(fl *ast.FieldList, startBit int) {
		if fl == nil {
			return
		}
		b := startBit
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				b++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					st.paramBit[obj] = b
				}
				b++
			}
		}
	}
	if st.n.Decl != nil {
		startBit := 0
		if st.n.Decl.Recv != nil {
			bindField(st.n.Decl.Recv, 0)
			startBit = 1
		}
		bindField(st.n.Decl.Type.Params, startBit)
	} else if st.n.Lit != nil {
		bindField(st.n.Lit.Type.Params, 0)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" {
			st.results = append(st.results, r)
		} else {
			st.results = append(st.results, nil)
		}
	}
}

// walk processes every statement in body. litDepth tracks descent into
// nested function literals: their bodies are analyzed inline (captured
// variables resolve against this function's taint state) but their return
// statements do not contribute to this function's results.
func (st *funcState) walk(body ast.Node, litDepth int) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			if nd == body {
				return true
			}
			st.walk(s.Body, litDepth+1)
			return false
		case *ast.AssignStmt:
			st.assign(s)
		case *ast.ValueSpec:
			st.valueSpec(s)
		case *ast.RangeStmt:
			st.rangeStmt(s)
		case *ast.SendStmt:
			st.taintRoot(s.Chan, st.exprTaint(s.Value))
		case *ast.ReturnStmt:
			if litDepth == 0 {
				st.returnStmt(s)
			}
		case *ast.CallExpr:
			st.callTaint(s)
		}
		return true
	})
	if litDepth == 0 {
		// Named results carry taint through bare returns and deferred
		// writes; fold their final state into the summary.
		for i, obj := range st.results {
			if obj == nil {
				continue
			}
			st.recordResult(i, st.obj[obj])
		}
	}
}

func (st *funcState) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment from a call or type assertion.
		switch r := s.Rhs[0].(type) {
		case *ast.CallExpr:
			ts := st.callResults(r)
			for i, lhs := range s.Lhs {
				if i < len(ts) {
					st.assignTo(lhs, ts[i])
				}
			}
			return
		case *ast.TypeAssertExpr:
			st.assignTo(s.Lhs[0], st.exprTaint(r.X))
			return
		case *ast.IndexExpr, *ast.UnaryExpr:
			st.assignTo(s.Lhs[0], st.exprTaint(s.Rhs[0]))
			return
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			st.assignTo(lhs, st.exprTaint(s.Rhs[i]))
		}
	}
}

func (st *funcState) valueSpec(s *ast.ValueSpec) {
	if len(s.Values) == 1 && len(s.Names) > 1 {
		if call, ok := s.Values[0].(*ast.CallExpr); ok {
			ts := st.callResults(call)
			for i, name := range s.Names {
				if i < len(ts) {
					st.bindIdent(name, ts[i])
				}
			}
			return
		}
	}
	for i, name := range s.Names {
		if i < len(s.Values) {
			st.bindIdent(name, st.exprTaint(s.Values[i]))
		}
	}
}

func (st *funcState) rangeStmt(s *ast.RangeStmt) {
	t := st.exprTaint(s.X)
	if t.empty() {
		return
	}
	if s.Key != nil {
		st.assignTo(s.Key, t)
	}
	if s.Value != nil {
		st.assignTo(s.Value, t)
	}
}

func (st *funcState) returnStmt(s *ast.ReturnStmt) {
	for i, e := range s.Results {
		if len(s.Results) == 1 && st.sum != nil && len(st.sum.resultParams) > 1 {
			// return f() forwarding a tuple.
			if call, ok := e.(*ast.CallExpr); ok {
				for r, t := range st.callResults(call) {
					st.recordResult(r, t)
				}
				return
			}
		}
		st.recordResult(i, st.exprTaint(e))
	}
}

func (st *funcState) recordResult(i int, t taint) {
	if i >= len(st.sum.resultParams) || t.empty() {
		return
	}
	if st.sum.resultParams[i]|t.params != st.sum.resultParams[i] {
		st.sum.resultParams[i] |= t.params
		st.markSumChanged()
	}
	var ch bool
	st.sum.resultSrcs[i], ch = mergeSrcs(st.sum.resultSrcs[i], t.srcs)
	if ch {
		st.markSumChanged()
	}
}

func (st *funcState) bindIdent(id *ast.Ident, t taint) {
	if id.Name == "_" || t.empty() {
		return
	}
	obj := st.n.Pkg.Info.Defs[id]
	if obj == nil {
		obj = st.n.Pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	st.taintObj(obj, t)
}

// assignTo taints the storage named by lhs: an identifier directly, any
// other lvalue (field, index, deref) through its root object.
func (st *funcState) assignTo(lhs ast.Expr, t taint) {
	if t.empty() {
		return
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		st.bindIdent(id, t)
		return
	}
	st.taintRoot(lhs, t)
}

// taintRoot applies taint to the base object of an lvalue chain (x in
// x.f[i].g). If the base is a parameter, the write escapes into the
// caller's world and is recorded in the summary.
func (st *funcState) taintRoot(expr ast.Expr, t taint) {
	if t.empty() {
		return
	}
	obj := rootObject(st.n.Pkg.Info, expr)
	if obj == nil {
		return
	}
	st.taintObj(obj, t)
	if bit, ok := st.paramBit[obj]; ok {
		if st.sum.paramWrites[bit]|t.params != st.sum.paramWrites[bit] {
			st.sum.paramWrites[bit] |= t.params
			st.markSumChanged()
		}
		var ch bool
		st.sum.paramWriteSrcs[bit], ch = mergeSrcs(st.sum.paramWriteSrcs[bit], t.srcs)
		if ch {
			st.markSumChanged()
		}
	}
}

func (st *funcState) taintObj(obj types.Object, t taint) {
	cur := st.obj[obj]
	merged := cur.union(t)
	if merged.params != cur.params || len(merged.srcs) != len(cur.srcs) {
		st.obj[obj] = merged
		st.changed = true
	}
}

// rootObject unwraps an lvalue (or value) chain to its base identifier's
// object.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit, *ast.TypeAssertExpr:
			return nil
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		default:
			return nil
		}
	}
}

// exprTaint computes the taint of an expression.
func (st *funcState) exprTaint(expr ast.Expr) taint {
	var t taint
	switch e := unparen(expr).(type) {
	case *ast.Ident:
		obj := st.n.Pkg.Info.Uses[e]
		if obj == nil {
			obj = st.n.Pkg.Info.Defs[e]
		}
		if obj != nil {
			if bit, ok := st.paramBit[obj]; ok {
				t = t.union(taint{params: 1 << uint(bit)})
			}
			t = t.union(st.obj[obj])
		}
	case *ast.SelectorExpr:
		// Field reads inherit their container's taint; method values and
		// qualified identifiers resolve through the base.
		if _, isPkg := st.n.Pkg.Info.Uses[idOf(e.X)].(*types.PkgName); !isPkg {
			t = t.union(st.exprTaint(e.X))
		}
	case *ast.CallExpr:
		t = t.union(st.callTaint(e))
	case *ast.IndexExpr:
		t = t.union(st.exprTaint(e.X))
	case *ast.SliceExpr:
		t = t.union(st.exprTaint(e.X))
	case *ast.StarExpr:
		t = t.union(st.exprTaint(e.X))
	case *ast.UnaryExpr:
		t = t.union(st.exprTaint(e.X))
	case *ast.BinaryExpr:
		t = t.union(st.exprTaint(e.X)).union(st.exprTaint(e.Y))
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = t.union(st.exprTaint(el))
		}
	case *ast.TypeAssertExpr:
		t = t.union(st.exprTaint(e.X))
	}
	// Type-based sources: any value of a source type is tainted at the
	// point it is read.
	if st.e.spec.SourceType != nil {
		if tv, ok := st.n.Pkg.Info.Types[expr]; ok && tv.Type != nil && st.e.spec.SourceType(tv.Type) {
			t = t.union(taint{srcs: []source{{what: types.TypeString(tv.Type, shortQual)}}})
		}
	}
	return t
}

func shortQual(p *types.Package) string { return p.Name() }

func idOf(e ast.Expr) *ast.Ident {
	id, _ := unparen(e).(*ast.Ident)
	return id
}

// callTaint processes one call expression: sanitizer/sink/source handling,
// callee-summary application, and the default propagate-through policy for
// external calls. It returns the taint of the call's first result.
func (st *funcState) callTaint(call *ast.CallExpr) taint {
	ts := st.callResults(call)
	if len(ts) == 0 {
		return taint{}
	}
	return ts[0]
}

// callResults is callTaint for all results.
func (st *funcState) callResults(call *ast.CallExpr) []taint {
	if memo, ok := st.callMemo[call]; ok {
		// Re-evaluated nested call within the same pass: argument taint
		// cannot have changed mid-pass enough to warrant re-walking (the
		// outer fixpoint re-runs the whole body anyway).
		return []taint{memo}
	}
	st.callMemo[call] = taint{}
	res := st.doCall(call)
	first := taint{}
	if len(res) > 0 {
		first = res[0]
	}
	st.callMemo[call] = first
	return res
}

func (st *funcState) doCall(call *ast.CallExpr) []taint {
	info := st.n.Pkg.Info
	spec := st.e.spec
	fun := unparen(call.Fun)

	// Conversion: taint flows through unchanged.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		var t taint
		for _, a := range call.Args {
			t = t.union(st.exprTaint(a))
		}
		return []taint{t}
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "append":
				var t taint
				for _, a := range call.Args {
					t = t.union(st.exprTaint(a))
				}
				return []taint{t}
			case "copy":
				if len(call.Args) == 2 {
					st.taintRoot(call.Args[0], st.exprTaint(call.Args[1]))
				}
				return []taint{{}}
			default:
				return []taint{{}}
			}
		}
	}

	fn := staticCallee(info, call)
	if fn != nil && spec.SanitizerCall != nil && spec.SanitizerCall(fn) {
		// Evaluate arguments for their own nested effects, discard taint.
		for _, a := range call.Args {
			st.exprTaint(a)
		}
		return make([]taint, resultCount(fn))
	}

	// Gather argument taints in callee-param space: receiver first.
	recvExpr, argExprs := splitCall(info, call)
	argTaints := make([]taint, 0, len(argExprs)+1)
	if recvExpr != nil {
		argTaints = append(argTaints, st.exprTaint(recvExpr))
	} else if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		// Method value call (h(...) where h = x.M): the bound receiver is
		// invisible here; treat as untainted.
		argTaints = append(argTaints, taint{})
	}
	for _, a := range argExprs {
		argTaints = append(argTaints, st.exprTaint(a))
	}

	// Sink check on the static callee.
	if fn != nil && spec.SinkArgs != nil && !st.ignored() {
		if idxs, desc, ok := spec.SinkArgs(fn); ok {
			if idxs == nil {
				for i := range argExprs {
					idxs = append(idxs, i)
				}
			}
			for _, i := range idxs {
				if i >= 0 && i < len(argExprs) {
					st.reportSink(call, st.exprTaint(argExprs[i]), sinkRec{sink: desc})
				}
			}
		}
	}

	// Source check.
	var out []taint
	if fn != nil && spec.SourceCall != nil && spec.SourceCall(fn) {
		nres := resultCount(fn)
		out = make([]taint, nres)
		src := source{what: calleeLabel(fn)}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < nres; i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				out[i] = taint{srcs: []source{src}}
			}
		}
		return out
	}

	// Candidate summaries (in-module callees, including interface
	// implementations and address-taken function values).
	candidates := st.e.g.ResolveSite(call)
	applied := false
	nres := 1
	if fn != nil {
		nres = resultCount(fn)
	} else if tv, ok := info.Types[fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			nres = sig.Results().Len()
		}
	}
	out = make([]taint, nres)
	for _, cand := range candidates {
		sum := st.e.sums[cand]
		if sum == nil {
			continue
		}
		applied = true
		st.applySummary(call, cand, sum, argTaints, recvExpr, argExprs, out)
	}
	if applied {
		return out
	}

	// External call default: results carry the union of argument taints.
	var all taint
	for _, t := range argTaints {
		all = all.union(t)
	}
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		for i := range out {
			if i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
				continue
			}
			out[i] = all
		}
	} else {
		for i := range out {
			out[i] = all
		}
	}
	return out
}

func (st *funcState) ignored() bool {
	return st.e.spec.IgnorePkg != nil && st.e.spec.IgnorePkg(st.n.Pkg.Path)
}

// applySummary maps one candidate callee's summary onto this call site.
func (st *funcState) applySummary(call *ast.CallExpr, cand *FuncNode, sum *Summary, argTaints []taint, recvExpr ast.Expr, argExprs []ast.Expr, out []taint) {
	// Align argument list with the callee's parameter space. When the
	// callee has a receiver but the call has no receiver expression (or
	// vice versa), align from the end of what we have.
	n := sum.nParams
	taintOf := func(p int) taint {
		if p < len(argTaints) {
			return argTaints[p]
		}
		// Variadic overflow: extra args all map to the last parameter.
		if n > 0 && len(argTaints) > n && p == n-1 {
			var t taint
			for _, a := range argTaints[n-1:] {
				t = t.union(a)
			}
			return t
		}
		return taint{}
	}
	exprOf := func(p int) ast.Expr {
		if recvExpr != nil {
			if p == 0 {
				return recvExpr
			}
			p--
		}
		if p >= 0 && p < len(argExprs) {
			return argExprs[p]
		}
		return nil
	}
	for p := 0; p < n; p++ {
		at := taintOf(p)
		if at.empty() {
			continue
		}
		// Param reaches a sink inside the callee.
		if !st.ignored() {
			for _, rec := range sum.paramSinks[p] {
				lifted := rec
				lifted.via = prependVia(cand.Name, rec.via)
				st.reportSink(call, at, lifted)
			}
		}
		// Param flows to results.
		for r := range out {
			if r < len(sum.resultParams) && sum.resultParams[r]&(1<<uint(p)) != 0 {
				out[r] = out[r].union(at)
			}
		}
		// Param taints another param's referent.
		for q := 0; q < n; q++ {
			if sum.paramWrites[q]&(1<<uint(p)) != 0 {
				if dst := exprOf(q); dst != nil {
					st.taintRoot(dst, at)
				}
			}
		}
	}
	// Source-born taint flowing out of the callee.
	for r := range out {
		if r < len(sum.resultSrcs) && len(sum.resultSrcs[r]) > 0 {
			out[r] = out[r].union(taint{srcs: sum.resultSrcs[r]})
		}
	}
	for q := 0; q < n; q++ {
		if len(sum.paramWriteSrcs[q]) > 0 {
			if dst := exprOf(q); dst != nil {
				st.taintRoot(dst, taint{srcs: sum.paramWriteSrcs[q]})
			}
		}
	}
}

func prependVia(name, via string) string {
	if via == "" {
		return name
	}
	// Cap the chain at three segments to keep messages readable.
	segs := 1
	for i := 0; i+2 < len(via); i++ {
		if via[i] == ' ' && via[i+1] == '>' {
			segs++
		}
	}
	if segs >= 3 {
		return name + " > …"
	}
	return name + " > " + via
}

// reportSink handles a tainted value meeting a sink: source-born taint is a
// finding here and now; parameter-born taint becomes part of this
// function's summary so the finding surfaces where the taint is actually
// introduced.
func (st *funcState) reportSink(at *ast.CallExpr, t taint, rec sinkRec) {
	if t.empty() {
		return
	}
	for _, src := range t.srcs {
		st.emit(at.Pos(), src, rec)
	}
	for p := 0; p < st.sum.nParams; p++ {
		if t.params&(1<<uint(p)) != 0 {
			if st.sum.addSink(p, rec) {
				st.markSumChanged()
			}
		}
	}
}

func (st *funcState) emit(pos token.Pos, src source, rec sinkRec) {
	spec := st.e.spec
	via := ""
	if rec.via != "" {
		via = fmt.Sprintf(" (via %s)", rec.via)
	}
	msg := fmt.Sprintf("%s from %s reaches %s%s; %s", spec.Kind, src.what, rec.sink, via, spec.Advice)
	// One finding per (position, source, sink): call-path variants of the
	// same flow differ only in the via chain and would drown the signal.
	position := st.n.Pkg.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d|%s|%s", position.Filename, position.Line, position.Column, src.what, rec.sink)
	if _, dup := st.e.reported[key]; !dup {
		st.e.reported[key] = Finding{Pos: pos, Message: msg}
		st.changed = true
	}
}

// sumChanged tracking: markSumChanged flips both the per-pass change flag
// and the per-analysis flag read by the SCC fixpoint.
func (st *funcState) markSumChanged() {
	st.changed = true
	st.sumChanged = true
}

// staticCallee resolves the statically named callee of a call: a declared
// function, a method (concrete or interface), or nil for calls through
// function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// splitCall returns the receiver expression (nil for plain calls) and the
// plain argument expressions of a call.
func splitCall(info *types.Info, call *ast.CallExpr) (ast.Expr, []ast.Expr) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return sel.X, call.Args
		}
	}
	return nil, call.Args
}

func resultCount(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Results().Len()
}

// calleeLabel names a function in findings: package-qualified, with the
// receiver type for methods.
func calleeLabel(fn *types.Func) string {
	name := fn.Name()
	if recv := recvTypeName(fn); recv != "" {
		name = recv + "." + name
	}
	if fn.Pkg() != nil {
		return lastSegment(fn.Pkg().Path()) + "." + name
	}
	return name
}

func isErrorType(t types.Type) bool {
	return t.String() == "error" && types.IsInterface(t)
}
