package flow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function in the module call graph: a declared function or
// method (Obj != nil) or a function literal (Lit != nil).
type FuncNode struct {
	// Index is the node's position in Graph.Nodes (stable, deterministic:
	// packages in load order, files in parse order, declarations in source
	// order).
	Index int
	// Obj is the declared function or method, nil for literals.
	Obj *types.Func
	// Decl is the declaration AST for declared functions, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the function literal, nil for declarations.
	Lit *ast.FuncLit
	// Pkg is the package the function lives in.
	Pkg *PackageInfo
	// Name is the diagnostic name, e.g. "runtime.(*Peer).sendEncoded" or
	// "runtime.flushOutbox$1" for the first literal inside flushOutbox.
	Name string
	// Sig is the function's signature (receiver excluded for methods when
	// matching values; see valueSigKey).
	Sig *types.Signature
	// Body is the function body; nil for bodyless declarations (none in
	// this module, but external linkage is legal Go).
	Body *ast.BlockStmt
	// Enclosing is the lexically enclosing function for literals.
	Enclosing *FuncNode
	// Sites maps every call expression lexically in this function's own
	// body — excluding nested literal bodies, which own their calls — to
	// the possible in-module callees (empty for calls that resolve only
	// outside the module).
	Sites map[*ast.CallExpr][]*FuncNode
	// Callees is the deduplicated union of this node's Sites targets plus
	// the targets of every lexically nested literal. Nested-literal callees
	// are included so bottom-up summary computation (which analyzes
	// literals inline with their enclosing function, capture-aware) sees
	// callee summaries ready.
	Callees []*FuncNode
	// AddrTaken reports the function was used as a value (assigned,
	// passed, stored) somewhere in the module; such functions are callee
	// candidates for calls through function-typed values.
	AddrTaken bool
}

func (n *FuncNode) String() string { return n.Name }

// Graph is the module-wide call graph.
type Graph struct {
	Pkgs  []*PackageInfo
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// sites is the module-global call-site resolution: every call
	// expression in any function body to its candidate in-module callees.
	sites map[*ast.CallExpr][]*FuncNode
	// namedTypes are the package-level defined types of the module, the
	// candidate set for interface dispatch.
	namedTypes []*types.Named
	// valueSig groups address-taken functions by receiver-stripped
	// signature key: the candidate set for calls through function values.
	valueSig map[string][]*FuncNode
	// implCache memoizes interface-method resolution.
	implCache map[implKey][]*FuncNode
}

type implKey struct {
	iface  *types.Interface
	method string
}

// NodeOf returns the graph node of a declared function or method, nil when
// it is not part of the module.
func (g *Graph) NodeOf(fn *types.Func) *FuncNode { return g.byObj[fn] }

// LitNode returns the graph node of a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// ResolveSite returns the candidate in-module callees of a call expression
// anywhere in the module (nil for unresolved/external calls, conversions
// and builtins).
func (g *Graph) ResolveSite(call *ast.CallExpr) []*FuncNode { return g.sites[call] }

// BuildGraph constructs the module call graph over the given packages.
func BuildGraph(pkgs []*PackageInfo) *Graph {
	g := &Graph{
		Pkgs:      pkgs,
		byObj:     make(map[*types.Func]*FuncNode),
		byLit:     make(map[*ast.FuncLit]*FuncNode),
		sites:     make(map[*ast.CallExpr][]*FuncNode),
		valueSig:  make(map[string][]*FuncNode),
		implCache: make(map[implKey][]*FuncNode),
	}
	g.collectNodes()
	g.collectNamedTypes()
	g.markAddrTaken()
	g.resolveSites()
	return g
}

// collectNodes creates one node per function declaration and literal, in
// deterministic source order.
func (g *Graph) collectNodes() {
	for _, pkg := range g.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{
					Index: len(g.Nodes),
					Obj:   obj,
					Decl:  fd,
					Pkg:   pkg,
					Name:  declName(pkg, obj),
					Sig:   obj.Type().(*types.Signature),
					Body:  fd.Body,
					Sites: make(map[*ast.CallExpr][]*FuncNode),
				}
				g.Nodes = append(g.Nodes, n)
				g.byObj[obj] = n
				g.collectLits(pkg, n, fd.Body)
			}
		}
	}
}

// collectLits creates nodes for the function literals nested inside body,
// attributing each to its nearest enclosing function node. Literals directly
// inside body get nodes here; deeper ones recurse with the literal as the
// new enclosing function.
func (g *Graph) collectLits(pkg *PackageInfo, outer *FuncNode, body ast.Node) {
	var direct []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			direct = append(direct, lit)
			return false // its own literals belong to it, not to outer
		}
		return true
	})
	for i, lit := range direct {
		sig, _ := pkg.Info.Types[lit].Type.(*types.Signature)
		if sig == nil {
			continue
		}
		ln := &FuncNode{
			Index:     len(g.Nodes),
			Lit:       lit,
			Pkg:       pkg,
			Name:      fmt.Sprintf("%s$%d", outer.Name, i+1),
			Sig:       sig,
			Body:      lit.Body,
			Enclosing: outer,
			Sites:     make(map[*ast.CallExpr][]*FuncNode),
			AddrTaken: true, // a literal is a value by construction
		}
		g.Nodes = append(g.Nodes, ln)
		g.byLit[lit] = ln
		g.collectLits(pkg, ln, lit.Body)
	}
}

func declName(pkg *PackageInfo, obj *types.Func) string {
	short := lastSegment(pkg.Path)
	if recv := recvTypeName(obj); recv != "" {
		return fmt.Sprintf("%s.(%s).%s", short, recv, obj.Name())
	}
	return fmt.Sprintf("%s.%s", short, obj.Name())
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// collectNamedTypes gathers the module's package-level defined types: the
// implementing-type candidate set for interface dispatch.
func (g *Graph) collectNamedTypes() {
	for _, pkg := range g.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.namedTypes = append(g.namedTypes, named)
			}
		}
	}
}

// markAddrTaken finds every use of a function as a value — an identifier or
// selector resolving to a *types.Func in non-call position — and registers
// the function in the signature-keyed candidate index for function-value
// calls. Method values (x.M passed as a callback) register under their
// receiver-stripped signature.
func (g *Graph) markAddrTaken() {
	for _, pkg := range g.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			// An ident/selector is in call position when it is the Fun of a
			// CallExpr (possibly parenthesized); the Sel ident of a selector
			// is accounted for through its selector, never on its own.
			calleePos := make(map[ast.Expr]bool)
			selOf := make(map[*ast.Ident]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					calleePos[unparen(e.Fun)] = true
				case *ast.SelectorExpr:
					selOf[e.Sel] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				var id *ast.Ident
				switch e := n.(type) {
				case *ast.Ident:
					if selOf[e] {
						return true
					}
					id = e
				case *ast.SelectorExpr:
					id = e.Sel
				default:
					return true
				}
				if expr, ok := n.(ast.Expr); ok && calleePos[expr] {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if node := g.byObj[fn]; node != nil {
					node.AddrTaken = true
				}
				return true
			})
		}
	}
	for _, n := range g.Nodes {
		if n.AddrTaken {
			g.valueSig[valueSigKey(n.Sig)] = append(g.valueSig[valueSigKey(n.Sig)], n)
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// valueSigKey renders a signature without its receiver, with fully
// qualified parameter and result types: the matching key between a call
// through a function value and the functions that could be stored in it.
func valueSigKey(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(params.At(i).Type(), qual))
	}
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteString(")(")
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(results.At(i).Type(), qual))
	}
	b.WriteByte(')')
	return b.String()
}

// resolveSites computes the candidate callees of every call expression and
// the per-node callee unions.
func (g *Graph) resolveSites() {
	for _, n := range g.Nodes {
		body := n.Body
		if body == nil {
			continue
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok && g.byLit[lit] != nil && g.byLit[lit] != n {
				return false // nested literal owns its calls
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees := g.resolveCall(n.Pkg, call)
			if len(callees) > 0 {
				n.Sites[call] = callees
				g.sites[call] = callees
			}
			return true
		})
	}
	// Callee unions: own sites, plus — for every lexically nested literal —
	// the literal itself and its sites, propagated to all ancestors
	// (literals are analyzed inline with their enclosing function by the
	// taint engine, so the enclosing function's summary depends on them).
	seen := make([]map[*FuncNode]bool, len(g.Nodes))
	addCallee := func(n, c *FuncNode) {
		if seen[n.Index] == nil {
			seen[n.Index] = make(map[*FuncNode]bool)
		}
		if !seen[n.Index][c] {
			seen[n.Index][c] = true
			n.Callees = append(n.Callees, c)
		}
	}
	for _, n := range g.Nodes {
		for _, cs := range n.Sites {
			for _, c := range cs {
				addCallee(n, c)
			}
		}
	}
	for _, m := range g.Nodes {
		for e := m.Enclosing; e != nil; e = e.Enclosing {
			addCallee(e, m)
			for _, cs := range m.Sites {
				for _, c := range cs {
					addCallee(e, c)
				}
			}
		}
	}
	// Sites is a map, so the unions above accumulate in nondeterministic
	// order; sort by node index to keep SCC output — and with it every
	// downstream diagnostic — bit-reproducible across runs.
	for _, n := range g.Nodes {
		sort.Slice(n.Callees, func(i, j int) bool { return n.Callees[i].Index < n.Callees[j].Index })
	}
}

// resolveCall returns the candidate in-module callees of one call
// expression: a static function/method call resolves to its declaration,
// an interface method call fans out to every implementing type's method,
// and a call through a function-typed value fans out to every address-taken
// function with a matching signature. Conversions and builtins resolve to
// nothing.
func (g *Graph) resolveCall(pkg *PackageInfo, call *ast.CallExpr) []*FuncNode {
	fun := unparen(call.Fun)
	// Conversion?
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			if n := g.byObj[obj]; n != nil {
				return []*FuncNode{n}
			}
			return nil
		case *types.Builtin, *types.TypeName, nil:
			return nil
		default:
			// Function-typed variable (local, param, package var).
			return g.resolveFuncValue(pkg, fun)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Function-typed struct field.
				return g.resolveFuncValue(pkg, fun)
			}
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				return g.resolveInterface(iface, fn.Name())
			}
			if n := g.byObj[fn]; n != nil {
				return []*FuncNode{n}
			}
			return nil
		}
		// Qualified identifier pkg.F or method expression T.M.
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			if n := g.byObj[fn]; n != nil {
				return []*FuncNode{n}
			}
			return nil
		}
		return g.resolveFuncValue(pkg, fun)
	case *ast.FuncLit:
		if n := g.byLit[f]; n != nil {
			return []*FuncNode{n}
		}
		return nil
	default:
		// Call of a call result, index expression, etc.: a function value.
		return g.resolveFuncValue(pkg, fun)
	}
}

// resolveFuncValue resolves a call through a function-typed expression to
// every address-taken function or method value with an identical
// receiver-stripped signature.
func (g *Graph) resolveFuncValue(pkg *PackageInfo, fun ast.Expr) []*FuncNode {
	tv, ok := pkg.Info.Types[fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return g.valueSig[valueSigKey(sig)]
}

// resolveInterface returns the methods named method of every module type
// implementing iface (the implementing-type set of the dispatch).
func (g *Graph) resolveInterface(iface *types.Interface, method string) []*FuncNode {
	key := implKey{iface: iface, method: method}
	if cached, ok := g.implCache[key]; ok {
		return cached
	}
	var out []*FuncNode
	for _, named := range g.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if n := g.byObj[fn]; n != nil {
				out = append(out, n)
			}
		}
	}
	g.implCache[key] = out
	return out
}

// SCCOrder returns the strongly connected components of the call graph in
// bottom-up (reverse topological) order: every callee's component comes
// before — or in the same component as — its callers'. Tarjan's algorithm,
// iterative to survive deep module call chains.
func (g *Graph) SCCOrder() [][]*FuncNode {
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []*FuncNode
	var order [][]*FuncNode
	next := 0

	type frame struct {
		v  *FuncNode
		ci int // next callee index to visit
	}
	for _, root := range g.Nodes {
		if index[root.Index] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root.Index] = next
		low[root.Index] = next
		next++
		stack = append(stack, root)
		onStack[root.Index] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ci < len(v.Callees) {
				w := v.Callees[f.ci]
				f.ci++
				if index[w.Index] == -1 {
					index[w.Index] = next
					low[w.Index] = next
					next++
					stack = append(stack, w)
					onStack[w.Index] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w.Index] {
					if index[w.Index] < low[v.Index] {
						low[v.Index] = index[w.Index]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v.Index] < low[p.Index] {
					low[p.Index] = low[v.Index]
				}
			}
			if low[v.Index] == index[v.Index] {
				var comp []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w.Index] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				order = append(order, comp)
			}
		}
	}
	return order
}
