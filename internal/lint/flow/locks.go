package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph — an edge A→B for
// every point where lock B is acquired (directly or through a call chain)
// while lock A is held — and reports every cycle as a potential deadlock.
//
// A "lock" is identified structurally: a sync.Mutex or sync.RWMutex reached
// as a field of a named struct type ("tcpnet.Port.mu") or as a package-level
// variable ("scenario.stateMu"). All instances of one field share an
// identity, which is the usual conservative choice for order analysis.
func LockOrder(g *Graph) []Finding {
	la := &lockAnalysis{
		g:        g,
		acquires: make(map[*FuncNode]map[string]token.Pos),
		edges:    make(map[lockEdge]edgeInfo),
	}
	for _, comp := range g.SCCOrder() {
		// Transitive acquire sets first (fixpoint within the SCC), then the
		// held-set walk that records ordering edges.
		for iter := 0; iter < 16; iter++ {
			changed := false
			for _, n := range comp {
				if la.collectAcquires(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for _, n := range comp {
			la.walkHeld(n)
		}
	}
	return la.cycles()
}

type lockEdge struct {
	from, to string
}

type edgeInfo struct {
	pos token.Pos
	fn  string // function where the inner acquisition happens or is called
}

type lockAnalysis struct {
	g        *Graph
	acquires map[*FuncNode]map[string]token.Pos
	edges    map[lockEdge]edgeInfo
}

// lockCall classifies a call as acquiring or releasing a lock, returning the
// lock identity.
func lockCall(pkg *PackageInfo, call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	recv := unparen(sel.X)
	tv, ok := pkg.Info.Types[recv]
	if !ok || !isSyncLock(tv.Type) {
		return "", false, false
	}
	id = lockIdent(pkg, recv)
	if id == "" {
		return "", false, false
	}
	return id, acquire, release
}

func isSyncLock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// lockIdent names the lock: Type.field for struct fields, pkg.var for
// package-level mutex variables, "" when the expression is too dynamic to
// identify (local mutex values, map entries).
func lockIdent(pkg *PackageInfo, recv ast.Expr) string {
	switch e := unparen(recv).(type) {
	case *ast.SelectorExpr:
		// x.mu — identify by the named type of x.
		if tv, ok := pkg.Info.Types[e.X]; ok {
			if tn := typeName(tv.Type); tn != "" {
				return lastSegment(typePkgPath(tv.Type)) + "." + tn + "." + e.Sel.Name
			}
		}
		// pkg.muVar qualified reference.
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lastSegment(obj.Pkg().Path()) + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lastSegment(obj.Pkg().Path()) + "." + obj.Name()
		}
	}
	return ""
}

// collectAcquires computes the transitive set of locks a function may
// acquire, for use at call sites under a held lock.
func (la *lockAnalysis) collectAcquires(n *FuncNode) bool {
	if n.Body == nil {
		return false
	}
	set := la.acquires[n]
	if set == nil {
		set = make(map[string]token.Pos)
		la.acquires[n] = set
	}
	before := len(set)
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok && nd != n.Body {
			_ = lit
			return false // nested literals have their own nodes
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, acq, _ := lockCall(n.Pkg, call); acq {
			if _, seen := set[id]; !seen {
				set[id] = call.Pos()
			}
		}
		for _, callee := range la.g.ResolveSite(call) {
			for id := range la.acquires[callee] {
				if _, seen := set[id]; !seen {
					set[id] = call.Pos()
				}
			}
		}
		return true
	})
	return len(set) != before
}

// walkHeld runs the ordered held-set walk over a function body, recording an
// edge held→acquired for every nested acquisition.
func (la *lockAnalysis) walkHeld(n *FuncNode) {
	if n.Body == nil {
		return
	}
	la.walkStmts(n, n.Body.List, map[string]bool{})
}

// walkStmts processes a statement sequence in order; held mutates through
// the sequence, while branch bodies work on copies (a lock acquired inside a
// branch is conservatively not considered held after it).
func (la *lockAnalysis) walkStmts(n *FuncNode, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		la.walkStmt(n, s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func (la *lockAnalysis) walkStmt(n *FuncNode, s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		la.walkExpr(n, st.X, held, true)
	case *ast.DeferStmt:
		if id, _, rel := lockCall(n.Pkg, st.Call); rel {
			_ = id
			// defer mu.Unlock(): the lock stays held for the rest of the
			// function, which the sequential walk models by simply not
			// releasing it here.
			return
		}
		la.walkExpr(n, st.Call, held, true)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			la.walkExpr(n, e, held, false)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						la.walkExpr(n, v, held, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			la.walkExpr(n, e, held, false)
		}
	case *ast.GoStmt:
		// The goroutine runs with an empty held set of its own.
		la.walkExpr(n, st.Call, held, false)
	case *ast.BlockStmt:
		la.walkStmts(n, st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			la.walkStmt(n, st.Init, held)
		}
		la.walkExpr(n, st.Cond, held, false)
		la.walkStmts(n, st.Body.List, copyHeld(held))
		if st.Else != nil {
			la.walkStmt(n, st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			la.walkStmt(n, st.Init, held)
		}
		if st.Cond != nil {
			la.walkExpr(n, st.Cond, held, false)
		}
		la.walkStmts(n, st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		la.walkExpr(n, st.X, held, false)
		la.walkStmts(n, st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			la.walkStmt(n, st.Init, held)
		}
		if st.Tag != nil {
			la.walkExpr(n, st.Tag, held, false)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				la.walkStmts(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				la.walkStmts(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				la.walkStmts(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		la.walkStmt(n, st.Stmt, held)
	case *ast.SendStmt:
		la.walkExpr(n, st.Value, held, false)
	}
}

// walkExpr scans an expression for lock operations and calls. top marks the
// expression of an ExprStmt, where Lock/Unlock mutate the held set.
func (la *lockAnalysis) walkExpr(n *FuncNode, e ast.Expr, held map[string]bool, top bool) {
	ast.Inspect(e, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, acq, rel := lockCall(n.Pkg, call); acq || rel {
			if acq {
				la.acquireEdge(n, call.Pos(), id, "", held)
				if top {
					held[id] = true
				}
			} else if top {
				delete(held, id)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		for _, callee := range la.g.ResolveSite(call) {
			for id := range la.acquires[callee] {
				la.acquireEdge(n, call.Pos(), id, callee.Name, held)
			}
		}
		return true
	})
}

func (la *lockAnalysis) acquireEdge(n *FuncNode, pos token.Pos, id, via string, held map[string]bool) {
	for h := range held {
		if h == id {
			continue // re-entrant same-lock acquisition is lockstep's problem
		}
		e := lockEdge{from: h, to: id}
		if _, seen := la.edges[e]; !seen {
			fn := n.Name
			if via != "" {
				fn = n.Name + " > " + via
			}
			la.edges[e] = edgeInfo{pos: pos, fn: fn}
		}
	}
}

// cycles finds elementary cycles in the lock graph and reports one finding
// per cycle, anchored at the lexically first witnessing edge.
func (la *lockAnalysis) cycles() []Finding {
	sorted := make([]lockEdge, 0, len(la.edges))
	for e := range la.edges {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].from != sorted[j].from {
			return sorted[i].from < sorted[j].from
		}
		return sorted[i].to < sorted[j].to
	})
	adj := make(map[string][]string)
	var nodes []string
	for _, e := range sorted {
		if len(adj[e.from]) == 0 {
			nodes = append(nodes, e.from)
		}
		adj[e.from] = append(adj[e.from], e.to)
	}

	seen := make(map[string]bool) // canonical cycle keys already reported
	var out []Finding
	var stack []string
	onStack := make(map[string]int)
	var dfs func(string)
	dfs = func(v string) {
		if idx, ok := onStack[v]; ok {
			cycle := append([]string(nil), stack[idx:]...)
			key := canonicalCycle(cycle)
			if !seen[key] {
				seen[key] = true
				out = append(out, la.cycleFinding(cycle))
			}
			return
		}
		onStack[v] = len(stack)
		stack = append(stack, v)
		for _, w := range adj[v] {
			dfs(w)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, v)
	}
	for _, v := range nodes {
		dfs(v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// canonicalCycle rotates the cycle so its smallest element comes first,
// giving every traversal of the same cycle the same key.
func canonicalCycle(cycle []string) string {
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "→")
}

func (la *lockAnalysis) cycleFinding(cycle []string) Finding {
	// Anchor at the first edge of the canonical rotation.
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	var (
		pos   token.Pos
		where string
	)
	e := lockEdge{from: rotated[0], to: rotated[1%len(rotated)]}
	if info, ok := la.edges[e]; ok {
		pos = info.pos
		where = info.fn
	}
	loop := strings.Join(append(rotated, rotated[0]), " -> ")
	return Finding{
		Pos:     pos,
		Message: fmt.Sprintf("lock order cycle %s (inner acquisition in %s); acquire locks in one global order", loop, where),
	}
}
