package lint

import (
	"go/ast"
)

// LockstepAnalyzer forbids OS-timer scheduling in round-driven code. The
// paper's P5 (lockstep execution) requires every protocol action to happen
// at a round boundary decided by the shared round clock; our reproduction
// realizes that with virtual-time scheduling (vclock.Clock.At/After, the
// runtime transport's After). A time.Sleep or raw time.Timer in that code
// ties protocol progress to host wall time: under the simulated network the
// action never fires (virtual time does not advance while sleeping), and
// under the real network it desynchronizes rounds across nodes — precisely
// the attack surface P5 closes.
var LockstepAnalyzer = &Analyzer{
	Name: "lockstep",
	Doc: "forbids time.Sleep and raw time.Timer/Ticker scheduling in round-driven packages " +
		"(schedule on the virtual clock: vclock.Clock.At/After or the transport's After)",
	Packages: DeterministicPackages,
	Run:      runLockstep,
}

// timerFuncs are the time package entry points that schedule against the OS
// timer wheel.
var timerFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runLockstep(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || pkgPathOf(obj) != "time" {
				return true
			}
			if timerFuncs[obj.Name()] && isFunc(obj) {
				pass.Reportf(sel.Pos(), "time.%s schedules on the OS timer in round-driven code; use vclock scheduling (Clock.At/After or the transport's After)", obj.Name())
			}
			return true
		})
	}
	return nil
}
