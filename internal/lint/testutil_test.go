package lint

// analysistest-style golden harness. Each analyzer has a package under
// testdata/src/<name>/ whose files carry expectations as comments:
//
//	foo() // want "regexp matching the diagnostic"
//	// wantbelow "regexp"   — expectation for the NEXT line (used when the
//	                          next line's only comment is a //lint:allow
//	                          directive under test)
//
// The harness loads the package, runs the analyzer through the same
// RunAnalyzers path as the driver (so suppression directives and malformed-
// directive reporting behave identically), and fails on any diagnostic
// without a matching expectation or expectation without a diagnostic.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var wantRe = regexp.MustCompile(`//\s*(wantbelow|want)\s+("(?:[^"\\]|\\.)*")`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runGolden runs one analyzer over testdata/src/<name> and checks the
// diagnostics against the want comments.
func runGolden(t *testing.T, a *Analyzer, dirName string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dirName))
	if err != nil {
		t.Fatalf("load testdata package %s: %v", dirName, err)
	}
	// Testdata package paths do not live under sgxp2p/, so run the analyzer
	// unscoped; scoping itself is unit-tested in TestScopes.
	unscoped := *a
	unscoped.Packages = nil
	diags, err := RunAnalyzers(pkg, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pattern, err := strconv.Unquote(m[2])
					if err != nil {
						t.Fatalf("bad want comment %q: %v", c.Text, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] == "wantbelow" {
						line++
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: line,
						re:   regexp.MustCompile(pattern),
					})
				}
			}
		}
	}
	return wants
}

func matchWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// runGoldenModule is runGolden for module-level analyzers: it loads the
// whole testdata tree (main package plus its local fakes) through
// LoadDirAll and lints it with LintModule, so interprocedural analyzers see
// cross-package flows and the stale-suppression check runs exactly as in
// the driver.
func runGoldenModule(t *testing.T, analyzers []*Analyzer, dirName string) {
	t.Helper()
	pkgs, err := LoadDirAll(filepath.Join("testdata", "src", dirName))
	if err != nil {
		t.Fatalf("load testdata tree %s: %v", dirName, err)
	}
	unscoped := make([]*Analyzer, len(analyzers))
	for i, a := range analyzers {
		c := *a
		c.Packages = nil
		unscoped[i] = &c
	}
	diags, err := LintModule(pkgs, unscoped)
	if err != nil {
		t.Fatalf("lint module %s: %v", dirName, err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// mustParse builds a tiny throwaway package for unit tests that do not need
// a full golden directory.
func mustParse(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}
