package lint

import (
	"go/ast"
	"strings"
)

// InstanceScopedPackages are the import paths (and subtrees) whose code runs
// as multiplexed protocol instances: it is handed a runtime.Host capability
// and must stay portable between a dedicated runtime.Peer and a
// runtime.Instance slot under a Mux.
var InstanceScopedPackages = []string{
	"sgxp2p/internal/core",
}

// MuxboundaryAnalyzer forbids instance-scoped code from reaching around the
// Host capability surface. A protocol engine that grabs the node-scoped
// runtime objects (Peer, Mux, the Transport) or the link-cipher layer
// directly bypasses everything the multiplexed runtime centralizes per
// node: round-scoped batch coalescing, per-link AEAD sequence state, ACK
// tracking and instance-attributed telemetry. Such code happens to work
// when the engine owns the whole node and silently corrupts cipher
// sequences or splits batches once hundreds of instances share the links.
var MuxboundaryAnalyzer = &Analyzer{
	Name: "muxboundary",
	Doc: "forbids node-scoped runtime access (runtime.Peer/NewPeer/Transport/Mux/NewMux) and any " +
		"direct channel/xcrypto use in instance-scoped packages; protocol engines talk to the " +
		"runtime only through the runtime.Host capability they are constructed with",
	Packages: InstanceScopedPackages,
	Run:      runMuxboundary,
}

// nodeScopedRuntime are the internal/runtime symbols owned by the node, not
// the instance. Host, Protocol, Instance and the error values stay legal.
var nodeScopedRuntime = map[string]bool{
	"Peer":      true,
	"NewPeer":   true,
	"Transport": true,
	"Mux":       true,
	"NewMux":    true,
}

// boundaryPackage matches an import path against a module-relative package
// path: equal, or ending in "/"+pkg (so fakes in testdata match too).
func boundaryPackage(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

func runMuxboundary(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			path := pkgPathOf(obj)
			switch {
			case boundaryPackage(path, "internal/runtime"):
				if nodeScopedRuntime[obj.Name()] {
					pass.Reportf(sel.Pos(), "runtime.%s is node-scoped; instance code must use the runtime.Host capability it was constructed with", obj.Name())
				}
			case boundaryPackage(path, "internal/channel"), boundaryPackage(path, "internal/xcrypto"):
				pass.Reportf(sel.Pos(), "%s.%s bypasses the runtime's per-link cipher state; instance code sends only through Host (Multicast/Send/SendAck)", lastSegment(path), obj.Name())
			}
			return true
		})
	}
	return nil
}

// lastSegment returns the final path element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
