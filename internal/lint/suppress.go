package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment: the directive
//
//	//lint:allow <analyzer> <reason>
//
// silences <analyzer>'s findings on the directive's own line and on the line
// directly below it (so a standalone comment line covers the statement it
// precedes, and a trailing comment covers its own statement). The reason is
// mandatory — reviewers must be able to audit why an invariant is waived —
// and a directive naming no known analyzer or carrying no reason is itself
// reported under the pseudo-analyzer "lintdirective".
const DirectivePrefix = "//lint:allow"

// DirectiveAnalyzerName labels malformed-directive findings.
const DirectiveAnalyzerName = "lintdirective"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	file     string
	line     int       // line the comment starts on
	pos      token.Pos // comment position, for stale-directive findings
}

// collectDirectives parses every //lint:allow directive in files. It returns
// the well-formed directives plus diagnostics for malformed ones (missing
// reason, unknown analyzer name).
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]directive, []Diagnostic) {
	// Validate against the full registry, not just the analyzers running:
	// `p2plint -only detrand` must not misreport a maporder directive.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var dirs []directive
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: DirectiveAnalyzerName}, Fset: fset}
		p.Reportf(pos, format, args...)
		diags = append(diags, p.diags...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "directive %q names no analyzer", c.Text)
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), "directive allows unknown analyzer %q", name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "directive allowing %q is missing the mandatory reason", name)
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, directive{
					analyzer: name,
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return dirs, diags
}

// filterSuppressed drops diagnostics covered by a directive: same analyzer,
// and the diagnostic sits on the directive's line or the line directly below.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		analyzer string
		file     string
		line     int
	}
	covered := make(map[key]bool, 2*len(dirs))
	for _, d := range dirs {
		covered[key{d.analyzer, d.file, d.line}] = true
		covered[key{d.analyzer, d.file, d.line + 1}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if covered[key{d.Analyzer, d.Position.Filename, d.Position.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// staleDirectives reports every directive that suppressed nothing: no
// pre-filter diagnostic from its analyzer lands on the directive's line or
// the line below. Only analyzers in ran are judged — a directive for an
// analyzer that did not run this invocation (p2plint -only, single-analyzer
// golden tests) is not stale, merely unexercised. Keeping the suppression
// ledger honest this way means every //lint:allow in the tree is load-bearing.
func staleDirectives(fset *token.FileSet, dirs []directive, raw []Diagnostic, ran map[string]bool) []Diagnostic {
	type key struct {
		analyzer string
		file     string
		line     int
	}
	hit := make(map[key]bool, len(raw))
	for _, d := range raw {
		hit[key{d.Analyzer, d.Position.Filename, d.Position.Line}] = true
	}
	var out []Diagnostic
	for _, dir := range dirs {
		if !ran[dir.analyzer] {
			continue
		}
		if hit[key{dir.analyzer, dir.file, dir.line}] || hit[key{dir.analyzer, dir.file, dir.line + 1}] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: DirectiveAnalyzerName,
			Pos:      dir.pos,
			Position: fset.Position(dir.pos),
			Message:  fmt.Sprintf("stale suppression: no %s finding on this line or the next; remove the directive", dir.analyzer),
		})
	}
	return out
}
