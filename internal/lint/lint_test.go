package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestScopes pins the analyzer-to-package mapping: the determinism and
// lockstep invariants apply exactly to the replayable subtree, while the
// error-handling and general passes run module-wide.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{DetrandAnalyzer, "sgxp2p/internal/core/erb", true},
		{DetrandAnalyzer, "sgxp2p/internal/core", true},
		{DetrandAnalyzer, "sgxp2p/internal/chaos", true},
		{DetrandAnalyzer, "sgxp2p/internal/vclock", true},
		{DetrandAnalyzer, "sgxp2p/internal/simnet", true},
		{DetrandAnalyzer, "sgxp2p/internal/adversary", true},
		{DetrandAnalyzer, "sgxp2p/internal/tcpnet", true},
		{DetrandAnalyzer, "sgxp2p/internal/telemetry", true},
		{TelemetryAnalyzer, "sgxp2p/cmd/p2ptrace", true},
		{DetrandAnalyzer, "sgxp2p/internal/corebis", false}, // prefix must respect path boundaries
		{DetrandAnalyzer, "sgxp2p/internal/experiments", false},
		{DetrandAnalyzer, "sgxp2p/cmd/p2pnode", false},
		{LockstepAnalyzer, "sgxp2p/internal/runtime", true},
		{LockstepAnalyzer, "sgxp2p/internal/deploy", false},
		{MuxboundaryAnalyzer, "sgxp2p/internal/core/erb", true},
		{MuxboundaryAnalyzer, "sgxp2p/internal/core/erng", true},
		{MuxboundaryAnalyzer, "sgxp2p/internal/runtime", false}, // the runtime owns those symbols
		{MuxboundaryAnalyzer, "sgxp2p/internal/deploy", false},  // node-scoped wiring is its job
		{SealerrAnalyzer, "sgxp2p/internal/baseline", true},
		{MaporderAnalyzer, "sgxp2p", true},
		{ShadowAnalyzer, "sgxp2p/examples/beacon", true},
		{NilnessAnalyzer, "sgxp2p/internal/lint", true},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
}

// TestRegistry pins the battery composition and that names used in
// //lint:allow directives stay stable.
func TestRegistry(t *testing.T) {
	want := []string{"detrand", "maporder", "sealerr", "telemetry", "lockstep", "muxboundary", "shadow", "nilness", "sealflow", "keyleak", "lockorder"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil && a.RunModule == nil {
			t.Errorf("analyzer %q has neither Run nor RunModule", a.Name)
		}
	}
}

// TestSuppressionIsFilePrecise ensures a directive in one file cannot
// silence a finding at the same line number of a sibling file.
func TestSuppressionIsFilePrecise(t *testing.T) {
	dirs := []directive{{analyzer: "detrand", file: "a.go", line: 10}}
	diags := []Diagnostic{
		{Analyzer: "detrand", Position: position("a.go", 10), Message: "same file"},
		{Analyzer: "detrand", Position: position("b.go", 10), Message: "other file"},
		{Analyzer: "maporder", Position: position("a.go", 10), Message: "other analyzer"},
		{Analyzer: "detrand", Position: position("a.go", 11), Message: "line below"},
		{Analyzer: "detrand", Position: position("a.go", 12), Message: "two below"},
	}
	kept := filterSuppressed(diags, dirs)
	var msgs []string
	for _, d := range kept {
		msgs = append(msgs, d.Message)
	}
	got := strings.Join(msgs, "|")
	want := "other file|other analyzer|two below"
	if got != want {
		t.Errorf("filterSuppressed kept %q, want %q", got, want)
	}
}

// TestModuleIsLintClean is the acceptance gate in test form: the whole
// module must carry zero unsuppressed findings, exactly like `make lint`.
// A regression here means new code broke a determinism/boundary invariant
// (or dropped a mandatory suppression reason).
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	diags, err := LintModule(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func position(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}
