package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilnessAnalyzer is a local, flow-light reimplementation of the x/tools
// `nilness` pass (x/tools cannot be vendored into this offline build, and
// its SSA-based engine is far more than the invariant needs). It reports
// the highest-signal subset: inside the body of `if x == nil { ... }`, any
// use of x that is guaranteed to panic — a pointer dereference or field
// access, an interface method call, a slice index, a map write, a function
// call — before x is reassigned. Every such report is a certain runtime
// panic on the guarded path.
var NilnessAnalyzer = &Analyzer{
	Name: "nilness",
	Doc: "reports guaranteed nil dereferences inside `if x == nil` branches " +
		"(local reimplementation of the x/tools nilness pass's core diagnostic)",
	Run: runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifst, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := pass.nilGuardedVar(ifst.Cond)
			if obj == nil {
				return true
			}
			pass.checkNilUses(ifst.Body, obj)
			return true
		})
	}
	return nil
}

// nilGuardedVar returns the variable v when cond has the form `v == nil`
// (or `nil == v`) for a nilable-typed identifier, else nil.
func (p *Pass) nilGuardedVar(cond ast.Expr) types.Object {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x, y := bin.X, bin.Y
	if isNilIdent(p, y) {
		// v == nil
	} else if isNilIdent(p, x) {
		x = y // nil == v
	} else {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Signature, *types.Interface, *types.Chan:
		return obj
	}
	return nil
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// checkNilUses flags panicking uses of obj inside body, up to the first
// statement that reassigns it.
func (p *Pass) checkNilUses(body *ast.BlockStmt, obj types.Object) {
	reassigned := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && p.objectOf(id) == obj {
				if reassigned == token.Pos(-1) || st.Pos() < reassigned {
					reassigned = st.Pos()
				}
			}
		}
		return true
	})
	flag := func(pos token.Pos, what string) {
		if reassigned != token.Pos(-1) && pos > reassigned {
			return
		}
		p.Reportf(pos, "%s %s, which is nil on this branch; this will panic", what, obj.Name())
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.StarExpr:
			if p.isObj(e.X, obj) {
				flag(e.Pos(), "dereference of")
			}
		case *ast.SelectorExpr:
			if !p.isObj(e.X, obj) {
				return true
			}
			switch obj.Type().Underlying().(type) {
			case *types.Pointer:
				// Field access through a nil pointer panics; a method call
				// may have a nil-tolerant pointer receiver, so only flag
				// field selections.
				if sel, ok := p.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
					flag(e.Pos(), "field access through")
				}
			case *types.Interface:
				if sel, ok := p.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
					flag(e.Pos(), "method call on")
				}
			}
		case *ast.IndexExpr:
			if !p.isObj(e.X, obj) {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				flag(e.Pos(), "index of")
			}
		case *ast.CallExpr:
			if p.isObj(e.Fun, obj) {
				flag(e.Pos(), "call of")
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && p.isObj(idx.X, obj) {
					if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
						flag(idx.Pos(), "write into")
					}
				}
			}
		}
		return true
	})
}

func (p *Pass) isObj(e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && p.objectOf(id) == obj
}

func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}
