package lint

import (
	"go/types"
	"strings"

	"sgxp2p/internal/lint/flow"
)

// The interprocedural battery (DESIGN.md §14). All three analyzers share
// one module-wide call graph (ModulePass.Graph) and run only under
// LintModule.
//
// Package matching uses flow.PathMatches (exact path or "/"-suffix), so the
// same specs cover the real module ("sgxp2p/internal/wire") and the golden
// testdata fakes loaded under relative paths ("internal/wire").

// tcbPackages is the trusted computing base for key material: packages that
// hold and use keys by design. Key flows inside them are sanctioned; key
// material leaving them is a finding.
var tcbPackages = []string{
	"internal/enclave", "internal/xcrypto", "internal/channel", "internal/keygen",
}

// transportPackages move opaque byte payloads by design; sealflow checks
// their public Send surface from the outside rather than their internals.
var transportPackages = []string{
	"internal/tcpnet", "internal/simnet", "internal/adversary",
}

func fnPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// sealflowSpec: payload plaintext (wire-encoded messages, opened envelopes)
// may only reach a network Send/Write sink after passing through
// channel.Seal*/SealEncoded*. Covers the unbatched path (AppendEncode →
// SealEncodedAppend → Transport.Send) and the batch outbox
// (AppendBatchEntry → SealBatchAppend → Transport.Send) alike.
var sealflowSpec = &flow.Spec{
	Kind:   "payload plaintext",
	Advice: "seal with channel.Seal*/SealEncoded* before the transport",
	SourceCall: func(fn *types.Func) bool {
		pkg := fnPkgPath(fn)
		switch {
		case flow.PathMatches(pkg, "internal/wire"):
			switch fn.Name() {
			case "Encode", "AppendEncode", "AppendBatchEntry":
				return true
			}
		case flow.PathMatches(pkg, "internal/channel"), flow.PathMatches(pkg, "internal/xcrypto"):
			return strings.HasPrefix(fn.Name(), "Open")
		}
		return false
	},
	SanitizerCall: func(fn *types.Func) bool {
		pkg := fnPkgPath(fn)
		if !flow.PathMatches(pkg, "internal/channel") && !flow.PathMatches(pkg, "internal/xcrypto") {
			return false
		}
		return strings.HasPrefix(fn.Name(), "Seal") || strings.HasPrefix(fn.Name(), "seal")
	},
	SinkArgs: func(fn *types.Func) ([]int, string, bool) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil, "", false
		}
		pkg := fnPkgPath(fn)
		if fn.Name() == "Write" && pkg == "net" {
			return []int{0}, "net.Conn.Write", true
		}
		if fn.Name() != "Send" {
			return nil, "", false
		}
		if !flow.PathIn(pkg, "internal/runtime", "internal/tcpnet", "internal/simnet", "internal/adversary") {
			return nil, "", false
		}
		// The payload is the (last) []byte parameter; Send methods taking
		// a *wire.Message (runtime.Peer.Send) are the sealing boundary
		// itself, not a sink.
		payload := -1
		for i := 0; i < sig.Params().Len(); i++ {
			if s, ok := sig.Params().At(i).Type().(*types.Slice); ok {
				if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
					payload = i
				}
			}
		}
		if payload < 0 {
			return nil, "", false
		}
		return []int{payload}, "network sink " + flowFuncLabel(fn), true
	},
	IgnorePkg: func(path string) bool {
		return flow.PathIn(path, transportPackages...)
	},
}

// keyleakSpec: key material (session keys, cipher state, private keys) must
// not flow into wire encoders, telemetry, or log/error formatting. The TCB
// packages are exempt from sink checks — using keys is their job — but
// their summaries still carry taint to callers.
var keyleakSpec = &flow.Spec{
	Kind:   "key material",
	Advice: "key material must not leave the enclave TCB (enclave/xcrypto/channel/keygen)",
	SourceType: func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return false
		}
		if !flow.PathMatches(n.Obj().Pkg().Path(), "internal/xcrypto") {
			return false
		}
		switch n.Obj().Name() {
		case "SessionKeys", "LinkCipher", "SigningKey", "KeyPair":
			return true
		}
		return false
	},
	SanitizerCall: func(fn *types.Func) bool {
		pkg := fnPkgPath(fn)
		if !flow.PathMatches(pkg, "internal/channel") && !flow.PathMatches(pkg, "internal/xcrypto") {
			return false
		}
		name := fn.Name()
		// Sanctioned key consumers: their outputs (ciphertext, signatures,
		// public halves, plaintext handed back to the owner) are not key
		// material.
		switch {
		case strings.HasPrefix(name, "Seal"), strings.HasPrefix(name, "seal"),
			strings.HasPrefix(name, "Open"), strings.HasPrefix(name, "open"):
			return true
		case name == "Sign", name == "Verify", name == "Public", name == "VerifyKey",
			name == "SealedSize", name == "NewLink":
			return true
		}
		return false
	},
	SinkArgs: func(fn *types.Func) ([]int, string, bool) {
		if !fn.Exported() {
			return nil, "", false
		}
		pkg := fnPkgPath(fn)
		switch {
		case flow.PathMatches(pkg, "internal/telemetry"):
			return nil, "telemetry (" + flowFuncLabel(fn) + ")", true
		case flow.PathMatches(pkg, "internal/wire"):
			return nil, "wire encoder " + flowFuncLabel(fn), true
		case pkg == "fmt" || pkg == "log" || pkg == "errors":
			return nil, "log/error formatting " + flowFuncLabel(fn), true
		}
		return nil, "", false
	},
	IgnorePkg: func(path string) bool {
		return flow.PathIn(path, tcbPackages...)
	},
}

// flowFuncLabel names a function the way findings do: pkg.Recv.Name.
func flowFuncLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return lastSegment(fn.Pkg().Path()) + "." + name
	}
	return name
}

// SealflowAnalyzer proves the seal boundary: plaintext entering the runtime
// may only reach the network through channel sealing.
var SealflowAnalyzer = &Analyzer{
	Name: "sealflow",
	Doc:  "interprocedural taint: wire-encoded plaintext must pass channel.Seal* before any network Send/Write",
	RunModule: func(p *ModulePass) error {
		for _, f := range flow.Taint(p.Graph(), sealflowSpec) {
			p.Reportf(f.Pos, "%s", f.Message)
		}
		return nil
	},
}

// KeyleakAnalyzer proves key confinement: key material never reaches wire
// encoders, telemetry, logs, or exported returns outside the TCB.
var KeyleakAnalyzer = &Analyzer{
	Name: "keyleak",
	Doc:  "interprocedural taint: session keys, cipher state and private keys must stay inside the enclave TCB",
	RunModule: func(p *ModulePass) error {
		g := p.Graph()
		findings, sums := flow.TaintSummaries(g, keyleakSpec)
		for _, f := range findings {
			p.Reportf(f.Pos, "%s", f.Message)
		}
		// Exported-return check: outside the TCB, no exported function may
		// return a value carrying key material.
		for _, n := range g.Nodes {
			if n.Obj == nil || !n.Obj.Exported() || flow.PathIn(n.Pkg.Path, tcbPackages...) {
				continue
			}
			sum := sums[n]
			if sum == nil || n.Decl == nil {
				continue
			}
			for r := 0; r < n.Sig.Results().Len(); r++ {
				for _, src := range sum.ResultSources(r) {
					p.Reportf(n.Decl.Name.Pos(), "key material (%s) flows into exported return of %s; key material must not leave the enclave TCB", src, n.Name)
				}
			}
		}
		return nil
	},
}

// LockorderAnalyzer reports cycles in the module-wide lock-acquisition
// graph: two call paths that take the same pair of mutexes in opposite
// orders can deadlock under the right interleaving.
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "whole-module lock-acquisition graph; any cycle is a potential deadlock",
	RunModule: func(p *ModulePass) error {
		for _, f := range flow.LockOrder(p.Graph()) {
			p.Reportf(f.Pos, "%s", f.Message)
		}
		return nil
	},
}
