package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for analysis.
// Only non-test Go files are loaded: every p2plint invariant targets
// production code, and test files routinely (and legitimately) use wall
// clocks, sleeps and discarded errors.
type Package struct {
	Path  string // import path, e.g. sgxp2p/internal/core/erb
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load resolves the package patterns (e.g. "./...") with the go tool, then
// parses and type-checks every matched package with the standard library's
// source importer. The importer compiles nothing and follows imports from
// source, so the loader works in this module without export data and without
// network access. dir anchors the go tool invocation; "" means the current
// directory (it must sit inside the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDirAll is LoadDir returning every package under dir — the
// subdirectory fakes followed by dir's own package, all sharing one FileSet
// — so module-level analyzers (LintModule) can be golden-tested against a
// testdata tree that models cross-package flows.
func LoadDirAll(dir string) ([]*Package, error) {
	main, subs, err := loadDir(dir)
	if err != nil {
		return nil, err
	}
	return append(subs, main), nil
}

// LoadDir parses and type-checks the .go files of a single directory outside
// the module (the analysistest harness loads testdata packages this way).
// Subdirectories holding .go files are pre-loaded first and made importable
// by their slash path relative to dir (e.g. "internal/runtime"), so a
// testdata package can model cross-package boundaries with local fakes;
// everything else resolves against the standard library.
func LoadDir(dir string) (*Package, error) {
	main, _, err := loadDir(dir)
	return main, err
}

func loadDir(dir string) (*Package, []*Package, error) {
	files, err := goFilesIn(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := &localImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	subs, err := subPackageDirs(dir)
	if err != nil {
		return nil, nil, err
	}
	var subPkgs []*Package
	for _, rel := range subs {
		subFiles, serr := goFilesIn(filepath.Join(dir, rel))
		if serr != nil {
			return nil, nil, serr
		}
		path := filepath.ToSlash(rel)
		pkg, serr := check(fset, imp, path, filepath.Join(dir, rel), subFiles)
		if serr != nil {
			return nil, nil, serr
		}
		imp.pkgs[path] = pkg.Types
		subPkgs = append(subPkgs, pkg)
	}
	main, err := check(fset, imp, filepath.Base(dir), dir, files)
	if err != nil {
		return nil, nil, err
	}
	return main, subPkgs, nil
}

// localImporter resolves pre-loaded local packages by relative path and
// defers everything else to the standard source importer.
type localImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (l *localImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.std.Import(path)
}

// goFilesIn lists the non-test .go file names directly inside dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	return files, nil
}

// subPackageDirs walks dir's subtree and returns the relative paths of every
// subdirectory holding .go files, sorted so loading is deterministic.
// Local fakes must import only the standard library (or subpackages that
// sort before them).
func subPackageDirs(dir string) ([]string, error) {
	var subs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, walkErr error) error {
		if walkErr != nil || !d.IsDir() || path == dir {
			return walkErr
		}
		files, ferr := goFilesIn(path)
		if ferr != nil {
			return ferr
		}
		if len(files) > 0 {
			rel, rerr := filepath.Rel(dir, path)
			if rerr != nil {
				return rerr
			}
			subs = append(subs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(subs)
	return subs, nil
}

// check parses files (named relative to dir) and type-checks them as one
// package under the given import path.
func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goList shells out to `go list -json` for package discovery, the only part
// of loading the go/* standard packages cannot do alone in module mode.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the directory holding go.mod, so tests and
// the driver can anchor Load regardless of their own working directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}
