package lint

import (
	"go/ast"
	"go/types"
)

// DetrandAnalyzer forbids nondeterministic time and randomness sources in
// the deterministic packages: the seeded chaos engine replays schedules and
// compares trace fingerprints byte-for-byte (DESIGN.md §8), and the paper's
// F2 (unbiased enclave randomness) and P1 (execution integrity) arguments
// assume protocol code draws entropy only from the enclave. A single
// time.Now or global math/rand call silently breaks both: replays diverge
// and the adversary model gains an OS-controlled entropy source.
//
// Flagged in scoped packages (non-test code):
//   - time.Now, time.Since — wall clock; use the virtual clock
//     (vclock.Clock.Now / runtime transport Now) instead.
//   - every package-level math/rand and math/rand/v2 function (Int, Intn,
//     Float64, Perm, Shuffle, Seed, Read, ...) — process-global, unseeded
//     state; construct a seeded *rand.Rand or use enclave randomness
//     (enclave.ReadRand / RandomValue) instead.
//   - rand.New(rand.NewSource(...)) stays legal: that is the seeded form
//     every deterministic component uses.
var DetrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc: "forbids wall-clock time and global/unseeded math/rand in deterministic packages " +
		"(use seeded *rand.Rand, the virtual clock, or enclave randomness)",
	Packages: DeterministicPackages,
	Run:      runDetrand,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			switch pkgPathOf(obj) {
			case "time":
				if wallClockFuncs[obj.Name()] && isFunc(obj) {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; use the virtual clock (vclock/transport Now)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !isFunc(obj) {
					return true
				}
				switch obj.Name() {
				case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
					// Seeded constructors are the sanctioned form.
				default:
					pass.Reportf(sel.Pos(), "global rand.%s uses process-wide unseeded state; use a seeded *rand.Rand or enclave randomness", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// pkgPathOf returns the import path of the package an object belongs to, or
// "" for builtins and package names themselves.
func pkgPathOf(obj types.Object) string {
	if pn, ok := obj.(*types.PkgName); ok {
		_ = pn
		return ""
	}
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isFunc reports whether obj is a package-level function — methods (e.g.
// (*rand.Rand).Intn on a seeded generator) are exactly the sanctioned form
// and must not match.
func isFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
