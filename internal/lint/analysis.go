// Package lint is p2plint's analysis engine: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (Analyzer,
// Pass, Diagnostic) plus the project-specific analyzers that mechanically
// enforce the reproduction's coding invariants — determinism (paper property
// P1/F2), lockstep scheduling (P5) and enclave-boundary error handling.
//
// The framework mirrors x/tools deliberately: each check is an *Analyzer
// with a Run(*Pass) function reporting Diagnostics, and golden tests use an
// analysistest-style `// want "regexp"` harness (see testutil.go). We do not
// vendor x/tools itself — the build must stay self-contained on the Go
// standard library — so the two x/tools passes we adopt (shadow, nilness)
// are local reimplementations of the same diagnostics.
//
// Suppressions use the directive
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory; a directive without one is itself a finding (see
// suppress.go). See DESIGN.md §9 for the analyzer-by-analyzer rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sgxp2p/internal/lint/flow"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `p2plint -help`.
	Doc string
	// Packages restricts the analyzer to packages whose import path equals
	// one of these prefixes or lives below it (prefix + "/"). Nil means the
	// analyzer applies module-wide.
	Packages []string
	// Run performs the analysis on one package and reports findings via
	// pass.Reportf. Nil for module-level analyzers.
	Run func(*Pass) error
	// RunModule performs a whole-module analysis over every loaded package
	// at once (the interprocedural battery — sealflow, keyleak, lockorder).
	// Module analyzers only run under LintModule; per-package RunAnalyzers
	// skips them. Nil for per-package analyzers.
	RunModule func(*ModulePass) error
}

// AppliesTo reports whether the analyzer's package scope covers path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	Path      string // import path (Pkg.Path() may be vendor-mangled)
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form consumed
// by editors and CI logs.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer whose scope covers pkg and returns the
// surviving diagnostics: suppression directives have been applied and
// malformed directives reported, so the result is exactly what the driver
// should print. Diagnostics come back sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Path:      pkg.Path,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	dirs, dirDiags := collectDirectives(pkg.Fset, pkg.Files)
	diags = append(filterSuppressed(diags, dirs), dirDiags...)
	sortDiagnostics(diags)
	return diags, nil
}

// ModulePass carries a module analyzer's view of every loaded package at
// once. The interprocedural analyzers share one lazily built call graph per
// LintModule invocation.
type ModulePass struct {
	Analyzer *Analyzer
	// Fset is the file set shared by all loaded packages (Load and
	// LoadDirAll use a single one).
	Fset *token.FileSet
	Pkgs []*Package

	shared *moduleShared
	diags  []Diagnostic
}

// moduleShared holds state built once and reused by every module analyzer
// in the same LintModule run.
type moduleShared struct {
	graph *flow.Graph
}

// Graph returns the module-wide call graph, building it on first use.
func (p *ModulePass) Graph() *flow.Graph {
	if p.shared.graph == nil {
		infos := make([]*flow.PackageInfo, len(p.Pkgs))
		for i, pkg := range p.Pkgs {
			infos[i] = &flow.PackageInfo{
				Path:  pkg.Path,
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Types: pkg.Types,
				Info:  pkg.Info,
			}
		}
		p.shared.graph = flow.BuildGraph(infos)
	}
	return p.shared.graph
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// LintModule runs the full battery — per-package analyzers on each package,
// module analyzers once over everything — applies suppression directives,
// reports malformed and stale directives, and returns the surviving
// diagnostics sorted by position. All packages must share one FileSet
// (Load and LoadDirAll guarantee this).
func LintModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	var raw []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Path:      pkg.Path,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			raw = append(raw, pass.diags...)
		}
	}
	shared := &moduleShared{}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, shared: shared}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		raw = append(raw, mp.diags...)
	}
	var dirs []directive
	var dirDiags []Diagnostic
	for _, pkg := range pkgs {
		ds, dd := collectDirectives(pkg.Fset, pkg.Files)
		dirs = append(dirs, ds...)
		dirDiags = append(dirDiags, dd...)
	}
	// Stale detection reads raw before filterSuppressed compacts the slice
	// in place.
	stale := staleDirectives(fset, dirs, raw, ran)
	diags := filterSuppressed(raw, dirs)
	diags = append(diags, dirDiags...)
	diags = append(diags, stale...)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
