// Package lint is p2plint's analysis engine: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (Analyzer,
// Pass, Diagnostic) plus the project-specific analyzers that mechanically
// enforce the reproduction's coding invariants — determinism (paper property
// P1/F2), lockstep scheduling (P5) and enclave-boundary error handling.
//
// The framework mirrors x/tools deliberately: each check is an *Analyzer
// with a Run(*Pass) function reporting Diagnostics, and golden tests use an
// analysistest-style `// want "regexp"` harness (see testutil.go). We do not
// vendor x/tools itself — the build must stay self-contained on the Go
// standard library — so the two x/tools passes we adopt (shadow, nilness)
// are local reimplementations of the same diagnostics.
//
// Suppressions use the directive
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory; a directive without one is itself a finding (see
// suppress.go). See DESIGN.md §9 for the analyzer-by-analyzer rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `p2plint -help`.
	Doc string
	// Packages restricts the analyzer to packages whose import path equals
	// one of these prefixes or lives below it (prefix + "/"). Nil means the
	// analyzer applies module-wide.
	Packages []string
	// Run performs the analysis on one package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's package scope covers path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	Path      string // import path (Pkg.Path() may be vendor-mangled)
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form consumed
// by editors and CI logs.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer whose scope covers pkg and returns the
// surviving diagnostics: suppression directives have been applied and
// malformed directives reported, so the result is exactly what the driver
// should print. Diagnostics come back sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Path:      pkg.Path,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	dirs, dirDiags := collectDirectives(pkg.Fset, pkg.Files)
	diags = append(filterSuppressed(diags, dirs), dirDiags...)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
