package lint

import "go/ast"

// TelemetryAnalyzer flags dropped errors from the telemetry export and dump
// APIs, and discarded BeginSpan results. An export is usually the last
// thing a run does — the trace or metric snapshot IS the run's evidence —
// so a swallowed ExportJSONL/DumpFlight error leaves a truncated or missing
// artifact that a later `p2ptrace -check` (or a human) reads as "the run
// produced nothing", which is indistinguishable from the bug being triaged.
// The guarded prefixes also cover ValidateJSONL and DiffLines: ignoring
// their errors turns a failed determinism check into a false pass.
//
// BeginSpan is guarded for the dual failure: its Span result must reach a
// Finish call, or the hop silently vanishes from every reconstructed causal
// chain — the span graph then under-reports exactly the code path someone
// instrumented because they suspected it.
//
// Flagged forms mirror sealerr, in non-test code module-wide:
//
//	tracer.ExportJSONL(w)            // ExprStmt: all results dropped
//	n, _ := telemetry.ValidateJSONL(r) // error position assigned to _
//	defer t.DumpFlight(w, node)      // result unobservable
//	tr.BeginSpan()                   // Span dropped: the hop is never finished
//	_ = tr.BeginSpan()               // same, discarded into _
//
// Deliberate drops carry //lint:allow telemetry <reason>.
var TelemetryAnalyzer = &Analyzer{
	Name: "telemetry",
	Doc: "flags dropped or _-discarded errors from telemetry Export*/Dump*/Validate*/Diff* calls " +
		"and discarded BeginSpan results " +
		"(a silently failed export destroys the run's observability evidence; " +
		"an unfinished span loses its hop from every causal chain)",
	Run: runTelemetry,
}

// telemetryChecker guards the telemetry artifact-producing API prefixes.
var telemetryChecker = &dropChecker{
	prefixes: []string{
		"Export", "Dump", "ValidateJSONL", "DiffLines", "WriteTimeline",
	},
	reason: "a failed export/dump destroys the run's observability evidence",
}

func runTelemetry(pass *Pass) error {
	if err := telemetryChecker.run(pass); err != nil {
		return err
	}
	checkDroppedSpans(pass)
	return nil
}

// checkDroppedSpans flags BeginSpan calls whose Span result never reaches a
// variable: as a bare expression statement, in go/defer (the result is
// unobservable), or discarded into _. dropChecker only watches error-typed
// results, so the Span-valued BeginSpan needs its own walk.
func checkDroppedSpans(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && calleeName(call) == "BeginSpan" {
					pass.Reportf(call.Pos(), "Span from BeginSpan dropped: the hop is never finished (unfinished spans vanish from every reconstructed causal chain)")
				}
			case *ast.GoStmt:
				if calleeName(st.Call) == "BeginSpan" {
					pass.Reportf(st.Call.Pos(), "Span from BeginSpan unobservable in go statement (unfinished spans vanish from every reconstructed causal chain)")
				}
			case *ast.DeferStmt:
				if calleeName(st.Call) == "BeginSpan" {
					pass.Reportf(st.Call.Pos(), "Span from BeginSpan unobservable in deferred call (unfinished spans vanish from every reconstructed causal chain)")
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok || calleeName(call) != "BeginSpan" {
					return true
				}
				if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(st.Pos(), "Span from BeginSpan discarded into _ (unfinished spans vanish from every reconstructed causal chain)")
				}
			}
			return true
		})
	}
}
