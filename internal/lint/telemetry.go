package lint

// TelemetryAnalyzer flags dropped errors from the telemetry export and dump
// APIs. An export is usually the last thing a run does — the trace or metric
// snapshot IS the run's evidence — so a swallowed ExportJSONL/DumpFlight
// error leaves a truncated or missing artifact that a later `p2ptrace
// -check` (or a human) reads as "the run produced nothing", which is
// indistinguishable from the bug being triaged. The guarded prefixes also
// cover ValidateJSONL and DiffLines: ignoring their errors turns a failed
// determinism check into a false pass.
//
// Flagged forms mirror sealerr, in non-test code module-wide:
//
//	tracer.ExportJSONL(w)            // ExprStmt: all results dropped
//	n, _ := telemetry.ValidateJSONL(r) // error position assigned to _
//	defer t.DumpFlight(w, node)      // result unobservable
//
// Deliberate drops carry //lint:allow telemetry <reason>.
var TelemetryAnalyzer = &Analyzer{
	Name: "telemetry",
	Doc: "flags dropped or _-discarded errors from telemetry Export*/Dump*/Validate*/Diff* calls " +
		"(a silently failed export destroys the run's observability evidence)",
	Run: runTelemetry,
}

// telemetryChecker guards the telemetry artifact-producing API prefixes.
var telemetryChecker = &dropChecker{
	prefixes: []string{
		"Export", "Dump", "ValidateJSONL", "DiffLines", "WriteTimeline",
	},
	reason: "a failed export/dump destroys the run's observability evidence",
}

func runTelemetry(pass *Pass) error {
	return telemetryChecker.run(pass)
}
