package lint

import (
	"go/token"
	"go/types"
	"sort"
)

// ShadowAnalyzer is a local reimplementation of the x/tools `shadow` pass
// (the module builds offline from the standard library only, so x/tools
// cannot be vendored). It reports an inner declaration that shadows an
// outer variable of the identical type when the outer variable is still
// used after the inner declaration — the situation where a write meant for
// the outer variable silently lands on the inner one. In lockstep protocol
// code that is a determinism hazard too: a shadowed round counter or seed
// keeps its stale outer value after the block exits.
var ShadowAnalyzer = &Analyzer{
	Name: "shadow",
	Doc: "reports declarations that shadow an outer variable of identical type while the " +
		"outer one is still used afterwards (local reimplementation of x/tools' shadow)",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	// usesAfter[obj] = sorted positions where obj is read or written.
	usesAfter := make(map[types.Object][]token.Pos)
	for id, obj := range pass.TypesInfo.Uses {
		if _, ok := obj.(*types.Var); ok {
			usesAfter[obj] = append(usesAfter[obj], id.Pos()) //lint:allow maporder each per-object position list is sorted immediately below before use
		}
	}
	for _, poss := range usesAfter {
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	}
	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || id.Name == "_" || v.IsField() {
			continue
		}
		scope := v.Parent()
		if scope == nil || scope == pass.Pkg.Scope() {
			continue // package-level declarations shadow nothing above them
		}
		outer := lookupOuter(scope, id.Name, v, pass.Pkg.Scope())
		if outer == nil {
			continue
		}
		if !types.Identical(outer.Type(), v.Type()) {
			continue // different type: deliberate reuse of the name
		}
		// Interesting only if the outer variable is still live: some use of
		// it occurs after the inner declaration.
		poss := usesAfter[outer]
		i := sort.Search(len(poss), func(j int) bool { return poss[j] > id.Pos() })
		if i == len(poss) {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d",
			id.Name, pass.Fset.Position(outer.Pos()).Line)
	}
	return nil
}

// lookupOuter finds a variable named name in a scope strictly enclosing
// inner's scope, declared before inner. Package scope is excluded: shadowing
// a package-level variable is idiomatic (err, ctx wrappers) and x/tools'
// shadow skips it as well.
func lookupOuter(scope *types.Scope, name string, inner *types.Var, pkgScope *types.Scope) types.Object {
	for s := scope.Parent(); s != nil && s != pkgScope && s != types.Universe; s = s.Parent() {
		if obj := s.Lookup(name); obj != nil {
			v, ok := obj.(*types.Var)
			if !ok || obj.Pos() >= inner.Pos() {
				return nil
			}
			return v
		}
	}
	return nil
}
