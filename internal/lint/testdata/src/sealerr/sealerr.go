// Package sealerr is golden-test input: dropped errors from the guarded
// enclave-boundary API shapes, next to handled forms that stay legal.
package sealerr

import "errors"

type link struct{}

func (link) Seal(b []byte) ([]byte, error)   { return b, nil }
func (link) Open(b []byte) ([]byte, error)   { return b, nil }
func (link) Send(b []byte) error             { return nil }
func (link) Multicast(b []byte) (int, error) { return 0, nil }

func Decode(b []byte) (string, error) { return "", errors.New("short") }
func Encode(s string) ([]byte, error) { return nil, nil }

// logf is not a guarded name: dropping its error is out of scope here.
func logf(s string) error { return nil }

func dropped(l link, b []byte) {
	l.Seal(b)      // want "error from Seal: result dropped"
	l.Send(b)      // want "error from Send: result dropped"
	l.Multicast(b) // want "error from Multicast: result dropped"
	logf("fine")
}

func blanked(l link, b []byte) ([]byte, string) {
	opened, _ := l.Open(b) // want "error from Open discarded into _"
	v, _ := Decode(b)      // want "error from Decode discarded into _"
	return opened, v
}

func unobservable(l link, b []byte) {
	go l.Seal(b)    // want "error from Seal: error unobservable in go statement"
	defer l.Open(b) // want "error from Open: error unobservable in deferred call"
}

func handled(l link, b []byte) ([]byte, error) {
	sealed, err := l.Seal(b)
	if err != nil {
		return nil, err
	}
	if _, err := Encode("x"); err != nil {
		return nil, err
	}
	return sealed, l.Send(sealed)
}

// suppressed documents a deliberate drop.
func suppressed(l link, b []byte) {
	_, _ = l.Open(b) //lint:allow sealerr probe path measures throughput only, tamper result unused
}
