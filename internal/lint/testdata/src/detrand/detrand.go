// Package detrand is golden-test input: nondeterministic time and
// randomness sources that the detrand analyzer must flag, next to the
// seeded forms it must accept.
package detrand

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()        // want "time.Now reads the wall clock"
	return time.Since(start) + // want "time.Since reads the wall clock"
		time.Until(start.Add(time.Second)) // want "time.Until reads the wall clock"
}

func globalRand() int {
	n := rand.Intn(10)                 // want "global rand.Intn uses process-wide unseeded state"
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle uses process-wide unseeded state"
	_ = rand.Float64()                 // want "global rand.Float64 uses process-wide unseeded state"
	return n
}

// seeded is the sanctioned form: explicit seed, local generator.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// durations and other non-clock time API stay legal.
func durationsOnly(d time.Duration) time.Duration {
	return d * 2 / time.Millisecond
}

// suppressed documents a deliberate wall-clock read.
func suppressed() time.Time {
	return time.Now() //lint:allow detrand startup banner timestamp is presentation-only
}
