// Golden test for the keyleak analyzer: key material must not reach
// telemetry, log/error formatting, or exported returns outside the TCB.
// Sanctioned uses (sealing, signing) sit next to the violations.
package keyleak

import (
	"fmt"

	"internal/telemetry"
	"internal/xcrypto"
)

// describeKeys leaks key material into an error string.
func describeKeys(keys xcrypto.SessionKeys) error {
	return fmt.Errorf("bad keys %v", keys.Enc) // want "key material from xcrypto.SessionKeys reaches log/error formatting"
}

// leakViaHelper shows the interprocedural path: emit's summary carries the
// telemetry sink back to this call site.
func leakViaHelper(t *telemetry.Tracer, keys xcrypto.SessionKeys) {
	emit(t, keys) // want "key material from xcrypto.SessionKeys reaches telemetry"
}

// emit reports at its own Record call too: with type-based sources, taint
// is born at every read of a key-typed value.
func emit(t *telemetry.Tracer, keys xcrypto.SessionKeys) {
	t.Record(uint64(keys.Enc[0]), "handshake") // want "key material from xcrypto.SessionKeys reaches telemetry"
}

// SessionOf returns key material from an exported function outside the TCB.
func SessionOf(keys xcrypto.SessionKeys) xcrypto.SessionKeys { // want "key material .* flows into exported return"
	return keys
}

// sealedUse is sanctioned: Seal consumes the keys and returns ciphertext.
// No finding.
func sealedUse(t *telemetry.Tracer, keys xcrypto.SessionKeys, plaintext []byte) error {
	env, err := xcrypto.Seal(keys, plaintext)
	if err != nil {
		return err
	}
	t.Record(uint64(len(env)), "sealed")
	return nil
}

// signedUse is sanctioned: signatures are public. No finding.
func signedUse(sk *xcrypto.SigningKey, msg []byte) []byte {
	return sk.Sign(msg)
}
