// Package telemetry is a minimal fake of sgxp2p/internal/telemetry for the
// keyleak golden test: every exported entry point is a sink.
package telemetry

// Tracer models the event tracer.
type Tracer struct{}

// Record appends one event.
func (t *Tracer) Record(arg uint64, note string) {}
