// Package xcrypto is a minimal fake of sgxp2p/internal/xcrypto for the
// keyleak golden test: SessionKeys/LinkCipher/SigningKey are the key-typed
// sources, Seal/Sign are the sanctioned consumers.
package xcrypto

// SessionKeys is pairwise key material.
type SessionKeys struct {
	Enc [32]byte
	Mac [32]byte
}

// LinkCipher is prepared per-link cipher state.
type LinkCipher struct {
	keys SessionKeys
}

// SigningKey is a private signing key.
type SigningKey struct {
	priv [32]byte
}

// Seal encrypts plaintext under keys; its output is ciphertext, not key
// material.
func Seal(keys SessionKeys, plaintext []byte) ([]byte, error) {
	return append([]byte(nil), plaintext...), nil
}

// Sign produces a public signature.
func (sk *SigningKey) Sign(msg []byte) []byte {
	return append([]byte(nil), msg...)
}
