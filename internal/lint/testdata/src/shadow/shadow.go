// Package shadow is golden-test input for the local shadow pass: inner
// declarations that hide a live outer variable of the same type.
package shadow

import "errors"

func fetch() (int, error) { return 0, nil }

// liveOuter: the outer err is read after the block, so the inner shadow is
// the classic lost-write hazard.
func liveOuter() error {
	n, err := fetch()
	if n > 0 {
		m, err := fetch() // want "declaration of \"err\" shadows declaration at line 12"
		_ = m
		_ = err
	}
	return err
}

// deadOuter: the outer err is never used after the inner declaration, so
// the shadow is harmless and stays legal.
func deadOuter() int {
	n, err := fetch()
	_ = err
	if n > 0 {
		m, err := fetch()
		_ = err
		return m
	}
	return n
}

// differentType: reusing a name for a different type is deliberate reuse.
func differentType() error {
	v := 1
	if v > 0 {
		v := "one"
		_ = v
	}
	if v > 1 {
		return errors.New("big")
	}
	return nil
}

// packageLevel shadowing is idiomatic and out of scope.
var counter int

func packageLevel() int {
	counter := 7
	_ = counter
	return counter
}

// suppressed documents a tolerated shadow.
func suppressed() error {
	n, err := fetch()
	if n > 0 {
		_, err := fetch() //lint:allow shadow retry probe intentionally ignores the outer error chain
		_ = err
	}
	return err
}
