// Package telemetry is golden-test input: dropped errors from the telemetry
// export/dump API shapes, next to handled forms that stay legal.
package telemetry

import "io"

type tracer struct{}

func (tracer) ExportJSONL(w io.Writer) error          { return nil }
func (tracer) ExportTimeline(w io.Writer) error       { return nil }
func (tracer) DumpFlight(w io.Writer, n uint32) error { return nil }

type metrics struct{}

func (metrics) ExportPrometheus(w io.Writer) error { return nil }

func ValidateJSONL(r io.Reader) (int, error) { return 0, nil }

func DiffLines(a, b io.Reader) (int, string, string, error) { return 0, "", "", nil }

// render is not a guarded name: dropping its error is out of scope here.
func render(w io.Writer) error { return nil }

func dropped(t tracer, m metrics, w io.Writer) {
	t.ExportJSONL(w)      // want "error from ExportJSONL: result dropped"
	m.ExportPrometheus(w) // want "error from ExportPrometheus: result dropped"
	t.DumpFlight(w, 3)    // want "error from DumpFlight: result dropped"
	render(w)
}

func blanked(r io.Reader) int {
	n, _ := ValidateJSONL(r)         // want "error from ValidateJSONL discarded into _"
	line, _, _, _ := DiffLines(r, r) // want "error from DiffLines discarded into _"
	return n + line
}

func unobservable(t tracer, w io.Writer) {
	go t.ExportTimeline(w)   // want "error from ExportTimeline: error unobservable in go statement"
	defer t.DumpFlight(w, 0) // want "error from DumpFlight: error unobservable in deferred call"
}

func handled(t tracer, m metrics, w io.Writer, r io.Reader) error {
	if err := t.ExportJSONL(w); err != nil {
		return err
	}
	if _, err := ValidateJSONL(r); err != nil {
		return err
	}
	return m.ExportPrometheus(w)
}

// suppressed documents a deliberate drop.
func suppressed(t tracer, w io.Writer) {
	_ = t.ExportTimeline(w) //lint:allow telemetry best-effort debug print on the failure path
}

type span struct{}

func (span) Finish() {}

func (tracer) BeginSpan() span { return span{} }

func droppedSpans(t tracer) {
	t.BeginSpan()       // want "Span from BeginSpan dropped: the hop is never finished"
	_ = t.BeginSpan()   // want "Span from BeginSpan discarded into _"
	go t.BeginSpan()    // want "Span from BeginSpan unobservable in go statement"
	defer t.BeginSpan() // want "Span from BeginSpan unobservable in deferred call"
}

func finishedSpan(t tracer) {
	s := t.BeginSpan()
	s.Finish()
}

func suppressedSpan(t tracer) {
	t.BeginSpan() //lint:allow telemetry probing whether spans are enabled, hop intentionally unrecorded
}
