// Package muxboundary is golden-test input: node-scoped runtime access and
// direct cipher use the muxboundary analyzer must flag in instance-scoped
// code, next to the legal Host-capability idioms it must not.
package muxboundary

import (
	"internal/channel"
	"internal/runtime"
	"internal/xcrypto"
)

// engine is the legal shape: an instance keeps only its Host capability.
type engine struct {
	host runtime.Host
}

// legalSurface exercises the allowed runtime symbols end to end.
func legalSurface(h runtime.Host, it *runtime.Instance) runtime.Protocol {
	_ = h.Round()
	_ = it.StartRound()
	return nil
}

// grabsPeer reaches for the node-scoped runtime objects.
func grabsPeer() {
	var p *runtime.Peer // want "runtime.Peer is node-scoped"
	_ = p
	_ = runtime.NewPeer() // want "runtime.NewPeer is node-scoped"
}

// buildsOwnMux schedules around the node's scheduler.
func buildsOwnMux(p *runtime.Peer) { // want "runtime.Peer is node-scoped"
	_ = runtime.NewMux(p) // want "runtime.NewMux is node-scoped"
}

// keepsMux holds the node-scoped scheduler in instance state.
type keepsMux struct {
	m *runtime.Mux // want "runtime.Mux is node-scoped"
}

// sendsRaw bypasses the runtime's outbox entirely.
func sendsRaw(tr runtime.Transport, frame []byte) { // want "runtime.Transport is node-scoped"
	_ = tr.Send(0, frame)
}

// sealsItself corrupts per-link AEAD sequence state.
func sealsItself(frame []byte) []byte {
	c := channel.New()        // want "channel.New bypasses the runtime's per-link cipher state"
	return c.Seal(nil, frame) // want "channel.Seal bypasses the runtime's per-link cipher state"
}

// rawSeal uses the sealing primitives directly.
func rawSeal(key, frame []byte) []byte {
	return xcrypto.Seal(key, frame) // want "xcrypto.Seal bypasses the runtime's per-link cipher state"
}

// suppressed documents a sanctioned exception with a reason.
func suppressed() {
	//lint:allow muxboundary node bootstrap helper exercised only by the runtime's own tests
	_ = runtime.NewPeer()
}
