// Package xcrypto is a golden-test fake of the raw sealing primitives:
// every symbol here is off-limits to instance-scoped code.
package xcrypto

// Seal encrypts plaintext under key.
func Seal(key, plaintext []byte) []byte { return plaintext }
