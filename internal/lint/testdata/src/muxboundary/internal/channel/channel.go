// Package channel is a golden-test fake of the link-cipher layer: every
// symbol here is off-limits to instance-scoped code.
package channel

// LinkCipher holds a link's AEAD sequence state.
type LinkCipher struct{}

// New returns a fresh cipher.
func New() *LinkCipher { return &LinkCipher{} }

// Seal encrypts one frame, advancing the sequence state.
func (c *LinkCipher) Seal(dst, frame []byte) []byte { return frame }
