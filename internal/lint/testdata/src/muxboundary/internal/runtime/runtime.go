// Package runtime is a golden-test fake of the node runtime: just enough
// surface for the muxboundary analyzer to resolve both the node-scoped
// symbols it must flag and the instance-scoped capability it must allow.
package runtime

// Peer is node-scoped: it owns the transport and per-link cipher state.
type Peer struct{}

// NewPeer is node-scoped.
func NewPeer() *Peer { return &Peer{} }

// Transport is node-scoped.
type Transport interface {
	Send(dst uint32, frame []byte) error
}

// Mux is node-scoped: it schedules instances over one Peer.
type Mux struct{}

// NewMux is node-scoped.
func NewMux(p *Peer) *Mux { return &Mux{} }

// Host is the instance-scoped capability surface protocol engines keep.
type Host interface {
	ID() uint32
	Round() uint32
	Multicast(v byte) error
}

// Protocol is what an instance implements; referencing it is legal.
type Protocol interface {
	OnRound(rnd uint32)
}

// Instance is the per-instance handle a Mux hands to its build callback.
type Instance struct{}

// StartRound is part of the legal instance surface.
func (it *Instance) StartRound() uint32 { return 1 }
