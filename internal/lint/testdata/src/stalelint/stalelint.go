// Golden test for the stale-suppression check: a //lint:allow directive
// that no longer matches any finding is itself reported, keeping the
// suppression ledger honest. Run under the full battery via LintModule.
package stalelint

import "math/rand"

// live: the directive suppresses a real detrand finding — not stale.
func live() int {
	return rand.Int() //lint:allow detrand golden fixture exercising a live suppression
}

// stale: nothing on this line (or the next) ever triggers maporder, so the
// directive is dead weight and must be reported.
// wantbelow "stale suppression: no maporder finding"
var answer = 42 //lint:allow maporder golden fixture exercising the stale-suppression check
