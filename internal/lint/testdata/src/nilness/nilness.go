// Package nilness is golden-test input for the local nilness pass:
// guaranteed panics inside `if x == nil` branches.
package nilness

type node struct{ next *node }

type ringer interface{ Ring() int }

func deref(p *node) *node {
	if p == nil {
		return p.next // want "field access through p, which is nil on this branch"
	}
	return p
}

func explicitStar(p *int) int {
	if nil == p {
		return *p // want "dereference of p, which is nil on this branch"
	}
	return 0
}

func ifaceCall(r ringer) int {
	if r == nil {
		return r.Ring() // want "method call on r, which is nil on this branch"
	}
	return r.Ring()
}

func sliceIndex(s []int) int {
	if s == nil {
		return s[0] // want "index of s, which is nil on this branch"
	}
	return s[0]
}

func mapWrite(m map[string]int) {
	if m == nil {
		m["k"] = 1 // want "write into m, which is nil on this branch"
	}
}

func funcCall(f func() int) int {
	if f == nil {
		return f() // want "call of f, which is nil on this branch"
	}
	return f()
}

// reassigned: x gets a value before use, so the branch is safe.
func reassigned(p *node) *node {
	if p == nil {
		p = &node{}
		return p.next
	}
	return p
}

// mapRead of a nil map is defined behaviour; no finding.
func mapRead(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return m["k"]
}

// pointerMethod: methods may tolerate nil receivers; only field access is
// flagged on pointers.
func pointerMethod(p *node) int {
	if p == nil {
		return p.depth()
	}
	return p.depth()
}

func (p *node) depth() int {
	if p == nil {
		return 0
	}
	return 1 + p.next.depth()
}

// suppressed documents an intentional panic-on-nil.
func suppressed(p *node) *node {
	if p == nil {
		return p.next //lint:allow nilness crash here is the documented contract for nil roots
	}
	return p
}
