// Package lockstep is golden-test input: OS-timer scheduling the lockstep
// analyzer must flag in round-driven code.
package lockstep

import "time"

func sleeper() {
	time.Sleep(time.Millisecond) // want "time.Sleep schedules on the OS timer"
}

func timers(fn func()) {
	t := time.NewTimer(time.Second) // want "time.NewTimer schedules on the OS timer"
	defer t.Stop()
	time.AfterFunc(time.Second, fn) // want "time.AfterFunc schedules on the OS timer"
	<-time.After(time.Second)       // want "time.After schedules on the OS timer"
}

// durations are not timers; arithmetic stays legal.
func budget(rounds int, interval time.Duration) time.Duration {
	return time.Duration(rounds) * interval
}

// suppressed documents a deliberate host-timer use.
func suppressedSleep() {
	//lint:allow lockstep backoff in operator tooling runs outside the round loop
	time.Sleep(10 * time.Millisecond)
}
