// Golden test for the lockorder analyzer: two call paths acquiring the same
// pair of mutexes in opposite orders form a cycle in the lock-acquisition
// graph. Consistent-order paths sit alongside as the legal idiom.
package lockorder

import "sync"

// A and B carry the mutex pair taken in both orders.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// C closes a second cycle with A through a call chain.
type C struct{ mu sync.Mutex }

// path1 takes A then B; path2 takes B then A — a direct cycle. The finding
// anchors at the inner acquisition of the canonical (A-first) rotation.
func path1(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle lockorder.A.mu -> lockorder.B.mu -> lockorder.A.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func path2(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// outer holds A.mu across a call whose callee takes C.mu (edge A→C);
// reverse holds C.mu across a call that takes A.mu (edge C→A). The cycle
// only exists interprocedurally, through the transitive acquire sets.
func outer(a *A, c *C) {
	a.mu.Lock()
	inner(c) // want "lock order cycle lockorder.A.mu -> lockorder.C.mu -> lockorder.A.mu"
	a.mu.Unlock()
}

func inner(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func reverse(a *A, c *C) {
	c.mu.Lock()
	lockA(a)
	c.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// ordered takes the pair in the same order everywhere; with defer-based
// release the lock is held to function end. No finding on its own — it
// agrees with path1's ordering.
func ordered(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}
