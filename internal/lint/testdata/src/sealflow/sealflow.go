// Golden test for the sealflow analyzer: wire-encoded plaintext may only
// reach a network Send sink after passing through channel.Seal*. Violations
// sit next to the sealed (legal) paths, covering the unbatched and the
// batch-outbox pipelines.
package sealflow

import (
	"internal/channel"
	"internal/tcpnet"
	"internal/wire"
)

// leakDirect is the deliberate plaintext-to-tcpnet leak: the encoded
// message goes straight to the transport.
func leakDirect(p *tcpnet.Port, m *wire.Message) error {
	encoded, err := m.Encode()
	if err != nil {
		return err
	}
	p.Send(1, encoded) // want "payload plaintext from wire.Message.Encode reaches network sink tcpnet.Port.Send"
	return nil
}

// leakViaHelper routes the plaintext through an intermediate function; the
// interprocedural summary of forward carries the sink back to this caller.
func leakViaHelper(p *tcpnet.Port, m *wire.Message) error {
	encoded, err := m.AppendEncode(nil)
	if err != nil {
		return err
	}
	forward(p, encoded) // want "payload plaintext from wire.Message.AppendEncode reaches network sink tcpnet.Port.Send"
	return nil
}

func forward(p *tcpnet.Port, b []byte) {
	p.Send(2, b)
}

// leakBatch leaks the batch outbox without sealing it.
func leakBatch(p *tcpnet.Port, m *wire.Message) error {
	encoded, err := m.AppendEncode(nil)
	if err != nil {
		return err
	}
	batch := wire.AppendBatchEntry(nil, encoded)
	p.Send(3, batch) // want "payload plaintext from wire.AppendBatchEntry reaches network sink tcpnet.Port.Send"
	return nil
}

// sealedSend is the legal unbatched path: encode, seal, send. No finding.
func sealedSend(p *tcpnet.Port, l *channel.Link, m *wire.Message) error {
	encoded, err := m.AppendEncode(nil)
	if err != nil {
		return err
	}
	env, err := l.SealEncodedAppend(nil, encoded)
	if err != nil {
		return err
	}
	p.Send(4, env)
	return nil
}

// sealedBatch is the legal batch-outbox path: entries accumulate, the batch
// is sealed once, the envelope ships. No finding.
func sealedBatch(p *tcpnet.Port, l *channel.Link, msgs []*wire.Message) error {
	var batch []byte
	for _, m := range msgs {
		encoded, err := m.AppendEncode(nil)
		if err != nil {
			return err
		}
		batch = wire.AppendBatchEntry(batch, encoded)
	}
	env, err := l.SealBatchAppend(nil, batch)
	if err != nil {
		return err
	}
	p.Send(5, env)
	return nil
}

// reopened plaintext is a source again: opening an envelope and forwarding
// the plaintext unsealed is a violation.
func leakReopened(p *tcpnet.Port, l *channel.Link, sealed []byte) error {
	plain, err := l.OpenEncodedAppend(nil, sealed)
	if err != nil {
		return err
	}
	p.Send(6, plain) // want "payload plaintext from channel.Link.OpenEncodedAppend reaches network sink tcpnet.Port.Send"
	return nil
}

// allowedLeak exercises suppression: the directive silences the finding.
func allowedLeak(p *tcpnet.Port, m *wire.Message) {
	encoded, _ := m.Encode()
	//lint:allow sealflow golden fixture proving directives silence interprocedural findings
	p.Send(7, encoded)
}
