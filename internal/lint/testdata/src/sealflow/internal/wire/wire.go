// Package wire is a minimal fake of sgxp2p/internal/wire for the sealflow
// golden test: its encoders are the analyzer's plaintext sources.
package wire

// Message models a protocol message.
type Message struct {
	Body []byte
}

// Encode returns the plaintext encoding.
func (m *Message) Encode() ([]byte, error) {
	return append([]byte(nil), m.Body...), nil
}

// AppendEncode appends the plaintext encoding to buf.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	return append(buf, m.Body...), nil
}

// AppendBatchEntry appends one encoded message to a batch buffer.
func AppendBatchEntry(buf, encoded []byte) []byte {
	return append(buf, encoded...)
}
