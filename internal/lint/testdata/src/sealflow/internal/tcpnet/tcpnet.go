// Package tcpnet is a minimal fake of sgxp2p/internal/tcpnet for the
// sealflow golden test: Port.Send is the analyzer's network sink.
package tcpnet

// Port models the real-network transport surface.
type Port struct{}

// Send transmits payload to dst.
func (p *Port) Send(dst uint64, payload []byte) {}
