// Package channel is a minimal fake of sgxp2p/internal/channel for the
// sealflow golden test: its Seal* methods are the analyzer's sanitizers.
package channel

// Link models a sealed point-to-point channel.
type Link struct{}

// SealEncodedAppend seals one encoded message into an envelope.
func (l *Link) SealEncodedAppend(dst, encoded []byte) ([]byte, error) {
	return append(dst, encoded...), nil
}

// SealBatchAppend seals a whole batch buffer into one envelope.
func (l *Link) SealBatchAppend(dst, batch []byte) ([]byte, error) {
	return append(dst, batch...), nil
}

// OpenEncodedAppend opens an envelope back into plaintext.
func (l *Link) OpenEncodedAppend(dst, sealed []byte) ([]byte, error) {
	return append(dst, sealed...), nil
}
