// Package maporder is golden-test input: map iterations whose results
// escape in iteration order, next to the sorted idioms that stay legal.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// escapingAppend leaks map order into the returned slice.
func escapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map range escapes iteration order"
	}
	return keys
}

// collectThenSort is the canonical deterministic idiom: no finding.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceAlsoCounts: sort.Slice on the destination redeems the append.
func sortSliceAlsoCounts(m map[int]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// accumulators cannot be fixed after the fact.
func accumulate(m map[string]uint64) uint64 {
	var acc uint64
	for _, v := range m {
		acc ^= v // want "accumulation into acc inside map range depends on iteration order"
	}
	return acc
}

func concat(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want "string concatenation into out inside map range escapes iteration order"
	}
	return out
}

// intSumIsCommutative: += on numbers is order-free; no finding.
func intSumIsCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// streamWrites serialize in iteration order.
func streamWrites(m map[string]string) string {
	var buf bytes.Buffer
	for k, v := range m {
		buf.WriteString(k)   // want "buf.WriteString inside map range writes in iteration order"
		fmt.Fprintf(&buf, v) // want "fmt.Fprintf to buf inside map range writes in iteration order"
	}
	return buf.String()
}

// mapToMap rebuilds a map: insertion order is irrelevant, no finding.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// channelSend leaks order to the receiver.
func channelSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "send on ch inside map range leaks iteration order"
	}
}

// loopLocal destinations die with the iteration; no finding.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// suppressed documents a deliberately order-free fold.
func suppressed(m map[string]uint64) uint64 {
	var acc uint64
	for _, v := range m {
		acc ^= v //lint:allow maporder XOR fold is commutative and feeds no positional digest
	}
	return acc
}
