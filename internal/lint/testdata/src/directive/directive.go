// Package directive is golden-test input for the //lint:allow suppression
// machinery itself: well-formed directives must silence findings, a
// directive without the mandatory reason must be reported and must NOT
// silence anything, and unknown analyzer names must be reported.
package directive

import "time"

// properlySuppressed: trailing directive with a reason silences the line.
func properlySuppressed() time.Time {
	return time.Now() //lint:allow detrand wall clock feeds the operator log only
}

// standaloneSuppressed: a directive on its own line covers the next line.
func standaloneSuppressed() time.Time {
	//lint:allow detrand wall clock feeds the operator log only
	return time.Now()
}

// missingReason: the reasonless directive is itself a finding, and the
// violation it failed to suppress is still reported.
func missingReason() time.Time {
	// wantbelow "directive allowing \"detrand\" is missing the mandatory reason"
	//lint:allow detrand
	return time.Now() // want "time.Now reads the wall clock"
}

// unknownAnalyzer: misspelled analyzer names must not silently no-op.
func unknownAnalyzer() int {
	// wantbelow "directive allows unknown analyzer \"detrnd\""
	//lint:allow detrnd typo in the analyzer name
	return 1
}
