package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer flags map iterations whose per-element results escape the
// loop in an order-sensitive way without a deterministic sort. Go randomizes
// map iteration order per run, so a map range that appends to a slice,
// concatenates into a string, writes to a stream/encoder or accumulates into
// a value produces run-dependent output. In this codebase that is the exact
// bug class that silently breaks deterministic replay: the chaos engine
// (DESIGN.md §8) re-runs a seeded schedule and compares trace fingerprints,
// and any map-ordered bytes reaching the wire, a digest or a trace diverge
// between runs while every test still passes.
//
// An escaping append is accepted when the same function later sorts the
// destination (a sort.* or slices.* call taking it as an argument) — the
// canonical collect-then-sort idiom stays legal. Stream writes and
// accumulators have no after-the-fact fix, so they are always flagged;
// deliberately order-free accumulation (e.g. a pure XOR fold) carries
// //lint:allow maporder <reason>.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flags map iterations whose results escape the loop (append, string concat, stream " +
		"write, accumulator) without a deterministic sort — map order would reach wire/digest/trace paths",
	Run: runMaporder,
}

// orderSinkMethods are method names that serialize their argument into an
// order-sensitive destination (stream, digest, encoder).
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk function bodies so each map range can be checked for a
		// redeeming sort later in the same function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				pass.checkMapRanges(body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges finds every map range directly inside fnBody (at any
// depth) and checks its escapes. fnBody is also the redemption search space
// for later sorts.
func (p *Pass) checkMapRanges(fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != fnBody {
			return false // nested functions get their own walk
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkEscapes(rng, fnBody)
		return true
	})
}

func (p *Pass) checkEscapes(rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			p.checkAssignEscape(st, rng, fnBody)
		case *ast.CallExpr:
			p.checkCallEscape(st, rng)
		case *ast.SendStmt:
			if ch := p.outerObject(st.Chan, rng); ch != nil {
				p.Reportf(st.Pos(), "send on %s inside map range leaks iteration order to the receiver; iterate sorted keys", ch.Name())
			}
		}
		return true
	})
}

// checkAssignEscape handles `dst = append(dst, ...)`, `dst += s` (strings)
// and `dst ^= v` / `dst |= v` style accumulation into outer variables.
func (p *Pass) checkAssignEscape(st *ast.AssignStmt, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || i >= len(st.Lhs) {
				continue
			}
			dst := p.outerObject(st.Lhs[i], rng)
			if dst == nil {
				continue
			}
			if p.sortedAfter(dst, rng, fnBody) {
				continue
			}
			p.Reportf(st.Pos(), "append to %s inside map range escapes iteration order; sort %s afterwards or iterate sorted keys", dst.Name(), dst.Name())
		}
	case token.XOR_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.SUB_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		if dst := p.outerObject(st.Lhs[0], rng); dst != nil {
			p.Reportf(st.Pos(), "accumulation into %s inside map range depends on iteration order; iterate sorted keys (or //lint:allow maporder with the commutativity argument)", dst.Name())
		}
	case token.ADD_ASSIGN:
		dst := p.outerObject(st.Lhs[0], rng)
		if dst == nil {
			return
		}
		if b, ok := dst.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			p.Reportf(st.Pos(), "string concatenation into %s inside map range escapes iteration order; iterate sorted keys", dst.Name())
		}
	}
}

// checkCallEscape flags order-sensitive sink calls (Write/Encode/Fprintf...)
// whose receiver or writer argument lives outside the loop.
func (p *Pass) checkCallEscape(call *ast.CallExpr, rng *ast.RangeStmt) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !orderSinkMethods[sel.Sel.Name] {
		return
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	if pkgPathOf(obj) == "fmt" { // fmt.Fprint*(w, ...): the writer is arg 0
		if len(call.Args) == 0 {
			return
		}
		if w := p.outerObject(call.Args[0], rng); w != nil {
			p.Reportf(call.Pos(), "fmt.%s to %s inside map range writes in iteration order; iterate sorted keys", sel.Sel.Name, w.Name())
		}
		return
	}
	if _, isMethod := obj.(*types.Func); !isMethod {
		return
	}
	if recv := p.outerObject(sel.X, rng); recv != nil {
		p.Reportf(call.Pos(), "%s.%s inside map range writes in iteration order; iterate sorted keys", recv.Name(), sel.Sel.Name)
	}
}

// outerObject resolves expr to the variable it names (unwrapping selectors
// and derefs to their base identifier) and returns it when that variable is
// declared outside the range statement — i.e. when writes through it outlive
// the loop. Returns nil for loop-local variables and non-identifiers.
func (p *Pass) outerObject(expr ast.Expr, rng *ast.RangeStmt) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X // &buf passed to a sink still names the outer buffer
		case *ast.SelectorExpr:
			// For x.f or pkg.V use the base: escaping through a field of an
			// outer struct is still escaping.
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			id, ok := expr.(*ast.Ident)
			if !ok {
				return nil
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				obj = p.TypesInfo.Defs[id]
			}
			if obj == nil {
				return nil
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return nil
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
				return nil // declared inside the loop (incl. the range vars)
			}
			return obj
		}
	}
}

// sortedAfter reports whether fnBody contains, after the range statement, a
// sort.*/slices.* call that takes dst as an argument — the collect-then-sort
// idiom that restores determinism.
func (p *Pass) sortedAfter(dst types.Object, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := p.TypesInfo.Uses[sel.Sel]
		if fn == nil {
			return true
		}
		switch pkgPathOf(fn) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if p.refersTo(arg, dst) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// refersTo reports whether expr mentions obj.
func (p *Pass) refersTo(expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
