package lint

// DeterministicPackages are the import paths (and subtrees) whose non-test
// code must be bit-for-bit replayable: the protocol cores the chaos engine
// replays under fixed seeds, the virtual clock and simulated network that
// define the replayed timeline, the adversary whose choices are part of the
// schedule, and the TCP transport whose deliberate wall-clock anchoring is
// the one sanctioned exception (suppressed in-source with reasons).
var DeterministicPackages = []string{
	"sgxp2p/internal/core",
	"sgxp2p/internal/chaos",
	"sgxp2p/internal/vclock",
	"sgxp2p/internal/simnet",
	"sgxp2p/internal/adversary",
	"sgxp2p/internal/runtime",
	"sgxp2p/internal/tcpnet",
	"sgxp2p/internal/telemetry",
	"sgxp2p/internal/wire",
	"sgxp2p/internal/channel",
	"sgxp2p/internal/scenario",
	"sgxp2p/internal/beacon",
}

// Analyzers returns the full p2plint battery in the order findings are
// attributed: the six per-package project invariants, the two general
// passes adopted from x/tools (reimplemented locally — see
// shadow.go/nilness.go), then the three interprocedural analyzers built on
// internal/lint/flow (module-wide; they only run under LintModule).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetrandAnalyzer,
		MaporderAnalyzer,
		SealerrAnalyzer,
		TelemetryAnalyzer,
		LockstepAnalyzer,
		MuxboundaryAnalyzer,
		ShadowAnalyzer,
		NilnessAnalyzer,
		SealflowAnalyzer,
		KeyleakAnalyzer,
		LockorderAnalyzer,
	}
}
