package lint

import "testing"

// The golden tests run every analyzer over its testdata package through the
// same RunAnalyzers path the p2plint driver uses, so suppression directives
// and malformed-directive reporting are exercised end to end. Each testdata
// file deliberately seeds violations next to the legal idioms; see
// testutil_test.go for the // want comment syntax.

func TestDetrandGolden(t *testing.T)  { runGolden(t, DetrandAnalyzer, "detrand") }
func TestMaporderGolden(t *testing.T) { runGolden(t, MaporderAnalyzer, "maporder") }
func TestSealerrGolden(t *testing.T)  { runGolden(t, SealerrAnalyzer, "sealerr") }

func TestTelemetryGolden(t *testing.T) { runGolden(t, TelemetryAnalyzer, "telemetry") }
func TestLockstepGolden(t *testing.T)  { runGolden(t, LockstepAnalyzer, "lockstep") }

// TestMuxboundaryGolden additionally exercises LoadDir's local-fake
// importer: the testdata package imports fake internal/runtime,
// internal/channel and internal/xcrypto subpackages.
func TestMuxboundaryGolden(t *testing.T) { runGolden(t, MuxboundaryAnalyzer, "muxboundary") }
func TestShadowGolden(t *testing.T)      { runGolden(t, ShadowAnalyzer, "shadow") }
func TestNilnessGolden(t *testing.T)     { runGolden(t, NilnessAnalyzer, "nilness") }

// TestDirectiveGolden exercises the suppression machinery itself: reasoned
// directives silence findings, reasonless or unknown-analyzer directives are
// findings of their own and suppress nothing.
func TestDirectiveGolden(t *testing.T) { runGolden(t, DetrandAnalyzer, "directive") }

// The interprocedural battery runs through LintModule over a testdata tree
// with local internal/* fakes, so sources/sanitizers/sinks cross package
// boundaries exactly as in the real module. Each fixture pairs violations
// (including a deliberate plaintext-to-tcpnet leak) with the sealed or
// consistently-ordered legal path.
func TestSealflowGolden(t *testing.T) {
	runGoldenModule(t, []*Analyzer{SealflowAnalyzer}, "sealflow")
}
func TestKeyleakGolden(t *testing.T) {
	runGoldenModule(t, []*Analyzer{KeyleakAnalyzer}, "keyleak")
}
func TestLockorderGolden(t *testing.T) {
	runGoldenModule(t, []*Analyzer{LockorderAnalyzer}, "lockorder")
}

// TestStaleLintGolden runs the full battery so the stale-suppression check
// judges directives for analyzers that actually ran: a live suppression
// stays silent, a dead one is reported.
func TestStaleLintGolden(t *testing.T) { runGoldenModule(t, Analyzers(), "stalelint") }
