package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SealerrAnalyzer flags dropped errors from the enclave-boundary and wire
// APIs. A Seal/Open failure is the blinded channel refusing to cross the
// enclave boundary (tampered ciphertext, a halted enclave, a replay) and an
// Encode/Decode failure is a malformed frame; ignoring either silently
// converts a detected attack into an omission the protocol never accounts
// for, voiding the P1/P2 integrity argument. Send/Multicast errors carry the
// halt-on-divergence signal (P4): a sender that ignores them keeps acting
// after it should have churned itself out.
//
// Flagged forms, in non-test code module-wide:
//
//	link.Seal(msg)                   // ExprStmt: all results dropped
//	v, _ := wire.Decode(b)           // error position assigned to _
//	go enc.Encode(x) / defer f.Open() // results unobservable
//
// Deliberate drops carry //lint:allow sealerr <reason>.
var SealerrAnalyzer = &Analyzer{
	Name: "sealerr",
	Doc: "flags dropped or _-discarded errors from Seal*/Open*/Encode*/Decode* and " +
		"channel/wire send APIs (they signal tampering, replay or required self-halt)",
	Run: runSealerr,
}

// sealerrChecker guards the enclave-boundary and wire API name prefixes.
// The list is name-based on purpose: it catches the project's Sealer/Link/
// Message APIs as well as stdlib encoders feeding the wire, without needing
// a registry of types.
var sealerrChecker = &dropChecker{
	prefixes: []string{
		"Seal", "Open", "Encode", "Decode", "AppendEncode",
		"Send", "Multicast", "Unicast",
	},
	reason: "tampering/replay/halt signals must be handled",
}

func runSealerr(pass *Pass) error {
	return sealerrChecker.run(pass)
}

// dropChecker is the shared dropped-error detector behind sealerr and
// telemetry: it flags calls to name-prefix-guarded APIs whose error result
// is unobserved (expression statement, go/defer) or assigned to _.
type dropChecker struct {
	prefixes []string
	// reason is the parenthesized consequence appended to every finding.
	reason string
}

func (c *dropChecker) guardedName(name string) bool {
	for _, p := range c.prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func (c *dropChecker) run(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					c.checkDroppedCall(pass, call, "result dropped")
				}
			case *ast.GoStmt:
				c.checkDroppedCall(pass, st.Call, "error unobservable in go statement")
			case *ast.DeferStmt:
				c.checkDroppedCall(pass, st.Call, "error unobservable in deferred call")
			case *ast.AssignStmt:
				c.checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// guardedErrorPositions returns the indices of call's results whose type is
// error, but only when the callee is one of the guarded APIs.
func (c *dropChecker) guardedErrorPositions(p *Pass, call *ast.CallExpr) []int {
	name := calleeName(call)
	if name == "" || !c.guardedName(name) {
		return nil
	}
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil // conversion or builtin
	}
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

func (c *dropChecker) checkDroppedCall(p *Pass, call *ast.CallExpr, how string) {
	if len(c.guardedErrorPositions(p, call)) > 0 {
		p.Reportf(call.Pos(), "error from %s: %s (%s)", calleeName(call), how, c.reason)
	}
}

// checkBlankAssign flags `v, _ := Decode(...)`-style assignments where the
// error result of a guarded call lands in the blank identifier.
func (c *dropChecker) checkBlankAssign(p *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	idx := c.guardedErrorPositions(p, call)
	if len(idx) == 0 {
		return
	}
	for _, i := range idx {
		if i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(st.Pos(), "error from %s discarded into _ (%s)", calleeName(call), c.reason)
		}
	}
}

// calleeName extracts the called function or method name, or "" when the
// callee is not a simple name (function values, conversions).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return t.String() == "error" && types.IsInterface(t)
}
