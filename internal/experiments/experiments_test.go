package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func cfg() Config {
	return Config{Seed: 7}
}

// cell parses a table cell as float.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := tbl.Rows[row][col]
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, s, err)
	}
	return v
}

func TestFig2aShape(t *testing.T) {
	tbl, err := Fig2a(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Fatalf("only %d rows", len(tbl.Rows))
	}
	// Honest termination is about two rounds at every size: termination /
	// oneRound in [1, 3).
	for i := range tbl.Rows {
		oneRound := cell(t, tbl, i, 1)
		term := cell(t, tbl, i, 2)
		if ratio := term / oneRound; ratio < 1 || ratio >= 3 {
			t.Fatalf("row %v: termination/round ratio %.2f outside [1,3)", tbl.Rows[i], ratio)
		}
		if rounds := cell(t, tbl, i, 3); rounds > 2 {
			t.Fatalf("row %v: decision round %v > 2 in honest case", tbl.Rows[i], rounds)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	tbl, err := Fig2b(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Termination grows with N once the link saturates: last row strictly
	// above the first.
	first := cell(t, tbl, 0, 2)
	last := cell(t, tbl, len(tbl.Rows)-1, 2)
	if last <= first {
		t.Fatalf("fig2b termination not increasing: first %.2f last %.2f", first, last)
	}
}

func TestFig2cLinearInF(t *testing.T) {
	tbl, err := Fig2c(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("only %d rows", len(tbl.Rows))
	}
	// Termination should scale roughly linearly with f: rounds ~ f+2 and
	// every chain member halted.
	for i := range tbl.Rows {
		f := cell(t, tbl, i, 1)
		rounds := cell(t, tbl, i, 3)
		if rounds < f || rounds > f+2 {
			t.Fatalf("row %v: rounds %.0f not in [f, f+2] for f=%.0f", tbl.Rows[i], rounds, f)
		}
		if halted := cell(t, tbl, i, 4); halted != f {
			t.Fatalf("row %v: %v halted, want all %v chain members", tbl.Rows[i], halted, f)
		}
	}
	firstTerm := cell(t, tbl, 0, 2)
	lastTerm := cell(t, tbl, len(tbl.Rows)-1, 2)
	if lastTerm < 4*firstTerm {
		t.Fatalf("fig2c termination not growing linearly: %.1f -> %.1f", firstTerm, lastTerm)
	}
}

func TestFig3aQuadratic(t *testing.T) {
	tbl, err := Fig3a(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Experimental within 2x of the theoretical quadratic curve at the
	// largest size, and message growth ratio ~4 between the last two rows.
	lastRow := len(tbl.Rows) - 1
	ex := cell(t, tbl, lastRow, 1)
	th := cell(t, tbl, lastRow, 2)
	if ex < th/3 || ex > th*3 {
		t.Fatalf("fig3a Ex %.2f MB far from Th %.2f MB", ex, th)
	}
	m1 := cell(t, tbl, lastRow-1, 3)
	m2 := cell(t, tbl, lastRow, 3)
	if r := m2 / m1; r < 3 || r > 6 {
		t.Fatalf("fig3a message growth ratio %.2f not quadratic", r)
	}
}

func TestFig3bOptimizedSavings(t *testing.T) {
	tbl, err := Fig3b(cfg())
	if err != nil {
		t.Fatal(err)
	}
	lastRow := len(tbl.Rows) - 1
	basic := cell(t, tbl, lastRow, 1)
	opt := cell(t, tbl, lastRow, 3)
	if opt >= basic {
		t.Fatalf("fig3b: optimized %.2f MB not below basic %.2f MB", opt, basic)
	}
	// The paper reports ~60% improvement at their fallback scale; ours
	// should save at least 40% at the largest default size.
	if savings := 1 - opt/basic; savings < 0.4 {
		t.Fatalf("fig3b savings %.0f%% below 40%%", savings*100)
	}
	// Basic ERNG growth is cubic-ish: ratio between last two sizes > 6.
	b1 := cell(t, tbl, lastRow-1, 1)
	if r := basic / b1; r < 6 {
		t.Fatalf("fig3b ERNG-0 growth ratio %.2f not cubic", r)
	}
}

func TestFig3cTrafficDecreases(t *testing.T) {
	tbl, err := Fig3c(cfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 2)
	last := cell(t, tbl, len(tbl.Rows)-1, 2)
	if last >= first {
		t.Fatalf("fig3c traffic did not decrease with byzantine fraction: %.2f -> %.2f MB", first, last)
	}
	// Paper: ~50% at 1/4; accept anything below 75%.
	if pct := cell(t, tbl, len(tbl.Rows)-1, 4); pct > 75 {
		t.Fatalf("fig3c traffic at 1/4 is %.0f%% of honest, want clearly below", pct)
	}
}

func TestTab1Exponents(t *testing.T) {
	tbl, err := Tab1(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("tab1 rows = %d", len(tbl.Rows))
	}
	// ERB honest message growth ~ N^2.
	erbExp := cell(t, tbl, 0, 5)
	if erbExp < 1.7 || erbExp > 2.3 {
		t.Fatalf("ERB exponent %.2f not ~2", erbExp)
	}
	// ERB's chain-round column shows the min{f+2, t+2} bound met at
	// f = probe/4 (probe = 64 by default, so f = 16).
	erbRounds := cell(t, tbl, 0, 3)
	const f = 16.0
	if erbRounds < f || erbRounds > f+2 {
		t.Fatalf("ERB chain rounds %.0f not ~f+2 (f=%.0f)", erbRounds, f)
	}
	// ERB decides honest broadcasts in 2 rounds; RBsig never stops early.
	if cell(t, tbl, 0, 2) != 2 {
		t.Fatalf("ERB honest rounds %v, want 2", tbl.Rows[0][2])
	}
	if rbsigRounds := cell(t, tbl, 1, 2); rbsigRounds < 10 {
		t.Fatalf("RBsig honest rounds %v, want t+1 (no early stopping)", rbsigRounds)
	}
}

func TestTab2Exponents(t *testing.T) {
	tbl, err := Tab2(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("tab2 rows = %d", len(tbl.Rows))
	}
	basicExp := cell(t, tbl, 0, 4)
	if basicExp < 2.5 || basicExp > 3.6 {
		t.Fatalf("basic ERNG exponent %.2f not ~3", basicExp)
	}
	// At small N the optimized protocol runs the paper's 2N/3 fallback:
	// same cubic order with a smaller constant, so compare absolute
	// volume at the probe size (the N log N regime needs sampled mode,
	// exercised in internal/core/erng tests at N=300).
	basicMsgs := cell(t, tbl, 0, 2)
	optMsgs := cell(t, tbl, 1, 2)
	if optMsgs >= basicMsgs {
		t.Fatalf("optimized messages %.0f not below basic %.0f", optMsgs, basicMsgs)
	}
}

func TestSanitizeDecay(t *testing.T) {
	tbl, err := Sanitize(cfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last >= first {
		t.Fatalf("sanitize: byzantine population did not decay (%v -> %v)", first, last)
	}
	if last > 3 {
		t.Fatalf("sanitize: %v byzantine nodes survive after all epochs", last)
	}
	// Late epochs should decide in ~2 rounds.
	lateRounds := cell(t, tbl, len(tbl.Rows)-1, 3)
	if lateRounds > 3 {
		t.Fatalf("sanitize: late-epoch decision round %v, want ~2", lateRounds)
	}
}

func TestBiasSeparation(t *testing.T) {
	tbl, err := Bias(cfg())
	if err != nil {
		t.Fatal(err)
	}
	sigBias := cell(t, tbl, 0, 2)
	erngBias := cell(t, tbl, 1, 2)
	threshold := cell(t, tbl, 1, 3)
	if sigBias < 0.4 {
		t.Fatalf("attacked SigRNG bias %.3f, want ~0.5 (output forced)", sigBias)
	}
	if erngBias > threshold {
		t.Fatalf("attacked ERNG bias %.3f above threshold %.3f", erngBias, threshold)
	}
	if !strings.Contains(tbl.Rows[0][4], "/") {
		t.Fatalf("forced-output cell malformed: %q", tbl.Rows[0][4])
	}
	forced := strings.Split(tbl.Rows[0][4], "/")[0]
	total := strings.Split(strings.Fields(tbl.Rows[0][4])[0], "/")[1]
	if forced != total {
		t.Fatalf("attacker forced only %s/%s epochs", forced, total)
	}
}

func TestAblateP4(t *testing.T) {
	tbl, err := Ablate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablate rows = %d", len(tbl.Rows))
	}
	withP4 := cell(t, tbl, 1, 2)
	withoutP4 := cell(t, tbl, 2, 2)
	if withoutP4 <= withP4 {
		t.Fatalf("disabling P4 did not increase byzantine-run traffic: %.2f vs %.2f MB", withoutP4, withP4)
	}
	if halted := cell(t, tbl, 2, 3); halted != 0 {
		t.Fatalf("P4-off run halted %v nodes", halted)
	}
	if halted := cell(t, tbl, 1, 3); halted == 0 {
		t.Fatal("P4-on run halted nobody")
	}
}

func TestRegistryAndRendering(t *testing.T) {
	if len(IDs()) != 12 {
		t.Fatalf("IDs() = %v", IDs())
	}
	if _, err := Get("fig2a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "1", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2\n") {
		t.Fatalf("csv output %q", buf.String())
	}
}

func TestEffectiveDelta(t *testing.T) {
	base := time.Second
	if got := effectiveDelta(base, 1000, 0); got != base {
		t.Fatalf("unlimited bandwidth changed delta: %v", got)
	}
	if got := effectiveDelta(base, 1<<20, 1<<30); got != base {
		t.Fatalf("light load changed delta: %v", got)
	}
	got := effectiveDelta(base, 1<<30, 1<<27) // 1 GiB over 128 MiB/s = 8 s * 1.5
	if got < 10*time.Second || got > 14*time.Second {
		t.Fatalf("heavy load delta = %v, want ~12s", got)
	}
}
