package experiments

import (
	"fmt"

	"sgxp2p/internal/chaos"
	"sgxp2p/internal/parallel"
)

// Chaos sweeps the deterministic fault-schedule engine (internal/chaos):
// each row is one seeded schedule — crash–restart churn, partitions,
// behavior flips — replayed against a single ERB broadcast or a basic
// beacon epoch, with the paper's invariants checked over the honest
// nodes. The trace column is the simulator's interleaving fingerprint:
// rerunning any row's seed reproduces it bit-for-bit, which is what
// `-chaos-seed` is for.
//
// The optimized beacon is deliberately absent from the sweep: generated
// schedules include selective omission, which splits its (unreliably
// broadcast) round-1 cluster announcements — the known Algorithm 6 gap
// pinned in internal/chaos.
func Chaos(cfg Config) (*Table, error) {
	type job struct {
		proto string
		n, t  int
		seed  int64
	}
	sizes := []int{5, 9, 17}
	seeds := 8
	if cfg.Full {
		seeds = 24
	}
	var jobs []job
	addSeed := func(seed int64) {
		for _, n := range sizes {
			jobs = append(jobs, job{"erb", n, (n - 1) / 2, seed})
		}
		for _, n := range []int{5, 9} {
			jobs = append(jobs, job{"erng", n, (n - 1) / 2, seed})
		}
	}
	if cfg.ChaosSeed != 0 {
		// Single-seed reproduction mode: replay one schedule everywhere.
		addSeed(cfg.ChaosSeed)
	} else {
		for s := 1; s <= seeds; s++ {
			addSeed(cfg.Seed + int64(s))
		}
	}

	type result struct {
		o       *chaos.Outcome
		verdict string
		detail  string
	}
	results, err := parallel.Map(len(jobs), cfg.Workers, func(i int) (result, error) {
		j := jobs[i]
		var o *chaos.Outcome
		var runErr, check error
		if j.proto == "erb" {
			o, runErr = chaos.RunERB(j.seed, j.n, j.t)
			if runErr == nil {
				check = chaos.CheckERB(o)
			}
		} else {
			o, runErr = chaos.RunERNG(j.seed, j.n, j.t, false)
			if runErr == nil {
				check = chaos.CheckERNG(o)
			}
		}
		if runErr != nil {
			return result{}, fmt.Errorf("chaos %s N=%d seed=%d: %w", j.proto, j.n, j.seed, runErr)
		}
		r := result{o: o, verdict: "ok"}
		if check != nil {
			r.verdict = "VIOLATED"
			r.detail = check.Error()
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "chaos",
		Title:   "seeded fault schedules (crash-restart, partitions, flips) vs ERB and the basic beacon",
		Columns: []string{"proto", "seed", "N", "t", "f", "schedule", "verdict", "round", "trace"},
		Notes: []string{
			"each seed compiles to a deterministic schedule; same seed => identical trace fingerprint",
			"reproduce a row with: p2pexp -experiment chaos -chaos-seed <seed>",
		},
	}
	violations := 0
	for i, r := range results {
		j := jobs[i]
		round := "-"
		for _, no := range r.o.Nodes {
			if no.Honest && no.Decided {
				round = fmt.Sprintf("%d", no.Round)
				break
			}
		}
		t.Rows = append(t.Rows, []string{
			j.proto,
			fmt.Sprintf("%d", j.seed),
			fmt.Sprintf("%d", j.n),
			fmt.Sprintf("%d", j.t),
			fmt.Sprintf("%d", r.o.F),
			r.o.Schedule,
			r.verdict,
			round,
			fmt.Sprintf("%016x", r.o.TraceHash),
		})
		if r.verdict != "ok" {
			violations++
			t.Notes = append(t.Notes, r.detail)
		}
	}
	if violations > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d of %d runs violated an invariant", violations, len(results)))
	}
	return t, nil
}
