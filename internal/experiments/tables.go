package experiments

import (
	"fmt"
	"math/rand"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/baseline"
	"sgxp2p/internal/parallel"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

// baselineRun is the measured outcome of one baseline protocol run.
type baselineRun struct {
	Rounds   uint32
	Messages uint64
	Bytes    uint64
	Accepted bool
}

// runBroadcastBaseline executes one broadcast of the named baseline
// protocol ("rbsig", "rbearly", "strawman") with initiator 0 and an
// optional omission chain of the given length.
func runBroadcastBaseline(cfg Config, kind string, n, chainLen int) (baselineRun, error) {
	byz := (n - 1) / 2
	var wrap func(id wire.NodeID, tr runtime.Transport) runtime.Transport
	if chainLen > 0 {
		chain := make([]wire.NodeID, chainLen)
		for i := range chain {
			chain[i] = wire.NodeID(i)
		}
		release := wire.NodeID(chainLen)
		wrap = func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= chainLen {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.Chain(chain, int(id), release), cfg.Seed+int64(id))
		}
	}
	d, err := baseline.NewDeployment(baseline.DeployOptions{
		N: n, T: byz,
		Delta: cfg.delta(),
		Seed:  cfg.Seed,
		PKI:   kind == "rbsig",
		Wrap:  wrap,
	})
	if err != nil {
		return baselineRun{}, err
	}
	input := wire.Value{0xB5}

	type resultFn func() (bool, uint32, bool)
	results := make([]resultFn, n)
	d.Net.ResetTraffic()
	for i, p := range d.Peers {
		switch kind {
		case "rbsig":
			pr := baseline.NewRBsig(p, 0)
			if i == 0 {
				pr.SetInput(input)
			}
			results[i] = func() (bool, uint32, bool) {
				res, ok := pr.Result()
				return res.Accepted, res.Round, ok
			}
			p.Start(pr, pr.Rounds())
		case "rbearly":
			pr := baseline.NewRBearly(p, 0)
			if i == 0 {
				pr.SetInput(input)
			}
			results[i] = func() (bool, uint32, bool) {
				res, ok := pr.Result()
				return res.Accepted, res.Round, ok
			}
			p.Start(pr, pr.Rounds())
		case "strawman":
			pr := baseline.NewStrawman(p, 0)
			if i == 0 {
				pr.SetInput(input)
			}
			results[i] = func() (bool, uint32, bool) {
				res, ok := pr.Result()
				return res.Accepted, res.Round, ok
			}
			p.Start(pr, pr.Rounds())
		default:
			return baselineRun{}, fmt.Errorf("unknown baseline %q", kind)
		}
	}
	if err := d.Run(); err != nil {
		return baselineRun{}, err
	}
	out := baselineRun{Accepted: true}
	for i := chainLen; i < n; i++ {
		accepted, round, ok := results[i]()
		if !ok || !accepted {
			out.Accepted = false
		}
		if ok && round > out.Rounds {
			out.Rounds = round // latest decision, bottom included
		}
	}
	tr := d.Net.Traffic()
	out.Messages = tr.Messages
	out.Bytes = tr.Bytes
	return out, nil
}

// fitExponent fits message counts against sizes and returns the power-law
// exponent as a display string.
func fitExponent(sizes []int, counts []uint64) string {
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(counts))
	for i := range sizes {
		xs[i] = float64(sizes[i])
		ys[i] = float64(counts[i])
	}
	k, _, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", k)
}

// Tab1 reproduces Table 1: round and communication complexity of reliable
// broadcast. Implemented protocols are measured (honest and worst-case
// chain); the remaining rows of the paper's table are printed as the
// analytical claims they are.
func Tab1(cfg Config) (*Table, error) {
	sizes := []int{8, 16, 32, 64}
	if cfg.Full {
		sizes = []int{8, 16, 32, 64, 128}
	}
	probe := sizes[len(sizes)-1]
	t := &Table{
		ID:    "tab1",
		Title: "Table 1: reliable broadcast — rounds and communication",
		Columns: []string{
			"protocol", "model", "rounds honest", "rounds chain f=N/4",
			fmt.Sprintf("msgs N=%d", probe), "msg growth exp", "paper claim",
		},
		Notes: []string{
			"growth exponent fitted over N in " + fmt.Sprint(sizes),
			"analytical-only comparators from the paper: PT/PR (omission, O(N^3)), PSL (byz, O(exp N)), BGP/BG/GM/AD15 (byz, O(poly N)), AD14 (byz, O(N^4))",
		},
	}

	type proto struct {
		name, model, claim string
		honest             func(n int) (baselineRun, error)
		chain              func(n, f int) (baselineRun, error)
	}
	erbHonest := func(n int) (baselineRun, error) {
		run, err := runERB(cfg, n, 0)
		if err != nil {
			return baselineRun{}, err
		}
		return baselineRun{Rounds: run.MaxRound, Messages: run.Messages, Bytes: run.Bytes, Accepted: run.Accepted}, nil
	}
	erbChain := func(n, f int) (baselineRun, error) {
		run, err := runERB(cfg, n, f)
		if err != nil {
			return baselineRun{}, err
		}
		return baselineRun{Rounds: run.MaxRound, Messages: run.Messages, Bytes: run.Bytes, Accepted: run.Accepted}, nil
	}
	mk := func(kind string) (func(int) (baselineRun, error), func(int, int) (baselineRun, error)) {
		return func(n int) (baselineRun, error) { return runBroadcastBaseline(cfg, kind, n, 0) },
			func(n, f int) (baselineRun, error) { return runBroadcastBaseline(cfg, kind, n, f) }
	}
	rbsigH, rbsigC := mk("rbsig")
	rbearlyH, rbearlyC := mk("rbearly")
	strawH, strawC := mk("strawman")
	protos := []proto{
		{name: "ERB (this work)", model: "byz + SGX", claim: "min{f+2,t+2} rounds, O(N^2)", honest: erbHonest, chain: erbChain},
		{name: "RBsig (Alg. 4)", model: "byzantine + PKI", claim: "t+1 rounds, O(N^3)", honest: rbsigH, chain: rbsigC},
		{name: "RBearly (Alg. 5)", model: "general omission", claim: "min{f+2,t+1} rounds, O(N^3)", honest: rbearlyH, chain: rbearlyC},
		{name: "Strawman (Alg. 1)", model: "byzantine (broken)", claim: "t+1 rounds, no agreement", honest: strawH, chain: strawC},
	}

	// Flatten to (len(sizes)+1) independent jobs per protocol — the honest
	// sweep plus the chain run — so the expensive chain runs overlap with
	// the honest sweeps of other protocols.
	perProto := len(sizes) + 1
	runs, err := parallel.Map(len(protos)*perProto, cfg.Workers, func(j int) (baselineRun, error) {
		p := protos[j/perProto]
		k := j % perProto
		if k < len(sizes) {
			run, rerr := p.honest(sizes[k])
			if rerr != nil {
				return baselineRun{}, fmt.Errorf("tab1 %s N=%d: %w", p.name, sizes[k], rerr)
			}
			return run, nil
		}
		run, rerr := p.chain(probe, probe/4)
		if rerr != nil {
			return baselineRun{}, fmt.Errorf("tab1 %s chain: %w", p.name, rerr)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range protos {
		var counts []uint64
		var honestRounds uint32
		var probeMsgs uint64
		for k, n := range sizes {
			run := runs[pi*perProto+k]
			counts = append(counts, run.Messages)
			if n == probe {
				honestRounds = run.Rounds
				probeMsgs = run.Messages
			}
		}
		chainRun := runs[pi*perProto+len(sizes)]
		t.Rows = append(t.Rows, []string{
			p.name, p.model,
			fmt.Sprint(honestRounds),
			fmt.Sprint(chainRun.Rounds),
			fmt.Sprint(probeMsgs),
			fitExponent(sizes, counts),
			p.claim,
		})
	}
	return t, nil
}

// runSigRNG executes one SigRNG epoch on a baseline deployment.
func runSigRNG(cfg Config, n int) (baselineRun, error) {
	byz := (n - 1) / 2
	d, err := baseline.NewDeployment(baseline.DeployOptions{
		N: n, T: byz, Delta: cfg.delta(), Seed: cfg.Seed, PKI: true,
	})
	if err != nil {
		return baselineRun{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	protos := make([]*baseline.SigRNG, n)
	d.Net.ResetTraffic()
	for i, p := range d.Peers {
		var coin wire.Value
		rng.Read(coin[:])
		protos[i] = baseline.NewSigRNG(p, coin)
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		return baselineRun{}, err
	}
	out := baselineRun{Accepted: true}
	for _, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.OK {
			out.Accepted = false
		}
		if res.Round > out.Rounds {
			out.Rounds = res.Round
		}
	}
	tr := d.Net.Traffic()
	out.Messages = tr.Messages
	out.Bytes = tr.Bytes
	return out, nil
}

// Tab2 reproduces Table 2: round and communication complexity of the
// random number generation protocols.
func Tab2(cfg Config) (*Table, error) {
	sizes := []int{8, 16, 32}
	if cfg.Full {
		sizes = []int{8, 16, 32, 64}
	}
	probe := sizes[len(sizes)-1]
	t := &Table{
		ID:    "tab2",
		Title: "Table 2: distributed RNG — rounds and communication",
		Columns: []string{
			"protocol", "network", fmt.Sprintf("msgs N=%d", probe),
			fmt.Sprintf("MB N=%d", probe), "msg growth exp", "paper claim",
		},
		Notes: []string{
			"growth exponent fitted over N in " + fmt.Sprint(sizes),
			"analytical-only comparators from the paper: AS (6t+1, O(N^3)), AD14 (2t+1, O(N^4))",
		},
	}
	type rng struct {
		name, network, claim string
		run                  func(n int) (baselineRun, error)
	}
	basicRun := func(n int) (baselineRun, error) {
		r, err := runBasicERNG(cfg, n)
		if err != nil {
			return baselineRun{}, err
		}
		return baselineRun{Messages: r.Messages, Bytes: r.Bytes, Accepted: r.OK}, nil
	}
	optRun := func(n int) (baselineRun, error) {
		r, err := runOptERNG(cfg, n)
		if err != nil {
			return baselineRun{}, err
		}
		return baselineRun{Messages: r.Messages, Bytes: r.Bytes, Accepted: r.OK}, nil
	}
	sigRun := func(n int) (baselineRun, error) { return runSigRNG(cfg, n) }
	rngs := []rng{
		{name: "Basic ERNG (Alg. 3)", network: "2t+1", claim: "O(N) rounds, O(N^3)", run: basicRun},
		{name: "Optimized ERNG (Alg. 6)", network: "3t+1", claim: "O(log N) rounds, O(N log N)", run: optRun},
		{name: "SigRNG (RBsig-based)", network: "2t+1 + PKI", claim: "t+1 rounds, O(N^4), biasable", run: sigRun},
	}
	runs, err := parallel.Map(len(rngs)*len(sizes), cfg.Workers, func(j int) (baselineRun, error) {
		r := rngs[j/len(sizes)]
		n := sizes[j%len(sizes)]
		run, rerr := r.run(n)
		if rerr != nil {
			return baselineRun{}, fmt.Errorf("tab2 %s N=%d: %w", r.name, n, rerr)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, r := range rngs {
		var counts []uint64
		var probeRun baselineRun
		for k, n := range sizes {
			run := runs[ri*len(sizes)+k]
			counts = append(counts, run.Messages)
			if n == probe {
				probeRun = run
			}
		}
		t.Rows = append(t.Rows, []string{
			r.name, r.network,
			fmt.Sprint(probeRun.Messages),
			fmtMB(float64(probeRun.Bytes)),
			fitExponent(sizes, counts),
			r.claim,
		})
	}
	return t, nil
}
