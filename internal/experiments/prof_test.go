package experiments

import "testing"

func TestProfileFig2bOnce(t *testing.T) {
	c := Config{Seed: 7}
	if _, err := runBasicERNG(c, 128); err != nil {
		t.Fatal(err)
	}
}
