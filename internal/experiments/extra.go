package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/baseline"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/parallel"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

// Sanitize reproduces the Appendix D analysis (Theorems D.1/D.2): with
// byzantine nodes that misbehave with probability p per ERB instance,
// halt-on-divergence churns the byzantine population out geometrically,
// and the mean decision round converges to the honest-case 2.
//
// Unlike the other sweeps, the epochs here feed one stateful deployment
// forward (each epoch's halts persist into the next), so this experiment
// is inherently serial and ignores Config.Workers.
func Sanitize(cfg Config) (*Table, error) {
	n, byz := 24, 11
	epochs := 16
	if cfg.Full {
		n, byz = 48, 23
		epochs = 32
	}
	const p = 0.3

	oses := make(map[wire.NodeID]*adversary.OS, byz)
	d, err := deploy.New(deploy.Options{
		N: n, T: byz,
		Delta:     cfg.delta(),
		Bandwidth: 0, // complexity experiment: no link model needed
		Seed:      cfg.Seed,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= byz {
				return tr
			}
			os := adversary.Wrap(id, tr, adversary.MisbehaveWithProbability(p, cfg.Seed+int64(id)), cfg.Seed+int64(id))
			oses[id] = os
			return os
		},
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "sanitize",
		Title:   fmt.Sprintf("Appendix D: network sanitization (N=%d, t=%d, p=%.2f)", n, byz, p),
		Columns: []string{"epoch", "surviving byz", "predicted (1-p)^r * t", "decision round", "initiator"},
		Notes: []string{
			"surviving byzantine population decays geometrically (Theorem D.1); decision rounds approach 2 as the network sanitizes (Theorem D.2)",
		},
	}

	aliveByz := func() int {
		alive := 0
		for i := 0; i < byz; i++ {
			if !d.Peers[i].Halted() {
				alive++
			}
		}
		return alive
	}

	rotor := 0
	for e := 0; e < epochs; e++ {
		for _, os := range oses {
			os.NewEpoch(uint32(e))
		}
		// The initiator rotates over live nodes (byzantine ones included;
		// an active byzantine initiator wastes the epoch, which is what
		// keeps early-epoch decision rounds above 2).
		var initiator wire.NodeID
		for {
			cand := wire.NodeID(rotor % n)
			rotor++
			if !d.Peers[cand].Halted() {
				initiator = cand
				break
			}
		}
		engines := make([]*erb.Engine, n)
		for i, peer := range d.Peers {
			if peer.Halted() {
				continue
			}
			eng, err := erb.NewEngine(peer, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{initiator}})
			if err != nil {
				return nil, err
			}
			engines[i] = eng
		}
		if engines[initiator] != nil {
			engines[initiator].SetInput(wire.Value{byte(e + 1)})
		}
		for i, peer := range d.Peers {
			if engines[i] != nil {
				peer.Start(engines[i], engines[i].Rounds())
			}
		}
		if err := d.Sim.Run(); err != nil {
			return nil, err
		}
		var maxRound uint32
		for i := byz; i < n; i++ {
			if engines[i] == nil {
				continue
			}
			if res, ok := engines[i].Result(initiator); ok && res.Round > maxRound {
				maxRound = res.Round
			}
		}
		for _, peer := range d.Peers {
			peer.BumpSeqs()
		}
		predicted := math.Pow(1-p, float64(e+1)) * float64(byz)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(e + 1),
			fmt.Sprint(aliveByz()),
			fmt.Sprintf("%.1f", predicted),
			fmt.Sprint(maxRound),
			fmt.Sprint(initiator),
		})
	}
	return t, nil
}

// Bias reproduces the unbiasedness claims of Section 5 (Theorems 5.1 and
// 5.3) as a head-to-head: the signature-based RNG baseline under the
// look-ahead attack A4 is forced to an attacker-chosen target, while the
// ERNG under delaying/omitting byzantine nodes stays statistically
// unbiased.
func Bias(cfg Config) (*Table, error) {
	epochs := 48
	if cfg.Full {
		epochs = 192
	}
	const n, byz = 7, 3

	// Attacked SigRNG: how often does the attacker force its target?
	// Every epoch runs on a private deployment from its own seed, so the
	// epochs sweep in parallel.
	target := wire.Value{0xD7, 0x01}
	sigOutputs, err := parallel.Map(epochs, cfg.Workers, func(e int) (wire.Value, error) {
		out, rerr := runAttackedSigRNG(cfg, n, byz, cfg.Seed+int64(e)*101, target)
		if rerr != nil {
			return wire.Value{}, fmt.Errorf("bias sigrng epoch %d: %w", e, rerr)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	forced := 0
	for _, out := range sigOutputs {
		if out == target {
			forced++
		}
	}
	sigBias, err := stats.BitBias(sigOutputs)
	if err != nil {
		return nil, err
	}

	// ERNG under byzantine delay + selective omission.
	erngOutputs, err := parallel.Map(epochs, cfg.Workers, func(e int) (wire.Value, error) {
		out, rerr := runAttackedERNG(cfg, n, byz, cfg.Seed+int64(e)*131)
		if rerr != nil {
			return wire.Value{}, fmt.Errorf("bias erng epoch %d: %w", e, rerr)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	erngBias, err := stats.BitBias(erngOutputs)
	if err != nil {
		return nil, err
	}
	threshold := stats.BitBiasThreshold(epochs, 4)

	t := &Table{
		ID:      "bias",
		Title:   fmt.Sprintf("Unbiasedness under attack (N=%d, t=%d, %d epochs)", n, byz, epochs),
		Columns: []string{"system", "attack", "max bit bias", "threshold(4sd)", "attacker forced output"},
		Notes: []string{
			"SigRNG: signature chains allow committing a coin after seeing everyone else's (A4)",
			"ERNG: blind-box computation (P3) + lockstep execution (P5) reduce the same adversary to omissions",
		},
	}
	t.Rows = append(t.Rows, []string{
		"SigRNG (baseline)", "look-ahead + colluder",
		fmt.Sprintf("%.3f", sigBias),
		fmt.Sprintf("%.3f", threshold),
		fmt.Sprintf("%d/%d epochs", forced, epochs),
	})
	t.Rows = append(t.Rows, []string{
		"ERNG (this work)", "delay + selective omission",
		fmt.Sprintf("%.3f", erngBias),
		fmt.Sprintf("%.3f", threshold),
		"0 (attack reduces to omission)",
	})
	return t, nil
}

// runAttackedSigRNG runs one SigRNG epoch with a look-ahead attacker at
// node 0 and a silent colluder at node 1, returning the honest output.
func runAttackedSigRNG(cfg Config, n, byz int, seed int64, target wire.Value) (wire.Value, error) {
	d, err := baseline.NewDeployment(baseline.DeployOptions{
		N: n, T: byz, Delta: cfg.delta(), Seed: seed, PKI: true,
	})
	if err != nil {
		return wire.Value{}, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0xC0))
	attacker := baseline.NewLookAheadAttacker(d.Peers[0], 1, d.Keys[1], target)
	protos := make([]*baseline.SigRNG, n)
	for i, p := range d.Peers {
		switch i {
		case 0:
			p.Start(attacker, byz+1)
		case 1:
			p.Start(baseline.Silent{}, byz+1)
		default:
			var coin wire.Value
			rng.Read(coin[:])
			protos[i] = baseline.NewSigRNG(p, coin)
			p.Start(protos[i], protos[i].Rounds())
		}
	}
	if err := d.Run(); err != nil {
		return wire.Value{}, err
	}
	res, ok := protos[2].Result()
	if !ok || !res.OK {
		return wire.Value{}, fmt.Errorf("honest SigRNG node undecided")
	}
	return res.Value, nil
}

// runAttackedERNG runs one basic-ERNG epoch with byzantine nodes that
// delay everything (and release late) plus a selective omitter, returning
// the common honest output.
func runAttackedERNG(cfg Config, n, byz int, seed int64) (wire.Value, error) {
	var delayer *adversary.OS
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Delta: cfg.delta(), Seed: seed,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			switch id {
			case 0:
				delayer = adversary.Wrap(id, tr, adversary.DelayAll(), seed)
				return delayer
			case 1:
				return adversary.Wrap(id, tr, adversary.OmitTo(func(dst wire.NodeID) bool { return dst%2 == 0 }), seed)
			default:
				return tr
			}
		},
	})
	if err != nil {
		return wire.Value{}, err
	}
	protos := make([]*erng.Basic, n)
	for i, p := range d.Peers {
		b, err := erng.NewBasic(p, byz)
		if err != nil {
			return wire.Value{}, err
		}
		protos[i] = b
		p.Start(b, b.Rounds())
	}
	// Release the delayed envelopes mid-run: stale rounds, all discarded.
	d.Sim.At(5*cfg.delta(), func() {
		if delayer != nil {
			delayer.Release()
		}
	})
	if err := d.Sim.Run(); err != nil {
		return wire.Value{}, err
	}
	var out wire.Value
	have := false
	for i := byz; i < n; i++ {
		res, ok := protos[i].Result()
		if !ok || !res.OK {
			return wire.Value{}, fmt.Errorf("honest ERNG node %d undecided", i)
		}
		if have && res.Value != out {
			return wire.Value{}, fmt.Errorf("honest ERNG nodes disagree")
		}
		out = res.Value
		have = true
	}
	return out, nil
}
