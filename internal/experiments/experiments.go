// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix D): one function per artifact, each
// building the simulated testbed, sweeping the paper's parameter range
// and returning the series the paper plots. The cmd/p2pexp binary and the
// repository benchmarks are thin wrappers around this package.
//
// The experiment ids match DESIGN.md's per-experiment index: fig2a, fig2b,
// fig2c, fig3a, fig3b, fig3c, tab1, tab2, sanitize, bias.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/simnet"
	"sgxp2p/internal/wire"
)

// Config controls the sweeps.
type Config struct {
	// Full runs the paper-scale parameter ranges (slower); the default
	// ranges finish in seconds and show the same shapes.
	Full bool
	// Seed drives all deterministic randomness.
	Seed int64
	// Delta is the base delivery bound (default 1s, the paper's honest
	// scale). The harness raises it automatically when the offered load
	// exceeds the shared link, as the authors did for the ERNG runs.
	Delta time.Duration
	// Bandwidth is the shared-link bandwidth (default 128 MB/s like the
	// DeterLab testbed). Zero keeps the default; use Unlimited to remove
	// the link model.
	Bandwidth float64
	// Workers bounds the goroutines sweeping independent data points
	// (0 = GOMAXPROCS, 1 = serial). Every point builds its own simulator
	// and network from per-point seeds and rows are assembled in sweep
	// order, so tables are bit-for-bit identical for any worker count.
	Workers int
	// ChaosSeed, when non-zero, restricts the chaos experiment to the
	// single fault schedule derived from that seed — the reproduction
	// mode printed by failing chaos invariants.
	ChaosSeed int64
}

// Unlimited disables the bandwidth model when set as Config.Bandwidth.
const Unlimited = -1

func (c Config) delta() time.Duration {
	if c.Delta <= 0 {
		return time.Second
	}
	return c.Delta
}

func (c Config) bandwidth() float64 {
	switch {
	case c.Bandwidth == Unlimited:
		return 0
	case c.Bandwidth <= 0:
		return simnet.DefaultBandwidth
	default:
		return c.Bandwidth
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// envelopeSize is the on-wire size of a standard protocol envelope (a
// sealed INIT/ECHO/ACK): 62 bytes of encoded message inside the 48-byte
// sealing envelope.
func envelopeSize() int {
	msg := &wire.Message{Type: wire.TypeInit, HasValue: true}
	return 16 + msg.EncodedSize() + 32
}

// effectiveDelta raises the base delta until the busiest round's traffic
// fits in one delta on the shared link — the manual tuning the paper
// describes ("we had to increase the Delta") made automatic. A 1.5 safety
// factor leaves room for latency jitter.
func effectiveDelta(base time.Duration, peakRoundBytes float64, bandwidth float64) time.Duration {
	if bandwidth <= 0 {
		return base
	}
	tx := time.Duration(peakRoundBytes / bandwidth * 1.5 * float64(time.Second))
	if tx > base {
		return tx
	}
	return base
}

// erbPeakBytes estimates the busiest round of one ERB instance: every
// node echoes to everyone and is acknowledged (~2N^2 envelopes).
func erbPeakBytes(n int) float64 {
	return 2 * float64(n) * float64(n) * float64(envelopeSize())
}

// erngBasicPeakBytes estimates the busiest round of the unoptimized ERNG:
// N concurrent ERB instances (~2N^3 envelopes).
func erngBasicPeakBytes(n int) float64 {
	return 2 * float64(n) * float64(n) * float64(n) * float64(envelopeSize())
}

// erngOptPeakBytes estimates the busiest round of the optimized ERNG in
// fallback mode: a cluster of 2N/3 running one instance per member.
func erngOptPeakBytes(n int) float64 {
	c := 2 * float64(n) / 3
	return 2 * c * c * c * float64(envelopeSize())
}

// erbRun is the measured outcome of one ERB instance over the deployment.
type erbRun struct {
	// Termination is the latest honest acceptance time; OneRound is the
	// effective round duration the run used.
	Termination time.Duration
	OneRound    time.Duration
	// MaxRound is the latest honest decision round.
	MaxRound uint32
	// Messages and Bytes are protocol traffic (setup excluded).
	Messages uint64
	Bytes    uint64
	// Accepted reports whether honest nodes accepted (vs bottom).
	Accepted bool
	// HaltedByz counts byzantine nodes churned out by P4.
	HaltedByz int
}

// runERB executes one ERB broadcast with initiator 0 on a fresh
// deployment; nodes 0..chainLen-1 run the worst-case chain strategy
// (chainLen 0 = honest run).
func runERB(cfg Config, n int, chainLen int) (erbRun, error) {
	return runERBOpts(cfg, n, chainLen, 0)
}

// runERBOpts is runERB with an explicit ACK threshold: 0 uses the
// protocol default (halt-on-divergence active), negative disables ACK
// tracking entirely — the P4 ablation.
func runERBOpts(cfg Config, n int, chainLen int, ackThreshold int) (erbRun, error) {
	byz := (n - 1) / 2
	delta := effectiveDelta(cfg.delta(), erbPeakBytes(n), cfg.bandwidth())
	var wrap deploy.TransportWrapper
	if chainLen > 0 {
		chain := make([]wire.NodeID, chainLen)
		for i := range chain {
			chain[i] = wire.NodeID(i)
		}
		release := wire.NodeID(chainLen)
		wrap = func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= chainLen {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.Chain(chain, int(id), release), cfg.Seed+int64(id))
		}
	}
	d, err := deploy.New(deploy.Options{
		N: n, T: byz,
		Delta:     delta,
		Bandwidth: cfg.bandwidth(),
		Seed:      cfg.Seed,
		Wrap:      wrap,
		// Paper-faithful wire accounting: figure/table experiments count
		// the per-message envelopes the paper's evaluation measured, so
		// frame coalescing stays off here (it is a post-paper speedup;
		// its win is quantified in BENCH_coalesce.json instead).
		DisableBatching: true,
	})
	if err != nil {
		return erbRun{}, err
	}
	engines := make([]*erb.Engine, n)
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{
			T:                  byz,
			AckThreshold:       ackThreshold,
			ExpectedInitiators: []wire.NodeID{0},
		})
		if err != nil {
			return erbRun{}, err
		}
		engines[i] = eng
	}
	engines[0].SetInput(wire.Value{0xE1})
	d.Net.ResetTraffic()
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	// Honest and chain runs settle within chainLen+6 rounds; capping the
	// virtual horizon skips the idle tail of the t+2 window.
	d.Sim.SetDeadline(time.Duration(chainLen+6) * 2 * delta)
	if err := d.Sim.Run(); err != nil {
		return erbRun{}, err
	}

	out := erbRun{OneRound: 2 * delta}
	firstHonest := chainLen
	accepted := 0
	for i := firstHonest; i < n; i++ {
		res, ok := engines[i].Result(0)
		if !ok {
			continue
		}
		if res.Accepted {
			accepted++
			if res.At > out.Termination {
				out.Termination = res.At
			}
			if res.Round > out.MaxRound {
				out.MaxRound = res.Round
			}
		}
	}
	out.Accepted = accepted == n-firstHonest
	tr := d.Net.Traffic()
	out.Messages = tr.Messages
	out.Bytes = tr.Bytes
	for i := 0; i < chainLen; i++ {
		if d.Peers[i].Halted() {
			out.HaltedByz++
		}
	}
	return out, nil
}

// fmtDuration renders a duration in seconds with two decimals, the unit
// of the paper's figures.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// fmtMB renders bytes in megabytes, the unit of the paper's Figure 3.
func fmtMB(b float64) string {
	return fmt.Sprintf("%.2f", b/(1<<20))
}
