package experiments

import "fmt"

// Ablate quantifies the design choices DESIGN.md calls out:
//
//  1. halt-on-divergence (P4): ERB with active ACK-driven churn versus the
//     same protocol with ACK tracking disabled (passive, like the prior
//     omission-model protocols the paper compares against in Appendix B).
//     Without P4, misbehaving nodes stay in the network and keep
//     receiving echoes and sending acknowledgments, so byzantine runs
//     carry more traffic and nobody is sanitized.
//  2. early stopping: honest-case decision rounds versus the worst-case
//     deadline t+2, per network size.
func Ablate(cfg Config) (*Table, error) {
	n := 128
	if cfg.Full {
		n = 256
	}
	f := n / 4

	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablations: halt-on-divergence and early stopping (N=%d, chain f=%d)", n, f),
		Columns: []string{"variant", "rounds", "Ex (MB)", "halted byz", "deadline rounds"},
		Notes: []string{
			"P4 off = ACK tracking disabled: misbehaving nodes are never churned, so the network keeps carrying their echo/ACK traffic",
			"early stopping: honest and chain runs decide in min{f+2, t+2} rounds, far below the t+2 deadline",
		},
	}
	deadline := (n-1)/2 + 2

	honest, err := runERB(cfg, n, 0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"honest, P4 on", fmt.Sprint(honest.MaxRound), fmtMB(float64(honest.Bytes)),
		"0", fmt.Sprint(deadline),
	})

	withP4, err := runERBOpts(cfg, n, f, 0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"chain, P4 on", fmt.Sprint(withP4.MaxRound), fmtMB(float64(withP4.Bytes)),
		fmt.Sprint(withP4.HaltedByz), fmt.Sprint(deadline),
	})

	withoutP4, err := runERBOpts(cfg, n, f, -1)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"chain, P4 off", fmt.Sprint(withoutP4.MaxRound), fmtMB(float64(withoutP4.Bytes)),
		fmt.Sprint(withoutP4.HaltedByz), fmt.Sprint(deadline),
	})
	return t, nil
}
