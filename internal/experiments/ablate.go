package experiments

import "fmt"

// Ablate quantifies the design choices DESIGN.md calls out:
//
//  1. halt-on-divergence (P4): ERB with active ACK-driven churn versus the
//     same protocol with ACK tracking disabled (passive, like the prior
//     omission-model protocols the paper compares against in Appendix B).
//     Without P4, misbehaving nodes stay in the network and keep
//     receiving echoes and sending acknowledgments, so byzantine runs
//     carry more traffic and nobody is sanitized.
//  2. early stopping: honest-case decision rounds versus the worst-case
//     deadline t+2, per network size.
func Ablate(cfg Config) (*Table, error) {
	n := 128
	if cfg.Full {
		n = 256
	}
	f := n / 4

	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablations: halt-on-divergence and early stopping (N=%d, chain f=%d)", n, f),
		Columns: []string{"variant", "rounds", "Ex (MB)", "halted byz", "deadline rounds"},
		Notes: []string{
			"P4 off = ACK tracking disabled: misbehaving nodes are never churned, so the network keeps carrying their echo/ACK traffic",
			"early stopping: honest and chain runs decide in min{f+2, t+2} rounds, far below the t+2 deadline",
		},
	}
	deadline := (n-1)/2 + 2

	// The three variants are independent runs; sweep them in parallel.
	variants := []struct {
		label        string
		chainLen     int
		ackThreshold int
	}{
		{"honest, P4 on", 0, 0},
		{"chain, P4 on", f, 0},
		{"chain, P4 off", f, -1},
	}
	rows, err := sweepRows(cfg, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		run, rerr := runERBOpts(cfg, n, v.chainLen, v.ackThreshold)
		if rerr != nil {
			return nil, rerr
		}
		return []string{
			v.label, fmt.Sprint(run.MaxRound), fmtMB(float64(run.Bytes)),
			fmt.Sprint(run.HaltedByz), fmt.Sprint(deadline),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
