package experiments

import (
	"fmt"
	"time"
)

// LiveReference is a simnet data point the live scenario runner compares
// its real-TCP measurements against: the fig2a honest-ERB termination at
// one network size, under the same paper-faithful per-message wire
// accounting the figures use.
type LiveReference struct {
	// N is the network size of the point.
	N int
	// Rounds is the latest honest decision round (fig2a's "rounds").
	Rounds int
	// Termination is the virtual time of the last honest decision.
	Termination time.Duration
	// OneRound is the simnet's round length 2Δ after bandwidth
	// adjustment, for normalizing the termination across Δ choices.
	OneRound time.Duration
}

// SimnetERBReference runs the fig2a simnet point at n (honest initiator,
// no adversary) and returns the reference the live cross-check records
// in BENCH_scenario.json. The decision-round count is the comparable
// quantity: wall-clock termination scales with each side's Δ, but both
// stacks run the identical protocol code, so their decision rounds must
// match exactly for the live deployment to count as faithful.
func SimnetERBReference(cfg Config, n int) (LiveReference, error) {
	run, err := runERB(cfg, n, 0)
	if err != nil {
		return LiveReference{}, err
	}
	if !run.Accepted {
		return LiveReference{}, fmt.Errorf("simnet reference N=%d: honest run did not accept", n)
	}
	return LiveReference{
		N:           n,
		Rounds:      int(run.MaxRound),
		Termination: run.Termination,
		OneRound:    run.OneRound,
	}, nil
}
