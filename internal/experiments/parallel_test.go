package experiments

import (
	"bytes"
	"testing"
)

// renderAll renders a table to a string for byte-wise comparison.
func renderAll(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSweepsIdenticalAcrossWorkerCounts pins the sweep engine's
// determinism contract: for a fixed seed, the rendered table of a sweep
// is byte-for-byte identical whether the points ran serially or on a
// parallel worker pool. Exercised on a per-point sweep (fig2a), a
// flattened multi-job table (ablate), and the per-epoch bias sweep —
// the three sweep shapes the engine supports.
func TestSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	sweeps := []struct {
		name string
		run  func(Config) (*Table, error)
	}{
		{"fig2a", Fig2a},
		{"ablate", Ablate},
		{"bias", Bias},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			serialCfg := cfg()
			serialCfg.Workers = 1
			parallelCfg := cfg()
			parallelCfg.Workers = 4
			serial, err := sw.run(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := sw.run(parallelCfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderAll(t, par), renderAll(t, serial); got != want {
				t.Fatalf("%s differs between worker counts:\n-- serial --\n%s\n-- parallel --\n%s", sw.name, want, got)
			}
		})
	}
}
