package experiments

import (
	"fmt"
	"math"
	"time"

	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/parallel"
)

// sizesUpTo returns powers of two 2^lo..2^hi.
func sizesUpTo(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// Fig2a reproduces Figure 2a: ERB termination time (honest initiator)
// versus network size, against the one-round time. Expected shape: flat
// at about two rounds, with a rise once the shared link saturates.
func Fig2a(cfg Config) (*Table, error) {
	hi := 8
	if cfg.Full {
		hi = 11
	}
	t := &Table{
		ID:      "fig2a",
		Title:   "ERB termination time vs number of peers (honest)",
		Columns: []string{"N", "one round (s)", "ERB termination (s)", "rounds"},
		Notes: []string{
			"paper: termination ~ 2 rounds for an honest initiator, slight rise at large N from the shared 128 MB/s link",
		},
	}
	sizes := sizesUpTo(1, hi)
	rows, err := sweepRows(cfg, len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		run, rerr := runERB(cfg, n, 0)
		if rerr != nil {
			return nil, fmt.Errorf("fig2a N=%d: %w", n, rerr)
		}
		if !run.Accepted {
			return nil, fmt.Errorf("fig2a N=%d: honest run did not accept", n)
		}
		return []string{
			fmt.Sprint(n),
			fmtDuration(run.OneRound),
			fmtDuration(run.Termination),
			fmt.Sprint(run.MaxRound),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// erngRun is the measured outcome of one ERNG execution.
type erngRun struct {
	Termination time.Duration
	OneRound    time.Duration
	Messages    uint64
	Bytes       uint64
	OK          bool
}

// runBasicERNG executes one unoptimized ERNG epoch on a fresh deployment.
func runBasicERNG(cfg Config, n int) (erngRun, error) {
	byz := (n - 1) / 2
	delta := effectiveDelta(cfg.delta(), erngBasicPeakBytes(n), cfg.bandwidth())
	d, err := deploy.New(deploy.Options{
		N: n, T: byz,
		Delta:     delta,
		Bandwidth: cfg.bandwidth(),
		Seed:      cfg.Seed,
		// Paper-faithful per-message wire accounting (see runERBOpts).
		DisableBatching: true,
	})
	if err != nil {
		return erngRun{}, err
	}
	protos := make([]*erng.Basic, n)
	for i, p := range d.Peers {
		b, err := erng.NewBasic(p, byz)
		if err != nil {
			return erngRun{}, err
		}
		protos[i] = b
	}
	d.Net.ResetTraffic()
	for i, p := range d.Peers {
		p.Start(protos[i], protos[i].Rounds())
	}
	// Honest epochs settle within a few rounds (early finish); skip the
	// idle tail of the t+2 window.
	d.Sim.SetDeadline(8 * 2 * delta)
	if err := d.Sim.Run(); err != nil {
		return erngRun{}, err
	}
	out := erngRun{OneRound: 2 * delta, OK: true}
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.OK {
			return erngRun{}, fmt.Errorf("node %d undecided or bottom in honest ERNG", i)
		}
		if res.At > out.Termination {
			out.Termination = res.At
		}
	}
	tr := d.Net.Traffic()
	out.Messages = tr.Messages
	out.Bytes = tr.Bytes
	return out, nil
}

// runOptERNG executes one optimized ERNG epoch (auto mode: the paper's
// 2N/3 fallback below the sampled threshold).
func runOptERNG(cfg Config, n int) (erngRun, error) {
	byz := n / 3
	delta := effectiveDelta(cfg.delta(), erngOptPeakBytes(n), cfg.bandwidth())
	d, err := deploy.New(deploy.Options{
		N: n, T: byz,
		Delta:     delta,
		Bandwidth: cfg.bandwidth(),
		Seed:      cfg.Seed,
		// Paper-faithful per-message wire accounting (see runERBOpts).
		DisableBatching: true,
	})
	if err != nil {
		return erngRun{}, err
	}
	protos := make([]*erng.Optimized, n)
	for i, p := range d.Peers {
		o, err := erng.NewOptimized(p, byz, erng.ModeAuto, 0)
		if err != nil {
			return erngRun{}, err
		}
		protos[i] = o
	}
	d.Net.ResetTraffic()
	for i, p := range d.Peers {
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Sim.Run(); err != nil {
		return erngRun{}, err
	}
	out := erngRun{OneRound: 2 * delta, OK: true}
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok {
			return erngRun{}, fmt.Errorf("node %d undecided in honest optimized ERNG", i)
		}
		if !res.OK {
			out.OK = false
		}
		if res.At > out.Termination {
			out.Termination = res.At
		}
	}
	tr := d.Net.Traffic()
	out.Messages = tr.Messages
	out.Bytes = tr.Bytes
	return out, nil
}

// Fig2b reproduces Figure 2b: unoptimized-ERNG termination versus network
// size. Expected shape: flat while the link keeps up (all broadcasts
// accept within ~2 rounds), then rising as the N^3 message volume
// saturates the shared link and stretches the effective round time.
func Fig2b(cfg Config) (*Table, error) {
	hi := 7
	if cfg.Full {
		hi = 8
	}
	t := &Table{
		ID:      "fig2b",
		Title:   "ERNG termination time vs number of peers (honest, unoptimized)",
		Columns: []string{"N", "one round (s)", "ERNG termination (s)"},
		Notes: []string{
			"paper: flat up to ~2^7, then rising to ~10^3 s at 2^9 due to the shared-link bottleneck",
			"paper sweeps to 2^9; -full here sweeps to 2^8 to keep the event count tractable (same shape)",
		},
	}
	sizes := sizesUpTo(2, hi)
	rows, err := sweepRows(cfg, len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		run, rerr := runBasicERNG(cfg, n)
		if rerr != nil {
			return nil, fmt.Errorf("fig2b N=%d: %w", n, rerr)
		}
		return []string{
			fmt.Sprint(n),
			fmtDuration(run.OneRound),
			fmtDuration(run.Termination),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// byzFractions returns the byzantine fractions of Figures 2c/3c for a
// network of size n: 1/n, 2/n, 4/n, ... up to 1/4.
func byzFractions(n int) []int {
	var counts []int
	for f := 1; f <= n/4; f *= 2 {
		counts = append(counts, f)
	}
	return counts
}

// Fig2c reproduces Figure 2c: ERB termination versus the number of
// byzantine nodes actually misbehaving, under the worst-case chain
// strategy of Section 6.3. Expected shape: linear in f (termination ~
// (f+2) rounds), two orders of magnitude above honest at f = N/4.
func Fig2c(cfg Config) (*Table, error) {
	n := 128
	if cfg.Full {
		n = 512
	}
	t := &Table{
		ID:      "fig2c",
		Title:   fmt.Sprintf("ERB termination vs byzantine fraction (chain strategy, N=%d)", n),
		Columns: []string{"byz fraction", "f", "termination (s)", "rounds", "halted byz"},
		Notes: []string{
			"paper (N=512): 4 s honest rising linearly to 389 s at 1/4; every chain node is churned out by P4",
		},
	}
	fractions := byzFractions(n)
	rows, err := sweepRows(cfg, len(fractions), func(i int) ([]string, error) {
		f := fractions[i]
		run, rerr := runERB(cfg, n, f)
		if rerr != nil {
			return nil, fmt.Errorf("fig2c f=%d: %w", f, rerr)
		}
		if !run.Accepted {
			return nil, fmt.Errorf("fig2c f=%d: honest nodes did not accept", f)
		}
		return []string{
			fmt.Sprintf("1/%d", n/f),
			fmt.Sprint(f),
			fmtDuration(run.Termination),
			fmt.Sprint(run.MaxRound),
			fmt.Sprint(run.HaltedByz),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig3a reproduces Figure 3a: ERB traffic versus network size,
// experimental next to the theoretical 2N^2-envelope curve. Expected
// shape: quadratic, hundreds of MB at 2^10 (the paper reports 277 MB).
func Fig3a(cfg Config) (*Table, error) {
	hi := 8
	if cfg.Full {
		hi = 11
	}
	t := &Table{
		ID:      "fig3a",
		Title:   "ERB communication vs number of peers (honest)",
		Columns: []string{"N", "Ex (MB)", "Th (MB)", "messages"},
		Notes: []string{
			"Th = 2*N^2 envelopes of ~110 B; paper reports 277 MB at N=1024",
		},
	}
	sizes := sizesUpTo(1, hi)
	rows, err := sweepRows(cfg, len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		run, rerr := runERB(cfg, n, 0)
		if rerr != nil {
			return nil, fmt.Errorf("fig3a N=%d: %w", n, rerr)
		}
		return []string{
			fmt.Sprint(n),
			fmtMB(float64(run.Bytes)),
			fmtMB(erbPeakBytes(n)),
			fmt.Sprint(run.Messages),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig3b reproduces Figure 3b: communication of the unoptimized (ERNG-0)
// and optimized (ERNG-1) random number generators versus network size,
// with the theoretical curves. Expected shape: cubic for ERNG-0; ERNG-1
// clearly below it at equal N (the paper reports ~60% lower at 2^9 with
// the 2N/3 fallback cluster), with the ideal N*log N curve shown for
// reference.
func Fig3b(cfg Config) (*Table, error) {
	hi := 6
	if cfg.Full {
		hi = 8
	}
	t := &Table{
		ID:    "fig3b",
		Title: "ERNG communication vs number of peers (honest)",
		Columns: []string{
			"N", "Ex-ERNG-0 (MB)", "Th-ERNG-0 (MB)", "Ex-ERNG-1 (MB)", "Th-ERNG-1 ideal (MB)", "savings",
		},
		Notes: []string{
			"Th-ERNG-0 = 2*N^2*(N-1) envelopes; Th-ERNG-1 ideal = N*gamma-scale curve (guaranteed for large N only, like the paper's)",
			"ERNG-1 runs the paper's small-N fallback (cluster of ~2N/3, every member initiating) below N=256,",
			"and switches to the sampled O(log N) cluster construction at N >= 256 — the ideal regime the paper's theoretical curve shows",
		},
	}
	env := float64(envelopeSize())
	sizes := sizesUpTo(2, hi)
	// The basic and optimized runs of each size are independent; sweep
	// them as 2*len(sizes) flat jobs so the two heavyweight runs at the
	// largest N overlap instead of serializing within one point.
	runs, err := parallel.Map(2*len(sizes), cfg.Workers, func(j int) (erngRun, error) {
		n := sizes[j/2]
		if j%2 == 0 {
			run, rerr := runBasicERNG(cfg, n)
			if rerr != nil {
				return erngRun{}, fmt.Errorf("fig3b basic N=%d: %w", n, rerr)
			}
			return run, nil
		}
		run, rerr := runOptERNG(cfg, n)
		if rerr != nil {
			return erngRun{}, fmt.Errorf("fig3b optimized N=%d: %w", n, rerr)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		basic, opt := runs[2*i], runs[2*i+1]
		gamma := 3 * math.Log(float64(n))
		thIdeal := (4*gamma*float64(n) + 2*math.Pow(2*gamma, 2)*math.Sqrt(gamma)) * env
		savings := 1 - float64(opt.Bytes)/float64(basic.Bytes)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmtMB(float64(basic.Bytes)),
			fmtMB(2 * float64(n) * float64(n) * float64(n-1) * env),
			fmtMB(float64(opt.Bytes)),
			fmtMB(thIdeal),
			fmt.Sprintf("%.0f%%", savings*100),
		})
	}
	return t, nil
}

// Fig3c reproduces Figure 3c: ERB traffic versus byzantine fraction.
// Expected shape: traffic decreases as the fraction grows, because
// halt-on-divergence churns misbehaving nodes out and the network stops
// carrying their echoes and acknowledgments (the paper reports ~50% lower
// traffic at 1/4 than honest).
func Fig3c(cfg Config) (*Table, error) {
	n := 128
	if cfg.Full {
		n = 512
	}
	honest, err := runERB(cfg, n, 0)
	if err != nil {
		return nil, fmt.Errorf("fig3c honest: %w", err)
	}
	t := &Table{
		ID:      "fig3c",
		Title:   fmt.Sprintf("ERB communication vs byzantine fraction (chain strategy, N=%d)", n),
		Columns: []string{"byz fraction", "f", "Ex (MB)", "Th honest (MB)", "vs honest"},
		Notes: []string{
			fmt.Sprintf("honest baseline: %s MB; paper (N=512): 69 MB honest vs 35 MB at 1/4", fmtMB(float64(honest.Bytes))),
		},
	}
	fractions := byzFractions(n)
	rows, err := sweepRows(cfg, len(fractions), func(i int) ([]string, error) {
		f := fractions[i]
		run, rerr := runERB(cfg, n, f)
		if rerr != nil {
			return nil, fmt.Errorf("fig3c f=%d: %w", f, rerr)
		}
		return []string{
			fmt.Sprintf("1/%d", n/f),
			fmt.Sprint(f),
			fmtMB(float64(run.Bytes)),
			fmtMB(erbPeakBytes(n)),
			fmt.Sprintf("%.0f%%", 100*float64(run.Bytes)/float64(honest.Bytes)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
