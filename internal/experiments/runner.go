package experiments

import "sgxp2p/internal/parallel"

// sweepRows evaluates n independent data points on cfg.Workers goroutines
// and returns one table row per point, in point order. Each point must be
// a pure function of (cfg, point parameters): it builds a private
// simulator and network, so points never share mutable state. Rows land
// in index-distinct slots, which makes the table bit-for-bit identical
// for any worker count — the determinism contract pinned down by
// TestSweepsIdenticalAcrossWorkerCounts.
//
// Sweeps whose points feed a stateful deployment forward (the sanitize
// epochs) must NOT use this and stay serial.
func sweepRows(cfg Config, n int, point func(i int) ([]string, error)) ([][]string, error) {
	return parallel.Map(n, cfg.Workers, point)
}

// sweepMulti is sweepRows for sweeps where one point contributes several
// adjacent rows; the per-point groups are concatenated in point order.
func sweepMulti(cfg Config, n int, point func(i int) ([][]string, error)) ([][]string, error) {
	groups, err := parallel.Map(n, cfg.Workers, point)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}
