package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one experiment's table.
type Runner func(Config) (*Table, error)

// registry maps experiment ids to their runners. Ids match the
// per-experiment index in DESIGN.md.
var registry = map[string]Runner{
	"fig2a":    Fig2a,
	"fig2b":    Fig2b,
	"fig2c":    Fig2c,
	"fig3a":    Fig3a,
	"fig3b":    Fig3b,
	"fig3c":    Fig3c,
	"tab1":     Tab1,
	"tab2":     Tab2,
	"sanitize": Sanitize,
	"ablate":   Ablate,
	"bias":     Bias,
	"chaos":    Chaos,
}

// order fixes the presentation order for All.
var order = []string{
	"fig2a", "fig2b", "fig2c",
	"fig3a", "fig3b", "fig3c",
	"tab1", "tab2",
	"sanitize", "bias", "ablate", "chaos",
}

// IDs returns the known experiment ids in presentation order.
func IDs() []string {
	return append([]string(nil), order...)
}

// Get looks up a runner by id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return r, nil
}

// All runs every experiment in order.
func All(cfg Config) ([]*Table, error) {
	out := make([]*Table, 0, len(order))
	for _, id := range order {
		tbl, err := registry[id](cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
