package experiments

import (
	"strconv"
	"testing"
)

// TestChaosSweepShape: the default sweep covers every protocol/size
// combination per seed, no row reports a violated invariant, and the
// verdict/trace columns are well-formed.
func TestChaosSweepShape(t *testing.T) {
	tbl, err := Chaos(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// 8 seeds x (3 ERB sizes + 2 basic-beacon sizes).
	if got := len(tbl.Rows); got != 8*5 {
		t.Fatalf("rows = %d, want 40", got)
	}
	for i, row := range tbl.Rows {
		if row[6] != "ok" {
			t.Errorf("row %d (%v): verdict %q", i, row, row[6])
		}
		if len(row[8]) != 16 {
			t.Errorf("row %d: trace fingerprint %q not 16 hex digits", i, row[8])
		}
	}
}

// TestChaosSingleSeedMode: -chaos-seed replays one schedule across the
// full size matrix, and the table is identical on a rerun (the whole
// point of the engine).
func TestChaosSingleSeedMode(t *testing.T) {
	c := cfg()
	c.ChaosSeed = 11
	tbl1, err := Chaos(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl1.Rows); got != 5 {
		t.Fatalf("rows = %d, want 5", got)
	}
	for i, row := range tbl1.Rows {
		if seed, err := strconv.ParseInt(row[1], 10, 64); err != nil || seed != 11 {
			t.Fatalf("row %d seed = %q, want 11", i, row[1])
		}
	}
	tbl2, err := Chaos(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl1.Rows {
		for j := range tbl1.Rows[i] {
			if tbl1.Rows[i][j] != tbl2.Rows[i][j] {
				t.Fatalf("rerun diverged at row %d col %d: %q vs %q",
					i, j, tbl1.Rows[i][j], tbl2.Rows[i][j])
			}
		}
	}
}
