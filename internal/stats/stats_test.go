package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sgxp2p/internal/wire"
)

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoData {
		t.Fatal("empty mean must error")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("mean = %v, %v", m, err)
	}
}

func TestStdDev(t *testing.T) {
	if _, err := StdDev([]float64{1}); err != ErrNoData {
		t.Fatal("single-element stddev must error")
	}
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 5}, {100, 9},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("p%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrNoData {
		t.Error("empty percentile must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
}

func TestBitBiasUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]wire.Value, 4000)
	for i := range values {
		rng.Read(values[i][:])
	}
	bias, err := BitBias(values)
	if err != nil {
		t.Fatal(err)
	}
	if thr := BitBiasThreshold(len(values), 5); bias > thr {
		t.Fatalf("uniform data reported bias %v above threshold %v", bias, thr)
	}
}

func TestBitBiasDetectsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]wire.Value, 4000)
	for i := range values {
		rng.Read(values[i][:])
		values[i][0] |= 1 // bit 0 always set
	}
	bias, err := BitBias(values)
	if err != nil {
		t.Fatal(err)
	}
	if bias < 0.4 {
		t.Fatalf("stuck bit reported bias %v, want ~0.5", bias)
	}
	if _, err := BitBias(nil); err != ErrNoData {
		t.Fatal("empty BitBias must error")
	}
}

func TestChiSquareUniform(t *testing.T) {
	if _, err := ChiSquareUniform([]int{5}); err != ErrNoData {
		t.Error("single bucket must error")
	}
	if _, err := ChiSquareUniform([]int{0, 0}); err != ErrNoData {
		t.Error("zero total must error")
	}
	if _, err := ChiSquareUniform([]int{3, -1}); err == nil {
		t.Error("negative count accepted")
	}
	flat, err := ChiSquareUniform([]int{100, 100, 100, 100})
	if err != nil || flat != 0 {
		t.Fatalf("flat chi-square = %v, %v", flat, err)
	}
	skewed, err := ChiSquareUniform([]int{400, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if skewed < 100 {
		t.Fatalf("skewed chi-square = %v, want large", skewed)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{8, 16, 32, 64}
	quadratic := make([]float64, len(xs))
	cubic := make([]float64, len(xs))
	for i, x := range xs {
		quadratic[i] = 3 * x * x
		cubic[i] = 0.5 * x * x * x
	}
	k, a, err := FitPowerLaw(xs, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-2) > 1e-9 || math.Abs(a-3) > 1e-6 {
		t.Fatalf("quadratic fit k=%v a=%v", k, a)
	}
	k, a, err = FitPowerLaw(xs, cubic)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-3) > 1e-9 || math.Abs(a-0.5) > 1e-6 {
		t.Fatalf("cubic fit k=%v a=%v", k, a)
	}
}

func TestFitPowerLawValidation(t *testing.T) {
	if _, _, err := FitPowerLaw([]float64{1}, []float64{1}); err != ErrNoData {
		t.Error("short input accepted")
	}
	if _, _, err := FitPowerLaw([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted")
	}
	if _, _, err := FitPowerLaw([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestXORFold(t *testing.T) {
	a := wire.Value{1}
	b := wire.Value{2}
	if got := XORFold([]wire.Value{a, b}); got != (wire.Value{3}) {
		t.Fatalf("XORFold = %v", got)
	}
	if got := XORFold(nil); !got.IsZero() {
		t.Fatalf("empty fold = %v, want zero", got)
	}
}

// Property: XORFold order-independence — any permutation folds to the same
// value (needed for Sfinal agreement across nodes that observed different
// delivery orders).
func TestQuickXORFoldPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]wire.Value, int(n%16)+1)
		for i := range values {
			rng.Read(values[i][:])
		}
		base := XORFold(values)
		perm := rng.Perm(len(values))
		shuffled := make([]wire.Value, len(values))
		for i, j := range perm {
			shuffled[i] = values[j]
		}
		return XORFold(shuffled) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR with a fresh uniform value yields (statistically) unbiased
// output even when all other inputs are adversarial — the heart of
// Theorem 5.1. We verify the one-sample algebraic core: folding any fixed
// set with a uniform u is a bijection of u.
func TestQuickXORBijective(t *testing.T) {
	f := func(fixed wire.Value, u1, u2 wire.Value) bool {
		if u1 == u2 {
			return fixed.XOR(u1) == fixed.XOR(u2)
		}
		return fixed.XOR(u1) != fixed.XOR(u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
