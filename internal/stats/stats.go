// Package stats provides the small statistical toolbox shared by the
// ERNG cluster sizing, the unbiasedness experiments and the experiment
// harness: summary statistics, per-bit bias estimation for protocol
// outputs (Definition 2.2), chi-square uniformity checks and power-law
// fits for the complexity tables.
package stats

import (
	"errors"
	"math"
	"sort"

	"sgxp2p/internal/wire"
)

// ErrNoData is returned by estimators invoked on empty samples.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrNoData
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], nil
}

// BitBias estimates the empirical bias of protocol outputs: for every bit
// position of the 256-bit values it computes |freq(1) - 0.5|, and returns
// the maximum over positions. For an unbiased generator this converges to
// 0 at rate ~ 1/(2*sqrt(n)).
func BitBias(values []wire.Value) (float64, error) {
	if len(values) == 0 {
		return 0, ErrNoData
	}
	const bits = wire.ValueSize * 8
	ones := make([]int, bits)
	for _, v := range values {
		for i := 0; i < bits; i++ {
			if v[i/8]&(1<<uint(i%8)) != 0 {
				ones[i]++
			}
		}
	}
	var worst float64
	n := float64(len(values))
	for _, c := range ones {
		if d := math.Abs(float64(c)/n - 0.5); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// BitBiasThreshold returns a rejection threshold for BitBias at roughly
// z standard deviations given n samples: values above it indicate bias.
func BitBiasThreshold(n int, z float64) float64 {
	if n <= 0 {
		return 1
	}
	return z / (2 * math.Sqrt(float64(n)))
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against a uniform expectation. The caller compares the statistic to a
// critical value for len(counts)-1 degrees of freedom.
func ChiSquareUniform(counts []int) (float64, error) {
	if len(counts) < 2 {
		return 0, ErrNoData
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, ErrNoData
	}
	expected := float64(total) / float64(len(counts))
	var chi float64
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi, nil
}

// FitPowerLaw fits y = a*x^k by least squares in log-log space and returns
// the exponent k and coefficient a. It is used by the complexity tables to
// verify that measured message counts grow as N^2 (ERB) versus N^3
// (baselines). All inputs must be positive.
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrNoData
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, errors.New("stats: power-law fit needs positive data")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	exponent = (n*sxy - sx*sy) / denom
	coeff = math.Exp((sy - exponent*sx) / n)
	return exponent, coeff, nil
}

// XORFold combines protocol outputs as the ERNG does and is shared by
// tests that need the reference combination.
func XORFold(values []wire.Value) wire.Value {
	var out wire.Value
	for _, v := range values {
		out = out.XOR(v)
	}
	return out
}
