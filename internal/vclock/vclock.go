// Package vclock implements the discrete-event engine that drives the
// simulated synchronous network: a virtual clock and a time-ordered event
// queue. All simulated latencies, round boundaries and bandwidth queueing
// are expressed as events on this clock, so experiments that the paper ran
// in hundreds of wall-clock seconds replay in milliseconds while reporting
// the same virtual durations.
//
// The queue is tuned for simulations holding millions of in-flight
// events: entries carry their ordering key inline (no pointer chase in
// comparisons) and cancellation is lazy (cancelled events are skipped
// at pop time instead of being removed), so queue operations never write
// back through event pointers. Fire-and-forget callers use Schedule,
// which skips the *Event handle allocation too — scheduling a delivery
// then costs no allocations beyond amortized queue growth. When the
// simulation owner hints its scheduling horizon (SetHorizon), near-future
// events go through a calendar tier with O(1) push and pop instead of a
// heap's O(log n) sift. Pop order is always the total order (time,
// sequence), so neither the calendar tier nor the hand-rolled fallback
// heap changes the order events fire in and simulation determinism is
// unaffected.
package vclock

import (
	"cmp"
	"errors"
	"slices"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("vclock: simulation stopped")

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break), which keeps simulations
// deterministic.
type Event struct {
	at    time.Duration
	fn    func()
	fired bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil && !e.fired }

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() time.Duration { return e.at }

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; protocols built on it run as event callbacks on one
// goroutine, which is what makes large topologies cheap.
type Sim struct {
	now       time.Duration
	queue     eventQueue
	nextSeq   uint64
	cancelled int
	stopped   bool
	limit     time.Duration // 0 means no limit
	fired     uint64
	trace     uint64
}

// SetHorizon hints the timescale most events are scheduled on: d should
// be the typical scheduling distance (a network's delivery bound Δ, say).
// The hint turns on the queue's calendar tier, which spreads near-future
// events over time-partitioned buckets so push and pop are O(1) instead
// of O(log n) — the difference between the event queue dominating a
// large-topology simulation and disappearing from its profile. The hint
// is ignored unless the queue is empty (the tier cannot be retrofitted
// around queued entries). Pop order is unaffected: the calendar is an
// implementation detail behind the same (time, sequence) total order.
func (s *Sim) SetHorizon(d time.Duration) {
	if d <= 0 || s.queue.len() > 0 {
		return
	}
	w := d / bucketsPerHorizon
	if w <= 0 {
		w = 1
	}
	// Round the bucket width up to a power of two so the hot push path
	// maps a time to its window with a shift instead of an int64 divide.
	shift := uint(0)
	for time.Duration(1)<<shift < w {
		shift++
	}
	s.queue.shift = shift
	if s.queue.ring == nil {
		s.queue.ring = make([][]entry, ringBuckets)
	}
}

// fnv64Offset and fnv64Prime are the FNV-1a parameters used by the
// event-trace fingerprint.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// New creates an empty simulator at virtual time zero.
func New() *Sim {
	return &Sim{trace: fnv64Offset}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// SetDeadline makes Run stop (without error) once the clock would pass the
// given virtual time. Zero removes the deadline.
func (s *Sim) SetDeadline(d time.Duration) { s.limit = d }

// At schedules fn to run at the given absolute virtual time. Times in the
// past are clamped to "now". The returned event may be cancelled.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("vclock: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, fn: fn}
	s.queue.push(entry{at: t, seq: s.nextSeq, e: e})
	s.nextSeq++
	return e
}

// After schedules fn to run after the given delay relative to now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Schedule is the fire-and-forget form of At: no *Event handle is
// allocated, so the event cannot be cancelled. It is the right call for
// high-volume events that always fire, like message deliveries; it
// interleaves with At events in the same (time, sequence) order.
func (s *Sim) Schedule(t time.Duration, fn func()) {
	if fn == nil {
		panic("vclock: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.queue.push(entry{at: t, seq: s.nextSeq, fn: fn})
	s.nextSeq++
}

// ScheduleAfter is Schedule with a delay relative to now.
func (s *Sim) ScheduleAfter(d time.Duration, fn func()) {
	s.Schedule(s.now+d, fn)
}

// Cancel marks a pending event so it will not fire; the entry is dropped
// lazily when it reaches the head of the queue. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.fn == nil {
		return
	}
	e.fn = nil
	s.cancelled++
}

// Stop aborts Run at the next event boundary.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of live (non-cancelled) events still queued.
func (s *Sim) Pending() int { return s.queue.len() - s.cancelled }

// FiredCount returns the number of events fired so far.
func (s *Sim) FiredCount() uint64 { return s.fired }

// TraceHash returns an FNV-style fingerprint over the (time, sequence)
// pair of every event fired so far. Two simulations with equal hashes
// executed the same event interleaving bit-for-bit; the chaos engine's
// seed→schedule determinism contract (internal/chaos) is asserted against
// this value. The fingerprint is compared only against fingerprints from
// the same binary, so the exact mixing function is an implementation
// detail; what matters is determinism and sensitivity to any change in
// the fired sequence.
func (s *Sim) TraceHash() uint64 { return s.trace }

// traceFire folds one fired event into the interleaving fingerprint:
// xor-multiply over the two 64-bit key words. Word granularity keeps the
// per-event cost at two multiplies; this runs once per fired event, which
// on large topologies means tens of thousands of times per simulated
// broadcast.
func (s *Sim) traceFire(at time.Duration, seq uint64) {
	s.fired++
	h := s.trace
	h = (h ^ uint64(at)) * fnv64Prime
	h = (h ^ seq) * fnv64Prime
	s.trace = h
}

// Step fires the next live event, advancing the clock, and reports
// whether an event was fired.
func (s *Sim) Step() bool {
	for s.queue.len() > 0 {
		en := s.queue.pop()
		fn := en.fn
		if en.e != nil {
			if en.e.fn == nil {
				s.cancelled--
				continue
			}
			fn = en.e.fn
			en.e.fn = nil
			en.e.fired = true
		}
		s.now = en.at
		s.traceFire(en.at, en.seq)
		fn()
		return true
	}
	return false
}

// livePeek returns the next live event entry, dropping cancelled
// entries off the queue head so the head's time is that of a live
// event, or nil when the queue is empty. Schedule entries (no handle)
// cannot be cancelled and never match the cancellation test.
func (s *Sim) livePeek() *entry {
	for {
		head := s.queue.peek()
		if head == nil || head.e == nil || head.e.fn != nil {
			return head
		}
		s.queue.popKnownHead(head)
		s.cancelled--
	}
}

// fire advances the clock to en and runs its callback. The entry must
// be live — livePeek filters cancelled ones.
func (s *Sim) fire(en entry) {
	fn := en.fn
	if en.e != nil {
		fn = en.e.fn
		en.e.fn = nil
		en.e.fired = true
	}
	s.now = en.at
	s.traceFire(en.at, en.seq)
	fn()
}

// Run fires events until the queue drains, a deadline set with SetDeadline
// is reached, or Stop is called. It returns ErrStopped only in the explicit
// Stop case.
func (s *Sim) Run() error {
	s.stopped = false
	for {
		head := s.livePeek()
		if head == nil {
			return nil
		}
		if s.stopped {
			return ErrStopped
		}
		if s.limit > 0 && head.at > s.limit {
			s.now = s.limit
			return nil
		}
		s.fire(s.queue.popKnownHead(head))
	}
}

// RunUntil fires events until the clock reaches the given virtual time or
// the queue drains. The clock is left at t (or beyond the last event) and
// never exceeds t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		head := s.livePeek()
		if head == nil || head.at > t {
			break
		}
		s.fire(s.queue.popKnownHead(head))
	}
	if s.now < t {
		s.now = t
	}
}

// entry is a queue element with the ordering key stored inline, so
// comparisons and moves never dereference the *Event — on multi-million-
// event simulations the pointer chase was the dominant cost. Exactly one
// of fn (a Schedule entry) and e (an At entry, cancellable through the
// handle) is set.
type entry struct {
	at  time.Duration
	seq uint64
	fn  func()
	e   *Event
}

// Calendar-tier geometry: the horizon hint is split into
// bucketsPerHorizon windows (width rounded up to a power of two), and
// the ring holds ringBuckets of them, so the ring spans at least 8× the
// hinted horizon — deliveries (≤ 1 horizon out) and lockstep ticks
// (2 horizons out) both land inside it.
// bucketsPerHorizon trades bucket occupancy (a bucket is insertion-
// sorted when its window activates, so sorting is quadratic in it)
// against ring footprint and empty-bucket skipping; 128 measured best —
// finer grids lose more to cache misses over the larger ring than they
// save in sorting.
const (
	bucketsPerHorizon = 128
	ringBuckets       = 1024 // power of two; see ringMask
	ringMask          = ringBuckets - 1
)

// eventQueue orders entries by the (at, seq) total order. It has two
// tiers:
//
//   - A calendar ring of time-partitioned buckets (active when a
//     SetHorizon hint set width). A push inside the ring's window is an
//     O(1) append; a bucket is sorted once, when the clock reaches its
//     window. This is where the bulk of a simulation's events — message
//     deliveries and round ticks, all scheduled a bounded distance ahead
//     — live, replacing the O(log n) sift over one big heap that used to
//     dominate large-topology profiles.
//   - A 4-ary min-heap for everything else: events beyond the ring's
//     span, events landing in the already-sorted active window, and all
//     events when no horizon hint was given. Hand-rolled instead of
//     container/heap so entries never round-trip through `any` (which
//     heap-allocates a box per call).
//
// pop merges the two tiers by comparing their heads; each tier yields
// entries in (at, seq) order, so the merge is the same global order a
// single heap produced and simulation determinism is unaffected.
type eventQueue struct {
	heap []entry
	ring [][]entry // nil = heap only (no horizon hint)
	// shift is log2 of the bucket width: a time maps to its absolute
	// window index with at >> shift. curAbs is the window index of the
	// active bucket; curIdx is the consume position inside it. count is
	// the total queued entries across both tiers.
	shift  uint
	curAbs int64
	curIdx int
	rung   int // live entries in the ring (not yet consumed)
	count  int
}

func (q *eventQueue) len() int { return q.count }

func (q *eventQueue) push(en entry) {
	q.count++
	if q.ring != nil {
		abs := int64(en.at) >> q.shift
		if abs > q.curAbs && abs < q.curAbs+ringBuckets {
			b := &q.ring[abs&ringMask]
			*b = append(*b, en)
			q.rung++
			return
		}
	}
	q.heapPush(en)
}

// ringHead returns the next unconsumed ring entry, advancing and sorting
// buckets as their windows are reached, or nil if the ring is empty.
// Advancing past an empty window is safe even though virtual time has
// not reached it: entries are only ever pushed at or after the current
// time, and push routes anything at or before the active window to the
// heap, so a skipped window can never be populated later.
func (q *eventQueue) ringHead() *entry {
	if q.rung == 0 {
		return nil
	}
	b := q.ring[q.curAbs&ringMask]
	for q.curIdx >= len(b) {
		q.ring[q.curAbs&ringMask] = b[:0]
		q.curAbs++
		q.curIdx = 0
		b = q.ring[q.curAbs&ringMask]
		if len(b) > 1 {
			sortEntries(b)
		}
	}
	return &b[q.curIdx]
}

// sortEntries sorts a bucket by (at, seq). Small buckets — the common
// case: a few entries most rounds, several dozen when every node
// multicasts in the same round — take an allocation-free insertion
// sort on the inline keys, which beats a generic sort's dispatch at
// those sizes. Large buckets — saturated-link echo storms (ERNG at
// N=128 lands ~10^4 deliveries per window) — must not pay insertion
// sort's quadratic movement, so they go through slices.SortFunc
// instead. (at, seq) is a strict total order (seq is unique), so the
// unstable sort still produces one deterministic permutation.
func sortEntries(b []entry) {
	if len(b) > 48 {
		slices.SortFunc(b, func(x, y entry) int {
			if x.at != y.at {
				return cmp.Compare(x.at, y.at)
			}
			return cmp.Compare(x.seq, y.seq)
		})
		return
	}
	for i := 1; i < len(b); i++ {
		en := b[i]
		j := i
		for j > 0 && (en.at < b[j-1].at || (en.at == b[j-1].at && en.seq < b[j-1].seq)) {
			b[j] = b[j-1]
			j--
		}
		b[j] = en
	}
}

// peek returns the entry that pop would return next, or nil when empty.
func (q *eventQueue) peek() *entry {
	rh := q.ringHead()
	if len(q.heap) == 0 {
		return rh // may be nil
	}
	hh := &q.heap[0]
	if rh == nil || hh.at < rh.at || (hh.at == rh.at && hh.seq < rh.seq) {
		return hh
	}
	return rh
}

func (q *eventQueue) pop() entry {
	rh := q.ringHead()
	if rh != nil {
		if len(q.heap) == 0 || rh.at < q.heap[0].at || (rh.at == q.heap[0].at && rh.seq < q.heap[0].seq) {
			en := *rh
			*rh = entry{}
			q.curIdx++
			q.rung--
			q.count--
			return en
		}
	}
	q.count--
	return q.heapPop()
}

// popKnownHead consumes the entry a peek just returned, skipping the
// tier comparison pop would redo: the head pointer itself identifies
// the winning tier. The queue must not have been mutated since the
// peek.
func (q *eventQueue) popKnownHead(head *entry) entry {
	q.count--
	if len(q.heap) > 0 && head == &q.heap[0] {
		return q.heapPop()
	}
	en := *head
	*head = entry{}
	q.curIdx++
	q.rung--
	return en
}

func (q *eventQueue) heapPush(en entry) {
	h := append(q.heap, en)
	q.heap = h
	// Sift up along the hole: parents move down one slot each and the new
	// entry is written exactly once, halving the copies of a swap chain.
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 4
		if !(en.at < h[i].at || (en.at == h[i].at && en.seq < h[i].seq)) {
			break
		}
		h[j] = h[i]
		j = i
	}
	h[j] = en
}

func (q *eventQueue) heapPop() entry {
	h := q.heap
	en := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = entry{}
	h = h[:n]
	q.heap = h
	if n == 0 {
		return en
	}
	// Sift the former tail entry down along the min-child path (4-ary:
	// half the depth of a binary heap), moving children up into the hole
	// instead of swapping; the tail entry is written exactly once at its
	// final slot.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		j := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if h[k].at < h[j].at || (h[k].at == h[j].at && h[k].seq < h[j].seq) {
				j = k
			}
		}
		if !(h[j].at < last.at || (h[j].at == last.at && h[j].seq < last.seq)) {
			break
		}
		h[i] = h[j]
		i = j
	}
	h[i] = last
	return en
}
