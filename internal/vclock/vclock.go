// Package vclock implements the discrete-event engine that drives the
// simulated synchronous network: a virtual clock and a time-ordered event
// queue. All simulated latencies, round boundaries and bandwidth queueing
// are expressed as events on this clock, so experiments that the paper ran
// in hundreds of wall-clock seconds replay in milliseconds while reporting
// the same virtual durations.
//
// The queue is tuned for simulations holding millions of in-flight
// events: heap entries carry their ordering key inline (no pointer chase
// in comparisons) and cancellation is lazy (cancelled events are skipped
// at pop time instead of being removed), so heap operations never write
// back through event pointers. The heap is hand-rolled rather than
// container/heap because the interface-based API boxes every pushed and
// popped entry (two allocations per event); and fire-and-forget
// callers use Schedule, which skips the *Event handle allocation too —
// scheduling a delivery then costs no allocations beyond amortized
// queue growth. Pop order is the total order (time, sequence), so the
// hand-rolled heap fires events in exactly the order container/heap
// did and simulation determinism is unaffected.
package vclock

import (
	"errors"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("vclock: simulation stopped")

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break), which keeps simulations
// deterministic.
type Event struct {
	at    time.Duration
	fn    func()
	fired bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil && !e.fired }

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() time.Duration { return e.at }

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; protocols built on it run as event callbacks on one
// goroutine, which is what makes large topologies cheap.
type Sim struct {
	now       time.Duration
	queue     eventQueue
	nextSeq   uint64
	cancelled int
	stopped   bool
	limit     time.Duration // 0 means no limit
	fired     uint64
	trace     uint64
}

// fnv64Offset and fnv64Prime are the FNV-1a parameters used by the
// event-trace fingerprint.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// New creates an empty simulator at virtual time zero.
func New() *Sim {
	return &Sim{trace: fnv64Offset}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// SetDeadline makes Run stop (without error) once the clock would pass the
// given virtual time. Zero removes the deadline.
func (s *Sim) SetDeadline(d time.Duration) { s.limit = d }

// At schedules fn to run at the given absolute virtual time. Times in the
// past are clamped to "now". The returned event may be cancelled.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("vclock: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, fn: fn}
	s.queue.push(entry{at: t, seq: s.nextSeq, e: e})
	s.nextSeq++
	return e
}

// After schedules fn to run after the given delay relative to now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Schedule is the fire-and-forget form of At: no *Event handle is
// allocated, so the event cannot be cancelled. It is the right call for
// high-volume events that always fire, like message deliveries; it
// interleaves with At events in the same (time, sequence) order.
func (s *Sim) Schedule(t time.Duration, fn func()) {
	if fn == nil {
		panic("vclock: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.queue.push(entry{at: t, seq: s.nextSeq, fn: fn})
	s.nextSeq++
}

// ScheduleAfter is Schedule with a delay relative to now.
func (s *Sim) ScheduleAfter(d time.Duration, fn func()) {
	s.Schedule(s.now+d, fn)
}

// Cancel marks a pending event so it will not fire; the entry is dropped
// lazily when it reaches the head of the queue. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.fn == nil {
		return
	}
	e.fn = nil
	s.cancelled++
}

// Stop aborts Run at the next event boundary.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of live (non-cancelled) events still queued.
func (s *Sim) Pending() int { return s.queue.Len() - s.cancelled }

// FiredCount returns the number of events fired so far.
func (s *Sim) FiredCount() uint64 { return s.fired }

// TraceHash returns an FNV-1a fingerprint over the (time, sequence) pair of
// every event fired so far. Two simulations with equal hashes executed the
// same event interleaving bit-for-bit; the chaos engine's seed→schedule
// determinism contract (internal/chaos) is asserted against this value.
func (s *Sim) TraceHash() uint64 { return s.trace }

// traceFire folds one fired event into the interleaving fingerprint.
func (s *Sim) traceFire(at time.Duration, seq uint64) {
	s.fired++
	h := s.trace
	x := uint64(at)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnv64Prime
		x >>= 8
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (seq & 0xff)) * fnv64Prime
		seq >>= 8
	}
	s.trace = h
}

// Step fires the next live event, advancing the clock, and reports
// whether an event was fired.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		en := s.queue.pop()
		fn := en.fn
		if en.e != nil {
			if en.e.fn == nil {
				s.cancelled--
				continue
			}
			fn = en.e.fn
			en.e.fn = nil
			en.e.fired = true
		}
		s.now = en.at
		s.traceFire(en.at, en.seq)
		fn()
		return true
	}
	return false
}

// skipCancelledHead drops cancelled entries off the queue head so the
// head's time is that of a live event. Schedule entries (no handle)
// cannot be cancelled and never match.
func (s *Sim) skipCancelledHead() {
	for s.queue.Len() > 0 && s.queue[0].e != nil && s.queue[0].e.fn == nil {
		s.queue.pop()
		s.cancelled--
	}
}

// Run fires events until the queue drains, a deadline set with SetDeadline
// is reached, or Stop is called. It returns ErrStopped only in the explicit
// Stop case.
func (s *Sim) Run() error {
	s.stopped = false
	for {
		s.skipCancelledHead()
		if s.queue.Len() == 0 {
			return nil
		}
		if s.stopped {
			return ErrStopped
		}
		if s.limit > 0 && s.queue[0].at > s.limit {
			s.now = s.limit
			return nil
		}
		s.Step()
	}
}

// RunUntil fires events until the clock reaches the given virtual time or
// the queue drains. The clock is left at t (or beyond the last event) and
// never exceeds t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		s.skipCancelledHead()
		if s.queue.Len() == 0 || s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// entry is a heap element with the ordering key stored inline, so heap
// comparisons and swaps never dereference the *Event — on multi-million-
// event simulations the pointer chase was the dominant cost. Exactly one
// of fn (a Schedule entry) and e (an At entry, cancellable through the
// handle) is set.
type entry struct {
	at  time.Duration
	seq uint64
	fn  func()
	e   *Event
}

// eventQueue is a binary min-heap of entries ordered by (at, seq). The
// push/pop pair is hand-rolled instead of container/heap so entries
// never round-trip through `any` (which heap-allocates a box per call).
type eventQueue []entry

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(en entry) {
	*q = append(*q, en)
	h := *q
	// Sift up.
	for j := len(h) - 1; j > 0; {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *eventQueue) pop() entry {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	en := h[n]
	h[n] = entry{}
	h = h[:n]
	*q = h
	// Sift down from the root.
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return en
}
