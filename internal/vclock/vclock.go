// Package vclock implements the discrete-event engine that drives the
// simulated synchronous network: a virtual clock and a time-ordered event
// queue. All simulated latencies, round boundaries and bandwidth queueing
// are expressed as events on this clock, so experiments that the paper ran
// in hundreds of wall-clock seconds replay in milliseconds while reporting
// the same virtual durations.
//
// The queue is tuned for simulations holding millions of in-flight
// events: heap entries carry their ordering key inline (no pointer chase
// in comparisons) and cancellation is lazy (cancelled events are skipped
// at pop time instead of being removed), so heap operations never write
// back through event pointers.
package vclock

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("vclock: simulation stopped")

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break), which keeps simulations
// deterministic.
type Event struct {
	at    time.Duration
	fn    func()
	fired bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil && !e.fired }

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() time.Duration { return e.at }

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; protocols built on it run as event callbacks on one
// goroutine, which is what makes large topologies cheap.
type Sim struct {
	now       time.Duration
	queue     eventQueue
	nextSeq   uint64
	cancelled int
	stopped   bool
	limit     time.Duration // 0 means no limit
}

// New creates an empty simulator at virtual time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// SetDeadline makes Run stop (without error) once the clock would pass the
// given virtual time. Zero removes the deadline.
func (s *Sim) SetDeadline(d time.Duration) { s.limit = d }

// At schedules fn to run at the given absolute virtual time. Times in the
// past are clamped to "now". The returned event may be cancelled.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("vclock: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, fn: fn}
	heap.Push(&s.queue, entry{at: t, seq: s.nextSeq, e: e})
	s.nextSeq++
	return e
}

// After schedules fn to run after the given delay relative to now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel marks a pending event so it will not fire; the entry is dropped
// lazily when it reaches the head of the queue. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.fn == nil {
		return
	}
	e.fn = nil
	s.cancelled++
}

// Stop aborts Run at the next event boundary.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of live (non-cancelled) events still queued.
func (s *Sim) Pending() int { return s.queue.Len() - s.cancelled }

// Step fires the next live event, advancing the clock, and reports
// whether an event was fired.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		en := heap.Pop(&s.queue).(entry)
		if en.e.fn == nil {
			s.cancelled--
			continue
		}
		s.now = en.at
		fn := en.e.fn
		en.e.fn = nil
		en.e.fired = true
		fn()
		return true
	}
	return false
}

// skipCancelledHead drops cancelled entries off the queue head so the
// head's time is that of a live event.
func (s *Sim) skipCancelledHead() {
	for s.queue.Len() > 0 && s.queue[0].e.fn == nil {
		heap.Pop(&s.queue)
		s.cancelled--
	}
}

// Run fires events until the queue drains, a deadline set with SetDeadline
// is reached, or Stop is called. It returns ErrStopped only in the explicit
// Stop case.
func (s *Sim) Run() error {
	s.stopped = false
	for {
		s.skipCancelledHead()
		if s.queue.Len() == 0 {
			return nil
		}
		if s.stopped {
			return ErrStopped
		}
		if s.limit > 0 && s.queue[0].at > s.limit {
			s.now = s.limit
			return nil
		}
		s.Step()
	}
}

// RunUntil fires events until the clock reaches the given virtual time or
// the queue drains. The clock is left at t (or beyond the last event) and
// never exceeds t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		s.skipCancelledHead()
		if s.queue.Len() == 0 || s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// entry is a heap element with the ordering key stored inline, so heap
// comparisons and swaps never dereference the *Event — on multi-million-
// event simulations the pointer chase was the dominant cost.
type entry struct {
	at  time.Duration
	seq uint64
	e   *Event
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []entry

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
}

func (q *eventQueue) Push(x any) {
	*q = append(*q, x.(entry))
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	en := old[n-1]
	old[n-1] = entry{}
	*q = old[:n-1]
	return en
}
