package vclock

import (
	"testing"
	"time"
)

// TestTraceHashDeterministic: two simulators fed the same schedule
// produce the same fingerprint and event count.
func TestTraceHashDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		s := New()
		for i := 1; i <= 5; i++ {
			s.Schedule(time.Duration(i)*time.Millisecond, func() {})
		}
		s.ScheduleAfter(2*time.Millisecond, func() {
			s.ScheduleAfter(time.Millisecond, func() {})
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.TraceHash(), s.FiredCount()
	}
	h1, n1 := run()
	h2, n2 := run()
	if h1 != h2 || n1 != n2 {
		t.Fatalf("identical schedules diverge: %#x/%d vs %#x/%d", h1, n1, h2, n2)
	}
	if n1 != 7 {
		t.Fatalf("fired %d events, want 7", n1)
	}
}

// TestTraceHashSensitive: a different interleaving (one extra event, or
// the same events at different times) changes the fingerprint.
func TestTraceHashSensitive(t *testing.T) {
	base := New()
	base.Schedule(time.Millisecond, func() {})
	base.Schedule(2*time.Millisecond, func() {})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}

	extra := New()
	extra.Schedule(time.Millisecond, func() {})
	extra.Schedule(2*time.Millisecond, func() {})
	extra.Schedule(3*time.Millisecond, func() {})
	if err := extra.Run(); err != nil {
		t.Fatal(err)
	}
	if base.TraceHash() == extra.TraceHash() {
		t.Fatal("extra event did not change the fingerprint")
	}

	shifted := New()
	shifted.Schedule(time.Millisecond, func() {})
	shifted.Schedule(4*time.Millisecond, func() {})
	if err := shifted.Run(); err != nil {
		t.Fatal(err)
	}
	if base.TraceHash() == shifted.TraceHash() {
		t.Fatal("shifted timing did not change the fingerprint")
	}
}

// TestTraceHashCountsCancelledNever: cancelled events never fire and so
// never enter the fingerprint.
func TestTraceHashCountsCancelledNever(t *testing.T) {
	a := New()
	a.Schedule(time.Millisecond, func() {})
	ev := a.At(2*time.Millisecond, func() {})
	a.Cancel(ev)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}

	b := New()
	b.Schedule(time.Millisecond, func() {})
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if a.FiredCount() != b.FiredCount() {
		t.Fatalf("cancelled event counted: %d vs %d", a.FiredCount(), b.FiredCount())
	}
}
