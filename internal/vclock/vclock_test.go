package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Second
		s.At(d, func() { got = append(got, d) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
}

func TestEqualTimesFireFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO tie-break violated: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at time.Duration
	s.At(2*time.Second, func() {
		s.After(3*time.Second, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("After fired at %v, want 5s", at)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	s := New()
	var fired bool
	s.At(10*time.Second, func() {
		s.At(time.Second, func() { fired = true }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped event never fired")
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(time.Second, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // idempotent
	s.Cancel(nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event should report cancelled")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var got []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(time.Duration(i)*time.Second, func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("fired %d events before stop, want 3", count)
	}
}

func TestDeadline(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.SetDeadline(5 * time.Second)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("fired %d events, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want deadline 5s", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("fired %d, want 3", count)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock %v, want 3s", s.Now())
	}
	s.RunUntil(20 * time.Second)
	if count != 10 {
		t.Fatalf("fired %d, want 10", count)
	}
	if s.Now() != 20*time.Second {
		t.Fatalf("clock %v, want 20s (RunUntil advances to target)", s.Now())
	}
}

func TestPending(t *testing.T) {
	s := New()
	if s.Pending() != 0 {
		t.Fatal("fresh sim has pending events")
	}
	s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil callback must panic")
		}
	}()
	New().At(time.Second, nil)
}

// Property: for any set of delays, Run fires every event exactly once in
// nondecreasing time order and ends with the clock at the max delay.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []time.Duration
		var max time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			if at > max {
				max = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving random cancellations preserves exactly the
// surviving events.
func TestQuickCancellation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		fired := make(map[int]bool)
		events := make([]*Event, n)
		for i := 0; i < int(n); i++ {
			i := i
			events[i] = s.At(time.Duration(rng.Intn(100))*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < int(n)/2; i++ {
			j := rng.Intn(int(n))
			s.Cancel(events[j])
			cancelled[j] = true
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 10000)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(1e6)) * time.Microsecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, d := range delays {
			s.At(d, func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScheduleInterleavesWithAt pins that fire-and-forget Schedule
// events share the (time, sequence) order with At events: scheduling
// order breaks time ties regardless of which API queued the event.
func TestScheduleInterleavesWithAt(t *testing.T) {
	s := New()
	var got []int
	s.At(time.Second, func() { got = append(got, 0) })
	s.Schedule(time.Second, func() { got = append(got, 1) })
	s.At(time.Second, func() { got = append(got, 2) })
	s.Schedule(500*time.Millisecond, func() { got = append(got, 3) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestSchedulePastClamped mirrors At's clamping for the handle-free form.
func TestSchedulePastClamped(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(10*time.Second, func() {
		s.Schedule(time.Second, func() { fired = true }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || s.Now() != 10*time.Second {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

// TestScheduleSteadyStateAllocs pins the hot-path property the simnet
// delivery path depends on: once the queue has grown to its working
// capacity, Schedule+Step cycles do not allocate (the closure passed in
// is the caller's business; here it is hoisted out of the loop).
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm the queue's backing array.
	for i := 0; i < 64; i++ {
		s.Schedule(time.Duration(i), fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.Schedule(s.Now()+time.Duration(i), fn)
		}
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Schedule+Step allocated %.1f times per run, want 0", allocs)
	}
}
