// Package keygen implements the shared-key-generation application of the
// paper's Appendix H: every honest node derives the same sequence of
// symmetric keys from the beacon's common unbiased random values. The
// derived keys can serve as group keys, salts or initialization vectors;
// because the beacon output is unbiased and unpredictable to byzantine
// nodes until it is emitted, so are the keys.
package keygen

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxp2p/internal/beacon"
	"sgxp2p/internal/xcrypto"
)

// Key is a derived shared symmetric key.
type Key [xcrypto.KeySize]byte

// String implements fmt.Stringer with a short prefix.
func (k Key) String() string { return fmt.Sprintf("%x", k[:4]) }

// Schedule derives a deterministic sequence of keys from a beacon source.
// All honest nodes observing the same beacon derive identical schedules.
type Schedule struct {
	src     beacon.Source
	context string
	epoch   uint64
}

// NewSchedule builds a key schedule over a beacon source. The context
// string domain-separates schedules that share a beacon (e.g. "storage"
// vs "transport" keys).
func NewSchedule(src beacon.Source, context string) (*Schedule, error) {
	if src == nil {
		return nil, errors.New("keygen: nil beacon source")
	}
	return &Schedule{src: src, context: context}, nil
}

// Epoch returns the number of keys derived so far.
func (s *Schedule) Epoch() uint64 { return s.epoch }

// NextKey obtains the next beacon value and derives the epoch key:
// SHA-256 over a domain tag, the context, the epoch counter and the
// beacon value.
func (s *Schedule) NextKey() (Key, error) {
	v, err := s.src.Next()
	if err != nil {
		return Key{}, fmt.Errorf("keygen: beacon: %w", err)
	}
	k := Derive(s.context, s.epoch, v[:])
	s.epoch++
	return k, nil
}

// Derive is the pure key-derivation function, exposed so recorded beacon
// traces can be turned into keys offline.
func Derive(context string, epoch uint64, entropy []byte) Key {
	h := sha256.New()
	h.Write([]byte("sgxp2p/keygen/v1/"))
	h.Write([]byte(context))
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], epoch)
	h.Write(eb[:])
	h.Write(entropy)
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}
