package keygen_test

import (
	"errors"
	"math/rand"
	"testing"

	"sgxp2p/internal/keygen"
	"sgxp2p/internal/wire"
)

// stubSource replays a fixed sequence of values.
type stubSource struct {
	values []wire.Value
	i      int
	err    error
}

func (s *stubSource) Next() (wire.Value, error) {
	if s.err != nil {
		return wire.Value{}, s.err
	}
	if s.i >= len(s.values) {
		return wire.Value{}, errors.New("stub exhausted")
	}
	v := s.values[s.i]
	s.i++
	return v, nil
}

func randomValues(seed int64, n int) []wire.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]wire.Value, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func TestScheduleDeterministicAcrossNodes(t *testing.T) {
	values := randomValues(1, 4)
	s1, err := keygen.NewSchedule(&stubSource{values: values}, "transport")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := keygen.NewSchedule(&stubSource{values: values}, "transport")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		k1, err := s1.NextKey()
		if err != nil {
			t.Fatal(err)
		}
		k2, err := s2.NextKey()
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("epoch %d: nodes derived different keys", i)
		}
	}
	if s1.Epoch() != 4 {
		t.Fatalf("epoch counter %d, want 4", s1.Epoch())
	}
}

func TestScheduleKeysDistinctAcrossEpochs(t *testing.T) {
	s, err := keygen.NewSchedule(&stubSource{values: randomValues(2, 8)}, "x")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[keygen.Key]bool)
	for i := 0; i < 8; i++ {
		k, err := s.NextKey()
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("epoch %d repeated a key", i)
		}
		seen[k] = true
	}
}

func TestContextSeparation(t *testing.T) {
	values := randomValues(3, 1)
	sa, _ := keygen.NewSchedule(&stubSource{values: values}, "storage")
	sb, _ := keygen.NewSchedule(&stubSource{values: values}, "transport")
	ka, err := sa.NextKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := sb.NextKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatal("different contexts derived the same key")
	}
}

func TestDerivePure(t *testing.T) {
	e := []byte{1, 2, 3}
	if keygen.Derive("c", 0, e) != keygen.Derive("c", 0, e) {
		t.Fatal("Derive not deterministic")
	}
	if keygen.Derive("c", 0, e) == keygen.Derive("c", 1, e) {
		t.Fatal("epoch not separated")
	}
	if keygen.Derive("c", 0, e) == keygen.Derive("c", 0, []byte{9}) {
		t.Fatal("entropy ignored")
	}
	if keygen.Derive("c", 0, e).String() == "" {
		t.Fatal("empty key string")
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := keygen.NewSchedule(nil, "x"); err == nil {
		t.Fatal("nil source accepted")
	}
	s, err := keygen.NewSchedule(&stubSource{err: errors.New("beacon down")}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NextKey(); err == nil {
		t.Fatal("beacon error not propagated")
	}
	if s.Epoch() != 0 {
		t.Fatal("failed epoch advanced the counter")
	}
}
