package obsplane

import (
	"os"
	goruntime "runtime"
	"sync"
	"time"

	"sgxp2p/internal/telemetry"
)

// ProbeConfig configures a resource probe.
type ProbeConfig struct {
	// Metrics receives the probe gauges; nil disables the probe.
	Metrics *telemetry.Metrics
	// Interval is the sampling period; 0 means DefaultProbeInterval.
	Interval time.Duration
	// Queue optionally samples the transport's outbound queue depths
	// (links, total queued frames, deepest queue) — tcpnet.Port.QueueStats
	// wrapped in a closure.
	Queue func() (links, total, max int)
}

// DefaultProbeInterval is the sampling period when ProbeConfig leaves
// Interval zero.
const DefaultProbeInterval = 250 * time.Millisecond

// Probe periodically samples process-level resources into gauges:
// goroutine count, heap size and objects, cumulative GC count and pause
// time, open file descriptors, and per-link transport queue depths. The
// gauges ride the same registry the node already exports and streams, so
// a live run shows resource pressure next to protocol progress.
//
// The probe runs on a wall-clock ticker by design — it observes the OS
// process, not the protocol — which is why it lives outside the
// deterministic packages (a simulated run never starts one).
type Probe struct {
	cfg  ProbeConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once

	goroutines *telemetry.Gauge
	heapAlloc  *telemetry.Gauge
	heapObjs   *telemetry.Gauge
	gcCount    *telemetry.Gauge
	gcPauseNs  *telemetry.Gauge
	fds        *telemetry.Gauge
	qLinks     *telemetry.Gauge
	qTotal     *telemetry.Gauge
	qMax       *telemetry.Gauge
}

// StartProbe registers the probe gauges and starts the sampler
// goroutine. It samples once synchronously, so even a run shorter than
// one interval exports real values. Returns nil when cfg.Metrics is nil.
func StartProbe(cfg ProbeConfig) *Probe {
	if cfg.Metrics == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	m := cfg.Metrics
	p := &Probe{
		cfg:        cfg,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		goroutines: m.Gauge("obs_goroutines"),
		heapAlloc:  m.Gauge("obs_heap_alloc_bytes"),
		heapObjs:   m.Gauge("obs_heap_objects"),
		gcCount:    m.Gauge("obs_gc_count"),
		gcPauseNs:  m.Gauge("obs_gc_pause_total_ns"),
		fds:        m.Gauge("obs_fds"),
	}
	if cfg.Queue != nil {
		p.qLinks = m.Gauge("obs_link_queue_links")
		p.qTotal = m.Gauge("obs_link_queue_frames")
		p.qMax = m.Gauge("obs_link_queue_max")
	}
	p.sample()
	go p.loop()
	return p
}

// Stop halts the sampler after one final sample, so the exported gauges
// reflect the process's end state. Safe on a nil probe and safe to call
// twice.
func (p *Probe) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Probe) loop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.sample()
		case <-p.stop:
			p.sample()
			return
		}
	}
}

// sample reads every resource once.
func (p *Probe) sample() {
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	p.goroutines.Set(int64(goruntime.NumGoroutine()))
	p.heapAlloc.Set(int64(ms.HeapAlloc))
	p.heapObjs.Set(int64(ms.HeapObjects))
	p.gcCount.Set(int64(ms.NumGC))
	p.gcPauseNs.Set(int64(ms.PauseTotalNs))
	if n, ok := countFDs(); ok {
		p.fds.Set(int64(n))
	}
	if p.cfg.Queue != nil {
		links, total, max := p.cfg.Queue()
		p.qLinks.Set(int64(links))
		p.qTotal.Set(int64(total))
		p.qMax.Set(int64(max))
	}
}

// countFDs counts the process's open file descriptors via /proc. On
// platforms without procfs it reports ok=false and the gauge keeps its
// last value.
func countFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}
