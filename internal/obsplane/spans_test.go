package obsplane_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sgxp2p"
	"sgxp2p/internal/obsplane"
	"sgxp2p/internal/telemetry"
)

// TestReconstructJoinsHops builds a two-process span by hand and checks
// the chain joins with the right hop arithmetic.
func TestReconstructJoinsHops(t *testing.T) {
	const span = 0xabcdef
	events := []telemetry.Event{
		{At: 100, Node: 0, Round: 1, Kind: telemetry.KindSeal, Peer: 1, Arg: 30, Span: span, Seq: 1},
		{At: 250, Node: 1, Round: 1, Kind: telemetry.KindOpen, Peer: 0, Arg: 40, Span: span, Seq: 1},
		{At: 260, Node: 1, Round: 1, Kind: telemetry.KindDeliver, Peer: 0, Arg: 2, Span: span, Seq: 2},
		{At: 300, Node: 1, Round: 1, Kind: telemetry.KindHandled, Peer: 0, Arg: 35, Span: span, Seq: 3},
	}
	g := obsplane.Reconstruct(events)
	if len(g.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(g.Spans))
	}
	sr := g.Spans[0]
	if !sr.Complete() {
		t.Fatal("span should be complete")
	}
	if sr.Src != 0 || sr.Dst != 1 || sr.Seal != 30 || sr.Open != 40 {
		t.Fatalf("bad endpoints/durations: %+v", sr)
	}
	if sr.Transit != 150 {
		t.Fatalf("transit = %d, want 150", sr.Transit)
	}
	if len(sr.Deliveries) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(sr.Deliveries))
	}
	dl := sr.Deliveries[0]
	if dl.Gap != 10 || dl.Handle != 35 {
		t.Fatalf("bad delivery hops: %+v", dl)
	}
}

// TestReconstructPartialChain checks that a receiver-only span (the
// sender's stream is missing — it was SIGKILLed before its dump) stays
// visibly partial instead of fabricating zero hops.
func TestReconstructPartialChain(t *testing.T) {
	events := []telemetry.Event{
		{At: 250, Node: 1, Round: 1, Kind: telemetry.KindOpen, Peer: 0, Arg: 40, Span: 7, Seq: 1},
		{At: 260, Node: 1, Round: 1, Kind: telemetry.KindDeliver, Peer: 0, Arg: 2, Span: 7, Seq: 2},
	}
	g := obsplane.Reconstruct(events)
	if len(g.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(g.Spans))
	}
	sr := g.Spans[0]
	if sr.Complete() {
		t.Fatal("half-observed span must not be complete")
	}
	if sr.SealAt != -1 || sr.Transit != -1 {
		t.Fatalf("unobserved hops should be -1: %+v", sr)
	}
	stats := g.HopStats()
	for _, hs := range stats {
		if hs.Hop == "seal" || hs.Hop == "transit" {
			t.Fatalf("unobserved hop %q must not contribute samples", hs.Hop)
		}
	}
}

// spanGraph runs one honest broadcast over a spans-enabled simnet cluster
// and returns the serialized happens-before graph.
func spanGraph(t *testing.T, n int) ([]byte, *obsplane.Graph) {
	t.Helper()
	tr := telemetry.New(telemetry.Options{Spans: true})
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{
		N: n, T: (n - 1) / 2, Seed: 42, Trace: tr,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, err := cluster.Broadcast(0, sgxp2p.ValueFromString("span golden")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	g := obsplane.Reconstruct(telemetry.MergeEvents(tr.Events()))
	var buf bytes.Buffer
	if err := g.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes(), g
}

// TestGoldenSpanGraphDeterministic pins the golden happens-before graph:
// two runs of the same seed serialize byte-identical graphs, at n=5 and
// n=9, and the graphs are structurally sane (complete chains, every
// delivery handled, seal/open hop pairing across the whole broadcast).
func TestGoldenSpanGraphDeterministic(t *testing.T) {
	for _, n := range []int{5, 9} {
		a, g := spanGraph(t, n)
		b, _ := spanGraph(t, n)
		if !bytes.Equal(a, b) {
			al := strings.Split(string(a), "\n")
			bl := strings.Split(string(b), "\n")
			for i := range al {
				if i >= len(bl) || al[i] != bl[i] {
					t.Fatalf("n=%d: graphs diverge at line %d:\n%s\n%s", n, i+1, al[i], bl[i])
				}
			}
			t.Fatalf("n=%d: graphs differ in length", n)
		}
		if len(g.Spans) == 0 {
			t.Fatalf("n=%d: no spans reconstructed", n)
		}
		for i := range g.Spans {
			sr := &g.Spans[i]
			if !sr.Complete() {
				t.Fatalf("n=%d: incomplete span in an honest run: %+v", n, sr)
			}
			if sr.Transit < 0 {
				t.Fatalf("n=%d: negative transit under the virtual clock: %+v", n, sr)
			}
			for _, dl := range sr.Deliveries {
				if dl.Handle == time.Duration(-1) {
					t.Fatalf("n=%d: unhandled delivery in an honest run: %+v", n, sr)
				}
			}
		}
	}
}

// TestSpansOffRecordsNoHops checks the gate: the same run without
// Options.Spans records zero span-tagged events.
func TestSpansOffRecordsNoHops(t *testing.T) {
	tr := telemetry.New(telemetry.Options{})
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 42, Trace: tr})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, err := cluster.Broadcast(0, sgxp2p.ValueFromString("no spans")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for _, ev := range tr.Events() {
		if ev.Span != 0 || ev.Kind == telemetry.KindSeal || ev.Kind == telemetry.KindOpen || ev.Kind == telemetry.KindHandled {
			t.Fatalf("span artifact recorded with spans off: %+v", ev)
		}
	}
	if g := obsplane.Reconstruct(tr.Events()); len(g.Spans) != 0 {
		t.Fatalf("reconstructed %d spans from a span-less trace", len(g.Spans))
	}
}

// TestHopHistogramRenders smoke-tests the terminal histogram.
func TestHopHistogramRenders(t *testing.T) {
	_, g := spanGraph(t, 5)
	var buf bytes.Buffer
	if err := obsplane.WriteHopHistogram(&buf, g); err != nil {
		t.Fatalf("WriteHopHistogram: %v", err)
	}
	out := buf.String()
	for _, hop := range []string{"seal", "transit", "open", "deliver", "handle"} {
		if !strings.Contains(out, hop) {
			t.Fatalf("histogram missing hop %q:\n%s", hop, out)
		}
	}
}
