package obsplane_test

import (
	"testing"
	"time"

	"sgxp2p/internal/obsplane"
	"sgxp2p/internal/telemetry"
)

// TestProbeSamplesGauges checks that a probe registers and fills the
// resource gauges, including the queue-depth set, and samples its final
// state at Stop.
func TestProbeSamplesGauges(t *testing.T) {
	m := telemetry.NewMetrics()
	queued := 0
	p := obsplane.StartProbe(obsplane.ProbeConfig{
		Metrics:  m,
		Interval: 5 * time.Millisecond,
		Queue:    func() (int, int, int) { return 3, queued, queued },
	})
	if p == nil {
		t.Fatal("StartProbe returned nil with a live registry")
	}
	if m.Gauge("obs_goroutines").Value() <= 0 {
		t.Fatal("goroutine gauge not sampled at start")
	}
	if m.Gauge("obs_heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap gauge not sampled at start")
	}
	queued = 17
	p.Stop()
	if got := m.Gauge("obs_link_queue_frames").Value(); got != 17 {
		t.Fatalf("queue gauge = %d after Stop, want the final sample 17", got)
	}
	if got := m.Gauge("obs_link_queue_links").Value(); got != 3 {
		t.Fatalf("links gauge = %d, want 3", got)
	}
	p.Stop() // idempotent
}

// TestProbeNilRegistry checks the disabled path: nil registry, nil probe,
// nil Stop all no-op.
func TestProbeNilRegistry(t *testing.T) {
	if p := obsplane.StartProbe(obsplane.ProbeConfig{}); p != nil {
		t.Fatal("StartProbe should return nil without a registry")
	}
	var p *obsplane.Probe
	p.Stop()
}
