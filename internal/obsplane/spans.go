// Package obsplane is the live fleet observability plane built on the
// telemetry layer: it reconstructs cross-process causal spans out of
// merged event streams and samples per-process resource probes into the
// metrics registry.
//
// A causal span is one sealed envelope's life. The runtime records hop
// events keyed by the envelope's channel.FrameTag — the first eight
// sealed bytes, identical at sender and receiver, so the id costs zero
// wire bytes and two processes' traces join without coordination:
//
//	seal    (sender)    the envelope leaves the enclave boundary
//	transit             open.At − seal.At across the shared clock origin
//	open    (receiver)  the envelope authenticates back in
//	deliver (receiver)  a decoded message passes the lockstep checks
//	handle  (receiver)  the protocol's OnMessage returns
//
// Reconstruct joins these into happens-before chains (one SpanRecord per
// envelope, each a seal→open→deliver→handle edge path) and HopStats
// folds them into per-hop latency distributions — the decomposition the
// paper's evaluation needs at scale ("where does the round go").
package obsplane

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Delivery is one message delivered out of a span's envelope.
type Delivery struct {
	// At is the delivery instant; Gap its distance from the open hop
	// (0 when the span has no open event).
	At  time.Duration `json:"at"`
	Gap time.Duration `json:"gap"`
	// Handle is the protocol's OnMessage duration for this message
	// (-1 when the handled event is missing — the process died mid-hop).
	Handle time.Duration `json:"handle"`
	// Instance attributes the message to its protocol instance.
	Instance uint32 `json:"inst,omitempty"`
}

// SpanRecord is one reconstructed envelope chain. Fields that were never
// observed (the counterpart process's stream is missing or truncated)
// hold -1 for durations and instants, so a partial chain is visibly
// partial instead of silently zero.
type SpanRecord struct {
	Span  uint64 `json:"span"`
	Src   int64  `json:"src"`
	Dst   int64  `json:"dst"`
	Round uint32 `json:"round"`
	// SealAt/OpenAt are hop end instants on the fleet's shared clock.
	SealAt time.Duration `json:"seal_at"`
	OpenAt time.Duration `json:"open_at"`
	// Seal/Open are the hop durations the recording side measured.
	Seal time.Duration `json:"seal"`
	Open time.Duration `json:"open"`
	// Transit is OpenAt − SealAt: queueing + wire + scheduling between
	// the two enclave boundaries.
	Transit    time.Duration `json:"transit"`
	Deliveries []Delivery    `json:"deliveries,omitempty"`
}

// missing marks an unobserved instant or duration in a partial chain.
const missing = time.Duration(-1)

// Complete reports whether both sides of the span were observed.
func (s *SpanRecord) Complete() bool { return s.SealAt != missing && s.OpenAt != missing }

// Graph is the reconstructed happens-before graph: every span chain,
// ordered deterministically (seal instant, then span id, then endpoints)
// so equal event multisets serialize byte-identically per seed.
type Graph struct {
	Spans []SpanRecord
}

// Reconstruct joins a merged event stream's span hops into chains. The
// input should be MergeEvents output (or a single tracer's Events): the
// within-node record order pairs each handled event with its delivery.
// Events without a span id are ignored, so the full merged trace can be
// passed as-is.
func Reconstruct(events []telemetry.Event) *Graph {
	type key struct {
		span uint64
		src  wire.NodeID
		dst  wire.NodeID
	}
	idx := make(map[key]int)
	var spans []SpanRecord
	lookup := func(k key, round uint32) *SpanRecord {
		if i, ok := idx[k]; ok {
			return &spans[i]
		}
		idx[k] = len(spans)
		spans = append(spans, SpanRecord{
			Span: k.span, Src: nodeJSON(k.src), Dst: nodeJSON(k.dst), Round: round,
			SealAt: missing, OpenAt: missing, Seal: missing, Open: missing, Transit: missing,
		})
		return &spans[len(spans)-1]
	}
	for _, ev := range events {
		if ev.Span == 0 {
			continue
		}
		switch ev.Kind {
		case telemetry.KindSeal:
			sr := lookup(key{ev.Span, ev.Node, ev.Peer}, ev.Round)
			sr.SealAt = ev.At
			sr.Seal = time.Duration(ev.Arg)
		case telemetry.KindOpen:
			sr := lookup(key{ev.Span, ev.Peer, ev.Node}, ev.Round)
			sr.OpenAt = ev.At
			sr.Open = time.Duration(ev.Arg)
		case telemetry.KindDeliver:
			sr := lookup(key{ev.Span, ev.Peer, ev.Node}, ev.Round)
			sr.Deliveries = append(sr.Deliveries, Delivery{At: ev.At, Handle: missing, Instance: ev.Instance})
		case telemetry.KindHandled:
			sr := lookup(key{ev.Span, ev.Peer, ev.Node}, ev.Round)
			// Record order within the receiver pairs handled events with
			// deliveries first-in-first-served: attach to the earliest
			// delivery still waiting for its handle hop.
			for i := range sr.Deliveries {
				if sr.Deliveries[i].Handle == missing {
					sr.Deliveries[i].Handle = time.Duration(ev.Arg)
					break
				}
			}
		}
	}
	for i := range spans {
		sr := &spans[i]
		if sr.Complete() {
			sr.Transit = sr.OpenAt - sr.SealAt
		}
		if sr.OpenAt != missing {
			for j := range sr.Deliveries {
				sr.Deliveries[j].Gap = sr.Deliveries[j].At - sr.OpenAt
			}
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.SealAt != b.SealAt {
			return a.SealAt < b.SealAt
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return &Graph{Spans: spans}
}

// nodeJSON maps a NodeID to its serialized form (-1 for wire.NoNode),
// matching the telemetry JSONL convention.
func nodeJSON(id wire.NodeID) int64 {
	if id == wire.NoNode {
		return -1
	}
	return int64(id)
}

// WriteJSONL serializes the graph one span chain per line, in graph
// order. Equal graphs write identical bytes — the golden determinism
// tests pin this per seed.
func (g *Graph) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range g.Spans {
		line, err := json.Marshal(&g.Spans[i])
		if err != nil {
			return fmt.Errorf("obsplane: marshal span: %w", err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// HopStats is one hop's latency distribution across the graph.
type HopStats struct {
	Hop   string
	Count int
	Min   time.Duration
	P50   time.Duration
	P90   time.Duration
	Max   time.Duration
	// Buckets counts samples per power-of-four bucket starting at 1µs:
	// le 1µs, 4µs, 16µs, …, 1.07s, +Inf (len hopBuckets+1).
	Buckets []int
}

// hopBuckets are the histogram bounds: powers of four from 1µs.
var hopBuckets = func() []time.Duration {
	b := make([]time.Duration, 11)
	d := time.Microsecond
	for i := range b {
		b[i] = d
		d *= 4
	}
	return b
}()

// HopStats folds the graph into per-hop distributions, in pipeline order
// (seal, transit, open, deliver, handle). Unobserved hops of partial
// chains are skipped, not counted as zero.
func (g *Graph) HopStats() []HopStats {
	samples := map[string][]time.Duration{}
	add := func(hop string, d time.Duration) {
		if d != missing {
			samples[hop] = append(samples[hop], d)
		}
	}
	for i := range g.Spans {
		sr := &g.Spans[i]
		add("seal", sr.Seal)
		add("transit", sr.Transit)
		add("open", sr.Open)
		for _, dl := range sr.Deliveries {
			if sr.OpenAt != missing {
				add("deliver", dl.Gap)
			}
			add("handle", dl.Handle)
		}
	}
	out := make([]HopStats, 0, 5)
	for _, hop := range []string{"seal", "transit", "open", "deliver", "handle"} {
		s := samples[hop]
		if len(s) == 0 {
			continue
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		hs := HopStats{
			Hop: hop, Count: len(s),
			Min: s[0], P50: s[len(s)/2], P90: s[len(s)*9/10], Max: s[len(s)-1],
			Buckets: make([]int, len(hopBuckets)+1),
		}
		for _, d := range s {
			b := sort.Search(len(hopBuckets), func(i int) bool { return hopBuckets[i] >= d })
			hs.Buckets[b]++
		}
		out = append(out, hs)
	}
	return out
}

// WriteHopHistogram renders the per-hop latency histograms as a terminal
// table: one section per hop with the summary line and a bar per
// non-empty bucket.
func WriteHopHistogram(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	complete := 0
	for i := range g.Spans {
		if g.Spans[i].Complete() {
			complete++
		}
	}
	if _, err := fmt.Fprintf(bw, "spans: %d reconstructed, %d complete\n", len(g.Spans), complete); err != nil {
		return err
	}
	for _, hs := range g.HopStats() {
		if _, err := fmt.Fprintf(bw, "%-8s n=%-6d min=%-10v p50=%-10v p90=%-10v max=%v\n",
			hs.Hop, hs.Count, hs.Min, hs.P50, hs.P90, hs.Max); err != nil {
			return err
		}
		for i, n := range hs.Buckets {
			if n == 0 {
				continue
			}
			label := "+Inf"
			if i < len(hopBuckets) {
				label = hopBuckets[i].String()
			}
			bar := (n*40 + hs.Count - 1) / hs.Count
			if _, err := fmt.Fprintf(bw, "  le %-8s %6d %s\n", label, n, strings.Repeat("█", bar)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
