package baseline_test

import (
	"math/rand"
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/baseline"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

func val(b byte) wire.Value {
	var v wire.Value
	v[0] = b
	return v
}

func randomValue(rng *rand.Rand) wire.Value {
	var v wire.Value
	rng.Read(v[:])
	return v
}

func newDeployment(t *testing.T, n, byz int, seed int64, pki bool) *baseline.Deployment {
	t.Helper()
	d, err := baseline.NewDeployment(baseline.DeployOptions{N: n, T: byz, Seed: seed, PKI: pki})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	return d
}

func TestNewPeerValidation(t *testing.T) {
	d := newDeployment(t, 3, 1, 1, false)
	if _, err := baseline.NewPeer(0, 3, 1, 0, d.Net.Port(0), baseline.Roster{}, nil); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := baseline.NewPeer(0, 1, 0, 1, d.Net.Port(0), baseline.Roster{}, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := baseline.NewPeer(0, 3, 1, 1, nil, baseline.Roster{}, nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestStrawmanHonestAllAccept(t *testing.T) {
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 2, false)
	protos := make([]*baseline.Strawman, n)
	for i, p := range d.Peers {
		protos[i] = baseline.NewStrawman(p, 0)
		if i == 0 {
			protos[i].SetInput(val(0x11))
		}
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.Accepted || res.Value != val(0x11) {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
	}
}

func TestStrawmanEquivocationBreaksAgreement(t *testing.T) {
	// The known hole the paper's Section 2.3 describes: a byzantine
	// initiator equivocates and honest strawman nodes accept different
	// values. This test asserts the VULNERABILITY (the reason the
	// strawman is insufficient), not a desirable property.
	const n, byz = 8, 3
	d := newDeployment(t, n, byz, 3, false)
	attacker := baseline.NewEquivocator(d.Peers[0], val(0xA1), val(0xB2))
	d.Peers[0].Start(attacker, byz+1)
	protos := make([]*baseline.Strawman, n)
	for i := 1; i < n; i++ {
		protos[i] = baseline.NewStrawman(d.Peers[i], 0)
		d.Peers[i].Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	values := make(map[wire.Value]int)
	for i := 1; i < n; i++ {
		res, ok := protos[i].Result()
		if ok && res.Accepted {
			values[res.Value]++
		}
	}
	if len(values) < 2 {
		t.Fatalf("equivocation did not split the strawman (accepted values: %v)", values)
	}
}

func runRBsigGroupless(t *testing.T, d *baseline.Deployment, initiator wire.NodeID, input *wire.Value, skip map[wire.NodeID]baseline.Proto) []*baseline.RBsig {
	t.Helper()
	protos := make([]*baseline.RBsig, len(d.Peers))
	for i, p := range d.Peers {
		if alt, ok := skip[wire.NodeID(i)]; ok {
			p.Start(alt, d.Opts.T+1)
			continue
		}
		protos[i] = baseline.NewRBsig(p, initiator)
		if wire.NodeID(i) == initiator && input != nil {
			protos[i].SetInput(*input)
		}
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	return protos
}

func TestRBsigHonestAllAccept(t *testing.T) {
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 4, true)
	input := val(0x22)
	protos := runRBsigGroupless(t, d, 0, &input, nil)
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.Accepted || res.Value != val(0x22) {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
	}
}

func TestRBsigSilentInitiatorBottom(t *testing.T) {
	const n, byz = 5, 2
	d := newDeployment(t, n, byz, 5, true)
	protos := runRBsigGroupless(t, d, 0, nil, nil)
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || res.Accepted {
			t.Fatalf("peer %d: %+v ok=%v, want bottom", i, res, ok)
		}
	}
}

// rbsigEquivocator signs two different values and sends each to half the
// network — the classic attack that signatures DEFEAT: honest nodes see
// both signed values and jointly output bottom (agreement preserved).
type rbsigEquivocator struct {
	peer *baseline.Peer
	a, b wire.Value
}

func (e *rbsigEquivocator) OnRound(rnd uint32) {
	if rnd != 1 {
		return
	}
	for id := 0; id < e.peer.N(); id++ {
		dst := wire.NodeID(id)
		if dst == e.peer.ID() {
			continue
		}
		v := e.a
		if id%2 == 1 {
			v = e.b
		}
		sig, err := e.peer.Sign(baseline.ChainBody(e.peer.ID(), v, nil))
		if err != nil {
			return
		}
		msg := &wire.Message{
			Type:      wire.TypeSigRelay,
			Sender:    e.peer.ID(),
			Initiator: e.peer.ID(),
			Round:     rnd,
			HasValue:  true,
			Value:     v,
			Sigs:      []wire.SigEntry{{Signer: e.peer.ID(), Signature: sig}},
		}
		_ = e.peer.Send(dst, msg)
	}
}

func (e *rbsigEquivocator) OnMessage(wire.NodeID, *wire.Message) {}
func (e *rbsigEquivocator) OnFinish()                            {}

func TestRBsigEquivocationYieldsCommonBottom(t *testing.T) {
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 6, true)
	attacker := &rbsigEquivocator{peer: d.Peers[0], a: val(0xA1), b: val(0xB2)}
	protos := runRBsigGroupless(t, d, 0, nil, map[wire.NodeID]baseline.Proto{0: attacker})
	for i := 1; i < n; i++ {
		res, ok := protos[i].Result()
		if !ok {
			t.Fatalf("peer %d undecided", i)
		}
		if res.Accepted {
			t.Fatalf("peer %d accepted %v despite equivocation; signature chains should force bottom", i, res.Value)
		}
	}
}

// rbsigForger tries to inject a value with a forged initiator signature.
type rbsigForger struct {
	peer   *baseline.Peer
	victim wire.NodeID
}

func (f *rbsigForger) OnRound(rnd uint32) {
	if rnd != 1 {
		return
	}
	// Sign with own key but claim the victim initiated: chain[0].Signer =
	// victim, signature by us -> must fail verification everywhere.
	v := val(0xEE)
	sig, err := f.peer.Sign(baseline.ChainBody(f.victim, v, nil))
	if err != nil {
		return
	}
	msg := &wire.Message{
		Type:      wire.TypeSigRelay,
		Sender:    f.peer.ID(),
		Initiator: f.victim,
		Round:     rnd,
		HasValue:  true,
		Value:     v,
		Sigs:      []wire.SigEntry{{Signer: f.victim, Signature: sig}},
	}
	_ = f.peer.Multicast(nil, msg)
}

func (f *rbsigForger) OnMessage(wire.NodeID, *wire.Message) {}
func (f *rbsigForger) OnFinish()                            {}

func TestRBsigForgeryRejected(t *testing.T) {
	const n, byz = 5, 2
	d := newDeployment(t, n, byz, 7, true)
	attacker := &rbsigForger{peer: d.Peers[1], victim: 0}
	protos := runRBsigGroupless(t, d, 0, nil, map[wire.NodeID]baseline.Proto{1: attacker})
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		res, ok := protos[i].Result()
		if !ok {
			t.Fatalf("peer %d undecided", i)
		}
		if res.Accepted {
			t.Fatalf("peer %d accepted a forged broadcast", i)
		}
	}
}

func TestRBearlyHonestEarlyStop(t *testing.T) {
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 8, false)
	protos := make([]*baseline.RBearly, n)
	for i, p := range d.Peers {
		protos[i] = baseline.NewRBearly(p, 0)
		if i == 0 {
			protos[i].SetInput(val(0x33))
		}
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.Accepted || res.Value != val(0x33) {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
		if res.Round > 2 {
			t.Fatalf("peer %d decided in round %d, want <= 2 (early stopping)", i, res.Round)
		}
	}
}

func TestRBearlySilentInitiatorEarlyBottom(t *testing.T) {
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 9, false)
	protos := make([]*baseline.RBearly, n)
	for i, p := range d.Peers {
		protos[i] = baseline.NewRBearly(p, 0)
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		res, ok := protos[i].Result()
		if !ok || res.Accepted {
			t.Fatalf("peer %d: %+v ok=%v, want bottom", i, res, ok)
		}
		if res.Round > 3 {
			t.Fatalf("peer %d decided bottom in round %d, want early", i, res.Round)
		}
	}
}

func TestSigRNGHonestAgreement(t *testing.T) {
	const n, byz = 5, 2
	d := newDeployment(t, n, byz, 10, true)
	rng := rand.New(rand.NewSource(11))
	coins := make([]wire.Value, n)
	var want wire.Value
	for i := range coins {
		coins[i] = randomValue(rng)
		want = want.XOR(coins[i])
	}
	protos := make([]*baseline.SigRNG, n)
	for i, p := range d.Peers {
		protos[i] = baseline.NewSigRNG(p, coins[i])
		p.Start(protos[i], protos[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pr := range protos {
		res, ok := pr.Result()
		if !ok || !res.OK {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
		if res.Value != want {
			t.Fatalf("peer %d output %v, want XOR of all coins %v", i, res.Value, want)
		}
		if len(res.Contributors) != n {
			t.Fatalf("peer %d contributors %v", i, res.Contributors)
		}
	}
}

func TestSigRNGLookAheadBias(t *testing.T) {
	// The headline negative result for signature-based RNG: a byzantine
	// node with one colluder forces the output to an arbitrary target.
	const n, byz = 7, 3
	d := newDeployment(t, n, byz, 12, true)
	target := val(0xD7)
	attackerID, colluderID := wire.NodeID(0), wire.NodeID(1)
	attacker := baseline.NewLookAheadAttacker(d.Peers[0], colluderID, d.Keys[colluderID], target)
	rng := rand.New(rand.NewSource(13))
	protos := make([]*baseline.SigRNG, n)
	for i, p := range d.Peers {
		switch wire.NodeID(i) {
		case attackerID:
			p.Start(attacker, byz+1)
		case colluderID:
			p.Start(baseline.Silent{}, byz+1)
		default:
			protos[i] = baseline.NewSigRNG(p, randomValue(rng))
			p.Start(protos[i], protos[i].Rounds())
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < n; i++ {
		res, ok := protos[i].Result()
		if !ok || !res.OK {
			t.Fatalf("peer %d: %+v ok=%v", i, res, ok)
		}
		if res.Value != target {
			t.Fatalf("peer %d output %v, attacker wanted %v — look-ahead bias failed?", i, res.Value, target)
		}
	}
}

func TestRBearlyTrafficCubicUnderOmissionChain(t *testing.T) {
	// Table 1's separation: with f ~ N/4 omission-faulty nodes forming a
	// delay chain, RBearly keeps every undecided node announcing for ~f
	// rounds => ~f*N^2 ~ N^3 messages, while ERB stays ~2N^2 in the same
	// scenario thanks to halt-on-divergence (Appendix B.2's argument).
	// Doubling N should multiply RBearly's message count by ~8.
	sizes := []int{8, 16, 32}
	msgs := make([]float64, len(sizes))
	for k, n := range sizes {
		byz := (n - 1) / 2
		f := n / 4
		chain := make([]wire.NodeID, f)
		for i := range chain {
			chain[i] = wire.NodeID(i)
		}
		d, err := baseline.NewDeployment(baseline.DeployOptions{
			N: n, T: byz, Seed: 14,
			Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
				if int(id) >= f {
					return tr
				}
				return adversary.Wrap(id, tr, adversary.Chain(chain, int(id), wire.NodeID(f)), int64(id))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		protos := make([]*baseline.RBearly, n)
		d.Net.ResetTraffic()
		for i, p := range d.Peers {
			protos[i] = baseline.NewRBearly(p, 0)
			if i == 0 {
				protos[i].SetInput(val(0x77))
			}
			p.Start(protos[i], protos[i].Rounds())
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		msgs[k] = float64(d.Net.Traffic().Messages)
	}
	r1 := msgs[1] / msgs[0]
	r2 := msgs[2] / msgs[1]
	if r1 < 5.5 || r2 < 5.5 {
		t.Fatalf("RBearly message growth ratios %.1f, %.1f too low for cubic growth (%v)", r1, r2, msgs)
	}
}

func TestRBsigTrafficAboveQuadraticBytes(t *testing.T) {
	// Even in the honest case, RBsig's signature chains make its byte
	// volume grow faster than plain quadratic (the worst case with
	// byzantine-injected values is O(N^3)).
	sizes := []int{8, 16, 32}
	bytes := make([]float64, len(sizes))
	for k, n := range sizes {
		byz := (n - 1) / 2
		d := newDeployment(t, n, byz, 14, true)
		input := val(0x77)
		d.Net.ResetTraffic()
		runRBsigGroupless(t, d, 0, &input, nil)
		bytes[k] = float64(d.Net.Traffic().Bytes)
	}
	r1 := bytes[1] / bytes[0]
	r2 := bytes[2] / bytes[1]
	if r1 < 4.1 || r2 < 4.1 {
		t.Fatalf("RBsig byte growth ratios %.1f, %.1f not above quadratic (%v)", r1, r2, bytes)
	}
}
