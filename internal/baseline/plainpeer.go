// Package baseline implements the comparator protocols the paper measures
// ERB and ERNG against, in the models they were designed for:
//
//   - Strawman (Algorithm 1): broadcast-based random number agreement with
//     no authentication at all. It is included to demonstrate the attacks
//     of Section 2.3 — equivocation breaks agreement, look-ahead biases
//     the output — which ERB/ERNG close.
//   - RBsig (Algorithm 4 / Appendix B.1): reliable broadcast with digital
//     signature chains in the byzantine model (Dolev-Strong style):
//     tolerant to forgery, t+1 rounds, O(N^3) communication.
//   - RBearly (Algorithm 5 / Appendix B.2): early-stopping broadcast in
//     the general-omission model (Perry-Toueg style): min{f+2, t+1}
//     rounds but O(N^3) communication because every node announces its
//     state every round.
//   - SigRNG: the broadcast-everyone's-coin RNG built on RBsig (the
//     Table 2 stand-in for signature-based RNG protocols): O(N^4)
//     communication and vulnerable to last-mover bias, which the bias
//     experiment demonstrates.
//
// Baseline peers are *not* enclaved: they exchange plain (optionally
// signed) wire messages, so byzantine nodes can equivocate and forge
// whatever their keys allow — exactly the power the paper's SGX
// construction removes.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Proto is the protocol interface for baseline peers. Unlike the enclaved
// runtime, the source id is passed explicitly: there is no authenticated
// channel, the transport's claim is all a node gets.
type Proto interface {
	OnRound(rnd uint32)
	OnMessage(src wire.NodeID, msg *wire.Message)
	OnFinish()
}

// Roster holds the verification keys of all peers (the pre-established
// PKI assumption of the signature-based protocols).
type Roster struct {
	Keys []xcrypto.VerifyKey
}

// Peer is a plain, non-enclaved peer: lockstep rounds over a transport,
// no sealing. Byzantine behaviour is expressed by running a different
// Proto — the full byzantine model.
type Peer struct {
	id     wire.NodeID
	n, t   int
	delta  time.Duration
	tr     runtime.Transport
	roster Roster
	sk     *xcrypto.SigningKey

	proto   Proto
	rounds  uint32
	round   uint32
	started bool
}

// NewPeer builds a baseline peer. sk may be nil for unsigned protocols.
//
//lint:allow keyleak the baseline is the paper's non-TEE comparison; signing keys live outside any enclave by definition
func NewPeer(id wire.NodeID, n, t int, delta time.Duration, tr runtime.Transport, roster Roster, sk *xcrypto.SigningKey) (*Peer, error) {
	if tr == nil {
		return nil, errors.New("baseline: nil transport")
	}
	if n < 2 || t < 0 || t >= n {
		return nil, fmt.Errorf("baseline: invalid sizes n=%d t=%d", n, t)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("baseline: invalid delta %v", delta)
	}
	if len(roster.Keys) != 0 && len(roster.Keys) != n {
		return nil, fmt.Errorf("baseline: roster has %d keys, want %d", len(roster.Keys), n)
	}
	p := &Peer{id: id, n: n, t: t, delta: delta, tr: tr, roster: roster, sk: sk}
	tr.SetHandler(p.receive)
	return p, nil
}

// ID returns the peer id.
func (p *Peer) ID() wire.NodeID { return p.id }

// N returns the network size.
func (p *Peer) N() int { return p.n }

// T returns the fault bound.
func (p *Peer) T() int { return p.t }

// Round returns the current round.
func (p *Peer) Round() uint32 { return p.round }

// Now returns the transport time.
func (p *Peer) Now() time.Duration { return p.tr.Now() }

// Key returns the verification key of a peer, or false when no PKI was
// configured.
func (p *Peer) Key(id wire.NodeID) (xcrypto.VerifyKey, bool) {
	if len(p.roster.Keys) == 0 || int(id) >= len(p.roster.Keys) {
		return xcrypto.VerifyKey{}, false
	}
	return p.roster.Keys[id], true
}

// Sign signs bytes with the peer's own key.
func (p *Peer) Sign(data []byte) ([]byte, error) {
	if p.sk == nil {
		return nil, errors.New("baseline: peer has no signing key")
	}
	return p.sk.Sign(data), nil
}

// Start begins a run of the protocol for the given number of rounds.
func (p *Peer) Start(proto Proto, rounds int) {
	p.proto = proto
	p.rounds = uint32(rounds)
	p.round = 0
	p.started = true
	p.scheduleTick(1, p.tr.Now())
}

func (p *Peer) scheduleTick(rnd uint32, start time.Duration) {
	delay := start + time.Duration(rnd-1)*2*p.delta - p.tr.Now()
	p.tr.After(delay, func() { p.tick(rnd, start) })
}

func (p *Peer) tick(rnd uint32, start time.Duration) {
	if !p.started {
		return
	}
	if rnd > p.rounds {
		p.proto.OnFinish()
		return
	}
	p.round = rnd
	p.proto.OnRound(rnd)
	p.scheduleTick(rnd+1, start)
}

// Send encodes and transmits a message to one peer.
func (p *Peer) Send(dst wire.NodeID, msg *wire.Message) error {
	data, err := msg.Encode()
	if err != nil {
		return err
	}
	//lint:allow sealflow the baseline peer sends unsealed plaintext by design — it models the paper's non-TEE comparison point
	p.tr.Send(dst, data)
	return nil
}

// Multicast sends to every other peer (or an explicit destination list).
func (p *Peer) Multicast(dsts []wire.NodeID, msg *wire.Message) error {
	if dsts == nil {
		for id := 0; id < p.n; id++ {
			if wire.NodeID(id) == p.id {
				continue
			}
			if err := p.Send(wire.NodeID(id), msg); err != nil {
				return err
			}
		}
		return nil
	}
	for _, dst := range dsts {
		if dst == p.id {
			continue
		}
		if err := p.Send(dst, msg); err != nil {
			return err
		}
	}
	return nil
}

// receive decodes and forwards deliveries. Undecodable payloads are
// dropped; there is no authenticity check — that is the point of the
// baseline model.
func (p *Peer) receive(src wire.NodeID, payload []byte) {
	if !p.started || p.proto == nil {
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	p.proto.OnMessage(src, msg)
}
