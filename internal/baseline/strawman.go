package baseline

import (
	"time"

	"sgxp2p/internal/wire"
)

// StrawmanResult is the outcome of a strawman run at one node.
type StrawmanResult struct {
	Accepted bool
	Value    wire.Value
	Round    uint32
	At       time.Duration
}

// Strawman is Algorithm 1: the unauthenticated broadcast used for
// distributed random number generation. An initiator multicasts INIT(m);
// receivers echo; a node accepts m once it has seen echoes from N-t
// distinct nodes. Without authentication or freshness it is vulnerable to
// every attack of Section 2.3; the tests and the bias experiment exploit
// that deliberately.
type Strawman struct {
	peer      *Peer
	initiator wire.NodeID
	input     *wire.Value

	value    wire.Value
	hasValue bool
	sm       map[wire.NodeID]bool
	queued   bool
	echoed   bool
	decided  bool
	result   StrawmanResult
}

var _ Proto = (*Strawman)(nil)

// NewStrawman builds the protocol for one initiator's broadcast.
func NewStrawman(peer *Peer, initiator wire.NodeID) *Strawman {
	return &Strawman{
		peer:      peer,
		initiator: initiator,
		sm:        make(map[wire.NodeID]bool, peer.N()),
	}
}

// SetInput provides the initiator's value m.
func (s *Strawman) SetInput(v wire.Value) { s.input = &v }

// Rounds returns the protocol length: t+1 rounds (Algorithm 1).
func (s *Strawman) Rounds() int { return s.peer.T() + 1 }

// Result returns the node's decision.
func (s *Strawman) Result() (StrawmanResult, bool) { return s.result, s.decided }

// OnRound implements Proto.
func (s *Strawman) OnRound(rnd uint32) {
	if s.queued && !s.echoed {
		s.echoed = true
		s.queued = false
		msg := &wire.Message{
			Type:      wire.TypeStrawEcho,
			Sender:    s.peer.ID(),
			Initiator: s.initiator,
			Round:     rnd,
			HasValue:  true,
			Value:     s.value,
		}
		_ = s.peer.Multicast(nil, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
	}
	if rnd == 1 && s.peer.ID() == s.initiator && s.input != nil {
		s.value = *s.input
		s.hasValue = true
		s.echoed = true
		s.sm[s.peer.ID()] = true
		msg := &wire.Message{
			Type:      wire.TypeStrawInit,
			Sender:    s.peer.ID(),
			Initiator: s.initiator,
			Round:     rnd,
			HasValue:  true,
			Value:     s.value,
		}
		_ = s.peer.Multicast(nil, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
	}
}

// OnMessage implements Proto. Note what is missing compared to ERB: no
// authenticity, no freshness, no round validation — the strawman trusts
// whatever arrives, which is why equivocation splits it.
func (s *Strawman) OnMessage(src wire.NodeID, msg *wire.Message) {
	if msg.Initiator != s.initiator || !msg.HasValue || s.decided {
		return
	}
	switch msg.Type {
	case wire.TypeStrawInit:
		if src != s.initiator {
			return
		}
		if !s.hasValue {
			s.value = msg.Value
			s.hasValue = true
			s.sm[s.peer.ID()] = true
			s.queued = true
		}
		s.sm[src] = true
	case wire.TypeStrawEcho:
		if !s.hasValue {
			s.value = msg.Value
			s.hasValue = true
			s.sm[s.peer.ID()] = true
			s.queued = true
		}
		// First value wins; later conflicting echoes still count toward
		// the accept threshold — the agreement hole A2 exploits.
		s.sm[src] = true
	default:
		return
	}
	if len(s.sm) >= s.peer.N()-s.peer.T() && s.hasValue {
		s.decided = true
		s.result = StrawmanResult{
			Accepted: true,
			Value:    s.value,
			Round:    s.peer.Round(),
			At:       s.peer.Now(),
		}
	}
}

// OnFinish implements Proto.
func (s *Strawman) OnFinish() {
	if s.decided {
		return
	}
	s.decided = true
	s.result = StrawmanResult{Round: s.peer.Round(), At: s.peer.Now()}
}

// Equivocator is the byzantine strawman initiator of attack A2: it sends
// value A to the first half of the network and value B to the second
// half, then echoes consistently with whichever victim asks — splitting
// honest nodes into two accepting camps and violating agreement.
type Equivocator struct {
	peer *Peer
	a, b wire.Value
}

var _ Proto = (*Equivocator)(nil)

// NewEquivocator builds the attacker; it must run at the initiator.
func NewEquivocator(peer *Peer, a, b wire.Value) *Equivocator {
	return &Equivocator{peer: peer, a: a, b: b}
}

// OnRound implements Proto: round 1 sends A to even peers, B to odd ones,
// plus a follow-up echo wave to push both camps over the threshold.
func (e *Equivocator) OnRound(rnd uint32) {
	if rnd > 2 {
		return
	}
	typ := wire.TypeStrawInit
	if rnd == 2 {
		typ = wire.TypeStrawEcho
	}
	for id := 0; id < e.peer.N(); id++ {
		dst := wire.NodeID(id)
		if dst == e.peer.ID() {
			continue
		}
		v := e.a
		if id%2 == 1 {
			v = e.b
		}
		msg := &wire.Message{
			Type:      typ,
			Sender:    e.peer.ID(),
			Initiator: e.peer.ID(),
			Round:     rnd,
			HasValue:  true,
			Value:     v,
		}
		_ = e.peer.Send(dst, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
	}
}

// OnMessage implements Proto (the attacker ignores inbound traffic).
func (e *Equivocator) OnMessage(wire.NodeID, *wire.Message) {}

// OnFinish implements Proto.
func (e *Equivocator) OnFinish() {}
