package baseline

import (
	"encoding/binary"
	"time"

	"sgxp2p/internal/wire"
)

// RBsigResult is the outcome of an RBsig instance at one node.
type RBsigResult struct {
	// Accepted is false when the node output bottom (initiator silent or
	// caught equivocating).
	Accepted bool
	Value    wire.Value
	Round    uint32
	At       time.Duration
}

// RBsig is the signature-chain reliable broadcast of Algorithm 4
// (Appendix B.1), in the byzantine model with a pre-established PKI: a
// value is valid in round r only when it carries r distinct signatures
// starting with the initiator's. Every newly seen value is re-signed and
// relayed, giving O(N^3) communication; after t+1 rounds a node accepts
// the unique value seen, or bottom if zero or several.
//
// One RBsig tracks a single initiator's broadcast; SigRNG composes N of
// them.
type RBsig struct {
	peer      *Peer
	initiator wire.NodeID
	input     *wire.Value

	seen    map[wire.Value][]wire.SigEntry // value -> first valid chain
	relayQ  []*wire.Message                // relays queued for next round
	decided bool
	result  RBsigResult
}

var _ Proto = (*RBsig)(nil)

// NewRBsig builds the protocol for one initiator's broadcast.
func NewRBsig(peer *Peer, initiator wire.NodeID) *RBsig {
	return &RBsig{
		peer:      peer,
		initiator: initiator,
		seen:      make(map[wire.Value][]wire.SigEntry, 2),
	}
}

// SetInput provides the initiator's value.
func (r *RBsig) SetInput(v wire.Value) { r.input = &v }

// Rounds returns the protocol length: t+1.
func (r *RBsig) Rounds() int { return r.peer.T() + 1 }

// Result returns the node's decision.
func (r *RBsig) Result() (RBsigResult, bool) { return r.result, r.decided }

// ChainBody returns the byte string signer k signs: the initiator, the
// value, and the chain accumulated so far. Exported for attack protocols
// in tests and the bias experiment.
func ChainBody(initiator wire.NodeID, v wire.Value, chain []wire.SigEntry) []byte {
	body := make([]byte, 0, 8+wire.ValueSize+len(chain)*80)
	body = append(body, "rbsig/"...)
	body = binary.LittleEndian.AppendUint32(body, uint32(initiator))
	body = append(body, v[:]...)
	for _, e := range chain {
		body = binary.LittleEndian.AppendUint32(body, uint32(e.Signer))
		body = append(body, e.Signature...)
	}
	return body
}

// OnRound implements Proto.
func (r *RBsig) OnRound(rnd uint32) {
	// Flush relays queued during the previous round.
	relays := r.relayQ
	r.relayQ = nil
	for _, msg := range relays {
		msg.Round = rnd
		r.multicastOutsideChain(msg)
	}
	if rnd == 1 && r.peer.ID() == r.initiator && r.input != nil {
		v := *r.input
		sig, err := r.peer.Sign(ChainBody(r.initiator, v, nil))
		if err != nil {
			return
		}
		msg := &wire.Message{
			Type:      wire.TypeSigRelay,
			Sender:    r.peer.ID(),
			Initiator: r.initiator,
			Round:     rnd,
			HasValue:  true,
			Value:     v,
			Sigs:      []wire.SigEntry{{Signer: r.initiator, Signature: sig}},
		}
		r.seen[v] = msg.Sigs
		_ = r.peer.Multicast(nil, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
	}
}

// multicastOutsideChain relays to every node that has not already signed.
func (r *RBsig) multicastOutsideChain(msg *wire.Message) {
	inChain := make(map[wire.NodeID]bool, len(msg.Sigs))
	for _, e := range msg.Sigs {
		inChain[e.Signer] = true
	}
	var dsts []wire.NodeID
	for id := 0; id < r.peer.N(); id++ {
		nid := wire.NodeID(id)
		if nid == r.peer.ID() || inChain[nid] {
			continue
		}
		dsts = append(dsts, nid)
	}
	_ = r.peer.Multicast(dsts, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
}

// OnMessage implements Proto: verify the chain, record new values, queue a
// re-signed relay.
func (r *RBsig) OnMessage(src wire.NodeID, msg *wire.Message) {
	if msg.Type != wire.TypeSigRelay || msg.Initiator != r.initiator || !msg.HasValue {
		return
	}
	rnd := r.peer.Round()
	if !r.validChain(msg, rnd) {
		return
	}
	if _, ok := r.seen[msg.Value]; ok {
		return // value already known: Algorithm 4 relays each value once
	}
	r.seen[msg.Value] = msg.Sigs
	if int(rnd) >= r.Rounds() {
		return // no round left to relay in
	}
	// Append our signature and queue the relay for the next round.
	sig, err := r.peer.Sign(ChainBody(r.initiator, msg.Value, msg.Sigs))
	if err != nil {
		return // unsigned peers cannot relay
	}
	relay := msg.Clone()
	relay.Sender = r.peer.ID()
	relay.Sigs = append(relay.Sigs, wire.SigEntry{Signer: r.peer.ID(), Signature: sig})
	r.relayQ = append(r.relayQ, relay)
}

// validChain checks the Dolev-Strong chain conditions: exactly rnd
// signatures, the first by the initiator, all signers distinct, the local
// node not among them, and every signature verifying over the prefix.
func (r *RBsig) validChain(msg *wire.Message, rnd uint32) bool {
	chain := msg.Sigs
	if len(chain) == 0 || uint32(len(chain)) != rnd {
		return false
	}
	if chain[0].Signer != r.initiator {
		return false
	}
	distinct := make(map[wire.NodeID]bool, len(chain))
	for i, e := range chain {
		if distinct[e.Signer] || e.Signer == r.peer.ID() {
			return false
		}
		distinct[e.Signer] = true
		key, ok := r.peer.Key(e.Signer)
		if !ok {
			return false
		}
		if err := key.Verify(ChainBody(r.initiator, msg.Value, chain[:i]), e.Signature); err != nil {
			return false
		}
	}
	return true
}

// OnFinish implements Proto: accept the unique seen value or bottom.
func (r *RBsig) OnFinish() {
	if r.decided {
		return
	}
	r.decided = true
	r.result = RBsigResult{Round: r.peer.Round(), At: r.peer.Now()}
	if len(r.seen) == 1 {
		for v := range r.seen {
			r.result.Accepted = true
			r.result.Value = v
		}
	}
}

// RBsigGroup runs one RBsig instance per expected initiator on a single
// peer, demultiplexing by msg.Initiator — the building block of SigRNG.
type RBsigGroup struct {
	peer      *Peer
	instances map[wire.NodeID]*RBsig
}

var _ Proto = (*RBsigGroup)(nil)

// NewRBsigGroup builds a group tracking all N initiators.
func NewRBsigGroup(peer *Peer) *RBsigGroup {
	g := &RBsigGroup{peer: peer, instances: make(map[wire.NodeID]*RBsig, peer.N())}
	for id := 0; id < peer.N(); id++ {
		g.instances[wire.NodeID(id)] = NewRBsig(peer, wire.NodeID(id))
	}
	return g
}

// SetInput provides this node's own broadcast value.
func (g *RBsigGroup) SetInput(v wire.Value) {
	g.instances[g.peer.ID()].SetInput(v)
}

// Rounds returns the group length (t+1).
func (g *RBsigGroup) Rounds() int { return g.peer.T() + 1 }

// Instance exposes one tracked instance.
func (g *RBsigGroup) Instance(id wire.NodeID) *RBsig { return g.instances[id] }

// OnRound implements Proto.
func (g *RBsigGroup) OnRound(rnd uint32) {
	for id := 0; id < g.peer.N(); id++ {
		g.instances[wire.NodeID(id)].OnRound(rnd)
	}
}

// OnMessage implements Proto.
func (g *RBsigGroup) OnMessage(src wire.NodeID, msg *wire.Message) {
	if inst, ok := g.instances[msg.Initiator]; ok {
		inst.OnMessage(src, msg)
	}
}

// OnFinish implements Proto.
func (g *RBsigGroup) OnFinish() {
	for _, inst := range g.instances {
		inst.OnFinish()
	}
}
