package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"sgxp2p/internal/parallel"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/simnet"
	"sgxp2p/internal/vclock"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// DeployOptions configures a baseline deployment.
type DeployOptions struct {
	// N is the network size, T the fault bound of the target protocol.
	N, T int
	// Delta is the delivery bound; rounds last 2*Delta. Defaults to 1s.
	Delta time.Duration
	// Bandwidth is the shared-link bandwidth (0 = unlimited).
	Bandwidth float64
	// Seed drives key generation and network jitter deterministically.
	Seed int64
	// PKI enables per-node Ed25519 keys (required by RBsig/SigRNG).
	PKI bool
	// Wrap, when non-nil, wraps each node's transport (omission-fault /
	// adversary injection, as in deploy.Options.Wrap).
	Wrap func(id wire.NodeID, tr runtime.Transport) runtime.Transport
	// Workers bounds the goroutines used for per-node key generation
	// (0 = GOMAXPROCS, 1 = serial), as in deploy.Options.Workers. Each
	// node's key derives from its own seeded RNG, so the deployment is
	// identical for any worker count.
	Workers int
}

// Deployment is a simulated network of plain (non-enclaved) peers.
type Deployment struct {
	Sim   *vclock.Sim
	Net   *simnet.Network
	Peers []*Peer
	// Keys holds each node's signing key when PKI is enabled. Exposed so
	// attack protocols can model collusion (key sharing).
	Keys []*xcrypto.SigningKey
	Opts DeployOptions
}

// NewDeployment builds a baseline deployment over the simulated network.
//
//lint:allow keyleak the baseline is the paper's non-TEE comparison; signing keys live outside any enclave by definition
func NewDeployment(opts DeployOptions) (*Deployment, error) {
	if opts.Delta <= 0 {
		opts.Delta = time.Second
	}
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{
		N:         opts.N,
		Delta:     opts.Delta,
		Bandwidth: opts.Bandwidth,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: network: %w", err)
	}
	d := &Deployment{Sim: sim, Net: net, Opts: opts}
	var roster Roster
	if opts.PKI {
		d.Keys = make([]*xcrypto.SigningKey, opts.N)
		roster.Keys = make([]xcrypto.VerifyKey, opts.N)
		err := parallel.ForEach(opts.N, opts.Workers, func(i int) error {
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(i+1)*0x51ED))
			key, kerr := xcrypto.GenerateSigningKey(rng)
			if kerr != nil {
				return fmt.Errorf("baseline: key %d: %w", i, kerr)
			}
			d.Keys[i] = key
			roster.Keys[i] = key.VerifyKey()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	d.Peers = make([]*Peer, opts.N)
	for i := 0; i < opts.N; i++ {
		var sk *xcrypto.SigningKey
		if opts.PKI {
			sk = d.Keys[i]
		}
		var tr runtime.Transport = net.Port(wire.NodeID(i))
		if opts.Wrap != nil {
			tr = opts.Wrap(wire.NodeID(i), tr)
		}
		p, err := NewPeer(wire.NodeID(i), opts.N, opts.T, opts.Delta, tr, roster, sk)
		if err != nil {
			return nil, fmt.Errorf("baseline: peer %d: %w", i, err)
		}
		d.Peers[i] = p
	}
	return d, nil
}

// Run drains the simulation.
func (d *Deployment) Run() error { return d.Sim.Run() }
