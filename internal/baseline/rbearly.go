package baseline

import (
	"time"

	"sgxp2p/internal/wire"
)

// earlyState is the three-valued state of Algorithm 5: unknown ("?"),
// bottom, or a concrete value.
type earlyState int

const (
	stateUnknown earlyState = iota
	stateBottom
	stateValue
)

// earlyStateByte encodes the state into Value[0] when HasValue is false.
const (
	earlyByteUnknown byte = 0
	earlyByteBottom  byte = 1
)

// RBearlyResult is the outcome of an RBearly run at one node.
type RBearlyResult struct {
	Accepted bool
	Value    wire.Value
	Round    uint32
	At       time.Duration
}

// RBearly is the early-stopping reliable broadcast of Algorithm 5
// (Appendix B.2), the Perry-Toueg protocol for the general-omission
// model: every node announces its current state every round, silent nodes
// accumulate in the QUIET set, and a node decides bottom once the round
// number exceeds |QUIET| — terminating in min{f+2, t+1} rounds at the
// cost of O(N^3) communication. The paper's Appendix B.2 uses it to show
// where the halt-on-divergence property saves a factor N.
type RBearly struct {
	peer      *Peer
	initiator wire.NodeID
	input     *wire.Value

	state     earlyState
	value     wire.Value
	quiet     map[wire.NodeID]bool
	heardThis map[wire.NodeID]bool // senders heard during the current round
	gotValue  *wire.Value          // value received during the current round
	decided   bool
	halted    bool
	result    RBearlyResult
}

var _ Proto = (*RBearly)(nil)

// NewRBearly builds the protocol for one initiator's broadcast.
func NewRBearly(peer *Peer, initiator wire.NodeID) *RBearly {
	return &RBearly{
		peer:      peer,
		initiator: initiator,
		quiet:     make(map[wire.NodeID]bool, peer.N()),
		heardThis: make(map[wire.NodeID]bool, peer.N()),
	}
}

// SetInput provides the initiator's value.
func (r *RBearly) SetInput(v wire.Value) { r.input = &v }

// Rounds returns the protocol length: t+1.
func (r *RBearly) Rounds() int { return r.peer.T() + 1 }

// Result returns the node's decision.
func (r *RBearly) Result() (RBearlyResult, bool) { return r.result, r.decided }

// OnRound implements Proto.
func (r *RBearly) OnRound(rnd uint32) {
	if r.halted {
		return
	}
	if rnd == 1 {
		if r.peer.ID() == r.initiator {
			if r.input == nil {
				r.halted = true
				return
			}
			// The initiator multicasts m, accepts it and halts.
			r.value = *r.input
			r.state = stateValue
			r.decide(true, r.value, rnd)
			r.broadcastState(rnd)
			r.halted = true
			return
		}
		// Non-initiators announce "?" so QUIET tracking starts immediately.
		r.broadcastState(rnd)
		return
	}

	// Close out the previous round: who stayed silent, what arrived.
	for id := 0; id < r.peer.N(); id++ {
		nid := wire.NodeID(id)
		if nid == r.peer.ID() {
			continue
		}
		if !r.heardThis[nid] {
			r.quiet[nid] = true
		}
	}
	r.heardThis = make(map[wire.NodeID]bool, r.peer.N())

	if r.state == stateUnknown {
		if r.gotValue != nil {
			r.value = *r.gotValue
			r.state = stateValue
			r.decide(true, r.value, rnd)
			r.broadcastState(rnd)
			r.halted = true
			return
		}
		if int(rnd) > len(r.quiet) {
			r.state = stateBottom
			r.decide(false, wire.Value{}, rnd)
			r.broadcastState(rnd)
			r.halted = true
			return
		}
	}
	r.broadcastState(rnd)
}

// broadcastState announces the node's current state to everyone — the
// every-round liveness broadcast that makes the protocol O(N^3).
func (r *RBearly) broadcastState(rnd uint32) {
	msg := &wire.Message{
		Type:      wire.TypeEarlyValue,
		Sender:    r.peer.ID(),
		Initiator: r.initiator,
		Round:     rnd,
	}
	switch r.state {
	case stateValue:
		msg.HasValue = true
		msg.Value = r.value
	case stateBottom:
		msg.Value[0] = earlyByteBottom
	default:
		msg.Value[0] = earlyByteUnknown
	}
	_ = r.peer.Multicast(nil, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
}

// OnMessage implements Proto: record liveness and any concrete value.
func (r *RBearly) OnMessage(src wire.NodeID, msg *wire.Message) {
	if msg.Type != wire.TypeEarlyValue || msg.Initiator != r.initiator || r.halted {
		return
	}
	r.heardThis[src] = true
	if msg.HasValue && r.gotValue == nil {
		v := msg.Value
		r.gotValue = &v
	}
}

// OnFinish implements Proto: anything still undecided is bottom.
func (r *RBearly) OnFinish() {
	if r.decided {
		return
	}
	r.decide(false, wire.Value{}, r.peer.Round())
}

func (r *RBearly) decide(accepted bool, v wire.Value, rnd uint32) {
	if r.decided {
		return
	}
	r.decided = true
	r.result = RBearlyResult{
		Accepted: accepted,
		Value:    v,
		Round:    rnd,
		At:       r.peer.Now(),
	}
}
