package baseline

import (
	"sort"
	"time"

	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// SigRNGResult is the outcome of a SigRNG run at one node.
type SigRNGResult struct {
	OK           bool
	Value        wire.Value
	Contributors []wire.NodeID
	Round        uint32
	At           time.Duration
}

// SigRNG is the signature-based distributed RNG baseline of Table 2:
// every node broadcasts a random coin through RBsig and the output is the
// XOR of the accepted coins. It inherits RBsig's O(N^3)-per-instance cost
// (O(N^4) total) and — crucially — it is biasable: the signature chains
// let a byzantine node inject its coin in round 2, after it has already
// seen every honest coin (the look-ahead attack A4). LookAheadAttacker
// implements exactly that; the bias experiment contrasts it with ERNG,
// where blind-box computation (P3) and lockstep execution (P5) close the
// attack.
type SigRNG struct {
	peer    *Peer
	group   *RBsigGroup
	decided bool
	result  SigRNGResult
}

var _ Proto = (*SigRNG)(nil)

// NewSigRNG builds the protocol; the node's coin is drawn from rng (pass
// a seeded source for reproducible tests).
func NewSigRNG(peer *Peer, coin wire.Value) *SigRNG {
	g := NewRBsigGroup(peer)
	g.SetInput(coin)
	return &SigRNG{peer: peer, group: g}
}

// Rounds returns the protocol length (t+1, the RBsig window).
func (s *SigRNG) Rounds() int { return s.group.Rounds() }

// Result returns the node's decision.
func (s *SigRNG) Result() (SigRNGResult, bool) { return s.result, s.decided }

// OnRound implements Proto.
func (s *SigRNG) OnRound(rnd uint32) { s.group.OnRound(rnd) }

// OnMessage implements Proto.
func (s *SigRNG) OnMessage(src wire.NodeID, msg *wire.Message) { s.group.OnMessage(src, msg) }

// OnFinish implements Proto: XOR the accepted coins.
func (s *SigRNG) OnFinish() {
	s.group.OnFinish()
	if s.decided {
		return
	}
	s.decided = true
	s.result = SigRNGResult{Round: s.peer.Round(), At: s.peer.Now()}
	ids := make([]wire.NodeID, 0, s.peer.N())
	for id := 0; id < s.peer.N(); id++ {
		res, ok := s.group.Instance(wire.NodeID(id)).Result()
		if ok && res.Accepted {
			ids = append(ids, wire.NodeID(id))
			s.result.Value = s.result.Value.XOR(res.Value)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.result.Contributors = ids
	s.result.OK = len(ids) > 0
}

// LookAheadAttacker is the byzantine SigRNG participant of attack A4: it
// withholds its own coin in round 1, reads every honest coin from the
// round-1 broadcasts, then picks its coin so the final XOR equals Target,
// and injects it in round 2 with a two-signature chain co-signed by a
// colluder. In the SGX protocols this is impossible: the coins travel in
// sealed envelopes (P3) and the trusted clock stops late contributions
// (P5); here it succeeds, which the bias experiment quantifies.
type LookAheadAttacker struct {
	peer     *Peer
	colluder wire.NodeID
	colKey   *xcrypto.SigningKey
	target   wire.Value

	seen map[wire.NodeID]wire.Value
}

var _ Proto = (*LookAheadAttacker)(nil)

// NewLookAheadAttacker builds the attacker; colKey is the colluding
// node's signing key (byzantine nodes share keys).
//
//lint:allow keyleak the baseline attacker colludes with leaked signing keys on purpose — that leak is the attack being modeled
func NewLookAheadAttacker(peer *Peer, colluder wire.NodeID, colKey *xcrypto.SigningKey, target wire.Value) *LookAheadAttacker {
	return &LookAheadAttacker{
		peer:     peer,
		colluder: colluder,
		colKey:   colKey,
		target:   target,
		seen:     make(map[wire.NodeID]wire.Value),
	}
}

// OnRound implements Proto. At round 2 the attacker knows all round-1
// coins and commits the correcting coin.
func (a *LookAheadAttacker) OnRound(rnd uint32) {
	if rnd != 2 {
		return
	}
	// coin = target XOR (XOR of every honest coin seen): the final fold
	// over {honest coins} U {coin} then equals target.
	coin := a.target
	for _, v := range a.seen {
		coin = coin.XOR(v)
	}
	sig0, err := a.peer.Sign(ChainBody(a.peer.ID(), coin, nil))
	if err != nil {
		return
	}
	chain := []wire.SigEntry{{Signer: a.peer.ID(), Signature: sig0}}
	sig1 := a.colKey.Sign(ChainBody(a.peer.ID(), coin, chain))
	chain = append(chain, wire.SigEntry{Signer: a.colluder, Signature: sig1})
	msg := &wire.Message{
		Type:      wire.TypeSigRelay,
		Sender:    a.peer.ID(),
		Initiator: a.peer.ID(),
		Round:     rnd,
		HasValue:  true,
		Value:     coin,
		Sigs:      chain,
	}
	_ = a.peer.Multicast(nil, msg) //lint:allow sealerr a halted or partitioned receiver is recorded by the runtime; the sender has nothing further to do this round
}

// OnMessage implements Proto: harvest round-1 coins.
func (a *LookAheadAttacker) OnMessage(src wire.NodeID, msg *wire.Message) {
	if msg.Type != wire.TypeSigRelay || !msg.HasValue {
		return
	}
	if len(msg.Sigs) == 1 && msg.Sigs[0].Signer == msg.Initiator {
		a.seen[msg.Initiator] = msg.Value
	}
}

// OnFinish implements Proto.
func (a *LookAheadAttacker) OnFinish() {}

// Silent is a byzantine participant that does nothing at all (a crashed
// or withholding node); used as the colluder role in attack scenarios.
type Silent struct{}

var _ Proto = Silent{}

// OnRound implements Proto.
func (Silent) OnRound(uint32) {}

// OnMessage implements Proto.
func (Silent) OnMessage(wire.NodeID, *wire.Message) {}

// OnFinish implements Proto.
func (Silent) OnFinish() {}
