package telemetry

import (
	"bytes"
	"testing"
	"time"

	"sgxp2p/internal/wire"
)

// mkEv builds a minimal event for merge tests.
func mkEv(at time.Duration, node wire.NodeID, round uint32, kind Kind) Event {
	return Event{At: at, Node: node, Round: round, Kind: kind, Peer: wire.NoNode}
}

// TestMergeEventsOrdersByTime pins the scenario runner's merge contract:
// per-process streams interleave into one globally time-ordered stream,
// and the result validates (monotone timestamps) when re-serialized.
func TestMergeEventsOrdersByTime(t *testing.T) {
	a := []Event{
		mkEv(10, 0, 1, KindInit),
		mkEv(30, 0, 2, KindDeliver),
		mkEv(50, 0, 3, KindAccept),
	}
	b := []Event{
		mkEv(20, 1, 1, KindDeliver),
		mkEv(40, 1, 2, KindDeliver),
	}
	merged := MergeEvents(a, b)
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("merge not time-ordered at %d: %v after %v", i, merged[i].At, merged[i-1].At)
		}
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, merged); err != nil {
		t.Fatal(err)
	}
	count, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("merged trace does not validate: %v", err)
	}
	if count != 5 {
		t.Fatalf("validated %d events, want 5", count)
	}
}

// TestMergeEventsStable pins tie-breaking: equal timestamps keep
// within-stream order and prefer earlier streams, so two merges of the
// same inputs serialize byte-identically.
func TestMergeEventsStable(t *testing.T) {
	a := []Event{
		mkEv(10, 0, 1, KindInit),
		mkEv(10, 0, 1, KindEcho),
	}
	b := []Event{
		mkEv(10, 1, 1, KindDeliver),
	}
	merged := MergeEvents(a, b)
	want := []Kind{KindInit, KindEcho, KindDeliver}
	for i, k := range want {
		if merged[i].Kind != k {
			t.Fatalf("position %d: got %v, want %v (stable tie-break violated)", i, merged[i].Kind, k)
		}
	}
	var first, second bytes.Buffer
	if err := WriteJSONL(&first, MergeEvents(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&second, MergeEvents(a, b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two merges of the same inputs serialized differently")
	}
}

// TestWriteJSONLMatchesExport pins that the standalone writer produces
// the exact bytes Tracer.ExportJSONL does for the same events.
func TestWriteJSONLMatchesExport(t *testing.T) {
	tr := New(Options{})
	tr.Record(0, 1, KindInit, wire.NoNode, 7, "start")
	tr.RecordInst(1, 2, 3, KindDeliver, 0, 0, "")
	var viaTracer, viaSlice bytes.Buffer
	if err := tr.ExportJSONL(&viaTracer); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&viaSlice, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaTracer.Bytes(), viaSlice.Bytes()) {
		t.Fatalf("WriteJSONL diverges from ExportJSONL:\n%s\nvs\n%s", viaSlice.String(), viaTracer.String())
	}
}
