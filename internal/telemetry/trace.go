package telemetry

import (
	"sync"
	"time"

	"sgxp2p/internal/wire"
)

// DefaultRing is the per-node flight-recorder capacity used when Options
// leaves Ring zero.
const DefaultRing = 64

// Options configures a Tracer.
type Options struct {
	// Clock supplies logical timestamps. Nil is valid — events are stamped
	// 0 until SetClock binds one (deploy.New binds the simulator's clock so
	// callers can construct the tracer before the deployment exists).
	Clock func() time.Duration
	// Ring is the per-node flight-recorder capacity; 0 means DefaultRing.
	Ring int
	// Spans turns on causal-span hop events (KindSeal/KindOpen/
	// KindHandled): the runtime checks SpansEnabled once per peer and
	// records the seal→transit→open→deliver→handle decomposition keyed by
	// the sealed frame's tag. Off by default — span hops roughly double a
	// trace's event volume.
	Spans bool
}

// Tracer records the round-structured event stream of one run. All methods
// are safe on a nil receiver (no-ops) and safe for concurrent use: the
// simulator is single-threaded, but the TCP deployment records from its
// event-loop goroutines.
type Tracer struct {
	mu        sync.Mutex
	clock     func() time.Duration
	ringCap   int
	spans     bool
	events    []Event
	base      uint64 // stream position of events[0]: count of released events
	rings     []*ring
	lastRound []uint32
	hash      uint64
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.Ring <= 0 {
		opts.Ring = DefaultRing
	}
	return &Tracer{clock: opts.Clock, ringCap: opts.Ring, spans: opts.Spans}
}

// SpansEnabled reports whether the tracer wants causal-span hop events.
// Instrumented packages cache this once (per peer) so the off-path cost of
// spans is a single bool test.
func (t *Tracer) SpansEnabled() bool {
	return t != nil && t.spans
}

// SetClock binds the logical clock used to stamp subsequent events.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Record appends one event: node acted in round, kind says what happened,
// peer is the counterparty (wire.NoNode when none), arg and note carry
// kind-specific detail. Events flow into the full stream, the node's
// flight ring, and — for KindRound — the per-node round high-water mark.
func (t *Tracer) Record(node wire.NodeID, round uint32, kind Kind, peer wire.NodeID, arg uint64, note string) {
	t.RecordInst(node, round, 0, kind, peer, arg, note)
}

// RecordInst is Record with an instance attribution: the protocol
// instance the event belongs to (0 = instance-less). The multiplexed
// runtime records every per-message event through this entry point so a
// trace of a thousand concurrent instances can be filtered back apart.
func (t *Tracer) RecordInst(node wire.NodeID, round uint32, instance uint32, kind Kind, peer wire.NodeID, arg uint64, note string) {
	if t == nil {
		return
	}
	t.record(Event{Node: node, Round: round, Kind: kind, Peer: peer, Arg: arg, Note: note, Instance: instance})
}

// RecordSpan is RecordInst with a causal-span attribution: span is the
// sealed frame's channel.FrameTag tying this hop to the same envelope's
// hops in other processes' traces.
func (t *Tracer) RecordSpan(node wire.NodeID, round uint32, instance uint32, kind Kind, peer wire.NodeID, arg uint64, span uint64) {
	if t == nil {
		return
	}
	t.record(Event{Node: node, Round: round, Kind: kind, Peer: peer, Arg: arg, Instance: instance, Span: span})
}

// record stamps the clock and stream sequence, then appends the event to
// the stream, the hash fold, and the node's flight ring.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if t.clock != nil {
		ev.At = t.clock()
	}
	ev.Seq = t.base + uint64(len(t.events)) + 1
	t.events = append(t.events, ev)
	t.hash = foldEvent(t.hash, ev)
	if ev.Node != wire.NoNode {
		i := int(ev.Node)
		for i >= len(t.rings) {
			t.rings = append(t.rings, nil)
			t.lastRound = append(t.lastRound, 0)
		}
		if t.rings[i] == nil {
			t.rings[i] = newRing(t.ringCap)
		}
		t.rings[i].push(ev)
		if ev.Kind == KindRound {
			t.lastRound[i] = ev.Round
		}
	}
	t.mu.Unlock()
}

// Now reads the tracer's logical clock (0 when no clock is bound or the
// tracer is nil). Span instrumentation uses it to measure hop durations
// with the same clock that stamps the events.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	if clock == nil {
		return 0
	}
	return clock()
}

// Span is an in-flight causal hop started by BeginSpan. The zero Span is
// a no-op, so span timing sites stay allocation-free and unconditional.
type Span struct {
	t     *Tracer
	start time.Duration
}

// BeginSpan starts timing one hop. It returns the zero (no-op) Span when
// the tracer is nil or spans are disabled; the caller MUST finish the
// span with Finish — a dropped Span loses the hop (the telemetry lint
// analyzer flags discarded BeginSpan results).
func (t *Tracer) BeginSpan() Span {
	if t == nil || !t.spans {
		return Span{}
	}
	return Span{t: t, start: t.Now()}
}

// Finish records the hop: kind-specific identity as in RecordSpan, with
// Arg = the elapsed logical time since BeginSpan (nanoseconds).
func (s Span) Finish(node wire.NodeID, round uint32, instance uint32, kind Kind, peer wire.NodeID, span uint64) {
	if s.t == nil {
		return
	}
	elapsed := s.t.Now() - s.start
	if elapsed < 0 {
		elapsed = 0
	}
	s.t.record(Event{Node: node, Round: round, Kind: kind, Peer: peer, Arg: uint64(elapsed), Instance: instance, Span: span})
}

// Events returns a snapshot of the retained event stream in record order
// — the full stream unless the owner called Release, in which case only
// the unreleased suffix remains.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	return out
}

// Since returns a snapshot of the events recorded after the first cursor
// ones, in record order. A streaming exporter polls it with a cursor it
// advances by the returned length: each event comes out exactly once, and
// after a reconnect the caller may rewind the cursor and re-send — the
// receiver deduplicates on (stream, Seq) via MergeEvents.
func (t *Tracer) Since(cursor uint64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cursor < t.base {
		cursor = t.base // the rewound prefix was released; resume at the edge
	}
	if cursor >= t.base+uint64(len(t.events)) {
		return nil
	}
	out := make([]Event, t.base+uint64(len(t.events))-cursor)
	copy(out, t.events[cursor-t.base:])
	return out
}

// Release drops the first upto events from the retained stream — the
// memory bound for stream-only runs: once an exporter has shipped a
// prefix (its Since cursor), the tracer need not hold it for an exit
// dump that will never happen. Sequence numbers, the event count and the
// hash all keep counting across released prefixes; only Events() (and
// exports built on it) shrink to the unreleased suffix. A tracer that
// will dump at exit must simply never call Release.
func (t *Tracer) Release(upto uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if upto <= t.base {
		return
	}
	if max := t.base + uint64(len(t.events)); upto > max {
		upto = max
	}
	n := upto - t.base
	kept := copy(t.events, t.events[n:])
	t.events = t.events[:kept]
	t.base = upto
}

// EventCount returns the number of recorded events, including any a
// Release dropped from retention.
func (t *Tracer) EventCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := t.base + uint64(len(t.events))
	t.mu.Unlock()
	return n
}

// Hash returns an FNV-1a fingerprint over the event stream: two traces
// with equal hashes recorded the same events in the same order.
func (t *Tracer) Hash() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	h := t.hash
	t.mu.Unlock()
	return h
}

// LastRound returns the highest lockstep round node ticked (0 when the
// node never ticked or the tracer is nil).
func (t *Tracer) LastRound(node wire.NodeID) uint32 {
	if t == nil || node == wire.NoNode {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(node) >= len(t.lastRound) {
		return 0
	}
	return t.lastRound[int(node)]
}

// Flight returns the node's flight-recorder contents, oldest first: the
// last Ring events the node recorded, however long the run was.
func (t *Tracer) Flight(node wire.NodeID) []Event {
	if t == nil || node == wire.NoNode {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(node) >= len(t.rings) || t.rings[int(node)] == nil {
		return nil
	}
	return t.rings[int(node)].snapshot()
}

// FlightInstance returns the node's flight-recorder events attributed to
// one protocol instance, oldest first: the per-instance view a chaos
// violation dumps when a multiplexed run goes wrong.
func (t *Tracer) FlightInstance(node wire.NodeID, instance uint32) []Event {
	return FilterInstance(t.Flight(node), instance)
}

// FilterInstance returns the events attributed to one instance, in order.
func FilterInstance(events []Event, instance uint32) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Instance == instance {
			out = append(out, ev)
		}
	}
	return out
}

// foldEvent mixes one event into an FNV-1a accumulator.
func foldEvent(h uint64, ev Event) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV-1a offset basis
	}
	h = foldUint64(h, uint64(ev.At))
	h = foldUint64(h, uint64(ev.Node))
	h = foldUint64(h, uint64(ev.Round))
	h = foldUint64(h, uint64(ev.Instance))
	h = foldUint64(h, uint64(ev.Kind))
	h = foldUint64(h, uint64(ev.Peer))
	h = foldUint64(h, ev.Arg)
	h = foldUint64(h, ev.Span)
	// Seq is deliberately not folded: it is record-order metadata, fully
	// determined by the event's position, and rewinding a stream cursor
	// must not be able to perturb the semantic fingerprint.
	for i := 0; i < len(ev.Note); i++ {
		h = (h ^ uint64(ev.Note[i])) * 1099511628211
	}
	return h
}

func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * 1099511628211 // FNV-1a prime
		v >>= 8
	}
	return h
}

// ring is a fixed-capacity circular event buffer.
type ring struct {
	buf  []Event
	next int
	full bool
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity)}
}

// push overwrites the oldest entry once the ring is full.
func (r *ring) push(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the contents oldest-first.
func (r *ring) snapshot() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
