package telemetry

import (
	"sync"
	"time"

	"sgxp2p/internal/wire"
)

// DefaultRing is the per-node flight-recorder capacity used when Options
// leaves Ring zero.
const DefaultRing = 64

// Options configures a Tracer.
type Options struct {
	// Clock supplies logical timestamps. Nil is valid — events are stamped
	// 0 until SetClock binds one (deploy.New binds the simulator's clock so
	// callers can construct the tracer before the deployment exists).
	Clock func() time.Duration
	// Ring is the per-node flight-recorder capacity; 0 means DefaultRing.
	Ring int
}

// Tracer records the round-structured event stream of one run. All methods
// are safe on a nil receiver (no-ops) and safe for concurrent use: the
// simulator is single-threaded, but the TCP deployment records from its
// event-loop goroutines.
type Tracer struct {
	mu        sync.Mutex
	clock     func() time.Duration
	ringCap   int
	events    []Event
	rings     []*ring
	lastRound []uint32
	hash      uint64
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.Ring <= 0 {
		opts.Ring = DefaultRing
	}
	return &Tracer{clock: opts.Clock, ringCap: opts.Ring}
}

// SetClock binds the logical clock used to stamp subsequent events.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Record appends one event: node acted in round, kind says what happened,
// peer is the counterparty (wire.NoNode when none), arg and note carry
// kind-specific detail. Events flow into the full stream, the node's
// flight ring, and — for KindRound — the per-node round high-water mark.
func (t *Tracer) Record(node wire.NodeID, round uint32, kind Kind, peer wire.NodeID, arg uint64, note string) {
	t.RecordInst(node, round, 0, kind, peer, arg, note)
}

// RecordInst is Record with an instance attribution: the protocol
// instance the event belongs to (0 = instance-less). The multiplexed
// runtime records every per-message event through this entry point so a
// trace of a thousand concurrent instances can be filtered back apart.
func (t *Tracer) RecordInst(node wire.NodeID, round uint32, instance uint32, kind Kind, peer wire.NodeID, arg uint64, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{Node: node, Round: round, Kind: kind, Peer: peer, Arg: arg, Note: note, Instance: instance}
	if t.clock != nil {
		ev.At = t.clock()
	}
	t.events = append(t.events, ev)
	t.hash = foldEvent(t.hash, ev)
	if node != wire.NoNode {
		i := int(node)
		for i >= len(t.rings) {
			t.rings = append(t.rings, nil)
			t.lastRound = append(t.lastRound, 0)
		}
		if t.rings[i] == nil {
			t.rings[i] = newRing(t.ringCap)
		}
		t.rings[i].push(ev)
		if kind == KindRound {
			t.lastRound[i] = round
		}
	}
	t.mu.Unlock()
}

// Events returns a snapshot of the full event stream in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	return out
}

// EventCount returns the number of recorded events.
func (t *Tracer) EventCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := uint64(len(t.events))
	t.mu.Unlock()
	return n
}

// Hash returns an FNV-1a fingerprint over the event stream: two traces
// with equal hashes recorded the same events in the same order.
func (t *Tracer) Hash() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	h := t.hash
	t.mu.Unlock()
	return h
}

// LastRound returns the highest lockstep round node ticked (0 when the
// node never ticked or the tracer is nil).
func (t *Tracer) LastRound(node wire.NodeID) uint32 {
	if t == nil || node == wire.NoNode {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(node) >= len(t.lastRound) {
		return 0
	}
	return t.lastRound[int(node)]
}

// Flight returns the node's flight-recorder contents, oldest first: the
// last Ring events the node recorded, however long the run was.
func (t *Tracer) Flight(node wire.NodeID) []Event {
	if t == nil || node == wire.NoNode {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(node) >= len(t.rings) || t.rings[int(node)] == nil {
		return nil
	}
	return t.rings[int(node)].snapshot()
}

// FlightInstance returns the node's flight-recorder events attributed to
// one protocol instance, oldest first: the per-instance view a chaos
// violation dumps when a multiplexed run goes wrong.
func (t *Tracer) FlightInstance(node wire.NodeID, instance uint32) []Event {
	return FilterInstance(t.Flight(node), instance)
}

// FilterInstance returns the events attributed to one instance, in order.
func FilterInstance(events []Event, instance uint32) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Instance == instance {
			out = append(out, ev)
		}
	}
	return out
}

// foldEvent mixes one event into an FNV-1a accumulator.
func foldEvent(h uint64, ev Event) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV-1a offset basis
	}
	h = foldUint64(h, uint64(ev.At))
	h = foldUint64(h, uint64(ev.Node))
	h = foldUint64(h, uint64(ev.Round))
	h = foldUint64(h, uint64(ev.Instance))
	h = foldUint64(h, uint64(ev.Kind))
	h = foldUint64(h, uint64(ev.Peer))
	h = foldUint64(h, ev.Arg)
	for i := 0; i < len(ev.Note); i++ {
		h = (h ^ uint64(ev.Note[i])) * 1099511628211
	}
	return h
}

func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * 1099511628211 // FNV-1a prime
		v >>= 8
	}
	return h
}

// ring is a fixed-capacity circular event buffer.
type ring struct {
	buf  []Event
	next int
	full bool
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity)}
}

// push overwrites the oldest entry once the ring is full.
func (r *ring) push(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the contents oldest-first.
func (r *ring) snapshot() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
