package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. All
// registration methods are idempotent — asking for an existing name returns
// the existing handle — and nil-receiver safe: a nil *Metrics hands out nil
// handles whose operations are no-ops, so instrumented code never branches
// on "is telemetry on". Registering one name as two different metric kinds
// is a programming error and panics at wiring time.
//
// Handles update with atomics (the TCP deployment records from several
// goroutines); the registry lock is only taken on registration and export.
type Metrics struct {
	mu      sync.Mutex
	entries []*metricEntry
	index   map[string]int
}

// metricEntry is one registered metric; exactly one handle field is set.
type metricEntry struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{index: make(map[string]int)}
}

// lookup returns the entry for name, creating it via build when absent.
func (m *Metrics) lookup(name, kind string, build func(e *metricEntry)) *metricEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i, ok := m.index[name]; ok {
		return m.entries[i]
	}
	e := &metricEntry{name: name}
	build(e)
	m.index[name] = len(m.entries)
	m.entries = append(m.entries, e)
	return e
}

// kindMismatch panics: one name registered as two metric kinds is a wiring
// bug that silent fallback would hide.
func kindMismatch(name, want string) {
	panic("telemetry: metric " + name + " already registered as a different kind, wanted " + want)
}

// Counter registers (or returns) the named counter. Nil registry → nil
// handle (no-op).
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	e := m.lookup(name, "counter", func(me *metricEntry) { me.c = &Counter{} })
	if e.c == nil {
		kindMismatch(name, "counter")
	}
	return e.c
}

// Gauge registers (or returns) the named gauge. Nil registry → nil handle.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	e := m.lookup(name, "gauge", func(me *metricEntry) { me.g = &Gauge{} })
	if e.g == nil {
		kindMismatch(name, "gauge")
	}
	return e.g
}

// Histogram registers (or returns) the named fixed-bucket histogram.
// bounds are the inclusive bucket upper bounds, strictly increasing; an
// implicit +Inf bucket catches the rest. Re-registering an existing
// histogram returns the existing handle (its original bounds win). Nil
// registry → nil handle.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	e := m.lookup(name, "histogram", func(me *metricEntry) { me.h = newHistogram(bounds) })
	if e.h == nil {
		kindMismatch(name, "histogram")
	}
	return e.h
}

// MetricValue is one scalar reading from a Snapshot. Kind is "counter",
// "gauge", "histogram_count" or "histogram_sum" — histograms flatten into
// two scalar rows so a streaming consumer can track them without bucket
// schemas (the full bucket layout stays in ExportPrometheus).
type MetricValue struct {
	Name  string
	Kind  string
	Value float64
}

// Snapshot reads every registered metric as scalar rows, sorted by
// (Name, Kind) so equal registries snapshot identically. The live
// streaming exporter diffs successive snapshots and sends only the rows
// that changed. Nil registry → nil.
func (m *Metrics) Snapshot() []MetricValue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	entries := make([]*metricEntry, len(m.entries))
	copy(entries, m.entries)
	m.mu.Unlock()

	out := make([]MetricValue, 0, len(entries))
	for _, e := range entries {
		switch {
		case e.c != nil:
			out = append(out, MetricValue{Name: e.name, Kind: "counter", Value: float64(e.c.Value())})
		case e.g != nil:
			out = append(out, MetricValue{Name: e.name, Kind: "gauge", Value: float64(e.g.Value())})
		case e.h != nil:
			out = append(out,
				MetricValue{Name: e.name, Kind: "histogram_count", Value: float64(e.h.Count())},
				MetricValue{Name: e.name, Kind: "histogram_sum", Value: e.h.Sum()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil handle is a no-op. Add is allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed metric. The zero value is ready; a nil handle
// is a no-op. Set and Add are allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: counts[i] tallies observations
// v <= bounds[i] (first matching bucket), counts[len(bounds)] the +Inf
// rest, Prometheus le semantics. Observe is allocation-free: a binary
// search over the bounds plus two atomic updates.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	sumBits atomic.Uint64   // math.Float64bits of the running sum
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Nil handles are no-ops.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; misses land in +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (nil on a nil handle).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCount returns the count of bucket i (i == len(Bounds()) is +Inf).
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
