package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sgxp2p/internal/wire"
)

// TestKindStringRoundTrip pins every kind's wire name: ParseKind must
// invert String for all kinds, and unknown names must be rejected (the
// JSONL decoder depends on both directions).
func TestKindStringRoundTrip(t *testing.T) {
	for k := KindRound; k <= KindReattach; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if got := Kind(0).String(); got != "unknown" {
		t.Fatalf("zero kind string = %q", got)
	}
}

// TestNilTracerNoOps asserts every Tracer method is a no-op on nil — the
// disabled-telemetry contract instrumented code relies on.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Record(0, 1, KindRound, wire.NoNode, 0, "")
	tr.SetClock(func() time.Duration { return 1 })
	if tr.Events() != nil || tr.EventCount() != 0 || tr.Hash() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	if tr.LastRound(0) != 0 || tr.Flight(0) != nil || tr.FlightString(0, 4) != "" {
		t.Fatal("nil tracer flight state not empty")
	}
}

// TestTracerRecordAndHash checks the stream, the per-node round
// high-water mark, and that the incremental hash matches event order.
func TestTracerRecordAndHash(t *testing.T) {
	tr := New(Options{})
	tr.Record(0, 1, KindRound, wire.NoNode, 0, "")
	tr.Record(1, 1, KindDeliver, 0, 42, "")
	tr.Record(0, 2, KindRound, wire.NoNode, 0, "")
	tr.Record(wire.NoNode, 2, KindPartition, wire.NoNode, 2, "0 1|2")

	if got := tr.EventCount(); got != 4 {
		t.Fatalf("EventCount = %d, want 4", got)
	}
	if tr.LastRound(0) != 2 || tr.LastRound(1) != 0 {
		t.Fatalf("LastRound = %d/%d, want 2/0", tr.LastRound(0), tr.LastRound(1))
	}
	// NoNode events must not grow per-node state.
	if tr.Flight(wire.NoNode) != nil {
		t.Fatal("NoNode has a flight ring")
	}

	// An identical re-recording produces the identical hash; a different
	// order diverges.
	tr2 := New(Options{})
	for _, ev := range tr.Events() {
		tr2.Record(ev.Node, ev.Round, ev.Kind, ev.Peer, ev.Arg, ev.Note)
	}
	if tr.Hash() != tr2.Hash() {
		t.Fatal("equal streams hash differently")
	}
	tr3 := New(Options{})
	evs := tr.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		ev := evs[i]
		tr3.Record(ev.Node, ev.Round, ev.Kind, ev.Peer, ev.Arg, ev.Note)
	}
	if tr.Hash() == tr3.Hash() {
		t.Fatal("reordered stream hashes equal")
	}
}

// TestReleaseBoundsRetention checks that a streaming consumer can drop
// shipped prefixes without perturbing the stream's accounting: Seq keeps
// counting, Since keeps returning exactly-once suffixes, EventCount and
// Hash span the full stream, and only Events() shrinks.
func TestReleaseBoundsRetention(t *testing.T) {
	var nilTr *Tracer
	nilTr.Release(5) // nil-safe no-op

	tr := New(Options{})
	for i := 0; i < 4; i++ {
		tr.Record(0, uint32(i+1), KindRound, wire.NoNode, 0, "")
	}
	full := New(Options{})
	for i := 0; i < 6; i++ {
		full.Record(0, uint32(i+1), KindRound, wire.NoNode, 0, "")
	}

	// Exporter shipped the first 3 events; release them.
	tr.Release(3)
	if got := len(tr.Events()); got != 1 {
		t.Fatalf("retained %d events after Release(3), want 1", got)
	}
	if got := tr.EventCount(); got != 4 {
		t.Fatalf("EventCount = %d after Release, want 4", got)
	}
	// Since keeps working against the global cursor.
	if rest := tr.Since(3); len(rest) != 1 || rest[0].Seq != 4 {
		t.Fatalf("Since(3) = %v, want one event with Seq 4", rest)
	}
	// A rewound cursor clamps to the release edge instead of panicking.
	if rest := tr.Since(0); len(rest) != 1 || rest[0].Seq != 4 {
		t.Fatalf("Since(0) after Release = %v, want the unreleased suffix", rest)
	}

	// New records keep numbering from the global position.
	tr.Record(0, 5, KindRound, wire.NoNode, 0, "")
	tr.Record(0, 6, KindRound, wire.NoNode, 0, "")
	if evs := tr.Since(4); len(evs) != 2 || evs[0].Seq != 5 || evs[1].Seq != 6 {
		t.Fatalf("Since(4) = %v, want Seq 5,6", evs)
	}
	if tr.EventCount() != 6 {
		t.Fatalf("EventCount = %d, want 6", tr.EventCount())
	}
	// Hash folds eagerly at record time, so releasing never changes it.
	if tr.Hash() != full.Hash() {
		t.Fatal("Release perturbed the stream hash")
	}

	// Release past the end clamps; releasing an already-released prefix
	// is a no-op.
	tr.Release(100)
	tr.Release(1)
	if len(tr.Events()) != 0 || tr.EventCount() != 6 {
		t.Fatalf("over-Release broke accounting: retained=%d count=%d", len(tr.Events()), tr.EventCount())
	}
	if tr.Since(6) != nil {
		t.Fatal("Since past the end should be nil")
	}
}

// TestRingWraparound fills a small flight recorder past capacity and
// checks that the snapshot keeps exactly the newest events, oldest first.
func TestRingWraparound(t *testing.T) {
	tr := New(Options{Ring: 4})
	for i := 1; i <= 10; i++ {
		tr.Record(0, uint32(i), KindRound, wire.NoNode, uint64(i), "")
	}
	got := tr.Flight(0)
	if len(got) != 4 {
		t.Fatalf("flight length = %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Arg != want {
			t.Fatalf("flight[%d].Arg = %d, want %d (oldest-first)", i, ev.Arg, want)
		}
	}

	// Below capacity: everything is kept, in order.
	tr2 := New(Options{Ring: 4})
	tr2.Record(3, 1, KindRound, wire.NoNode, 0, "")
	tr2.Record(3, 1, KindDeliver, 0, 0, "")
	if got := tr2.Flight(3); len(got) != 2 || got[0].Kind != KindRound || got[1].Kind != KindDeliver {
		t.Fatalf("partial ring snapshot wrong: %+v", got)
	}

	// Exactly at capacity: one full revolution, no loss.
	tr3 := New(Options{Ring: 4})
	for i := 1; i <= 4; i++ {
		tr3.Record(0, uint32(i), KindRound, wire.NoNode, uint64(i), "")
	}
	got3 := tr3.Flight(0)
	if len(got3) != 4 || got3[0].Arg != 1 || got3[3].Arg != 4 {
		t.Fatalf("full ring snapshot wrong: %+v", got3)
	}
}

// TestFlightString checks the trimming and formatting of the error-message
// rendering.
func TestFlightString(t *testing.T) {
	tr := New(Options{Ring: 8})
	for i := 1; i <= 6; i++ {
		tr.Record(2, uint32(i), KindRound, wire.NoNode, 0, "")
	}
	s := tr.FlightString(2, 3)
	lines := strings.Split(s, "\n")
	if len(lines) != 3 {
		t.Fatalf("FlightString kept %d lines, want 3:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "r4") || !strings.Contains(lines[2], "r6") {
		t.Fatalf("FlightString kept the wrong (non-newest) window:\n%s", s)
	}
	if tr.FlightString(7, 3) != "" {
		t.Fatal("FlightString for an unknown node not empty")
	}
}

// TestHistogramBucketing pins the le-inclusive bucket semantics on the
// edges: a value equal to a bound lands in that bound's bucket, one above
// the last bound lands in +Inf.
func TestHistogramBucketing(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {4}; +Inf: {4.5,100}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+4+4.5+100; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramBadBounds checks that non-strictly-increasing bounds panic
// at registration (a wiring bug, not a runtime condition).
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-increasing bounds")
		}
	}()
	NewMetrics().Histogram("bad", []float64{1, 1})
}

// TestMetricsRegistry checks idempotent registration, nil-registry nil
// handles, and the kind-mismatch panic.
func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("x")
	if m.Counter("x") != c {
		t.Fatal("re-registration returned a different handle")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := m.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}

	var nilM *Metrics
	if nilM.Counter("x") != nil || nilM.Gauge("g") != nil || nilM.Histogram("h", []float64{1}) != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	var nilG *Gauge
	nilG.Set(1)
	var nilH *Histogram
	nilH.Observe(1)
	if nilC.Value() != 0 || nilG.Value() != 0 || nilH.Count() != 0 {
		t.Fatal("nil handles not no-ops")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering one name as two kinds")
		}
	}()
	m.Gauge("x")
}

// TestJSONLRoundTrip exports a stream and reads it back, checking equality
// and that two exports of the same stream are byte-identical.
func TestJSONLRoundTrip(t *testing.T) {
	tr := New(Options{})
	now := time.Duration(0)
	tr.SetClock(func() time.Duration { return now })
	tr.Record(0, 1, KindRound, wire.NoNode, 0, "")
	now = 5 * time.Millisecond
	tr.Record(1, 1, KindDeliver, 0, 7, "")
	tr.Record(wire.NoNode, 2, KindPartition, wire.NoNode, 2, "0|1 2")

	var a, b bytes.Buffer
	if err := tr.ExportJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.ExportJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of one stream differ")
	}

	events, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Events()
	if len(events) != len(orig) {
		t.Fatalf("read %d events, want %d", len(events), len(orig))
	}
	for i := range events {
		if events[i] != orig[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, events[i], orig[i])
		}
	}

	count, err := ValidateJSONL(bytes.NewReader(a.Bytes()))
	if err != nil || count != len(orig) {
		t.Fatalf("ValidateJSONL = %d, %v", count, err)
	}
}

// TestValidateJSONLRejects checks the strict-decode failure modes: unknown
// fields, unknown kinds, regressing timestamps, empty lines.
func TestValidateJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"at":0,"node":0,"round":1,"kind":"round","peer":-1,"arg":0,"bogus":1}` + "\n",
		"unknown kind":  `{"at":0,"node":0,"round":1,"kind":"nope","peer":-1,"arg":0}` + "\n",
		"bad node":      `{"at":0,"node":-7,"round":1,"kind":"round","peer":-1,"arg":0}` + "\n",
		"regression": `{"at":5,"node":0,"round":1,"kind":"round","peer":-1,"arg":0}` + "\n" +
			`{"at":4,"node":1,"round":1,"kind":"round","peer":-1,"arg":0}` + "\n",
		"empty line": "\n",
	}
	for name, in := range cases {
		if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Negative timestamps are legal (pre-start events on the live network);
	// only regressions are rejected.
	ok := `{"at":-5,"node":0,"round":0,"kind":"round","peer":-1,"arg":0}` + "\n" +
		`{"at":0,"node":0,"round":1,"kind":"round","peer":-1,"arg":0}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(ok)); err != nil {
		t.Errorf("negative timestamps rejected: %v", err)
	}
}

// TestDiffLines checks the determinism verdict: identical, diverging, and
// length-mismatched trace pairs.
func TestDiffLines(t *testing.T) {
	a := "x\ny\nz\n"
	if line, _, _, err := DiffLines(strings.NewReader(a), strings.NewReader(a)); err != nil || line != 0 {
		t.Fatalf("identical traces: line=%d err=%v", line, err)
	}
	line, la, lb, err := DiffLines(strings.NewReader("x\ny\n"), strings.NewReader("x\nq\n"))
	if err != nil || line != 2 || la != "y" || lb != "q" {
		t.Fatalf("diverging traces: line=%d %q %q err=%v", line, la, lb, err)
	}
	if line, _, _, _ := DiffLines(strings.NewReader("x\n"), strings.NewReader("x\ny\n")); line != 2 {
		t.Fatalf("length mismatch: line=%d, want 2", line)
	}
}

// TestPrometheusExport pins the text exposition format, including the
// cumulative le buckets and the name-sorted order.
func TestPrometheusExport(t *testing.T) {
	m := NewMetrics()
	m.Counter("zz_total").Add(3)
	m.Gauge("aa_nodes").Set(-2)
	h := m.Histogram("mm_size", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(9)

	var buf bytes.Buffer
	if err := m.ExportPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE aa_nodes gauge
aa_nodes -2
# TYPE mm_size histogram
mm_size_bucket{le="1"} 1
mm_size_bucket{le="2"} 2
mm_size_bucket{le="+Inf"} 3
mm_size_sum 11.5
mm_size_count 3
# TYPE zz_total counter
zz_total 3
`
	if got := buf.String(); got != want {
		t.Fatalf("export mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestTimeline checks the per-round grouping of the human rendering.
func TestTimeline(t *testing.T) {
	tr := New(Options{})
	tr.Record(0, 1, KindRound, wire.NoNode, 0, "")
	tr.Record(1, 1, KindDeliver, 0, 0, "")
	tr.Record(0, 2, KindRound, wire.NoNode, 0, "")
	var buf bytes.Buffer
	if err := tr.ExportTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "── round") != 2 {
		t.Fatalf("want 2 round headers:\n%s", out)
	}
	if !strings.Contains(out, "n0") || !strings.Contains(out, "deliver") {
		t.Fatalf("timeline missing event fields:\n%s", out)
	}
}

// TestDumpFlight checks the invariant-failure dump names the node and its
// last round.
func TestDumpFlight(t *testing.T) {
	tr := New(Options{})
	tr.Record(4, 1, KindRound, wire.NoNode, 0, "")
	tr.Record(4, 1, KindHalt, wire.NoNode, 0, "ack-threshold")
	var buf bytes.Buffer
	if err := tr.DumpFlight(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"node 4", "last round 1", "halt", "ack-threshold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
