package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"sgxp2p/internal/wire"
)

// jsonEvent is the JSONL line layout. Field order is the struct order —
// encoding/json preserves it — so exports of equal event streams are
// byte-identical. Peer is -1 when the event has no counterparty. Inst is
// the instance attribution, omitted when zero, so single-instance traces
// keep their pre-multiplexing byte layout and old traces still parse.
type jsonEvent struct {
	At    int64  `json:"at"`
	Node  int64  `json:"node"`
	Round uint32 `json:"round"`
	Inst  uint32 `json:"inst,omitempty"`
	Kind  string `json:"kind"`
	Peer  int64  `json:"peer"`
	Arg   uint64 `json:"arg"`
	Span  uint64 `json:"span,omitempty"`
	Note  string `json:"note,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
}

// encodeEvent maps an Event to its JSONL form.
func encodeEvent(ev Event) jsonEvent {
	return jsonEvent{
		At:    int64(ev.At),
		Node:  nodeJSON(ev.Node),
		Round: ev.Round,
		Inst:  ev.Instance,
		Kind:  ev.Kind.String(),
		Peer:  nodeJSON(ev.Peer),
		Arg:   ev.Arg,
		Span:  ev.Span,
		Note:  ev.Note,
		Seq:   ev.Seq,
	}
}

// nodeJSON maps a NodeID to its JSONL form (-1 for wire.NoNode).
func nodeJSON(id wire.NodeID) int64 {
	if id == wire.NoNode {
		return -1
	}
	return int64(id)
}

// nodeFromJSON is the inverse of nodeJSON.
func nodeFromJSON(v int64) (wire.NodeID, error) {
	if v == -1 {
		return wire.NoNode, nil
	}
	if v < 0 || v >= int64(wire.NoNode) {
		return 0, fmt.Errorf("telemetry: node id %d out of range", v)
	}
	return wire.NodeID(v), nil
}

// WriteJSONL writes an event slice as one JSON object per line, in the
// exact byte layout ExportJSONL uses. It is the standalone form the
// scenario runner needs to re-serialize merged multi-process streams.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		line, err := json.Marshal(encodeEvent(ev))
		if err != nil {
			return fmt.Errorf("telemetry: marshal event: %w", err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportJSONL writes the full event stream as one JSON object per line.
// Two runs of the same deterministic seed export byte-identical files
// (the obs-smoke target and the chaos determinism tests pin this).
func (t *Tracer) ExportJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// MergeEvents interleaves per-process event streams into one globally
// time-ordered stream. Each input must itself be time-ordered (the
// ValidateJSONL invariant every exported trace satisfies).
//
// Two guarantees matter to the live observability plane:
//
//   - Duplicates are dropped. A stream that reconnects mid-run re-sends
//     from an earlier cursor, and the exit dump repeats everything that
//     was already streamed, so the same tracer event can arrive several
//     times. Events that carry a stream sequence number (Seq != 0) are
//     deduplicated on their full identity — an event equal in every
//     field, Seq included, is the same record; a legitimately repeated
//     action differs at least in Seq. Hand-built events (Seq == 0) are
//     never deduplicated.
//
//   - Ties are deterministic. Live processes share a logical timestamp
//     whenever their round windows align, so ordering by At alone would
//     let the input stream order leak into the merged bytes. Ties order
//     by Node, then Seq, then within-stream position — the same event
//     multiset merges to the same bytes regardless of which process's
//     stream arrived first.
func MergeEvents(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	merged := make([]Event, 0, total)
	seen := make(map[Event]struct{}, total)
	for _, s := range streams {
		for _, ev := range s {
			if ev.Seq != 0 {
				if _, dup := seen[ev]; dup {
					continue
				}
				seen[ev] = struct{}{}
			}
			merged = append(merged, ev)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return merged
}

// decodeLine strictly parses one JSONL line into an Event.
func decodeLine(line []byte, lineNo int) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var je jsonEvent
	if err := dec.Decode(&je); err != nil {
		return Event{}, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
	}
	if dec.More() {
		return Event{}, fmt.Errorf("telemetry: line %d: trailing data after event object", lineNo)
	}
	kind, ok := ParseKind(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("telemetry: line %d: unknown event kind %q", lineNo, je.Kind)
	}
	node, err := nodeFromJSON(je.Node)
	if err != nil {
		return Event{}, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
	}
	peer, err := nodeFromJSON(je.Peer)
	if err != nil {
		return Event{}, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
	}
	return Event{
		At:       time.Duration(je.At),
		Node:     node,
		Round:    je.Round,
		Kind:     kind,
		Peer:     peer,
		Arg:      je.Arg,
		Note:     je.Note,
		Instance: je.Inst,
		Span:     je.Span,
		Seq:      je.Seq,
	}, nil
}

// MarshalEvent renders one event as its JSONL line (no trailing newline)
// — the unit the live streaming exporter frames onto the control
// connection, byte-identical to the same event's WriteJSONL line.
func MarshalEvent(ev Event) ([]byte, error) {
	line, err := json.Marshal(encodeEvent(ev))
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal event: %w", err)
	}
	return line, nil
}

// DecodeEventLine strictly parses one JSONL line into an Event — the
// inverse of MarshalEvent, used by the scenario aggregator to ingest
// streamed lines one at a time.
func DecodeEventLine(line []byte) (Event, error) {
	return decodeLine(line, 1)
}

// lineScanner builds a Scanner with a buffer generous enough for any event.
func lineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return sc
}

// ReadJSONL parses a JSONL trace back into events, validating each line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := lineScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			return nil, fmt.Errorf("telemetry: line %d: empty line", lineNo)
		}
		ev, err := decodeLine(sc.Bytes(), lineNo)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ValidateJSONL checks that r is a well-formed trace: every line parses
// strictly (no unknown fields, known kinds, node ids in range) and the
// timestamps are non-decreasing — the schema check of `p2ptrace -check`
// and the obs-smoke target.
func ValidateJSONL(r io.Reader) (int, error) {
	prev := time.Duration(0)
	first := true
	count := 0
	sc := lineScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			return count, fmt.Errorf("telemetry: line %d: empty line", lineNo)
		}
		ev, err := decodeLine(sc.Bytes(), lineNo)
		if err != nil {
			return count, err
		}
		if !first && ev.At < prev {
			return count, fmt.Errorf("telemetry: line %d: timestamp %d regresses below %d", lineNo, ev.At, prev)
		}
		prev, first = ev.At, false
		count++
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	return count, nil
}

// DiffLines compares two JSONL traces line by line and returns the first
// 1-based line where they diverge, with both lines' contents (empty when a
// side already hit EOF). Line 0 means the traces are byte-identical — the
// determinism verdict `p2ptrace -diff` reports.
func DiffLines(a, b io.Reader) (line int, aLine, bLine string, err error) {
	sa, sb := lineScanner(a), lineScanner(b)
	for n := 1; ; n++ {
		moreA, moreB := sa.Scan(), sb.Scan()
		if err := sa.Err(); err != nil {
			return 0, "", "", err
		}
		if err := sb.Err(); err != nil {
			return 0, "", "", err
		}
		switch {
		case !moreA && !moreB:
			return 0, "", "", nil
		case moreA != moreB:
			return n, sa.Text(), sb.Text(), nil
		case sa.Text() != sb.Text():
			return n, sa.Text(), sb.Text(), nil
		}
	}
}

// formatEvent renders one event as a human-readable line (no trailing
// newline): logical time, node, kind, then the kind-specific fields.
func formatEvent(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%11s ", ev.At)
	if ev.Node == wire.NoNode {
		b.WriteString("net    ")
	} else {
		fmt.Fprintf(&b, "n%-5d ", ev.Node)
	}
	fmt.Fprintf(&b, "%-12s", ev.Kind)
	if ev.Instance != 0 {
		fmt.Fprintf(&b, " inst=%d", ev.Instance)
	}
	if ev.Peer != wire.NoNode {
		fmt.Fprintf(&b, " peer=%d", ev.Peer)
	}
	if ev.Arg != 0 {
		fmt.Fprintf(&b, " arg=%#x", ev.Arg)
	}
	if ev.Span != 0 {
		fmt.Fprintf(&b, " span=%#x", ev.Span)
	}
	if ev.Note != "" {
		fmt.Fprintf(&b, " (%s)", ev.Note)
	}
	return b.String()
}

// WriteTimeline renders events as a per-round timeline: a header whenever
// the round changes, one formatted line per event.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	cur := int64(-1)
	for _, ev := range events {
		if int64(ev.Round) != cur {
			cur = int64(ev.Round)
			if _, err := fmt.Fprintf(bw, "── round %d ──\n", cur); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "  %s\n", formatEvent(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportTimeline writes the tracer's full stream as a per-round timeline.
func (t *Tracer) ExportTimeline(w io.Writer) error {
	return WriteTimeline(w, t.Events())
}

// FlightString renders a node's flight-recorder contents (at most max
// lines, newest events kept) for embedding in error messages. Empty when
// the tracer is nil or the node recorded nothing.
func (t *Tracer) FlightString(node wire.NodeID, max int) string {
	events := t.Flight(node)
	if len(events) == 0 {
		return ""
	}
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	lines := make([]string, len(events))
	for i, ev := range events {
		lines[i] = "  r" + strconv.FormatUint(uint64(ev.Round), 10) + " " + formatEvent(ev)
	}
	return strings.Join(lines, "\n")
}

// FlightInstanceString renders a node's flight-recorder contents filtered
// to one protocol instance (at most max lines, newest events kept) — the
// attribution dump a multiplexed chaos violation embeds so the evidence
// names only the offending instance's events, not its thousand neighbors.
func (t *Tracer) FlightInstanceString(node wire.NodeID, instance uint32, max int) string {
	events := t.FlightInstance(node, instance)
	if len(events) == 0 {
		return ""
	}
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	lines := make([]string, len(events))
	for i, ev := range events {
		lines[i] = "  r" + strconv.FormatUint(uint64(ev.Round), 10) + " " + formatEvent(ev)
	}
	return strings.Join(lines, "\n")
}

// DumpFlight writes a node's flight-recorder timeline to w.
func (t *Tracer) DumpFlight(w io.Writer, node wire.NodeID) error {
	if t == nil {
		return errors.New("telemetry: nil tracer")
	}
	_, err := fmt.Fprintf(w, "flight recorder, node %d (last round %d):\n%s\n",
		node, t.LastRound(node), t.FlightString(node, 0))
	return err
}

// ExportPrometheus writes the registry in the Prometheus text exposition
// format, metrics sorted by name so the snapshot is deterministic.
func (m *Metrics) ExportPrometheus(w io.Writer) error {
	if m == nil {
		return errors.New("telemetry: nil metrics registry")
	}
	m.mu.Lock()
	entries := make([]*metricEntry, len(m.entries))
	copy(entries, m.entries)
	m.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	bw := bufio.NewWriter(w)
	for _, e := range entries {
		var err error
		switch {
		case e.c != nil:
			_, err = fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case e.g != nil:
			_, err = fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.g.Value())
		case e.h != nil:
			err = writeHistogram(bw, e.name, e.h)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram with cumulative le buckets.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, bound := range h.Bounds() {
		cum += h.BucketCount(i)
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.BucketCount(len(h.Bounds()))
	sum := strconv.FormatFloat(h.Sum(), 'g', -1, 64)
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, sum, name, h.Count())
	return err
}
