// Package telemetry is the reproduction's zero-dependency observability
// layer: a metrics registry (counters, gauges, fixed-bucket histograms), a
// round-structured event tracer, and a bounded per-node flight recorder.
//
// The paper's evaluation is built on measured per-round latency, message
// counts and churn events; this package makes the same quantities visible
// inside the reproduction without perturbing it. Three properties are
// load-bearing:
//
//   - Disabled means free. Every handle type treats a nil receiver as a
//     no-op (a nil *Tracer records nothing, a nil *Counter counts nothing),
//     and instrumented packages keep their hot paths behind a single
//     pointer check, so a deployment built without telemetry pays no
//     allocations and no measurable time (pinned by BENCH_telemetry.json).
//
//   - Logical time only. The tracer has no clock of its own: it stamps
//     events with an injected clock function (vclock.Sim.Now in simulation,
//     the transport origin clock on live TCP). Deterministic packages thus
//     stay wall-clock free (the detrand analyzer checks this), and two runs
//     of the same chaos seed export byte-identical JSONL traces.
//
//   - Bounded failure evidence. Besides the full event stream, the tracer
//     keeps a fixed-size ring of recent events per node — the flight
//     recorder — so an invariant violation can dump exactly what the
//     offending node did last, however long the run was.
//
// Event volume is bounded by the run, not the network: events are recorded
// per protocol action (round ticks, multicasts, deliveries, decisions,
// churn), so a trace grows linearly with simulated work and is safe to keep
// in memory for experiment-scale runs.
package telemetry

import (
	"time"

	"sgxp2p/internal/wire"
)

// Kind enumerates trace event kinds. The string names (see String) are the
// stable wire vocabulary of the JSONL export; appending new kinds is safe,
// renumbering existing ones is not.
type Kind uint8

// Trace event kinds, grouped by the layer that records them.
const (
	// KindRound marks the start of a lockstep round at a node (recorded by
	// the runtime tick, before the protocol's OnRound runs).
	KindRound Kind = iota + 1
	// KindDeliver is an authenticated protocol message handed to the
	// protocol layer; Peer is the sender, Arg the wire message type.
	KindDeliver
	// KindAckSent and KindAckRecv are the P4 acknowledgment traffic.
	KindAckSent
	KindAckRecv
	// KindAuthFail is an envelope rejected by the channel (forgery,
	// corruption, wrong program) — an omission per Theorem A.2.
	KindAuthFail
	// KindStale is an authenticated message dropped by the lockstep round
	// check (delayed or replayed).
	KindStale
	// KindSendFail is a multicast leg that degraded to an omission.
	KindSendFail
	// KindHalt is halt-on-divergence (P4): the node churned itself out.
	KindHalt

	// KindInit and KindEcho are ERB multicasts (Algorithm 2); Peer is the
	// instance's initiator, Arg a 64-bit fingerprint of the value.
	KindInit
	KindEcho
	// KindAccept is an ERB accept decision; KindBottom a bottom decision.
	KindAccept
	KindBottom
	// KindChosen marks a node joining the ERNG representative cluster;
	// KindCluster freezes its local cluster view (Arg = view size).
	KindChosen
	KindCluster
	// KindDecide is a beacon decision (Arg = number of contributors).
	KindDecide

	// Chaos-engine events. Node is wire.NoNode for network-wide events.
	KindCrash
	KindRestart
	KindRestartFail
	KindFlip
	KindPartition
	KindHeal
	// KindDetach and KindReattach are the transport-level halves of churn.
	KindDetach
	KindReattach

	// KindBatchFlush is one coalesced outbox flush: a sealed batch frame
	// leaving for one peer (Peer is the destination, Arg the number of
	// messages the frame carries).
	KindBatchFlush

	// KindEarly is an authenticated message stamped one round ahead of
	// the receiver's lockstep clock — live processes tick on wall clocks
	// that skew by fractions of a round — buffered and delivered when
	// the receiver's round catches up (Arg is the message's round).
	KindEarly

	// Causal-span hops (recorded only when Options.Spans is set). Each
	// carries the sealed frame's tag in Span and the hop's elapsed time in
	// Arg (nanoseconds; 0 under the simulator's virtual clock, where the
	// hop is instantaneous). At is the hop's end instant, so the
	// seal→transit→open→deliver→handle decomposition falls out of the
	// merged stream (internal/obsplane reconstructs it).
	//
	// KindSeal is the sender sealing one envelope for Peer (the
	// destination); KindOpen is the receiver authenticating it (Peer the
	// sender); KindHandled is the protocol's OnMessage returning for one
	// delivered message (Peer the sender).
	KindSeal
	KindOpen
	KindHandled
)

// kindNames is the stable Kind → JSONL name table.
var kindNames = [...]string{
	KindRound:       "round",
	KindDeliver:     "deliver",
	KindAckSent:     "ack-sent",
	KindAckRecv:     "ack-recv",
	KindAuthFail:    "auth-fail",
	KindStale:       "stale",
	KindSendFail:    "send-fail",
	KindHalt:        "halt",
	KindInit:        "init",
	KindEcho:        "echo",
	KindAccept:      "accept",
	KindBottom:      "bottom",
	KindChosen:      "chosen",
	KindCluster:     "cluster",
	KindDecide:      "decide",
	KindCrash:       "crash",
	KindRestart:     "restart",
	KindRestartFail: "restart-fail",
	KindFlip:        "flip",
	KindPartition:   "partition",
	KindHeal:        "heal",
	KindDetach:      "detach",
	KindReattach:    "reattach",
	KindBatchFlush:  "batch-flush",
	KindEarly:       "early",
	KindSeal:        "seal",
	KindOpen:        "open",
	KindHandled:     "handled",
}

// String returns the stable event-kind name used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind resolves an exported kind name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name != "" && name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one trace record. Events are keyed by (Node, Round, Kind): the
// node that acted, the lockstep round it was in, and what happened. At is
// logical time (virtual in simulation), Peer the counterparty (wire.NoNode
// when there is none), Arg a kind-specific 64-bit payload and Note a short
// kind-specific annotation.
type Event struct {
	At    time.Duration
	Node  wire.NodeID
	Round uint32
	Kind  Kind
	Peer  wire.NodeID
	Arg   uint64
	Note  string
	// Instance attributes the event to the protocol instance it belongs
	// to: the wire.Message instance id for deliveries and ACK traffic, the
	// hosting instance for protocol milestones. 0 is "instance-less" —
	// runtime-wide events (round ticks, halts, batch flushes) and every
	// event of a pre-multiplexing single-instance run, so legacy traces
	// export unchanged (the JSONL field is omitempty).
	Instance uint32
	// Span is the causal-span id the event belongs to: the sealed frame's
	// channel.FrameTag, identical at sender and receiver, so the hops of
	// one envelope's life join up across process traces without spending
	// a single wire byte. 0 means span-less (every event of a run without
	// Options.Spans; the JSONL field is omitempty).
	Span uint64
	// Seq is the event's 1-based position in its tracer's stream, stamped
	// at record time. It makes streamed copies of an event deduplicable
	// against the exit dump (MergeEvents drops exact duplicates with
	// equal Seq) and lets a stream consumer detect gaps. 0 means a
	// hand-built event that never passed through a Tracer.
	Seq uint64
}
