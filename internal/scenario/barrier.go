package scenario

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// NodeEvent is one control-plane observation about a node process.
type NodeEvent struct {
	// ID is the node the event concerns.
	ID int
	// Kind is "ready", "done", "fail" or "disconnect".
	Kind string
	// Detail carries the FAIL reason or the READY listen address.
	Detail string
}

// Barrier is the runner side of p2pnode's -control handshake. Each node
// process connects, announces READY <id> <addr>, and blocks; once all n
// expected nodes have checked in the runner releases the barrier, which
// sends every node the full PEERS table and the shared START instant. A
// node that connects after the release — the relaunched half of a
// crash-restart churn phase — receives the same table and instant
// immediately, so a restart joins the original schedule.
//
// The conversation, one text line each:
//
//	node → runner:  READY <id> <host:port>
//	runner → node:  PEERS <0=h:p,1=h:p,...>
//	runner → node:  START <unix-ms>
//	node → runner:  DONE  |  FAIL <reason>
//
// The connection then stays open; an EOF before DONE is how the runner
// observes a crash (deliberate or not). A node started with -stream
// multiplexes live telemetry onto the same connection (EV/MT lines,
// routed to the stream sink), and the runner can ask any node for a
// profile capture with a PROF line in the other direction.
type Barrier struct {
	ln     net.Listener
	n      int
	events chan NodeEvent

	mu       sync.Mutex
	addrs    map[int]string
	conns    map[int]net.Conn
	released bool
	start    time.Time
	readyAll chan struct{}
	closed   bool
	sink     func(id int, line string)

	wg sync.WaitGroup
}

// NewBarrier starts a barrier listener for n nodes on an ephemeral
// localhost port.
func NewBarrier(n int) (*Barrier, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b := &Barrier{
		ln:       ln,
		n:        n,
		events:   make(chan NodeEvent, 4*n+16),
		addrs:    make(map[int]string, n),
		conns:    make(map[int]net.Conn, n),
		readyAll: make(chan struct{}),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the control address node processes dial.
func (b *Barrier) Addr() string { return b.ln.Addr().String() }

// Events delivers control-plane observations as they happen.
func (b *Barrier) Events() <-chan NodeEvent { return b.events }

// acceptLoop accepts node connections until the barrier closes.
func (b *Barrier) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// serve handles one node's control conversation.
func (b *Barrier) serve(conn net.Conn) {
	defer b.wg.Done()
	rd := bufio.NewReader(conn)
	line, err := rd.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	var id int
	var addr string
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "READY %d %s", &id, &addr); err != nil {
		conn.Close()
		return
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.addrs[id] = addr
	if old := b.conns[id]; old != nil {
		old.Close()
	}
	b.conns[id] = conn
	allReady := !b.released && len(b.addrs) == b.n
	lateJoin := b.released
	if allReady {
		close(b.readyAll)
	}
	b.mu.Unlock()

	b.events <- NodeEvent{ID: id, Kind: "ready", Detail: addr}
	if lateJoin {
		b.releaseOne(id, conn)
	}

	// Read until DONE/FAIL or EOF; EOF first means the process died.
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			b.events <- NodeEvent{ID: id, Kind: "disconnect"}
			conn.Close()
			return
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "DONE":
			b.events <- NodeEvent{ID: id, Kind: "done"}
		case strings.HasPrefix(line, "FAIL "):
			b.events <- NodeEvent{ID: id, Kind: "fail", Detail: strings.TrimPrefix(line, "FAIL ")}
		case strings.HasPrefix(line, "EV ") || strings.HasPrefix(line, "MT "):
			b.mu.Lock()
			sink := b.sink
			b.mu.Unlock()
			if sink != nil {
				sink(id, line)
			}
		}
	}
}

// SetStreamSink installs the consumer for streamed EV/MT lines. The sink
// runs on the per-connection serve goroutines, so it must be safe for
// concurrent calls with distinct ids.
func (b *Barrier) SetStreamSink(sink func(id int, line string)) {
	b.mu.Lock()
	b.sink = sink
	b.mu.Unlock()
}

// SendProf asks one node to capture pprof profiles (it needs to have
// been started with -profile-dir). Best-effort: a dead connection is
// exactly when a profile is wanted and exactly when it can fail.
func (b *Barrier) SendProf(id int) {
	b.mu.Lock()
	conn := b.conns[id]
	b.mu.Unlock()
	if conn != nil {
		_, _ = fmt.Fprintf(conn, "PROF\n")
	}
}

// AwaitReady blocks until all n nodes have checked in, or the timeout.
func (b *Barrier) AwaitReady(timeout time.Duration) error {
	select {
	case <-b.readyAll:
		return nil
	case <-time.After(timeout): //lint:allow lockstep the barrier bounds real child-process startup; a hung fleet must time out in wall time
		b.mu.Lock()
		missing := make([]int, 0, b.n)
		for i := 0; i < b.n; i++ {
			if _, ok := b.addrs[i]; !ok {
				missing = append(missing, i)
			}
		}
		b.mu.Unlock()
		return fmt.Errorf("barrier: %d/%d nodes ready after %v, missing %v", b.n-len(missing), b.n, timeout, missing)
	}
}

// Release fixes the shared start instant and sends every checked-in node
// its PEERS table and START line.
func (b *Barrier) Release(start time.Time) error {
	b.mu.Lock()
	if b.released {
		b.mu.Unlock()
		return fmt.Errorf("barrier: already released")
	}
	if len(b.addrs) != b.n {
		b.mu.Unlock()
		return fmt.Errorf("barrier: only %d/%d nodes ready", len(b.addrs), b.n)
	}
	b.released = true
	b.start = start
	ids := make([]int, 0, b.n)
	for id := range b.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	conns := make([]net.Conn, 0, len(ids))
	for _, id := range ids {
		conns = append(conns, b.conns[id])
	}
	b.mu.Unlock()
	for i, id := range ids {
		b.releaseOne(id, conns[i])
	}
	return nil
}

// releaseOne sends one node the PEERS+START pair.
func (b *Barrier) releaseOne(id int, conn net.Conn) {
	b.mu.Lock()
	line := b.peersLine()
	startMS := b.start.UnixMilli()
	b.mu.Unlock()
	_, _ = fmt.Fprintf(conn, "PEERS %s\nSTART %d\n", line, startMS)
}

// peersLine renders the address table in parsePeers format (mu held).
func (b *Barrier) peersLine() string {
	ids := make([]int, 0, len(b.addrs))
	for id := range b.addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, b.addrs[id]))
	}
	return strings.Join(parts, ",")
}

// NodeAddr returns the listen address node id announced.
func (b *Barrier) NodeAddr(id int) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	addr, ok := b.addrs[id]
	return addr, ok
}

// Start returns the released start instant.
func (b *Barrier) Start() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.start
}

// Close shuts the barrier down and drops all control connections.
func (b *Barrier) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	conns := make([]net.Conn, 0, len(b.conns))
	ids := make([]int, 0, len(b.conns))
	for id := range b.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		conns = append(conns, b.conns[id])
	}
	b.mu.Unlock()
	b.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
}
