package scenario

import (
	"os"
	"sync"
	"testing"
)

// nodeBin builds cmd/p2pnode once per test binary.
var nodeBinOnce struct {
	sync.Once
	path string
	err  error
}

func nodeBin(t *testing.T) string {
	t.Helper()
	nodeBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "p2pnode-bin-*")
		if err != nil {
			nodeBinOnce.err = err
			return
		}
		nodeBinOnce.path, nodeBinOnce.err = BuildNodeBin(dir)
	})
	if nodeBinOnce.err != nil {
		t.Fatal(nodeBinOnce.err)
	}
	return nodeBinOnce.path
}

// runCase orchestrates one manifest testcase end-to-end and fails the
// test on any unmet invariant, dumping the report for diagnosis.
func runCase(t *testing.T, manifestName, caseName string, instances int, overrides map[string]string) *RunReport {
	t.Helper()
	m := repoManifest(t, manifestName)
	tc, err := m.Case(caseName)
	if err != nil {
		t.Fatal(err)
	}
	params, err := tc.ResolveParams(overrides)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(RunConfig{
		NodeBin:   nodeBin(t),
		Testcase:  tc,
		Params:    params,
		Instances: instances,
		OutDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range report.Invariants {
		t.Logf("%s: invariant %s: ok=%v %s", tc.Name, inv.Name, inv.OK, inv.Detail)
	}
	if !report.Passed {
		for _, node := range report.Nodes {
			if node.FailDetail != "" {
				t.Logf("node %d FAIL: %s", node.ID, node.FailDetail)
			}
		}
		t.Fatalf("scenario %s did not pass", tc.Name)
	}
	return report
}

// TestScenarioHonestERB runs the honest-sweep manifest's testcase at a
// small fleet size: real processes, real TCP, the runner's barrier, and
// central agreement/termination/trace invariants.
func TestScenarioHonestERB(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet")
	}
	report := runCase(t, "honest-sweep.toml", "erb-honest", 4, map[string]string{
		"delta": "250ms", "epochs": "2",
	})
	for _, node := range report.Nodes {
		if node.Result == nil || len(node.Result.Epochs) != 2 {
			t.Fatalf("node %d result %+v", node.ID, node.Result)
		}
	}
}

// TestScenarioCrashRestart runs the crash-restart manifest: node 4 is
// SIGKILLed mid-epoch 1 and a relaunched incarnation (same identity,
// same address, re-derived keys) rejoins at epoch 2 — the PR 3 restart
// lifecycle exercised across real process boundaries.
func TestScenarioCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet")
	}
	// A longer Δ than the manifest default: the test suite shares the
	// machine with every other package's tests, and a starved process
	// that misses a whole round window fails its epoch legitimately.
	report := runCase(t, "crash-restart.toml", "erb-crash-restart", 0, map[string]string{
		"delta": "300ms",
	})
	restarted := report.Nodes[4]
	if !restarted.Crashed || !restarted.Restarted {
		t.Fatalf("node 4 outcome %+v", restarted)
	}
	if restarted.Result == nil {
		t.Fatal("restarted node wrote no result")
	}
	if first := restarted.Result.Epochs[0].Epoch; first != 2 {
		t.Fatalf("restarted node's first epoch %d, want 2", first)
	}
}
