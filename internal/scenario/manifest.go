package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Manifest is a declarative scenario: a named collection of testcases,
// each spawning some number of p2pnode processes over real TCP. The
// layout follows the testground composition idiom: [[testcases]] with an
// instances range and a typed [testcases.params] table.
type Manifest struct {
	// Name identifies the scenario in reports and bench output.
	Name string
	// Testcases run in order; each is an independent process fleet.
	Testcases []Testcase
}

// Testcase is one orchestrated run: N processes, one protocol schedule,
// optional churn phases and an instance-count sweep.
type Testcase struct {
	// Name identifies the testcase within the manifest.
	Name string
	// Instances bounds the process count; Default is used unless the
	// runner overrides it (within [Min, Max]).
	Instances Range
	// Params are the typed knobs (mode, t, delta, epochs, chain_len,
	// slow, ...) with defaults; the runner may override any of them.
	Params map[string]Param
	// Churn phases kill and relaunch processes mid-schedule.
	Churn []ChurnPhase
	// Sweep, when non-empty, repeats the testcase at each instance count.
	Sweep []int
	// Expect are the cross-process invariants asserted after the run.
	Expect Expect
}

// Range is the instances constraint of a testcase.
type Range struct {
	Min, Max, Default int
}

// Param is a typed parameter with a default, testground-style:
// { type = "int", default = 3 }.
type Param struct {
	// Type is one of int, bool, string, duration, enum.
	Type string
	// Default is the typed default value (int64, bool, string).
	Default any
	// Values enumerates the legal enum values.
	Values []string
}

// ChurnPhase is one scheduled process-lifecycle event.
type ChurnPhase struct {
	// Action: "crash" kills the node for good; "crash-restart" kills it
	// and relaunches it with -resume-epoch so it rejoins the schedule.
	Action string
	// Node is the process to churn.
	Node int
	// Epoch is the epoch mid-window of which the kill fires; a restart
	// rejoins at Epoch+1.
	Epoch int
}

// Expect is the set of invariants the runner asserts centrally.
type Expect struct {
	// Agreement: every honest node's per-epoch decision (accepted flag
	// and value) must match every other honest node's.
	Agreement bool
	// Accepted: honest nodes must have accepted (not bottom) each epoch.
	Accepted bool
	// MaxRound bounds the honest decision round (0 = unchecked).
	MaxRound int
	// MinRound lower-bounds the honest decision round (0 = unchecked) —
	// the byzantine chain's delay signature.
	MinRound int
}

// knownParams is the closed set of parameter names a manifest may
// declare, with the type each must carry.
var knownParams = map[string]string{
	"mode":      "enum",
	"t":         "int",
	"delta":     "duration",
	"epochs":    "int",
	"chain_len": "int",
	"slow":      "string",
	"slow_node": "int",
	"nobatch":   "bool",
	"message":   "string",
}

// RunParams is a fully resolved parameter set for one run.
type RunParams struct {
	Mode     string        `json:"mode"`
	T        int           `json:"t"`
	Delta    time.Duration `json:"delta"`
	Epochs   int           `json:"epochs"`
	ChainLen int           `json:"chain_len"`
	Slow     string        `json:"slow,omitempty"`
	SlowNode int           `json:"slow_node"`
	NoBatch  bool          `json:"nobatch"`
	Message  string        `json:"message,omitempty"`
}

// ParseManifest parses and validates a TOML scenario manifest.
func ParseManifest(src string) (*Manifest, error) {
	tree, err := ParseTOML(src)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if name, ok := tree["name"].(string); ok {
		m.Name = name
	}
	if m.Name == "" {
		return nil, fmt.Errorf("manifest: missing top-level name")
	}
	rawCases, ok := tree["testcases"].([]any)
	if !ok || len(rawCases) == 0 {
		return nil, fmt.Errorf("manifest %q: no [[testcases]]", m.Name)
	}
	for i, rawCase := range rawCases {
		caseTbl, ok := rawCase.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("manifest %q: testcase %d is not a table", m.Name, i)
		}
		tc, err := decodeTestcase(caseTbl)
		if err != nil {
			return nil, fmt.Errorf("manifest %q: testcase %d: %w", m.Name, i, err)
		}
		m.Testcases = append(m.Testcases, tc)
	}
	names := map[string]bool{}
	for _, tc := range m.Testcases {
		if names[tc.Name] {
			return nil, fmt.Errorf("manifest %q: duplicate testcase %q", m.Name, tc.Name)
		}
		names[tc.Name] = true
	}
	return m, nil
}

// Case returns the named testcase, or the first one for name "".
func (m *Manifest) Case(name string) (*Testcase, error) {
	if name == "" {
		return &m.Testcases[0], nil
	}
	for i := range m.Testcases {
		if m.Testcases[i].Name == name {
			return &m.Testcases[i], nil
		}
	}
	return nil, fmt.Errorf("manifest %q: no testcase %q", m.Name, name)
}

// decodeTestcase decodes one [[testcases]] table.
func decodeTestcase(tbl map[string]any) (Testcase, error) {
	tc := Testcase{Params: map[string]Param{}}
	name, _ := tbl["name"].(string)
	if name == "" {
		return tc, fmt.Errorf("missing name")
	}
	tc.Name = name

	instTbl, ok := tbl["instances"].(map[string]any)
	if !ok {
		return tc, fmt.Errorf("missing instances = { min, max, default }")
	}
	var err error
	if tc.Instances.Min, err = intField(instTbl, "min"); err != nil {
		return tc, err
	}
	if tc.Instances.Max, err = intField(instTbl, "max"); err != nil {
		return tc, err
	}
	if tc.Instances.Default, err = intField(instTbl, "default"); err != nil {
		return tc, err
	}
	r := tc.Instances
	if r.Min < 2 || r.Max < r.Min || r.Default < r.Min || r.Default > r.Max {
		return tc, fmt.Errorf("bad instances range min=%d max=%d default=%d", r.Min, r.Max, r.Default)
	}

	if rawParams, ok := tbl["params"].(map[string]any); ok {
		keys := make([]string, 0, len(rawParams))
		for k := range rawParams {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			p, perr := decodeParam(key, rawParams[key])
			if perr != nil {
				return tc, perr
			}
			tc.Params[key] = p
		}
	}

	if rawChurn, ok := tbl["churn"].([]any); ok {
		for i, rawPhase := range rawChurn {
			phaseTbl, ok := rawPhase.(map[string]any)
			if !ok {
				return tc, fmt.Errorf("churn %d is not a table", i)
			}
			phase := ChurnPhase{}
			phase.Action, _ = phaseTbl["action"].(string)
			if phase.Action != "crash" && phase.Action != "crash-restart" {
				return tc, fmt.Errorf("churn %d: unknown action %q", i, phase.Action)
			}
			if phase.Node, err = intField(phaseTbl, "node"); err != nil {
				return tc, fmt.Errorf("churn %d: %w", i, err)
			}
			if phase.Epoch, err = intField(phaseTbl, "epoch"); err != nil {
				return tc, fmt.Errorf("churn %d: %w", i, err)
			}
			tc.Churn = append(tc.Churn, phase)
		}
	}

	if rawSweep, ok := tbl["sweep"].(map[string]any); ok {
		list, ok := rawSweep["instances"].([]any)
		if !ok {
			return tc, fmt.Errorf("sweep: missing instances list")
		}
		for _, v := range list {
			iv, ok := v.(int64)
			if !ok {
				return tc, fmt.Errorf("sweep: non-integer instance count %v", v)
			}
			tc.Sweep = append(tc.Sweep, int(iv))
		}
	}

	if rawExpect, ok := tbl["expect"].(map[string]any); ok {
		tc.Expect.Agreement, _ = rawExpect["agreement"].(bool)
		tc.Expect.Accepted, _ = rawExpect["accepted"].(bool)
		if _, ok := rawExpect["max_round"]; ok {
			if tc.Expect.MaxRound, err = intField(rawExpect, "max_round"); err != nil {
				return tc, err
			}
		}
		if _, ok := rawExpect["min_round"]; ok {
			if tc.Expect.MinRound, err = intField(rawExpect, "min_round"); err != nil {
				return tc, err
			}
		}
	}
	return tc, nil
}

// decodeParam decodes one { type = ..., default = ... } entry.
func decodeParam(key string, raw any) (Param, error) {
	wantType, known := knownParams[key]
	if !known {
		return Param{}, fmt.Errorf("param %q: unknown parameter", key)
	}
	tbl, ok := raw.(map[string]any)
	if !ok {
		return Param{}, fmt.Errorf("param %q: expected { type = ..., default = ... }", key)
	}
	p := Param{}
	p.Type, _ = tbl["type"].(string)
	if p.Type != wantType {
		return Param{}, fmt.Errorf("param %q: type %q, want %q", key, p.Type, wantType)
	}
	p.Default = tbl["default"]
	if rawValues, ok := tbl["values"].([]any); ok {
		for _, v := range rawValues {
			s, ok := v.(string)
			if !ok {
				return Param{}, fmt.Errorf("param %q: non-string enum value %v", key, v)
			}
			p.Values = append(p.Values, s)
		}
	}
	if _, err := coerceParam(key, p, p.Default); err != nil {
		return Param{}, fmt.Errorf("param %q: bad default: %w", key, err)
	}
	return p, nil
}

// intField reads a required integer key from a table.
func intField(tbl map[string]any, key string) (int, error) {
	v, ok := tbl[key].(int64)
	if !ok {
		return 0, fmt.Errorf("missing or non-integer %q", key)
	}
	return int(v), nil
}

// coerceParam validates a raw value (default or override) against the
// parameter's type and returns its canonical Go value.
func coerceParam(key string, p Param, raw any) (any, error) {
	switch p.Type {
	case "int":
		switch v := raw.(type) {
		case int64:
			return int(v), nil
		case string:
			var i int
			if _, err := fmt.Sscanf(v, "%d", &i); err != nil {
				return nil, fmt.Errorf("%q is not an int", v)
			}
			return i, nil
		}
	case "bool":
		switch v := raw.(type) {
		case bool:
			return v, nil
		case string:
			return v == "true", nil
		}
	case "string":
		if v, ok := raw.(string); ok {
			return v, nil
		}
	case "duration":
		if v, ok := raw.(string); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, err
			}
			return d, nil
		}
	case "enum":
		v, ok := raw.(string)
		if !ok {
			break
		}
		for _, allowed := range p.Values {
			if v == allowed {
				return v, nil
			}
		}
		return nil, fmt.Errorf("%q not in enum %v", v, p.Values)
	}
	return nil, fmt.Errorf("param %q: value %v does not match type %s", key, raw, p.Type)
}

// ResolveParams merges the testcase defaults with string overrides (CLI
// -param key=value) into the concrete RunParams for one run.
func (tc *Testcase) ResolveParams(overrides map[string]string) (RunParams, error) {
	rp := RunParams{
		Mode:     "erb",
		T:        1,
		Delta:    250 * time.Millisecond,
		Epochs:   1,
		SlowNode: -1,
		Message:  "scenario broadcast",
	}
	apply := func(key string, val any) {
		switch key {
		case "mode":
			rp.Mode = val.(string)
		case "t":
			rp.T = val.(int)
		case "delta":
			rp.Delta = val.(time.Duration)
		case "epochs":
			rp.Epochs = val.(int)
		case "chain_len":
			rp.ChainLen = val.(int)
		case "slow":
			rp.Slow = val.(string)
		case "slow_node":
			rp.SlowNode = val.(int)
		case "nobatch":
			rp.NoBatch = val.(bool)
		case "message":
			rp.Message = val.(string)
		}
	}
	keys := make([]string, 0, len(tc.Params))
	for k := range tc.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		v, err := coerceParam(key, tc.Params[key], tc.Params[key].Default)
		if err != nil {
			return rp, err
		}
		apply(key, v)
	}
	oKeys := make([]string, 0, len(overrides))
	for k := range overrides {
		oKeys = append(oKeys, k)
	}
	sort.Strings(oKeys)
	for _, key := range oKeys {
		p, declared := tc.Params[key]
		if !declared {
			wantType, known := knownParams[key]
			if !known {
				return rp, fmt.Errorf("override %q: unknown parameter", key)
			}
			p = Param{Type: wantType}
			if wantType == "enum" {
				p.Values = []string{"erb", "erng"}
			}
		}
		v, err := coerceParam(key, p, overrides[key])
		if err != nil {
			return rp, fmt.Errorf("override %q: %w", key, err)
		}
		apply(key, v)
	}
	if rp.Mode != "erb" && rp.Mode != "erng" {
		return rp, fmt.Errorf("mode %q not erb or erng", rp.Mode)
	}
	if rp.Epochs < 1 {
		return rp, fmt.Errorf("epochs %d < 1", rp.Epochs)
	}
	return rp, nil
}

// Validate checks a resolved run against the testcase's constraints.
func (tc *Testcase) Validate(n int, rp RunParams) error {
	if n < tc.Instances.Min || n > tc.Instances.Max {
		return fmt.Errorf("instances %d outside [%d, %d]", n, tc.Instances.Min, tc.Instances.Max)
	}
	if 2*rp.T+1 > n {
		return fmt.Errorf("t=%d needs n >= %d, have %d", rp.T, 2*rp.T+1, n)
	}
	if rp.ChainLen > rp.T {
		return fmt.Errorf("chain_len %d exceeds byzantine bound t=%d", rp.ChainLen, rp.T)
	}
	if rp.ChainLen >= n {
		return fmt.Errorf("chain_len %d leaves no honest release node", rp.ChainLen)
	}
	if rp.SlowNode >= n {
		return fmt.Errorf("slow_node %d outside fleet of %d", rp.SlowNode, n)
	}
	for _, phase := range tc.Churn {
		if phase.Node < 0 || phase.Node >= n {
			return fmt.Errorf("churn node %d outside fleet of %d", phase.Node, n)
		}
		if phase.Epoch < 0 || phase.Epoch >= rp.Epochs {
			return fmt.Errorf("churn epoch %d outside schedule of %d epochs", phase.Epoch, rp.Epochs)
		}
		if phase.Action == "crash-restart" && phase.Epoch+1 >= rp.Epochs {
			return fmt.Errorf("crash-restart at epoch %d needs a later epoch to rejoin", phase.Epoch)
		}
	}
	return nil
}

// String renders the resolved parameters compactly for reports.
func (rp RunParams) String() string {
	b, err := json.Marshal(rp)
	if err != nil {
		return fmt.Sprintf("%+v", struct{ RunParams }{rp})
	}
	return strings.ReplaceAll(string(b), `"`, "")
}
