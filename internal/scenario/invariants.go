package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sgxp2p/internal/telemetry"
)

// mergeTraces validates every per-process trace, merges them into one
// globally time-ordered stream (merged.jsonl in outDir) and validates
// the merged stream too — the "trace consistency" invariant. Nodes with
// no trace (SIGKILLed incarnations) are skipped.
func mergeTraces(outDir string, nodes []*NodeOutcome) (string, InvariantResult) {
	inv := InvariantResult{Name: "trace-consistency"}
	var streams [][]telemetry.Event
	var problems []string
	for _, node := range nodes {
		for _, path := range node.TracePaths {
			f, err := os.Open(path)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", filepath.Base(path), err))
				continue
			}
			events, err := telemetry.ReadJSONL(f)
			f.Close()
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", filepath.Base(path), err))
				continue
			}
			streams = append(streams, events)
		}
	}
	merged := telemetry.MergeEvents(streams...)
	mergedPath := filepath.Join(outDir, "merged.jsonl")
	f, err := os.Create(mergedPath)
	if err != nil {
		problems = append(problems, err.Error())
	} else {
		if werr := telemetry.WriteJSONL(f, merged); werr != nil {
			problems = append(problems, werr.Error())
		}
		f.Close()
		// Re-read through the strict validator: the merged stream must
		// satisfy the same schema + monotonicity contract p2ptrace -check
		// enforces.
		rf, rerr := os.Open(mergedPath)
		if rerr != nil {
			problems = append(problems, rerr.Error())
		} else {
			if _, verr := telemetry.ValidateJSONL(rf); verr != nil {
				problems = append(problems, fmt.Sprintf("merged: %v", verr))
			}
			rf.Close()
		}
	}
	if len(problems) > 0 {
		inv.Detail = strings.Join(problems, "; ")
		return mergedPath, inv
	}
	inv.OK = true
	inv.Detail = fmt.Sprintf("%d events across %d traces", len(merged), len(streams))
	return mergedPath, inv
}

// checkStreamParity asserts the live plane lost nothing: for every node
// that exited cleanly, the events it streamed during the run are exactly
// the events it dumped at exit. Crashed nodes are skipped — for them the
// stream is the only record (that asymmetry is the feature, not a
// violation).
func checkStreamParity(agg *Aggregator, nodes []*NodeOutcome) InvariantResult {
	inv := InvariantResult{Name: "stream-parity", OK: true}
	var problems []string
	checked, total := 0, 0
	for _, node := range nodes {
		if node.Crashed || node.FailDetail != "" || len(node.TracePaths) == 0 {
			continue
		}
		var dumped []telemetry.Event
		readOK := true
		for _, path := range node.TracePaths {
			f, err := os.Open(path)
			if err != nil {
				problems = append(problems, fmt.Sprintf("node %d: %v", node.ID, err))
				readOK = false
				break
			}
			events, err := telemetry.ReadJSONL(f)
			f.Close()
			if err != nil {
				problems = append(problems, fmt.Sprintf("node %d: %v", node.ID, err))
				readOK = false
				break
			}
			dumped = append(dumped, events...)
		}
		if !readOK {
			continue
		}
		streamed := telemetry.MergeEvents(agg.NodeEvents(node.ID))
		want := telemetry.MergeEvents(dumped)
		if len(streamed) != len(want) {
			problems = append(problems, fmt.Sprintf("node %d: streamed %d events, dumped %d", node.ID, len(streamed), len(want)))
			continue
		}
		for i := range want {
			if streamed[i] != want[i] {
				problems = append(problems, fmt.Sprintf("node %d: stream diverges from dump at event %d", node.ID, i))
				break
			}
		}
		checked++
		total += len(want)
	}
	if len(problems) > 0 {
		inv.OK = false
		inv.Detail = strings.Join(problems, "; ")
		return inv
	}
	inv.Detail = fmt.Sprintf("%d nodes streamed their full dumps live (%d events, %d stream gaps)", checked, total, agg.Gaps())
	return inv
}

// checkCompletion asserts that every node expected to finish produced a
// result document covering its scheduled epochs.
func checkCompletion(nodes []*NodeOutcome, expectDone map[int]bool, params RunParams) []InvariantResult {
	inv := InvariantResult{Name: "completion", OK: true}
	var missing []string
	for _, node := range nodes {
		if !expectDone[node.ID] {
			continue
		}
		if node.FailDetail != "" {
			missing = append(missing, fmt.Sprintf("node %d failed: %s", node.ID, node.FailDetail))
			continue
		}
		if node.Result == nil {
			missing = append(missing, fmt.Sprintf("node %d wrote no result", node.ID))
			continue
		}
		want := params.Epochs - firstEpoch(node, params)
		if len(node.Result.Epochs) != want {
			missing = append(missing, fmt.Sprintf("node %d covered %d/%d epochs", node.ID, len(node.Result.Epochs), want))
		}
	}
	if len(missing) > 0 {
		inv.OK = false
		inv.Detail = strings.Join(missing, "; ")
	} else {
		inv.Detail = fmt.Sprintf("%d nodes completed their schedules", countExpected(expectDone))
	}
	return []InvariantResult{inv}
}

// firstEpoch is the first epoch a node's final incarnation covers.
func firstEpoch(node *NodeOutcome, params RunParams) int {
	if node.Restarted {
		// The relaunch rejoined one epoch after its crash; its result
		// document starts there.
		if node.Result != nil && len(node.Result.Epochs) > 0 {
			return node.Result.Epochs[0].Epoch
		}
	}
	return 0
}

// countExpected counts nodes expected to complete.
func countExpected(expectDone map[int]bool) int {
	count := 0
	ids := make([]int, 0, len(expectDone))
	for id := range expectDone {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if expectDone[id] {
			count++
		}
	}
	return count
}

// checkDecisions asserts the Expect invariants over honest nodes'
// per-epoch decisions: agreement (same accepted flag and value),
// acceptance, and decision-round bounds.
func checkDecisions(nodes []*NodeOutcome, tc *Testcase, params RunParams) []InvariantResult {
	var out []InvariantResult
	exp := tc.Expect

	// Index honest decisions by epoch.
	type decision struct {
		node     int
		accepted bool
		value    string
		round    uint32
		ok       bool
	}
	byEpoch := make(map[int][]decision)
	for _, node := range nodes {
		if node.Byz || node.Result == nil {
			continue
		}
		for _, ep := range node.Result.Epochs {
			byEpoch[ep.Epoch] = append(byEpoch[ep.Epoch], decision{
				node: node.ID, accepted: ep.Accepted, value: ep.Value, round: ep.Round, ok: ep.OK,
			})
		}
	}
	epochs := make([]int, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)

	if exp.Agreement {
		inv := InvariantResult{Name: "agreement", OK: true}
		var diverged []string
		for _, e := range epochs {
			ds := byEpoch[e]
			for _, d := range ds[1:] {
				if d.accepted != ds[0].accepted || d.value != ds[0].value {
					diverged = append(diverged, fmt.Sprintf(
						"epoch %d: node %d decided (%v,%s) but node %d (%v,%s)",
						e, d.node, d.accepted, short(d.value), ds[0].node, ds[0].accepted, short(ds[0].value)))
				}
			}
		}
		if len(diverged) > 0 {
			inv.OK = false
			inv.Detail = strings.Join(diverged, "; ")
		} else {
			inv.Detail = fmt.Sprintf("honest decisions identical across %d epochs", len(epochs))
		}
		out = append(out, inv)
	}

	if exp.Accepted {
		inv := InvariantResult{Name: "accepted", OK: true}
		var bottoms []string
		for _, e := range epochs {
			for _, d := range byEpoch[e] {
				if !d.ok || !d.accepted {
					bottoms = append(bottoms, fmt.Sprintf("epoch %d: node %d did not accept", e, d.node))
				}
			}
		}
		if len(bottoms) > 0 {
			inv.OK = false
			inv.Detail = strings.Join(bottoms, "; ")
		} else {
			inv.Detail = "every honest node accepted every epoch"
		}
		out = append(out, inv)
	}

	if exp.MaxRound > 0 || exp.MinRound > 0 {
		inv := InvariantResult{Name: "termination-round", OK: true}
		var violations []string
		lo, hi := uint32(0), uint32(0)
		first := true
		for _, e := range epochs {
			for _, d := range byEpoch[e] {
				if !d.accepted {
					continue
				}
				if first || d.round < lo {
					lo = d.round
				}
				if first || d.round > hi {
					hi = d.round
				}
				first = false
				if exp.MaxRound > 0 && int(d.round) > exp.MaxRound {
					violations = append(violations, fmt.Sprintf("epoch %d: node %d decided in round %d > %d", e, d.node, d.round, exp.MaxRound))
				}
				if exp.MinRound > 0 && int(d.round) < exp.MinRound {
					violations = append(violations, fmt.Sprintf("epoch %d: node %d decided in round %d < %d", e, d.node, d.round, exp.MinRound))
				}
			}
		}
		if len(violations) > 0 {
			inv.OK = false
			inv.Detail = strings.Join(violations, "; ")
		} else {
			inv.Detail = fmt.Sprintf("honest decision rounds in [%d, %d]", lo, hi)
		}
		out = append(out, inv)
	}
	return out
}

// short abbreviates a hex value for error messages.
func short(v string) string {
	if len(v) > 12 {
		return v[:12] + "…"
	}
	if v == "" {
		return "<none>"
	}
	return v
}
