package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgxp2p/internal/obsplane"
	"sgxp2p/internal/telemetry"
)

// TestScenarioLiveStream runs the honest ERB case with the live
// observability plane on: every node streams its telemetry and metric
// deltas over the control connection while running. The test asserts the
// central claim of the plane — the streamed event set equals the set each
// node dumps at exit (the stream-parity invariant) — and that the
// aggregate artifacts, probe gauges and reconstructable span hops all
// came in over the live path.
func TestScenarioLiveStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet")
	}
	m := repoManifest(t, "honest-sweep.toml")
	tc, err := m.Case("erb-honest")
	if err != nil {
		t.Fatal(err)
	}
	params, err := tc.ResolveParams(map[string]string{"delta": "250ms", "epochs": "1"})
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	report, err := Run(RunConfig{
		NodeBin:   nodeBin(t),
		Testcase:  tc,
		Params:    params,
		Instances: 4,
		OutDir:    outDir,
		Stream:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var parity *InvariantResult
	for i, inv := range report.Invariants {
		t.Logf("invariant %s: ok=%v %s", inv.Name, inv.OK, inv.Detail)
		if inv.Name == "stream-parity" {
			parity = &report.Invariants[i]
		}
	}
	if !report.Passed {
		t.Fatal("live-stream scenario did not pass")
	}
	if parity == nil {
		t.Fatal("stream-parity invariant missing from a streamed run")
	}
	if !parity.OK {
		t.Fatalf("stream-parity violated: %s", parity.Detail)
	}

	// The aggregate artifacts exist and the streamed stream validates
	// against the same schema contract as the dumps.
	for _, name := range []string{"aggregate.jsonl", "streamed.jsonl"} {
		st, err := os.Stat(filepath.Join(outDir, name))
		if err != nil || st.Size() == 0 {
			t.Fatalf("aggregate artifact %s missing or empty (err=%v)", name, err)
		}
	}
	aggData, err := os.ReadFile(filepath.Join(outDir, "aggregate.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(aggData), "obs_goroutines") {
		t.Fatal("aggregate.jsonl carries no streamed probe gauges")
	}
	f, err := os.Open(filepath.Join(outDir, "streamed.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The streamed events carry span hops and probe gauges arrived as
	// metric deltas — the whole live plane, with no post-hoc dump needed.
	g := obsplane.Reconstruct(streamed)
	if len(g.Spans) == 0 {
		t.Fatal("no causal spans reconstructable from the live stream")
	}
	complete := 0
	for i := range g.Spans {
		if g.Spans[i].Complete() {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no complete cross-process span chains in the live stream")
	}
}
