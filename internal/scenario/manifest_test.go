package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// repoManifest loads one of the checked-in scenario manifests.
func repoManifest(t *testing.T, name string) *Manifest {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseManifest(string(data))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return m
}

// TestCheckedInManifestsParse pins that all four shipped manifests parse
// and resolve with their defaults.
func TestCheckedInManifestsParse(t *testing.T) {
	for _, name := range []string{
		"honest-sweep.toml", "byzantine-chain.toml", "crash-restart.toml", "slow-link.toml",
	} {
		m := repoManifest(t, name)
		for i := range m.Testcases {
			tc := &m.Testcases[i]
			rp, err := tc.ResolveParams(nil)
			if err != nil {
				t.Fatalf("%s/%s: resolve: %v", name, tc.Name, err)
			}
			if err := tc.Validate(tc.Instances.Default, rp); err != nil {
				t.Fatalf("%s/%s: validate: %v", name, tc.Name, err)
			}
			for _, n := range tc.Sweep {
				if err := tc.Validate(n, rp); err != nil {
					t.Fatalf("%s/%s: sweep n=%d: %v", name, tc.Name, n, err)
				}
			}
		}
	}
}

// TestResolveParamsDefaultsAndOverrides pins the merge order: built-in
// defaults, then manifest defaults, then CLI overrides.
func TestResolveParamsDefaultsAndOverrides(t *testing.T) {
	m := repoManifest(t, "honest-sweep.toml")
	tc, err := m.Case("erb-honest")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := tc.ResolveParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Mode != "erb" || rp.T != 1 || rp.Delta != 200*time.Millisecond || rp.Epochs != 2 {
		t.Fatalf("defaults = %+v", rp)
	}
	rp, err = tc.ResolveParams(map[string]string{"epochs": "5", "delta": "90ms", "mode": "erng"})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Epochs != 5 || rp.Delta != 90*time.Millisecond || rp.Mode != "erng" {
		t.Fatalf("overrides = %+v", rp)
	}
	if _, err := tc.ResolveParams(map[string]string{"mode": "paxos"}); err == nil {
		t.Fatal("bad enum override accepted")
	}
	if _, err := tc.ResolveParams(map[string]string{"warp": "9"}); err == nil {
		t.Fatal("unknown override accepted")
	}
}

// TestManifestValidation pins the schema-level rejections.
func TestManifestValidation(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`name = "x"`, "no [[testcases]]"},
		{
			"name = \"x\"\n[[testcases]]\ninstances = { min = 2, max = 4, default = 2 }",
			"missing name",
		},
		{
			"name = \"x\"\n[[testcases]]\nname = \"a\"\ninstances = { min = 8, max = 4, default = 8 }",
			"bad instances range",
		},
		{
			"name = \"x\"\n[[testcases]]\nname = \"a\"\ninstances = { min = 2, max = 4, default = 2 }\n[testcases.params]\nwarp = { type = \"int\", default = 1 }",
			"unknown parameter",
		},
		{
			"name = \"x\"\n[[testcases]]\nname = \"a\"\ninstances = { min = 2, max = 4, default = 2 }\n[[testcases.churn]]\naction = \"explode\"\nnode = 0\nepoch = 0",
			"unknown action",
		},
		{
			"name = \"x\"\n[[testcases]]\nname = \"a\"\ninstances = { min = 2, max = 4, default = 2 }\n[[testcases]]\nname = \"a\"\ninstances = { min = 2, max = 4, default = 2 }",
			"duplicate testcase",
		},
	}
	for _, tc := range cases {
		if _, err := ParseManifest(tc.src); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseManifest err = %v, want substring %q", err, tc.wantSub)
		}
	}
}

// TestValidateRunConstraints pins the run-level checks: instance bounds,
// the 2t+1 relation, chain and churn ranges.
func TestValidateRunConstraints(t *testing.T) {
	m := repoManifest(t, "crash-restart.toml")
	tc, err := m.Case("")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := tc.ResolveParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Validate(4, rp); err == nil {
		t.Fatal("instances below min accepted")
	}
	if err := tc.Validate(1000, rp); err == nil {
		t.Fatal("instances above max accepted")
	}
	bad := rp
	bad.T = 10
	if err := tc.Validate(5, bad); err == nil {
		t.Fatal("t above (n-1)/2 accepted")
	}
	bad = rp
	bad.ChainLen = rp.T + 1
	if err := tc.Validate(5, bad); err == nil {
		t.Fatal("chain_len above t accepted")
	}
	bad = rp
	bad.Epochs = 2
	if err := tc.Validate(5, bad); err == nil {
		t.Fatal("crash-restart with no rejoin epoch accepted")
	}
}
