package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// protocolRounds is the lockstep round count of both live protocols for
// a byzantine bound t: ERB runs t+2 rounds from a round-1 start, and
// basic ERNG embeds an ERB engine with the same window (erb.Engine.Rounds
// and erng.Basic.Rounds — the runner must agree with p2pnode on this so
// both compute the same epoch schedule).
func protocolRounds(t int) int { return t + 2 }

// epochWindow mirrors p2pnode's epoch slot: protocol rounds plus two
// rounds of slack, each round 2Δ long.
func epochWindow(rounds int, delta time.Duration) time.Duration {
	return time.Duration(rounds+2) * 2 * delta
}

// NodeResult mirrors p2pnode's -result-out JSON document.
type NodeResult struct {
	ID     int           `json:"id"`
	Mode   string        `json:"mode"`
	N      int           `json:"n"`
	T      int           `json:"t"`
	Byz    bool          `json:"byz"`
	Epochs []EpochResult `json:"epochs"`
}

// EpochResult is one epoch's outcome at one node.
type EpochResult struct {
	Epoch    int    `json:"epoch"`
	OK       bool   `json:"ok"`
	Accepted bool   `json:"accepted"`
	Value    string `json:"value,omitempty"`
	Round    uint32 `json:"round,omitempty"`
	Note     string `json:"note,omitempty"`
}

// NodeOutcome is everything the runner learned about one node.
type NodeOutcome struct {
	// ID is the node id; Byz marks a byzantine role (chain member).
	ID  int
	Byz bool
	// Crashed marks a node a churn phase killed; Restarted that a new
	// incarnation rejoined.
	Crashed   bool
	Restarted bool
	// Result is the (final incarnation's) parsed result document, nil if
	// the node never wrote one.
	Result *NodeResult
	// TracePaths are the JSONL traces the node's incarnations dumped.
	TracePaths []string
	// FailDetail is the FAIL reason the node reported, empty otherwise.
	FailDetail string
}

// InvariantResult is one centrally asserted cross-process invariant.
type InvariantResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// RunReport is the outcome of one orchestrated testcase run.
type RunReport struct {
	Testcase   string            `json:"testcase"`
	N          int               `json:"n"`
	Params     RunParams         `json:"params"`
	Window     time.Duration     `json:"window_ns"`
	WallTime   time.Duration     `json:"wall_time_ns"`
	Nodes      []*NodeOutcome    `json:"-"`
	Invariants []InvariantResult `json:"invariants"`
	MergedPath string            `json:"merged_trace,omitempty"`
	Passed     bool              `json:"passed"`
}

// RunConfig configures one orchestrated run.
type RunConfig struct {
	// NodeBin is the p2pnode binary (see BuildNodeBin).
	NodeBin string
	// Testcase and the resolved Params drive the fleet.
	Testcase *Testcase
	Params   RunParams
	// Instances is the process count (0 = the testcase default).
	Instances int
	// OutDir receives traces, results, logs and the merged trace.
	OutDir string
	// StartDelay is the gap between barrier release and round 1; 0
	// picks a default scaled to the fleet size.
	StartDelay time.Duration
	// Stream turns on the live observability plane: every node streams
	// telemetry events (with causal span hops) and metric deltas over its
	// control connection, a resource probe samples its process gauges,
	// and the runner aggregates per-round fleet percentiles live and
	// writes aggregate.jsonl + streamed.jsonl next to the dumps.
	Stream bool
	// ProbeInterval overrides the node resource-probe period when
	// streaming (0 = the node's default).
	ProbeInterval time.Duration
	// Profile arms pprof-on-violation: nodes run with -profile-dir at
	// OutDir/profiles, a node that times out at the run deadline gets a
	// PROF request (CPU + heap capture) before the fleet is reaped, and
	// a node that FAILs self-captures a heap snapshot.
	Profile bool
	// Log, when non-nil, receives run narration.
	Log io.Writer
}

// profileGrace is how long the runner waits after requesting profiles
// from wedged nodes before reaping them — the node's CPU capture window
// plus writing slack.
const profileGrace = 3 * time.Second

// Run orchestrates one testcase: spawn the fleet, run the barrier
// handshake, fire churn phases, collect traces and results, assert the
// invariants.
func Run(cfg RunConfig) (*RunReport, error) {
	n := cfg.Instances
	if n == 0 {
		n = cfg.Testcase.Instances.Default
	}
	if err := cfg.Testcase.Validate(n, cfg.Params); err != nil {
		return nil, err
	}
	if cfg.NodeBin == "" {
		return nil, fmt.Errorf("scenario: no node binary")
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	rounds := protocolRounds(cfg.Params.T)
	window := epochWindow(rounds, cfg.Params.Delta)
	report := &RunReport{Testcase: cfg.Testcase.Name, N: n, Params: cfg.Params, Window: window}
	began := time.Now() //lint:allow detrand the orchestrator times real OS processes; wall-clock is the quantity being reported

	barrier, err := NewBarrier(n)
	if err != nil {
		return nil, err
	}
	defer barrier.Close()

	var agg *Aggregator
	if cfg.Stream {
		agg = NewAggregator(n, cfg.Log)
		barrier.SetStreamSink(agg.Ingest)
	}
	if cfg.Profile {
		if err := os.MkdirAll(filepath.Join(cfg.OutDir, "profiles"), 0o755); err != nil {
			return nil, err
		}
	}

	fleet := &fleet{
		cfg: cfg, n: n, barrier: barrier,
		outcomes: make([]*NodeOutcome, n),
	}
	for id := 0; id < n; id++ {
		fleet.outcomes[id] = &NodeOutcome{ID: id, Byz: id < cfg.Params.ChainLen}
	}
	defer fleet.killAll()

	for id := 0; id < n; id++ {
		if err := fleet.spawn(id, 0, 0, "127.0.0.1:0"); err != nil {
			return nil, err
		}
	}
	logf("scenario %s: %d processes spawned, waiting at barrier", cfg.Testcase.Name, n)

	readyTimeout := 30*time.Second + time.Duration(n)*200*time.Millisecond
	if err := barrier.AwaitReady(readyTimeout); err != nil {
		return nil, err
	}
	startDelay := cfg.StartDelay
	if startDelay == 0 {
		startDelay = 3*time.Second + time.Duration(n)*15*time.Millisecond
	}
	start := time.Now().Add(startDelay) //lint:allow detrand the fleet start epoch is a real wall-clock rendezvous shared with child processes
	if err := barrier.Release(start); err != nil {
		return nil, err
	}
	logf("scenario %s: barrier released, round 1 in %v, window %v", cfg.Testcase.Name, startDelay, window)

	// Churn phases: kill mid-window; a crash-restart relaunches the node
	// immediately with -resume-epoch so it rejoins at the next boundary.
	var churnWG sync.WaitGroup
	for _, phase := range cfg.Testcase.Churn {
		killAt := start.Add(time.Duration(phase.Epoch)*window + window/2)
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			//lint:allow lockstep churn kills real processes at wall-clock epochs; there is no virtual clock spanning the fleet
			time.Sleep(time.Until(killAt)) //lint:allow detrand churn kills real processes at wall-clock epochs; there is no virtual clock spanning the fleet
			fleet.kill(phase.Node)
			fleet.outcomes[phase.Node].Crashed = true
			logf("scenario %s: churn: killed node %d mid-epoch %d", cfg.Testcase.Name, phase.Node, phase.Epoch)
			if phase.Action != "crash-restart" {
				return
			}
			addr, ok := barrier.NodeAddr(phase.Node)
			if !ok {
				logf("scenario %s: churn: node %d has no recorded address", cfg.Testcase.Name, phase.Node)
				return
			}
			fleet.outcomes[phase.Node].Restarted = true
			if err := fleet.spawn(phase.Node, 1, phase.Epoch+1, addr); err != nil {
				logf("scenario %s: churn: relaunch of node %d failed: %v", cfg.Testcase.Name, phase.Node, err)
			} else {
				logf("scenario %s: churn: relaunched node %d for epoch %d", cfg.Testcase.Name, phase.Node, phase.Epoch+1)
			}
		}()
	}

	// Every node is expected to report DONE except pure-crash victims.
	expectDone := make(map[int]bool, n)
	for id := 0; id < n; id++ {
		expectDone[id] = true
	}
	for _, phase := range cfg.Testcase.Churn {
		if phase.Action == "crash" {
			expectDone[phase.Node] = false
		}
	}
	pending := 0
	for id := 0; id < n; id++ {
		if expectDone[id] {
			pending++
		}
	}

	deadline := time.Until(start) + time.Duration(cfg.Params.Epochs)*window + 2*window + 30*time.Second //lint:allow detrand run deadline tracks the real fleet's wall-clock start epoch
	timeout := time.After(deadline)                                                                     //lint:allow lockstep collection deadline for real processes; no virtual clock spans the fleet
	terminal := make(map[int]bool, n)
collect:
	for pending > 0 {
		select {
		case ev := <-barrier.Events():
			switch ev.Kind {
			case "done":
				if expectDone[ev.ID] && !terminal[ev.ID] {
					terminal[ev.ID] = true
					pending--
				}
			case "fail":
				fleet.outcomes[ev.ID].FailDetail = ev.Detail
				if expectDone[ev.ID] && !terminal[ev.ID] {
					terminal[ev.ID] = true
					pending--
				}
				logf("scenario %s: node %d failed: %s", cfg.Testcase.Name, ev.ID, ev.Detail)
			}
		case <-timeout:
			logf("scenario %s: run deadline hit with %d nodes pending", cfg.Testcase.Name, pending)
			if cfg.Profile {
				// pprof-on-violation: ask every wedged node for a CPU+heap
				// capture and give the window time to run before reaping.
				asked := 0
				for id := 0; id < n; id++ {
					if expectDone[id] && !terminal[id] {
						barrier.SendProf(id)
						asked++
					}
				}
				if asked > 0 {
					logf("scenario %s: requested profiles from %d wedged nodes", cfg.Testcase.Name, asked)
					//lint:allow lockstep waits out real child-process profile captures in wall time
					time.Sleep(profileGrace)
				}
			}
			break collect
		}
	}
	churnWG.Wait()
	fleet.killAll()
	fleet.reap()
	report.WallTime = time.Since(began) //lint:allow detrand the orchestrator times real OS processes; wall-clock is the quantity being reported

	// Collect results and traces from whatever each node dumped.
	for id := 0; id < n; id++ {
		out := fleet.outcomes[id]
		for inc := 0; inc <= 1; inc++ {
			resPath := filepath.Join(cfg.OutDir, resultName(id, inc))
			if doc, rerr := readResult(resPath); rerr == nil {
				out.Result = doc
			}
			tracePath := filepath.Join(cfg.OutDir, traceName(id, inc))
			if st, serr := os.Stat(tracePath); serr == nil && st.Size() >= 0 {
				out.TracePaths = append(out.TracePaths, tracePath)
			}
		}
	}
	report.Nodes = fleet.outcomes

	merged, mergeRes := mergeTraces(cfg.OutDir, fleet.outcomes)
	report.MergedPath = merged
	report.Invariants = append(report.Invariants, mergeRes)
	report.Invariants = append(report.Invariants, checkCompletion(fleet.outcomes, expectDone, cfg.Params)...)
	report.Invariants = append(report.Invariants, checkDecisions(fleet.outcomes, cfg.Testcase, cfg.Params)...)
	if agg != nil {
		if aerr := agg.WriteArtifacts(cfg.OutDir); aerr != nil {
			logf("scenario %s: aggregate artifacts: %v", cfg.Testcase.Name, aerr)
		}
		report.Invariants = append(report.Invariants, checkStreamParity(agg, fleet.outcomes))
	}

	report.Passed = true
	for _, inv := range report.Invariants {
		if !inv.OK {
			report.Passed = false
		}
	}
	logf("scenario %s: %s in %v", cfg.Testcase.Name, passFail(report.Passed), report.WallTime.Round(time.Millisecond))
	return report, nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// traceName and resultName fix the per-incarnation artifact layout.
func traceName(id, incarnation int) string {
	return fmt.Sprintf("trace-%d-%d.jsonl", id, incarnation)
}
func resultName(id, incarnation int) string {
	return fmt.Sprintf("result-%d-%d.json", id, incarnation)
}

// readResult parses one node result document.
func readResult(path string) (*NodeResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &NodeResult{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// fleet manages the node processes of one run.
type fleet struct {
	cfg     RunConfig
	n       int
	barrier *Barrier

	mu       sync.Mutex
	procs    map[int]*exec.Cmd
	logs     []*os.File
	outcomes []*NodeOutcome
}

// spawn launches one node process (incarnation 0 = original, 1 =
// churn relaunch) and leaves it running.
func (f *fleet) spawn(id, incarnation, resumeEpoch int, listen string) error {
	p := f.cfg.Params
	args := []string{
		"-id", strconv.Itoa(id),
		"-n", strconv.Itoa(f.n),
		"-t", strconv.Itoa(p.T),
		"-delta", p.Delta.String(),
		"-mode", p.Mode,
		"-epochs", strconv.Itoa(p.Epochs),
		"-control", f.barrier.Addr(),
		"-listen", listen,
		"-message", p.Message,
		"-trace", filepath.Join(f.cfg.OutDir, traceName(id, incarnation)),
		"-result-out", filepath.Join(f.cfg.OutDir, resultName(id, incarnation)),
	}
	if resumeEpoch > 0 {
		args = append(args, "-resume-epoch", strconv.Itoa(resumeEpoch))
	}
	if p.ChainLen > 0 {
		args = append(args, "-chain-len", strconv.Itoa(p.ChainLen))
	}
	if p.Slow != "" && (p.SlowNode < 0 || p.SlowNode == id) {
		args = append(args, "-slow", p.Slow)
	}
	if p.NoBatch {
		args = append(args, "-nobatch")
	}
	if f.cfg.Stream {
		args = append(args, "-stream", "-spans")
		if f.cfg.ProbeInterval > 0 {
			args = append(args, "-probe-interval", f.cfg.ProbeInterval.String())
		} else {
			args = append(args, "-probe-interval", "250ms")
		}
	}
	if f.cfg.Profile {
		args = append(args, "-profile-dir", filepath.Join(f.cfg.OutDir, "profiles"))
	}
	cmd := exec.Command(f.cfg.NodeBin, args...)
	logPath := filepath.Join(f.cfg.OutDir, fmt.Sprintf("node-%d-%d.log", id, incarnation))
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("spawn node %d: %w", id, err)
	}
	f.mu.Lock()
	if f.procs == nil {
		f.procs = make(map[int]*exec.Cmd, f.n)
	}
	f.procs[id] = cmd
	f.logs = append(f.logs, logFile)
	f.mu.Unlock()
	return nil
}

// kill SIGKILLs one node process — the crash half of a churn phase.
func (f *fleet) kill(id int) {
	f.mu.Lock()
	cmd := f.procs[id]
	delete(f.procs, id)
	f.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
}

// killAll terminates every still-running process.
func (f *fleet) killAll() {
	f.mu.Lock()
	ids := make([]int, 0, len(f.procs))
	for id := range f.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cmds := make([]*exec.Cmd, 0, len(ids))
	for _, id := range ids {
		cmds = append(cmds, f.procs[id])
	}
	f.procs = map[int]*exec.Cmd{}
	f.mu.Unlock()
	for _, cmd := range cmds {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}
}

// reap closes the per-node log files.
func (f *fleet) reap() {
	f.mu.Lock()
	logs := f.logs
	f.logs = nil
	f.mu.Unlock()
	for _, lf := range logs {
		lf.Close()
	}
}

// BuildNodeBin compiles cmd/p2pnode into dir and returns the binary
// path — the auto-build the runner and the e2e tests share.
func BuildNodeBin(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	out := filepath.Join(dir, "p2pnode")
	cmd := exec.Command("go", "build", "-o", out, "./cmd/p2pnode")
	cmd.Dir = root
	if msg, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building p2pnode: %v\n%s", err, msg)
	}
	return out, nil
}

// moduleRoot locates the repository root by walking up to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
