package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTOML parses the subset of TOML the scenario manifests use into a
// tree of map[string]any / []any / string / int64 / float64 / bool.
//
// Supported syntax — deliberately the slice of the language the
// testground/lotus-soup composition files exercise, nothing more:
//
//   - comments (# to end of line) and blank lines
//   - [table] and [dotted.table] headers
//   - [[array.of.tables]] headers
//   - key = value with bare or dotted keys
//   - values: "strings", integers, floats, booleans,
//     [arrays, of, values], and { inline = "tables" }
//
// Durations travel as strings ("250ms") and are parsed by the schema
// layer; TOML datetimes, multi-line strings and literal strings are not
// part of the subset and are rejected with a line-numbered error.
func ParseTOML(src string) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("toml line %d: malformed array-of-tables header %q", lineNo+1, line)
			}
			path := strings.TrimSpace(line[2 : len(line)-2])
			tbl, err := appendTable(root, path)
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %w", lineNo+1, err)
			}
			cur = tbl
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("toml line %d: malformed table header %q", lineNo+1, line)
			}
			path := strings.TrimSpace(line[1 : len(line)-1])
			tbl, err := descendTable(root, path)
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %w", lineNo+1, err)
			}
			cur = tbl
		default:
			key, rest, found := strings.Cut(line, "=")
			if !found {
				return nil, fmt.Errorf("toml line %d: expected key = value, got %q", lineNo+1, line)
			}
			val, trailing, err := parseValue(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %w", lineNo+1, err)
			}
			if strings.TrimSpace(trailing) != "" {
				return nil, fmt.Errorf("toml line %d: trailing data %q after value", lineNo+1, trailing)
			}
			if err := setKey(cur, strings.TrimSpace(key), val); err != nil {
				return nil, fmt.Errorf("toml line %d: %w", lineNo+1, err)
			}
		}
	}
	return root, nil
}

// stripComment removes a # comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// descendTable walks (creating) nested tables along a dotted path.
func descendTable(root map[string]any, path string) (map[string]any, error) {
	cur := root
	for _, part := range strings.Split(path, ".") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty table path segment in %q", path)
		}
		switch node := cur[part].(type) {
		case nil:
			next := map[string]any{}
			cur[part] = next
			cur = next
		case map[string]any:
			cur = node
		case []any:
			// [a.b] under [[a]] attaches to the latest array element.
			if len(node) == 0 {
				return nil, fmt.Errorf("table path %q crosses empty array", path)
			}
			last, ok := node[len(node)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("table path %q crosses non-table array", path)
			}
			cur = last
		default:
			return nil, fmt.Errorf("key %q already holds a value, not a table", part)
		}
	}
	return cur, nil
}

// appendTable appends a fresh table to the array-of-tables at path.
func appendTable(root map[string]any, path string) (map[string]any, error) {
	parent := root
	parts := strings.Split(path, ".")
	if len(parts) > 1 {
		var err error
		parent, err = descendTable(root, strings.Join(parts[:len(parts)-1], "."))
		if err != nil {
			return nil, err
		}
	}
	key := strings.TrimSpace(parts[len(parts)-1])
	tbl := map[string]any{}
	switch node := parent[key].(type) {
	case nil:
		parent[key] = []any{tbl}
	case []any:
		parent[key] = append(node, tbl)
	default:
		return nil, fmt.Errorf("key %q already holds a non-array value", key)
	}
	return tbl, nil
}

// setKey stores a value under a bare or dotted key.
func setKey(tbl map[string]any, key string, val any) error {
	parts := strings.Split(key, ".")
	for i, part := range parts[:len(parts)-1] {
		part = strings.TrimSpace(part)
		sub, err := descendTable(tbl, part)
		if err != nil {
			return fmt.Errorf("dotted key %q segment %d: %w", key, i, err)
		}
		tbl = sub
	}
	last := strings.TrimSpace(parts[len(parts)-1])
	if last == "" {
		return fmt.Errorf("empty key")
	}
	if _, exists := tbl[last]; exists {
		return fmt.Errorf("duplicate key %q", last)
	}
	tbl[last] = val
	return nil
}

// parseValue parses one TOML value from the front of s, returning the
// value and whatever follows it.
func parseValue(s string) (any, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, "", fmt.Errorf("missing value")
	}
	switch s[0] {
	case '"':
		return parseString(s)
	case '[':
		return parseArray(s)
	case '{':
		return parseInlineTable(s)
	}
	// Bare scalar: runs to the next delimiter.
	end := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == ']' || s[i] == '}' {
			end = i
			break
		}
	}
	tok := strings.TrimSpace(s[:end])
	rest := s[end:]
	switch tok {
	case "true":
		return true, rest, nil
	case "false":
		return false, rest, nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i, rest, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, rest, nil
	}
	return nil, "", fmt.Errorf("unrecognized value %q", tok)
}

// parseString parses a basic "..." string with \-escapes.
func parseString(s string) (any, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return nil, "", fmt.Errorf("dangling escape in string")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return nil, "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return nil, "", fmt.Errorf("unterminated string")
}

// parseArray parses [v, v, ...].
func parseArray(s string) (any, string, error) {
	out := []any{}
	rest := strings.TrimSpace(s[1:])
	for {
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated array")
		}
		if rest[0] == ']' {
			return out, rest[1:], nil
		}
		val, r, err := parseValue(rest)
		if err != nil {
			return nil, "", err
		}
		out = append(out, val)
		rest = strings.TrimSpace(r)
		if rest != "" && rest[0] == ',' {
			rest = strings.TrimSpace(rest[1:])
		}
	}
}

// parseInlineTable parses { k = v, ... }.
func parseInlineTable(s string) (any, string, error) {
	out := map[string]any{}
	rest := strings.TrimSpace(s[1:])
	for {
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated inline table")
		}
		if rest[0] == '}' {
			return out, rest[1:], nil
		}
		key, r, found := strings.Cut(rest, "=")
		if !found {
			return nil, "", fmt.Errorf("inline table: expected key = value in %q", rest)
		}
		val, r2, err := parseValue(strings.TrimSpace(r))
		if err != nil {
			return nil, "", err
		}
		if err := setKey(out, strings.TrimSpace(key), val); err != nil {
			return nil, "", err
		}
		rest = strings.TrimSpace(r2)
		if rest != "" && rest[0] == ',' {
			rest = strings.TrimSpace(rest[1:])
		}
	}
}
