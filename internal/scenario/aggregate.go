package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sgxp2p/internal/telemetry"
)

// Aggregator ingests the fleet's live telemetry streams (the EV/MT lines
// the barrier routes to its stream sink) and folds them into fleet-level
// views while the run is still going:
//
//   - per-round percentiles: every node's round events carry its
//     round-entry instant on the shared clock; once a round has a sample
//     from every node, the spread (p50/p90/max of entry skew) is logged
//     live — no post-hoc trace merge needed to watch the fleet march.
//   - metric gauges: the latest streamed value of every metric row per
//     node, so resource pressure (the obsplane probe gauges) is visible
//     next to protocol progress.
//   - retained event streams per node, for the streamed-equals-dumped
//     invariant and for span reconstruction over nodes that never dump.
//
// Ingest runs on the barrier's per-connection goroutines; everything is
// guarded by one mutex — the streams are a few lines per node per poll
// interval, nowhere near contention.
type Aggregator struct {
	mu  sync.Mutex
	n   int
	log io.Writer

	events  map[int][]telemetry.Event
	metrics map[int]map[string]float64
	rounds  map[uint32]map[int]time.Duration
	seen    map[uint32]bool
	lastSeq map[int]uint64
	gaps    int
}

// NewAggregator creates an aggregator for an n-node fleet. log, when
// non-nil, receives the live per-round timeline.
func NewAggregator(n int, log io.Writer) *Aggregator {
	return &Aggregator{
		n: n, log: log,
		events:  make(map[int][]telemetry.Event, n),
		metrics: make(map[int]map[string]float64, n),
		rounds:  make(map[uint32]map[int]time.Duration),
		seen:    make(map[uint32]bool),
		lastSeq: make(map[int]uint64, n),
	}
}

// Ingest consumes one streamed line from node id. Malformed lines are
// counted as gaps, never fatal: a half-written line from a dying process
// is expected input here.
func (a *Aggregator) Ingest(id int, line string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case strings.HasPrefix(line, "EV "):
		a.ingestEvent(id, line[len("EV "):])
	case strings.HasPrefix(line, "MT "):
		a.ingestMetric(id, line[len("MT "):])
	}
}

func (a *Aggregator) ingestEvent(id int, rest string) {
	seqTok, payload, ok := strings.Cut(rest, " ")
	if !ok {
		a.gaps++
		return
	}
	seq, err := strconv.ParseUint(seqTok, 10, 64)
	if err != nil {
		a.gaps++
		return
	}
	ev, err := telemetry.DecodeEventLine([]byte(payload))
	if err != nil {
		a.gaps++
		return
	}
	// Sequence continuity per node: a jump means lines were lost (a new
	// incarnation restarts at 1, which also reads as a jump — both are
	// worth surfacing in the summary, neither is fatal).
	if last := a.lastSeq[id]; seq != last+1 && !(last == 0 && seq == 1) {
		a.gaps++
	}
	a.lastSeq[id] = seq
	a.events[id] = append(a.events[id], ev)
	if ev.Kind == telemetry.KindRound && int(ev.Node) == id {
		byNode := a.rounds[ev.Round]
		if byNode == nil {
			byNode = make(map[int]time.Duration, a.n)
			a.rounds[ev.Round] = byNode
		}
		if _, dup := byNode[id]; !dup {
			byNode[id] = ev.At
			if len(byNode) == a.n {
				a.reportRound(ev.Round, byNode)
			}
		}
	}
}

func (a *Aggregator) ingestMetric(id int, rest string) {
	// MT <seq> <kind> <name> <value>
	f := strings.Fields(rest)
	if len(f) != 4 {
		a.gaps++
		return
	}
	v, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		a.gaps++
		return
	}
	m := a.metrics[id]
	if m == nil {
		m = make(map[string]float64)
		a.metrics[id] = m
	}
	m[f[1]+" "+f[2]] = v
}

// reportRound logs one complete round's entry-skew percentiles (mu held).
// Skew is each node's round-entry instant minus the fleet's earliest —
// the live view of assumption S2 holding (or drifting) across the fleet.
func (a *Aggregator) reportRound(round uint32, byNode map[int]time.Duration) {
	if a.seen[round] {
		return
	}
	a.seen[round] = true
	stats := roundSkew(byNode)
	if a.log != nil {
		fmt.Fprintf(a.log, "  round %d: %d/%d nodes, entry skew p50=%v p90=%v max=%v\n",
			round, len(byNode), a.n, stats.P50, stats.P90, stats.Max)
	}
}

// skewStats is one round's fleet entry-skew distribution.
type skewStats struct {
	Round uint32        `json:"round"`
	Nodes int           `json:"nodes"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	Max   time.Duration `json:"max_ns"`
}

// roundSkew folds one round's per-node entry instants into percentiles.
func roundSkew(byNode map[int]time.Duration) skewStats {
	at := make([]time.Duration, 0, len(byNode))
	for _, d := range byNode {
		at = append(at, d)
	}
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	base := at[0]
	for i := range at {
		at[i] -= base
	}
	return skewStats{
		Nodes: len(byNode),
		P50:   at[len(at)/2],
		P90:   at[len(at)*9/10],
		Max:   at[len(at)-1],
	}
}

// Streams returns a copy of the per-node streamed event slices, ready for
// telemetry.MergeEvents. Safe to call after the fleet is gone.
func (a *Aggregator) Streams() [][]telemetry.Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]int, 0, len(a.events))
	for id := range a.events {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]telemetry.Event, 0, len(ids))
	for _, id := range ids {
		out = append(out, append([]telemetry.Event(nil), a.events[id]...))
	}
	return out
}

// NodeEvents returns the events streamed by one node, in arrival order.
func (a *Aggregator) NodeEvents(id int) []telemetry.Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]telemetry.Event(nil), a.events[id]...)
}

// Gaps reports how many malformed or out-of-sequence stream lines were
// seen — nonzero under churn (a relaunch restarts its sequence), zero in
// a clean run.
func (a *Aggregator) Gaps() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gaps
}

// WriteArtifacts persists the aggregated views into outDir:
//
//	aggregate.jsonl  one line per completed round's skew percentiles,
//	                 then one line per node's final streamed gauge set
//	streamed.jsonl   the merged streamed event stream (same format as
//	                 merged.jsonl, but built from live lines — for a
//	                 SIGKILLed node this is the only trace that exists)
func (a *Aggregator) WriteArtifacts(outDir string) error {
	a.mu.Lock()
	rounds := make([]uint32, 0, len(a.rounds))
	for r := range a.rounds {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	rows := make([]skewStats, 0, len(rounds))
	for _, r := range rounds {
		st := roundSkew(a.rounds[r])
		st.Round = r
		rows = append(rows, st)
	}
	type gaugeRow struct {
		Node    int                `json:"node"`
		Metrics map[string]float64 `json:"metrics"`
	}
	gids := make([]int, 0, len(a.metrics))
	for id := range a.metrics {
		gids = append(gids, id)
	}
	sort.Ints(gids)
	gauges := make([]gaugeRow, 0, len(gids))
	for _, id := range gids {
		m := make(map[string]float64, len(a.metrics[id]))
		for k, v := range a.metrics[id] {
			m[k] = v
		}
		gauges = append(gauges, gaugeRow{Node: id, Metrics: m})
	}
	a.mu.Unlock()

	writeAggregate := func(path string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		enc := json.NewEncoder(bw)
		for _, row := range rows {
			if err = enc.Encode(row); err != nil {
				f.Close()
				return err
			}
		}
		for _, g := range gauges {
			if err = enc.Encode(g); err != nil {
				f.Close()
				return err
			}
		}
		if err = bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeAggregate(filepath.Join(outDir, "aggregate.jsonl")); err != nil {
		return err
	}

	sf, err := os.Create(filepath.Join(outDir, "streamed.jsonl"))
	if err != nil {
		return err
	}
	merged := telemetry.MergeEvents(a.Streams()...)
	if err := telemetry.WriteJSONL(sf, merged); err != nil {
		sf.Close()
		return err
	}
	return sf.Close()
}
