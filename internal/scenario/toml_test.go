package scenario

import (
	"strings"
	"testing"
)

// TestParseTOMLManifestShape pins the subset the manifests use: tables,
// array-of-tables, inline tables, typed params, arrays, comments.
func TestParseTOMLManifestShape(t *testing.T) {
	src := `
# a comment
name = "demo"   # trailing comment

[[testcases]]
name = "case-a"
instances = { min = 4, max = 512, default = 8 }

[testcases.params]
mode  = { type = "enum", values = ["erb", "erng"], default = "erb" }
t     = { type = "int", default = 3 }
delta = { type = "duration", default = "250ms" }

[[testcases.churn]]
action = "crash-restart"
node = 4
epoch = 1

[testcases.sweep]
instances = [4, 8, 16]

[[testcases]]
name = "case-b"
instances = { min = 2, max = 2, default = 2 }
`
	tree, err := ParseTOML(src)
	if err != nil {
		t.Fatal(err)
	}
	if tree["name"] != "demo" {
		t.Fatalf("name = %v", tree["name"])
	}
	cases, ok := tree["testcases"].([]any)
	if !ok || len(cases) != 2 {
		t.Fatalf("testcases = %#v", tree["testcases"])
	}
	caseA := cases[0].(map[string]any)
	if caseA["name"] != "case-a" {
		t.Fatalf("case-a name = %v", caseA["name"])
	}
	inst := caseA["instances"].(map[string]any)
	if inst["min"] != int64(4) || inst["max"] != int64(512) || inst["default"] != int64(8) {
		t.Fatalf("instances = %#v", inst)
	}
	params := caseA["params"].(map[string]any)
	mode := params["mode"].(map[string]any)
	if vals := mode["values"].([]any); len(vals) != 2 || vals[1] != "erng" {
		t.Fatalf("mode values = %#v", mode["values"])
	}
	churn := caseA["churn"].([]any)
	if phase := churn[0].(map[string]any); phase["action"] != "crash-restart" || phase["node"] != int64(4) {
		t.Fatalf("churn = %#v", churn)
	}
	sweep := caseA["sweep"].(map[string]any)
	if list := sweep["instances"].([]any); len(list) != 3 || list[2] != int64(16) {
		t.Fatalf("sweep = %#v", sweep)
	}
	caseB := cases[1].(map[string]any)
	if caseB["name"] != "case-b" {
		t.Fatalf("case-b = %#v", caseB)
	}
}

// TestParseTOMLErrors pins line-numbered rejection of what the subset
// does not support.
func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"key", "expected key = value"},
		{"a = 1\na = 2", "duplicate key"},
		{"[broken", "malformed table header"},
		{"a = \"unterminated", "unterminated string"},
		{"a = [1, 2", "unterminated array"},
		{"a = { b = 1", "unterminated inline table"},
		{"a = 1999-01-01T00:00:00Z", "unrecognized value"},
		{"a = 1 trailing", "unrecognized value"},
	}
	for _, tc := range cases {
		if _, err := ParseTOML(tc.src); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseTOML(%q) err = %v, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

// TestParseTOMLValueTypes pins scalar decoding: strings with escapes,
// ints, floats, bools, and # inside strings.
func TestParseTOMLValueTypes(t *testing.T) {
	tree, err := ParseTOML(`
s = "with \"quote\" and # hash"
i = -42
f = 2.5
b = true
`)
	if err != nil {
		t.Fatal(err)
	}
	if tree["s"] != `with "quote" and # hash` {
		t.Fatalf("s = %q", tree["s"])
	}
	if tree["i"] != int64(-42) || tree["f"] != 2.5 || tree["b"] != true {
		t.Fatalf("scalars = %v %v %v", tree["i"], tree["f"], tree["b"])
	}
}
