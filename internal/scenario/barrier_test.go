package scenario

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// fakeNode is a minimal stand-in for p2pnode's control client.
type fakeNode struct {
	conn net.Conn
	rd   *bufio.Reader
}

func dialFake(t *testing.T, addr string, id int, listen string) *fakeNode {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "READY %d %s\n", id, listen)
	return &fakeNode{conn: conn, rd: bufio.NewReader(conn)}
}

func (f *fakeNode) line(t *testing.T) string {
	t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := f.rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

// TestBarrierHandshake pins the READY→PEERS+START→DONE conversation.
func TestBarrierHandshake(t *testing.T) {
	b, err := NewBarrier(3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	nodes := make([]*fakeNode, 3)
	for i := 0; i < 3; i++ {
		nodes[i] = dialFake(t, b.Addr(), i, fmt.Sprintf("127.0.0.1:9%02d0", i))
		defer nodes[i].conn.Close()
	}
	if err := b.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now().Add(500 * time.Millisecond)
	if err := b.Release(start); err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		peers := node.line(t)
		want := "PEERS 0=127.0.0.1:9000,1=127.0.0.1:9010,2=127.0.0.1:9020"
		if peers != want {
			t.Fatalf("node %d got %q, want %q", i, peers, want)
		}
		startLine := node.line(t)
		if startLine != fmt.Sprintf("START %d", start.UnixMilli()) {
			t.Fatalf("node %d got %q", i, startLine)
		}
	}

	fmt.Fprintf(nodes[0].conn, "DONE\n")
	fmt.Fprintf(nodes[1].conn, "FAIL boom\n")
	nodes[2].conn.Close()

	got := map[string]int{}
	deadline := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-b.Events():
			if ev.Kind != "ready" {
				got[fmt.Sprintf("%d:%s", ev.ID, ev.Kind)] = 1
				if ev.Kind == "fail" && ev.Detail != "boom" {
					t.Fatalf("fail detail %q", ev.Detail)
				}
			}
		case <-deadline:
			t.Fatalf("events so far: %v", got)
		}
	}
	for _, want := range []string{"0:done", "1:fail", "2:disconnect"} {
		if got[want] == 0 {
			t.Fatalf("missing event %s in %v", want, got)
		}
	}
}

// TestBarrierLateJoiner pins the restart path: a READY arriving after
// the release gets the same PEERS table and START instant immediately.
func TestBarrierLateJoiner(t *testing.T) {
	b, err := NewBarrier(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	n0 := dialFake(t, b.Addr(), 0, "127.0.0.1:9100")
	defer n0.conn.Close()
	n1 := dialFake(t, b.Addr(), 1, "127.0.0.1:9110")
	if err := b.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now().Add(time.Second)
	if err := b.Release(start); err != nil {
		t.Fatal(err)
	}
	n0.line(t)
	n0.line(t)
	n1.line(t)
	n1.line(t)

	// Node 1 "crashes" and a new incarnation checks in late.
	n1.conn.Close()
	n1b := dialFake(t, b.Addr(), 1, "127.0.0.1:9110")
	defer n1b.conn.Close()
	peers := n1b.line(t)
	if peers != "PEERS 0=127.0.0.1:9100,1=127.0.0.1:9110" {
		t.Fatalf("late joiner peers %q", peers)
	}
	startLine := n1b.line(t)
	if startLine != fmt.Sprintf("START %d", start.UnixMilli()) {
		t.Fatalf("late joiner start %q (want the original instant)", startLine)
	}
	if addr, ok := b.NodeAddr(1); !ok || addr != "127.0.0.1:9110" {
		t.Fatalf("NodeAddr(1) = %q, %v", addr, ok)
	}
}

// TestBarrierAwaitReadyTimeout pins the actionable timeout message.
func TestBarrierAwaitReadyTimeout(t *testing.T) {
	b, err := NewBarrier(3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	n0 := dialFake(t, b.Addr(), 0, "127.0.0.1:9200")
	defer n0.conn.Close()
	// Give the barrier a moment to register node 0.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := b.NodeAddr(0); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	err = b.AwaitReady(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "missing [1 2]") {
		t.Fatalf("err = %v, want missing [1 2]", err)
	}
}
