package adversary_test

import (
	"reflect"
	"testing"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/wire"
)

// sink is a minimal runtime.Transport that records sends, for exercising
// the OS without a deployment.
type sink struct {
	sent []wire.NodeID
}

func (s *sink) Send(dst wire.NodeID, payload []byte)             { s.sent = append(s.sent, dst) }
func (s *sink) SetHandler(func(src wire.NodeID, payload []byte)) {}
func (s *sink) Detach()                                          {}
func (s *sink) After(d time.Duration, fn func())                 { fn() }
func (s *sink) Now() time.Duration                               { return 0 }

// TestDrainDeterministic: the teardown fate of held envelopes is a pure
// function of the OS seed — two OSes fed the same hold queue drain into
// the identical release/discard split and release order.
func TestDrainDeterministic(t *testing.T) {
	run := func() (int, int, []wire.NodeID, adversary.Stats) {
		tr := &sink{}
		os := adversary.Wrap(7, tr, adversary.DelayAll(), 4242)
		for i := 0; i < 16; i++ {
			os.Send(wire.NodeID(i%5), []byte{byte(i)})
		}
		if got := os.HeldCount(); got != 16 {
			t.Fatalf("held %d, want 16", got)
		}
		rel, dis := os.Drain()
		return rel, dis, tr.sent, os.Stats()
	}
	rel1, dis1, sent1, st1 := run()
	rel2, dis2, sent2, st2 := run()
	if rel1+dis1 != 16 {
		t.Fatalf("drain lost envelopes: released=%d discarded=%d", rel1, dis1)
	}
	if rel1 == 0 || dis1 == 0 {
		t.Fatalf("degenerate coin sequence (released=%d discarded=%d): pick a different seed", rel1, dis1)
	}
	if rel1 != rel2 || dis1 != dis2 || !reflect.DeepEqual(sent1, sent2) {
		t.Fatalf("same seed drained differently: %d/%d %v vs %d/%d %v",
			rel1, dis1, sent1, rel2, dis2, sent2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if os2 := adversary.Wrap(7, &sink{}, nil, 4242); func() int { r, d := os2.Drain(); return r + d }() != 0 {
		t.Fatal("drain of an empty hold queue moved envelopes")
	}
	if st1.Held != 16 || st1.Delivered != uint64(rel1) || st1.Dropped != uint64(dis1) {
		t.Fatalf("stats inconsistent with drain: %+v (released=%d discarded=%d)", st1, rel1, dis1)
	}
}

// TestDrainThenReleaseEmpty: Drain empties the hold queue, so a later
// Release is a no-op — teardown cannot double-deliver.
func TestDrainThenReleaseEmpty(t *testing.T) {
	tr := &sink{}
	os := adversary.Wrap(1, tr, adversary.DelayAll(), 9)
	os.Send(2, []byte{0xAA})
	os.Drain()
	before := len(tr.sent)
	os.Release()
	if os.HeldCount() != 0 || len(tr.sent) != before {
		t.Fatal("Release after Drain moved envelopes")
	}
}

// TestSwitchableMidStream: the chaos engine flips a node's behavior at a
// round boundary by swapping the Switchable's inner behavior; the OS
// wrapper itself never changes.
func TestSwitchableMidStream(t *testing.T) {
	tr := &sink{}
	sw := adversary.NewSwitchable(nil)
	os := adversary.Wrap(3, tr, sw, 1)

	os.Send(0, []byte{1}) // honest: delivered
	sw.Set(adversary.OmitAll())
	os.Send(0, []byte{2}) // omitted
	sw.Set(nil)
	os.Send(0, []byte{3}) // honest again

	if got := len(tr.sent); got != 2 {
		t.Fatalf("delivered %d envelopes, want 2 (flip to omit-all dropped the middle one)", got)
	}
	if st := os.Stats(); st.Dropped != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if sw.Current() != nil {
		t.Fatal("Current() != nil after flipping back to honest")
	}
}

// TestSwitchableForwardsEpochs: NewEpoch reaches the inner behavior
// through the switch, so epochal behaviors re-roll across instances even
// when installed mid-run.
func TestSwitchableForwardsEpochs(t *testing.T) {
	var epochs []uint32
	sw := adversary.NewSwitchable(nil)
	sw.NewEpoch(1) // inner nil: must not panic
	sw.Set(epochalFunc(func(e uint32) { epochs = append(epochs, e) }))
	sw.NewEpoch(2)
	sw.NewEpoch(3)
	if !reflect.DeepEqual(epochs, []uint32{2, 3}) {
		t.Fatalf("inner behavior saw epochs %v, want [2 3]", epochs)
	}
}

// epochalFunc is a Behavior that only cares about epoch boundaries.
type epochalFunc func(epoch uint32)

func (f epochalFunc) Outbound(wire.NodeID, int) adversary.Action { return adversary.Deliver }
func (f epochalFunc) NewEpoch(epoch uint32)                      { f(epoch) }
