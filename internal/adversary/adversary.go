// Package adversary implements the byzantine operating system: the
// untrusted layer below the enclave that owns the network.
//
// Its capabilities mirror the paper's attack taxonomy (Section 2.3):
//
//	A1 execution deviation — impossible below the channel: the OS cannot
//	   run modified protocol code whose messages honest enclaves accept
//	   (measurement-bound keys); it can only inject garbage, which fails
//	   authentication. InjectForged models the attempt.
//	A2 message forgery — CorruptEverything / InjectForged flip or invent
//	   envelope bytes; the channel rejects them (tested to reduce to
//	   omissions).
//	A3 selective omission — OmitAll, OmitTo, OmitProbabilistic, Chain.
//	   Content-based omission is structurally impossible: Behavior sees
//	   only (destination, size), never plaintext (property P3).
//	A4 message delay — DelayAll holds envelopes and releases them later;
//	   lockstep round stamps (P5) turn late deliveries into omissions.
//	A5 message replay — the OS records every envelope it has carried and
//	   can replay recorded envelopes at any time; sequence numbers (P6)
//	   and round stamps make replays reduce to omissions.
//
// The key structural property: a Behavior receives the destination and the
// envelope size, never the envelope contents, let alone the plaintext.
// That is the blind-box guarantee (P3) expressed in the type system.
package adversary

import (
	"math/rand"
	"time"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// Action is the OS's disposition for one outbound envelope.
type Action int

// Possible dispositions.
const (
	// Deliver forwards the envelope unchanged.
	Deliver Action = iota + 1
	// Drop omits the envelope.
	Drop
	// Hold stores the envelope for a later Release (delay attack A4).
	Hold
	// Corrupt flips a bit and then delivers (forgery attempt A2).
	Corrupt
)

// Behavior decides the disposition of outbound envelopes. Implementations
// observe only the destination and size — the blind-box property P3.
type Behavior interface {
	Outbound(dst wire.NodeID, size int) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(dst wire.NodeID, size int) Action

// Outbound implements Behavior.
func (f BehaviorFunc) Outbound(dst wire.NodeID, size int) Action { return f(dst, size) }

// Epochal is implemented by behaviors that re-roll their disposition at
// instance boundaries (e.g. probabilistic misbehaviour in the sanitization
// experiment of Appendix D).
type Epochal interface {
	NewEpoch(epoch uint32)
}

// Stats counts what the byzantine OS did.
type Stats struct {
	Delivered uint64
	Dropped   uint64
	Held      uint64
	Corrupted uint64
	Replayed  uint64
	Forged    uint64
}

// heldEnvelope is an envelope under a delay attack.
type heldEnvelope struct {
	dst     wire.NodeID
	payload []byte
}

// captured is a recorded envelope available for replay.
type captured struct {
	dst     wire.NodeID
	payload []byte
}

// OS wraps a node's transport with byzantine behaviour. It satisfies
// runtime.Transport so it can be injected via deploy.Options.Wrap.
type OS struct {
	id       wire.NodeID
	inner    runtime.Transport
	behavior Behavior
	rng      *rand.Rand
	held     []heldEnvelope
	recorded []captured
	maxTape  int
	stats    Stats
}

var _ runtime.Transport = (*OS)(nil)

// Wrap builds a byzantine OS around a genuine transport. behavior nil
// means honest passthrough (useful as a recording tap). seed drives the
// corruption bit choices.
func Wrap(id wire.NodeID, inner runtime.Transport, behavior Behavior, seed int64) *OS {
	return &OS{
		id:       id,
		inner:    inner,
		behavior: behavior,
		rng:      rand.New(rand.NewSource(seed)),
		maxTape:  4096,
	}
}

// ID returns the wrapped node's id.
func (o *OS) ID() wire.NodeID { return o.id }

// Stats returns a snapshot of the OS's activity counters.
func (o *OS) Stats() Stats { return o.stats }

// Send implements runtime.Transport, applying the behaviour.
func (o *OS) Send(dst wire.NodeID, payload []byte) {
	o.record(dst, payload)
	act := Deliver
	if o.behavior != nil {
		act = o.behavior.Outbound(dst, len(payload))
	}
	switch act {
	case Drop:
		o.stats.Dropped++
	case Hold:
		o.stats.Held++
		// The runtime reuses its seal buffer after Send returns, so a
		// held envelope must own its bytes.
		o.held = append(o.held, heldEnvelope{dst: dst, payload: append([]byte(nil), payload...)})
	case Corrupt:
		o.stats.Corrupted++
		bad := append([]byte(nil), payload...)
		if len(bad) > 0 {
			i := o.rng.Intn(len(bad))
			bad[i] ^= 1 << uint(o.rng.Intn(8))
		}
		o.inner.Send(dst, bad)
	default:
		o.stats.Delivered++
		o.inner.Send(dst, payload)
	}
}

// record keeps a bounded tape of every envelope for later replay (A5).
func (o *OS) record(dst wire.NodeID, payload []byte) {
	if len(o.recorded) >= o.maxTape {
		return
	}
	o.recorded = append(o.recorded, captured{dst: dst, payload: append([]byte(nil), payload...)})
}

// Release delivers all held envelopes now — the second half of the delay
// attack A4. Receivers' lockstep checks will discard them.
func (o *OS) Release() {
	held := o.held
	o.held = nil
	for _, h := range held {
		o.stats.Delivered++
		o.inner.Send(h.dst, h.payload)
	}
}

// HeldCount returns how many envelopes are currently held.
func (o *OS) HeldCount() int { return len(o.held) }

// Drain disposes of every held envelope at teardown: each one is released
// or discarded by a coin from the OS's own seeded rng. Before Drain
// existed, deployment shutdown simply dropped the hold queue, so the fate
// of delayed envelopes depended on whether the test bothered to Release —
// now teardown under the same seed produces the same release/discard
// sequence and delayed-delivery runs are replayable bit-for-bit. Released
// envelopes carry stale round stamps, so receivers discard them (P5).
func (o *OS) Drain() (released, discarded int) {
	held := o.held
	o.held = nil
	for _, h := range held {
		if o.rng.Intn(2) == 0 {
			o.stats.Delivered++
			o.inner.Send(h.dst, h.payload)
			released++
		} else {
			o.stats.Dropped++
			discarded++
		}
	}
	return released, discarded
}

// ReplayTape re-sends every recorded envelope to its original destination
// (attack A5). Returns the number replayed.
func (o *OS) ReplayTape() int {
	n := len(o.recorded)
	for _, c := range o.recorded {
		o.stats.Replayed++
		o.inner.Send(c.dst, append([]byte(nil), c.payload...))
	}
	return n
}

// InjectForged sends size bytes of OS-chosen garbage to dst — the best
// available approximation of message forgery (A2) without enclave keys.
func (o *OS) InjectForged(dst wire.NodeID, size int) {
	buf := make([]byte, size)
	o.rng.Read(buf)
	o.stats.Forged++
	o.inner.Send(dst, buf)
}

// NewEpoch forwards the epoch boundary to epochal behaviours.
func (o *OS) NewEpoch(epoch uint32) {
	if e, ok := o.behavior.(Epochal); ok {
		e.NewEpoch(epoch)
	}
}

// SetHandler implements runtime.Transport.
func (o *OS) SetHandler(h func(src wire.NodeID, payload []byte)) { o.inner.SetHandler(h) }

// Detach implements runtime.Transport.
func (o *OS) Detach() { o.inner.Detach() }

// After implements runtime.Transport.
func (o *OS) After(d time.Duration, fn func()) { o.inner.After(d, fn) }

// Now implements runtime.Transport.
func (o *OS) Now() time.Duration { return o.inner.Now() }

// OmitAll drops every outbound envelope.
func OmitAll() Behavior {
	return BehaviorFunc(func(wire.NodeID, int) Action { return Drop })
}

// OmitTo drops envelopes to destinations matching the predicate
// (identity-based selective omission, A3).
func OmitTo(pred func(dst wire.NodeID) bool) Behavior {
	return BehaviorFunc(func(dst wire.NodeID, _ int) Action {
		if pred(dst) {
			return Drop
		}
		return Deliver
	})
}

// OmitProbabilistic drops each envelope independently with probability p.
func OmitProbabilistic(p float64, seed int64) Behavior {
	rng := rand.New(rand.NewSource(seed))
	return BehaviorFunc(func(wire.NodeID, int) Action {
		if rng.Float64() < p {
			return Drop
		}
		return Deliver
	})
}

// CorruptEverything flips one bit of every outbound envelope (A2).
func CorruptEverything() Behavior {
	return BehaviorFunc(func(wire.NodeID, int) Action { return Corrupt })
}

// DelayAll holds every outbound envelope for later Release (A4).
func DelayAll() Behavior {
	return BehaviorFunc(func(wire.NodeID, int) Action { return Hold })
}

// Chain implements the worst-case strategy of Section 6.3: each byzantine
// node forwards only to the next byzantine node in the chain (getting
// itself eliminated by P4), delaying honest acceptance to ~f+2 rounds. The
// last chain member releases to the designated honest node.
//
// self is the position of this node within chain; release is the honest
// node the final member forwards to.
func Chain(chain []wire.NodeID, self int, release wire.NodeID) Behavior {
	var next wire.NodeID
	if self+1 < len(chain) {
		next = chain[self+1]
	} else {
		next = release
	}
	return BehaviorFunc(func(dst wire.NodeID, _ int) Action {
		if dst == next {
			return Deliver
		}
		return Drop
	})
}

// Switchable is a Behavior whose underlying behavior can be swapped while
// the network runs — the primitive behind the chaos engine's FlipBehavior
// (an adversary that changes strategy at a round boundary). A nil current
// behavior is honest passthrough. It is not goroutine-safe; flips happen
// on the simulation event loop, like every other behavior decision.
type Switchable struct {
	current Behavior
}

// NewSwitchable builds a switchable behavior starting as b (nil = honest).
func NewSwitchable(b Behavior) *Switchable { return &Switchable{current: b} }

// Set swaps the underlying behavior (nil = honest passthrough).
func (s *Switchable) Set(b Behavior) { s.current = b }

// Current returns the underlying behavior.
func (s *Switchable) Current() Behavior { return s.current }

// Outbound implements Behavior.
func (s *Switchable) Outbound(dst wire.NodeID, size int) Action {
	if s.current == nil {
		return Deliver
	}
	return s.current.Outbound(dst, size)
}

// NewEpoch implements Epochal, forwarding to the current behavior.
func (s *Switchable) NewEpoch(epoch uint32) {
	if e, ok := s.current.(Epochal); ok {
		e.NewEpoch(epoch)
	}
}

// probabilisticEpoch is the Appendix-D misbehaviour model: at every epoch
// the node decides with probability p to misbehave (omit everything) for
// that entire instance.
type probabilisticEpoch struct {
	p      float64
	rng    *rand.Rand
	active bool
}

// MisbehaveWithProbability returns an epochal behaviour that, per epoch,
// omits all messages with probability p and behaves honestly otherwise —
// the activation model of Theorems D.1/D.2.
func MisbehaveWithProbability(p float64, seed int64) Behavior {
	b := &probabilisticEpoch{p: p, rng: rand.New(rand.NewSource(seed))}
	b.NewEpoch(0)
	return b
}

// NewEpoch implements Epochal.
func (b *probabilisticEpoch) NewEpoch(uint32) {
	b.active = b.rng.Float64() < b.p
}

// Outbound implements Behavior.
func (b *probabilisticEpoch) Outbound(wire.NodeID, int) Action {
	if b.active {
		return Drop
	}
	return Deliver
}
