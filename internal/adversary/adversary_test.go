package adversary_test

import (
	"testing"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// harness bundles a deployment with ERB engines and the byzantine OSes.
type harness struct {
	d       *deploy.Deployment
	engines []*erb.Engine
	oses    map[wire.NodeID]*adversary.OS
}

// build creates an n-node deployment where behaviors[id] != nil marks a
// byzantine node with that behaviour; all nodes get a recording OS so
// tests can replay tapes.
func build(t *testing.T, n, byz int, seed int64, behaviors map[wire.NodeID]adversary.Behavior) *harness {
	t.Helper()
	h := &harness{oses: make(map[wire.NodeID]*adversary.OS)}
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: seed,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			os := adversary.Wrap(id, tr, behaviors[id], seed+int64(id))
			h.oses[id] = os
			return os
		},
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	h.d = d
	return h
}

func (h *harness) startERB(t *testing.T, byz int, initiator wire.NodeID, v wire.Value) {
	t.Helper()
	h.engines = make([]*erb.Engine, len(h.d.Peers))
	for i, p := range h.d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{T: byz, ExpectedInitiators: []wire.NodeID{initiator}})
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		h.engines[i] = eng
	}
	h.engines[initiator].SetInput(v)
	for i, p := range h.d.Peers {
		p.Start(h.engines[i], h.engines[i].Rounds())
	}
}

func val(b byte) wire.Value {
	var v wire.Value
	v[0] = b
	return v
}

// checkAgreement asserts all honest nodes (ids >= firstHonest) decided the
// same outcome and returns (accepted?, value, maxRound).
func (h *harness) checkAgreement(t *testing.T, firstHonest int, initiator wire.NodeID) (bool, wire.Value, uint32) {
	t.Helper()
	var accepted, bottom int
	var v wire.Value
	var maxRound uint32
	for i := firstHonest; i < len(h.engines); i++ {
		res, ok := h.engines[i].Result(initiator)
		if !ok {
			t.Fatalf("honest peer %d undecided", i)
		}
		if res.Accepted {
			accepted++
			v = res.Value
		} else {
			bottom++
		}
		if res.Round > maxRound {
			maxRound = res.Round
		}
	}
	if accepted > 0 && bottom > 0 {
		t.Fatalf("agreement violated: %d accepted, %d bottom", accepted, bottom)
	}
	return accepted > 0, v, maxRound
}

func TestCorruptionReducesToOmission(t *testing.T) {
	// A byzantine relay that corrupts every envelope (A2) must be
	// indistinguishable from one that omits: honest nodes reject the
	// envelopes (auth failures) and agreement holds.
	const n, byz = 7, 3
	h := build(t, n, byz, 21, map[wire.NodeID]adversary.Behavior{
		1: adversary.CorruptEverything(),
		2: adversary.CorruptEverything(),
	})
	h.startERB(t, byz, 0, val(0x33))
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, _ := h.checkAgreement(t, 3, 0)
	if !ok || v != val(0x33) {
		t.Fatalf("honest outcome (%v, %v), want accepted 0x33", ok, v)
	}
	var authFails uint64
	for i := 3; i < n; i++ {
		authFails += h.d.Peers[i].Stats().AuthFailures
	}
	if authFails == 0 {
		t.Fatal("no auth failures recorded despite corrupting relays")
	}
	if h.oses[1].Stats().Corrupted == 0 {
		t.Fatal("corruptor OS never corrupted")
	}
}

func TestForgedEnvelopesRejected(t *testing.T) {
	const n, byz = 5, 2
	h := build(t, n, byz, 22, nil)
	h.startERB(t, byz, 0, val(0x44))
	// Inject garbage from node 1's OS to node 2 right away.
	h.d.Sim.At(0, func() {
		for i := 0; i < 10; i++ {
			h.oses[1].InjectForged(2, 109)
		}
	})
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, _ := h.checkAgreement(t, 0, 0)
	if !ok || v != val(0x44) {
		t.Fatalf("outcome (%v, %v), want accepted 0x44", ok, v)
	}
	if got := h.d.Peers[2].Stats().AuthFailures; got < 10 {
		t.Fatalf("peer 2 auth failures = %d, want >= 10", got)
	}
	if h.oses[1].Stats().Forged != 10 {
		t.Fatalf("forged = %d, want 10", h.oses[1].Stats().Forged)
	}
}

func TestDelayAttackReducesToOmission(t *testing.T) {
	// Node 1's OS holds all its envelopes (A4) and releases them two
	// rounds later: receivers' lockstep checks discard them.
	const n, byz = 5, 2
	behaviors := map[wire.NodeID]adversary.Behavior{1: adversary.DelayAll()}
	h := build(t, n, byz, 23, behaviors)
	h.startERB(t, byz, 0, val(0x55))
	// Release just before node 1 halts at the end of round 2 (t = 4s with
	// the default 1s delta): the held ECHO is stamped round 2 but arrives
	// during round 3, so receivers discard it (P5).
	h.d.Sim.At(2*h.d.RoundDuration()-100*time.Millisecond, func() { h.oses[1].Release() })
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, _ := h.checkAgreement(t, 2, 0)
	if !ok || v != val(0x55) {
		t.Fatalf("outcome (%v, %v), want accepted 0x55", ok, v)
	}
	var mismatches uint64
	for i := 0; i < n; i++ {
		mismatches += h.d.Peers[i].Stats().RoundMismatches
	}
	if mismatches == 0 {
		t.Fatal("released delayed envelopes were not discarded by the round check")
	}
	if h.oses[1].Stats().Held == 0 {
		t.Fatal("delaying OS never held anything")
	}
}

func TestReplayAttackRejectedAcrossInstances(t *testing.T) {
	// Run one honest instance while recording node 1's tape; then bump
	// sequence numbers and replay the whole tape into the next instance:
	// every replayed envelope must be discarded (P6).
	const n, byz = 5, 2
	h := build(t, n, byz, 24, nil)
	h.startERB(t, byz, 0, val(0x66))
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, _, _ := h.checkAgreement(t, 0, 0)
	if !ok {
		t.Fatal("honest warmup instance did not accept")
	}
	for _, p := range h.d.Peers {
		p.BumpSeqs()
	}
	// Second instance: initiator 2 broadcasts; node 1 replays its tape.
	h.startERB(t, byz, 2, val(0x77))
	h.d.Sim.After(0, func() {
		if n := h.oses[1].ReplayTape(); n == 0 {
			t.Error("nothing to replay")
		}
	})
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, _ := h.checkAgreement(t, 0, 2)
	if !ok || v != val(0x77) {
		t.Fatalf("outcome (%v, %v), want accepted 0x77", ok, v)
	}
	// The replayed warmup value must not resurface anywhere.
	for i, eng := range h.engines {
		if res, found := eng.Result(0); found && res.Accepted {
			t.Fatalf("peer %d accepted a replayed instance-0 value: %+v", i, res)
		}
	}
}

func TestChainStrategyDelaysTermination(t *testing.T) {
	// Byzantine chain 0 -> 1 -> 2 -> (release to 3): termination should
	// stretch to about f+2 rounds and all chain members must halt.
	const n, byz = 9, 4
	chain := []wire.NodeID{0, 1, 2}
	behaviors := make(map[wire.NodeID]adversary.Behavior, len(chain))
	for i, id := range chain {
		behaviors[id] = adversary.Chain(chain, i, 3)
	}
	h := build(t, n, byz, 25, behaviors)
	h.startERB(t, byz, 0, val(0x88))
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, maxRound := h.checkAgreement(t, 3, 0)
	if !ok || v != val(0x88) {
		t.Fatalf("outcome (%v, %v), want accepted 0x88", ok, v)
	}
	f := len(chain)
	if maxRound < uint32(f) || maxRound > uint32(f+2) {
		t.Fatalf("termination round %d, want about f+2 = %d", maxRound, f+2)
	}
	for _, id := range chain {
		if !h.d.Peers[id].Halted() {
			t.Fatalf("chain member %d not eliminated", id)
		}
	}
}

func TestChainLongerChainTerminatesLater(t *testing.T) {
	run := func(chainLen int) uint32 {
		const n, byz = 13, 6
		chain := make([]wire.NodeID, chainLen)
		for i := range chain {
			chain[i] = wire.NodeID(i)
		}
		behaviors := make(map[wire.NodeID]adversary.Behavior, chainLen)
		for i, id := range chain {
			behaviors[id] = adversary.Chain(chain, i, wire.NodeID(chainLen))
		}
		h := build(t, n, byz, 26, behaviors)
		h.startERB(t, byz, 0, val(0x99))
		if err := h.d.Run(); err != nil {
			t.Fatal(err)
		}
		_, _, maxRound := h.checkAgreement(t, chainLen, 0)
		return maxRound
	}
	short := run(2)
	long := run(5)
	if long <= short {
		t.Fatalf("longer chain did not delay termination: %d vs %d", short, long)
	}
}

func TestOmitProbabilisticDropsSome(t *testing.T) {
	const n, byz = 7, 3
	h := build(t, n, byz, 27, map[wire.NodeID]adversary.Behavior{
		1: adversary.OmitProbabilistic(0.5, 99),
	})
	h.startERB(t, byz, 0, val(0xAA))
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	h.checkAgreement(t, 3, 0)
	st := h.oses[1].Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("p=0.5 omission produced stats %+v, want both drops and deliveries", st)
	}
}

func TestMisbehaveWithProbabilityEpochal(t *testing.T) {
	b := adversary.MisbehaveWithProbability(0.5, 7)
	activeEpochs := 0
	const epochs = 200
	for e := 0; e < epochs; e++ {
		b.(adversary.Epochal).NewEpoch(uint32(e))
		if b.Outbound(1, 100) == adversary.Drop {
			activeEpochs++
		}
		// Within one epoch the disposition is stable.
		first := b.Outbound(1, 100)
		for i := 0; i < 5; i++ {
			if b.Outbound(wire.NodeID(i), 50) != first {
				t.Fatal("disposition changed within an epoch")
			}
		}
	}
	if activeEpochs < epochs/4 || activeEpochs > epochs*3/4 {
		t.Fatalf("active in %d/%d epochs, want about half", activeEpochs, epochs)
	}
}

func TestOmitToPredicate(t *testing.T) {
	b := adversary.OmitTo(func(dst wire.NodeID) bool { return dst%2 == 0 })
	if b.Outbound(2, 10) != adversary.Drop {
		t.Fatal("even destination not dropped")
	}
	if b.Outbound(3, 10) != adversary.Deliver {
		t.Fatal("odd destination not delivered")
	}
}

func TestWrapNilBehaviorIsHonest(t *testing.T) {
	const n, byz = 5, 2
	h := build(t, n, byz, 28, nil) // all OSes honest recorders
	h.startERB(t, byz, 0, val(0xBB))
	if err := h.d.Run(); err != nil {
		t.Fatal(err)
	}
	ok, v, maxRound := h.checkAgreement(t, 0, 0)
	if !ok || v != val(0xBB) || maxRound > 2 {
		t.Fatalf("honest run through recording OSes degraded: ok=%v v=%v round=%d", ok, v, maxRound)
	}
	for id, os := range h.oses {
		if os.Stats().Dropped != 0 {
			t.Fatalf("honest OS %d dropped messages", id)
		}
	}
}
