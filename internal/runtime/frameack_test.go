package runtime_test

import (
	"testing"

	"sgxp2p/internal/deploy"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// These tests pin the frame-cumulative acknowledgment path: when a
// multi-message batch frame carries every tracked message of a flush
// window, the receiver may answer with ONE valueless ACK naming the
// sealed frame instead of one digest ACK per message, and the sender
// credits the whole window's trackers through it. Anything that breaks
// the frame's uniformity — a selective protocol, a mid-frame flush, a
// destination outside the window's cover — must fall back to classic
// per-message digest ACKs with no change in P4 halting behaviour.

// frameAckFixture runs one scripted round on a 5-node deployment: peer 0
// multicasts two tracked messages in round 1 (one flush window, so every
// receiver gets a single two-message frame) and receivers run onMsg.
type frameAckFixture struct {
	d      *deploy.Deployment
	tr     *telemetry.Tracer
	probes []*probe
}

func newFrameAckFixture(t *testing.T, threshold int, onMsg func(pr *probe, m *wire.Message)) *frameAckFixture {
	t.Helper()
	tr := telemetry.New(telemetry.Options{})
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		for _, v := range []wire.Value{{0x01}, {0x02}} {
			msg := &wire.Message{
				Type: wire.TypeEcho, Sender: 0, Initiator: 0,
				Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: v,
			}
			if err := sender.peer.Multicast(nil, msg, threshold); err != nil {
				t.Errorf("Multicast: %v", err)
			}
		}
	}
	for _, pr := range probes[1:] {
		pr := pr
		pr.onMsg = func(m *wire.Message) { onMsg(pr, m) }
	}
	return &frameAckFixture{d: d, tr: tr, probes: probes}
}

// ackRecvStats sums the sender's ack-recv trace events: wire-level event
// count and the logical acknowledgments they carried (Arg).
func (f *frameAckFixture) ackRecvStats() (events int, logical uint64) {
	for _, ev := range f.tr.Events() {
		if ev.Node == 0 && ev.Kind == telemetry.KindAckRecv {
			events++
			logical += ev.Arg
		}
	}
	return events, logical
}

// TestFrameAckMergesWindow: every receiver acknowledges both messages of
// the frame, so each answers with a single frame-cumulative ACK. The
// sender must see 4 wire ACKs carrying 8 logical acknowledgments, credit
// both trackers with all 4 receivers (threshold 4: any lost credit would
// halt), and count logical acknowledgments in Stats.
func TestFrameAckMergesWindow(t *testing.T) {
	f := newFrameAckFixture(t, 4, func(pr *probe, m *wire.Message) {
		if err := pr.peer.SendAck(m.Sender, m); err != nil {
			t.Errorf("SendAck: %v", err)
		}
	})
	if err := f.d.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.probes[0].peer.Stats()
	if st.Halts != 0 {
		t.Fatalf("sender halted: %+v", st)
	}
	if st.AcksReceived != 8 {
		t.Fatalf("AcksReceived = %d, want 8 logical", st.AcksReceived)
	}
	events, logical := f.ackRecvStats()
	if events != 4 || logical != 8 {
		t.Fatalf("sender saw %d ack events carrying %d logical acks, want 4 carrying 8 (one merged ACK per receiver)", events, logical)
	}
	for i, pr := range f.probes[1:] {
		if got := pr.peer.Stats().AcksSent; got != 2 {
			t.Fatalf("receiver %d AcksSent = %d, want 2", i+1, got)
		}
	}
}

// TestFrameAckSelectiveFallback: receivers acknowledge only the first
// message of the frame, so the merge condition fails and the deferred
// ACK materializes as a classic digest ACK. The first tracker is fully
// credited; the second gathers nothing and P4 halts the sender — the
// frame path must not manufacture credit a protocol never gave.
func TestFrameAckSelectiveFallback(t *testing.T) {
	f := newFrameAckFixture(t, 4, func(pr *probe, m *wire.Message) {
		if m.Value == (wire.Value{0x01}) {
			if err := pr.peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("SendAck: %v", err)
			}
		}
	})
	if err := f.d.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.probes[0].peer.Stats()
	if st.Halts != 1 {
		t.Fatalf("sender did not halt on the unacknowledged tracker: %+v", st)
	}
	if st.AcksReceived != 4 {
		t.Fatalf("AcksReceived = %d, want 4 (digest ACKs for the first message only)", st.AcksReceived)
	}
	events, logical := f.ackRecvStats()
	if events != 4 || logical != 4 {
		t.Fatalf("sender saw %d ack events carrying %d logical acks, want 4 carrying 4 (per-message fallback)", events, logical)
	}
}

// TestFrameAckMidFrameFlushMaterializes: a protocol Flush between the two
// deliveries of a frame forces the deferred acknowledgment onto the wire
// as a digest ACK (the unbatched runtime would have sent it already).
// The second acknowledgment, deferred after the flush, still cannot merge
// (the flush broke the all-acknowledged accounting), so everything
// degrades to per-message ACKs — and full credit still arrives.
func TestFrameAckMidFrameFlushMaterializes(t *testing.T) {
	f := newFrameAckFixture(t, 4, func(pr *probe, m *wire.Message) {
		if err := pr.peer.SendAck(m.Sender, m); err != nil {
			t.Errorf("SendAck: %v", err)
		}
		pr.peer.Flush()
	})
	if err := f.d.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.probes[0].peer.Stats()
	if st.Halts != 0 {
		t.Fatalf("sender halted despite full acknowledgment: %+v", st)
	}
	if st.AcksReceived != 8 {
		t.Fatalf("AcksReceived = %d, want 8", st.AcksReceived)
	}
	events, logical := f.ackRecvStats()
	if events != 8 || logical != 8 {
		t.Fatalf("sender saw %d ack events carrying %d logical acks, want 8 singles (mid-frame flush disables merging)", events, logical)
	}
}

// TestFrameAckSubsetCover: tracked multicasts to an explicit destination
// subset keep frame-cumulative ACKs for exactly that subset (the window's
// cover), and disjoint subsets in one window empty the cover, degrading
// every frame to per-message ACKs. Both shapes must deliver full P4
// credit.
func TestFrameAckSubsetCover(t *testing.T) {
	run := func(t *testing.T, second []wire.NodeID, wantEvents int, wantLogical uint64) {
		t.Helper()
		tr := telemetry.New(telemetry.Options{})
		d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 1, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		probes := startAll(d, 2)
		sender := probes[0]
		sender.onRound = func(rnd uint32) {
			if rnd != 1 {
				return
			}
			for i, dsts := range [][]wire.NodeID{{1, 2}, second} {
				msg := &wire.Message{
					Type: wire.TypeEcho, Sender: 0, Initiator: 0,
					Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true,
					Value: wire.Value{byte(i + 1)},
				}
				if err := sender.peer.Multicast(dsts, msg, 1); err != nil {
					t.Errorf("Multicast: %v", err)
				}
			}
		}
		for _, pr := range probes[1:] {
			pr := pr
			pr.onMsg = func(m *wire.Message) {
				if err := pr.peer.SendAck(m.Sender, m); err != nil {
					t.Errorf("SendAck: %v", err)
				}
			}
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		if st := probes[0].peer.Stats(); st.Halts != 0 {
			t.Fatalf("sender halted: %+v", st)
		}
		var events int
		var logical uint64
		for _, ev := range tr.Events() {
			if ev.Node == 0 && ev.Kind == telemetry.KindAckRecv {
				events++
				logical += ev.Arg
			}
		}
		if events != wantEvents || logical != wantLogical {
			t.Fatalf("sender saw %d ack events carrying %d logical acks, want %d carrying %d", events, logical, wantEvents, wantLogical)
		}
	}
	// Same subset twice: destinations 1 and 2 each get a two-message
	// marked frame and answer with one merged ACK apiece.
	t.Run("uniform", func(t *testing.T) { run(t, []wire.NodeID{1, 2}, 2, 4) })
	// Disjoint second subset: the cover intersects to {1}; destination 1
	// still merges its two-message frame, destination 3's singleton is a
	// bare message (nothing to merge).
	t.Run("narrowed", func(t *testing.T) { run(t, []wire.NodeID{1, 3}, 3, 4) })
}

// TestFrameAckFailedLegDegrades: a multicast leg that fails (destination
// outside the roster) leaves that destination's frame short one message,
// so the whole window must degrade to per-message ACKs — a frame ACK
// from any destination could otherwise credit the tracker of a message
// it never carried.
func TestFrameAckFailedLegDegrades(t *testing.T) {
	tr := telemetry.New(telemetry.Options{})
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		for i, dsts := range [][]wire.NodeID{nil, {1, 2, 3, 4, 9}} {
			msg := &wire.Message{
				Type: wire.TypeEcho, Sender: 0, Initiator: 0,
				Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true,
				Value: wire.Value{byte(i + 1)},
			}
			if err := sender.peer.Multicast(dsts, msg, 4); err != nil {
				t.Errorf("Multicast: %v", err)
			}
		}
	}
	for _, pr := range probes[1:] {
		pr := pr
		pr.onMsg = func(m *wire.Message) {
			if err := pr.peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("SendAck: %v", err)
			}
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	st := probes[0].peer.Stats()
	if st.SendFailures != 1 {
		t.Fatalf("SendFailures = %d, want 1 (the out-of-roster leg)", st.SendFailures)
	}
	if st.Halts != 0 {
		t.Fatalf("sender halted despite full acknowledgment: %+v", st)
	}
	var events int
	var logical uint64
	for _, ev := range tr.Events() {
		if ev.Node == 0 && ev.Kind == telemetry.KindAckRecv {
			events++
			logical += ev.Arg
		}
	}
	if events != 8 || logical != 8 {
		t.Fatalf("sender saw %d ack events carrying %d logical acks, want 8 singles (failed leg degrades the window)", events, logical)
	}
}
