// Package runtime implements the peer runtime shared by the enclaved
// protocols: the setup phase of Section 4.1 (mutual remote attestation,
// Diffie-Hellman link establishment and initial sequence-number exchange),
// lockstep round scheduling (property P5, rounds of 2*Delta), the
// authenticated multicast with ACK counting that realizes
// halt-on-divergence (property P4), and the per-peer sequence tables that
// realize message freshness (property P6).
//
// Protocols (internal/core/erb, internal/core/erng) are state machines
// driven by two callbacks: OnRound at the start of every round and
// OnMessage for every message that survived the channel's authentication
// and the runtime's lockstep round check. Everything a protocol sends
// travels through Peer.Multicast / Peer.Send, which seal per-link
// envelopes and hand them to the Transport — where a byzantine OS (see
// internal/adversary) may interfere, but only by omitting, holding or
// replaying envelopes.
package runtime

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"sgxp2p/internal/channel"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Transport is the narrow network interface the runtime needs. It is
// satisfied by *simnet.Port (simulation) and *tcpnet.Port (live TCP).
type Transport interface {
	// Send transmits a sealed envelope to dst. The slice is only valid
	// for the duration of the call: the runtime seals every envelope
	// into one reused per-peer buffer, so a transport (or wrapper) that
	// queues or retains the payload must copy it. simnet copies into
	// pooled delivery records, tcpnet into its frame buffers, and the
	// adversary wrapper copies envelopes it holds or replays.
	Send(dst wire.NodeID, payload []byte)
	// SetHandler registers the delivery callback.
	SetHandler(h func(src wire.NodeID, payload []byte))
	// Detach removes this node from the network (halt-on-divergence).
	Detach()
	// After schedules fn after a delay on the node's event loop.
	After(d time.Duration, fn func())
	// Now returns the transport's current time.
	Now() time.Duration
}

// Protocol is the state-machine interface protocols implement.
type Protocol interface {
	// OnRound fires at the start of every round, 1-based.
	OnRound(rnd uint32)
	// OnMessage fires for every authenticated message whose stamped
	// round matches the current round. ACKs are consumed by the runtime
	// and never reach the protocol. The message is borrowed: it is
	// decoded into a per-peer scratch that the next delivery overwrites,
	// so it is valid only until OnMessage returns — a protocol that
	// keeps any of it must copy the fields it needs (or msg.Clone()).
	// Every shipped protocol already extracts plain values; the borrow
	// is what lets a broadcast round run without a single message
	// allocation.
	OnMessage(msg *wire.Message)
	// OnFinish fires once, at the end of the final round.
	OnFinish()
}

// Roster describes the network membership every peer knows (assumptions
// S1/S5): the attestation quotes of all peers indexed by NodeID, the
// attestation service's verification key, and the expected program
// measurement.
type Roster struct {
	Quotes      []enclave.Quote
	ServiceKey  xcrypto.VerifyKey
	Measurement xcrypto.Measurement
	// PreVerified marks a roster whose quotes were already verified by
	// the deployment builder, letting NewPeer skip the per-peer
	// re-verification (which is O(N^2) signature checks across a
	// simulated deployment sharing one process). Live deployments leave
	// it false so every node verifies for itself.
	PreVerified bool
}

// Config carries the protocol-independent parameters of a deployment.
type Config struct {
	// N is the network size; T the byzantine bound (N >= 2T+1 for ERB).
	N, T int
	// Delta is the one-way delivery bound; a round lasts 2*Delta (S3).
	Delta time.Duration
	// Sealer builds this peer's sealer. Nil defaults to the real
	// AES+HMAC sealer.
	Sealer channel.Sealer
	// Trace, when non-nil, receives the peer's round-structured event
	// stream (round ticks, deliveries, ACK traffic, halts). Nil disables
	// tracing at the cost of one pointer check per event site.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, is the registry the peer's counters (and its
	// links' channel counters) register into. Nil disables metrics.
	Metrics *telemetry.Metrics
	// DisableBatching turns off the round-scoped outbox: every message is
	// sealed and sent individually, byte-identical to the pre-coalescing
	// wire behaviour. The default (batching on) coalesces all messages a
	// protocol callback emits to one destination into a single sealed
	// batch frame, flushed when the callback returns — same messages,
	// same virtual send instant, one seal + one transport send per link.
	DisableBatching bool
}

// Errors returned by peer construction and messaging.
var (
	// ErrHalted is returned by operations on a peer that has churned
	// itself out of the network.
	ErrHalted = errors.New("runtime: peer halted")
	// ErrUnknownPeer indicates a destination outside the roster.
	ErrUnknownPeer = errors.New("runtime: unknown peer")
	// ErrNilMessage indicates an attempt to acknowledge or digest a nil
	// message.
	ErrNilMessage = errors.New("runtime: nil message")
)

// Stats counts runtime-level events, used by tests and experiments.
type Stats struct {
	// Delivered counts messages passed to the protocol.
	Delivered uint64
	// AuthFailures counts envelopes rejected by the channel (forgeries,
	// corruption, wrong program) — treated as omissions per Theorem A.2.
	AuthFailures uint64
	// RoundMismatches counts authenticated messages dropped by the
	// lockstep check (delay/replay attacks surfacing as stale rounds).
	RoundMismatches uint64
	// EarlyBuffered counts authenticated messages that arrived stamped
	// one round ahead of the receiver's clock and were buffered until
	// the round ticked. Live (TCP) deployments tick on wall clocks that
	// skew by fractions of a round across processes; in the virtual-time
	// simnet this stays zero.
	EarlyBuffered uint64
	// AcksSent and AcksReceived count the P4 acknowledgment traffic.
	AcksSent     uint64
	AcksReceived uint64
	// Halts is 1 once the peer executed halt-on-divergence.
	Halts uint64
	// SendFailures counts multicast destinations that could not be sealed
	// or addressed (e.g. a peer that vanished mid-round). They degrade to
	// omissions — the rest of the multicast proceeds — so a crashed peer
	// cannot wedge a broadcast.
	SendFailures uint64
}

// counters are the peer's registered metric handles, mirroring Stats in
// the telemetry registry; nil when the deployment runs without one, so
// every hot-path update is behind a single pointer check.
type counters struct {
	delivered       *telemetry.Counter
	authFailures    *telemetry.Counter
	roundMismatches *telemetry.Counter
	earlyBuffered   *telemetry.Counter
	acksSent        *telemetry.Counter
	acksReceived    *telemetry.Counter
	halts           *telemetry.Counter
	sendFailures    *telemetry.Counter
	envelopesSent   *telemetry.Counter
}

func newCounters(m *telemetry.Metrics) *counters {
	if m == nil {
		return nil
	}
	return &counters{
		delivered:       m.Counter("runtime_delivered_total"),
		authFailures:    m.Counter("runtime_auth_failures_total"),
		roundMismatches: m.Counter("runtime_round_mismatches_total"),
		earlyBuffered:   m.Counter("runtime_early_buffered_total"),
		acksSent:        m.Counter("runtime_acks_sent_total"),
		acksReceived:    m.Counter("runtime_acks_received_total"),
		halts:           m.Counter("runtime_halts_total"),
		sendFailures:    m.Counter("runtime_send_failures_total"),
		envelopesSent:   m.Counter("runtime_envelopes_sent_total"),
	}
}

// batchMsgBounds are the le-buckets of the runtime_batch_msgs histogram:
// messages per flushed batch frame, from the singleton common case up to
// the N-instance bursts of a concurrent ERNG round.
var batchMsgBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// nodeBitset is a dense set of NodeIDs. The ACK tracker of a multicast
// previously used a map[wire.NodeID]bool, one allocation per multicast
// plus hashing per ACK; node ids are dense small integers, so a bitset
// does the same job with a single word-slice allocation.
type nodeBitset struct {
	words []uint64
	count int
}

// set records id and reports whether it was newly set, so duplicate ACKs
// (replays) are not double-counted.
func (b *nodeBitset) set(id wire.NodeID) bool {
	w, bit := int(id)/64, uint(id)%64
	if w >= len(b.words) {
		// Joins (AddPeer) can grow membership past the size the tracker
		// was created for.
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	if b.words[w]&(1<<bit) != 0 {
		return false
	}
	b.words[w] |= 1 << bit
	b.count++
	return true
}

// has reports whether id is in the set.
func (b *nodeBitset) has(id wire.NodeID) bool {
	w := int(id) / 64
	return w < len(b.words) && b.words[w]&(1<<(uint(id)%64)) != 0
}

// reset empties the set, keeping the word capacity for reuse.
func (b *nodeBitset) reset() {
	clear(b.words)
	b.count = 0
}

// intersect replaces b with b ∩ o in place.
func (b *nodeBitset) intersect(o *nodeBitset) {
	n := 0
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
		n += bits.OnesCount64(b.words[i])
	}
	b.count = n
}

// unionCount returns |b ∪ o| without materializing the union; either
// side's word slice may be shorter (or nil) than the other.
func (b *nodeBitset) unionCount(o *nodeBitset) int {
	long, short := b.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	n := 0
	for i, w := range long {
		if i < len(short) {
			w |= short[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// ackTracker tracks acknowledgments for one multicast. Classic digest
// ACKs land in acked; frame-cumulative ACKs land once in the shared
// group bitset of the flush window that carried the message, so
// crediting a merged ACK is O(1) instead of O(window trackers). The
// effective count is the union of the two (ackCount).
type ackTracker struct {
	digest    wire.Value
	round     uint32
	threshold int
	acked     nodeBitset
	group     *frameGroup
}

// ackCount is the tracker's effective acknowledgment count: nodes that
// acknowledged the message individually plus nodes that acknowledged
// the whole frame window it was flushed in, counted without double-
// counting a node that somehow did both.
func (tk *ackTracker) ackCount() int {
	if tk.group == nil || tk.group.acked.count == 0 {
		return tk.acked.count
	}
	return tk.acked.unionCount(&tk.group.acked)
}

// frameGroup is the shared acknowledgment state of one flush window's
// frame-ackable frames. Every tracker in the window points at it, and
// every frame flushed from the window indexes it in frameIdx; a merged
// ACK from a destination sets one bit here instead of touching each
// tracker. next chains groups that collide on a frame key (two
// byte-identical frames to one destination in one round — impossible
// under the counter-based model sealer, negligible under random
// nonces) so neither window starves.
type frameGroup struct {
	acked nodeBitset
	next  *frameGroup
}

// ackKey identifies a tracker: ACKs carry the digest of the acknowledged
// message and are only valid within the round of the multicast.
type ackKey struct {
	round  uint32
	digest wire.Value
}

// ackIndexMin is the tracker count past which handleAck switches from the
// linear scan to the digest index. A single-instance round registers a
// handful of trackers and the scan wins; a multiplexed round registers
// one per in-flight instance, where the scan is O(acks × instances) —
// four billion comparisons per round at N=64 with 1k instances.
const ackIndexMin = 16

// frameKey identifies one sealed batch frame a peer sent: the
// destination it went to, the round it left in, and the envelope tag
// both ends read off the sealed bytes (channel.FrameTag). A
// frame-cumulative ACK resolves through this key, so only the frame's
// actual recipient can credit it — strictly narrower than digest ACKs,
// which any peer holding the bytes could issue.
type frameKey struct {
	dst   wire.NodeID
	round uint32
	tag   uint64
}

// pendAck is one acknowledgment deferred during the delivery of a
// frame-ackable batch: everything needed to materialize the classic
// per-message digest ACK if the frame cannot be acknowledged as a unit.
// enc aliases the frame plaintext in openBuf, which outlives the
// deferral — pending ACKs never survive their own delivery event.
type pendAck struct {
	enc       []byte
	initiator wire.NodeID
	instance  uint32
	seq       uint64
}

// Peer is one node's runtime.
type Peer struct {
	encl  *enclave.Enclave
	tr    Transport
	cfg   Config
	links []*channel.Link

	proto       Protocol
	rounds      uint32
	round       uint32
	started     bool
	finished    bool
	seqs        []uint64
	instanceID  uint32
	trackers    []*ackTracker
	trackerIdx  map[ackKey]*ackTracker
	startOffset time.Duration
	stats       Stats
	trace       *telemetry.Tracer
	ctr         *counters

	// spans caches trace.SpansEnabled() so every causal-span site costs
	// one bool test when spans are off (and nothing at all builds when
	// the tracer is nil). curSpan is the frame tag of the envelope whose
	// messages are currently being delivered: deliveries and handle hops
	// recorded under it join the sender's seal hop for the same tag in
	// the merged trace (see internal/obsplane).
	spans   bool
	curSpan uint64

	// delivering is the message currently being handed to the protocol by
	// receive, together with the channel plaintext it was decoded from.
	// SendAck recognizes the pointer and hashes that plaintext directly,
	// so acknowledging a received message costs zero extra Encodes.
	delivering        *wire.Message
	deliveringEncoded []byte

	// early holds authenticated messages stamped round+1, parked until
	// the tick catches up (see deliverOne). Entries own copies of their
	// encoding: the receive scratch they arrived in is reused per frame.
	early []earlyMsg

	// rxMsg is the scratch Message every delivery is decoded into
	// (wire.DecodeInto): messages are borrowed by OnMessage, never owned,
	// so one broadcast round performs zero message allocations. Reuse is
	// safe for the same reason the byte scratches above are — deliveries
	// are serialized on the event loop and protocols copy what they keep.
	rxMsg wire.Message

	// encodeBuf, sealBuf and openBuf are per-peer scratch buffers for
	// the envelope hot path: Multicast/Send encode messages into
	// encodeBuf (wire.AppendEncode), envelopes are sealed into sealBuf
	// (valid only during the Transport.Send call — implementations that
	// retain payloads copy them), and receive decrypts envelopes into
	// openBuf (channel.OpenRawAppend). All are safe to reuse because
	// the peer's sends and deliveries are serialized on one event loop
	// and none of the encodings outlives its call: decoded messages
	// share no bytes with the plaintext they were parsed from.
	encodeBuf []byte
	sealBuf   []byte
	openBuf   []byte

	// tickFn is the single prebound round-tick callback; tickRound is
	// the round the pending tick will run. A peer has at most one
	// outstanding tick — Start fires only on a fresh peer or after the
	// previous instance finished (the final tick schedules no
	// successor), and a stopped peer's stale tick no-ops on !started —
	// so one (closure, field) pair replaces a per-round closure
	// allocation.
	tickFn    func()
	tickRound uint32

	// Round-scoped outbox (frame coalescing, ROADMAP 4a). While a
	// protocol callback runs (inCallback), sendEncoded appends encoded
	// messages into the destination's batch container instead of sealing
	// immediately; the callback's caller flushes every dirty buffer as
	// one sealed frame per link. outBufs keeps its per-destination
	// capacity across rounds, outDirty preserves first-enqueue order so
	// the flush sequence is deterministic.
	//
	// The first message a callback emits to a destination is not copied
	// into outBufs: outRefs borrows the encoded bytes straight out of
	// encodeBuf (a multicast's legs all share one encoding). The borrow
	// is materialized into the batch buffer only if the encode scratch
	// is about to be reused (outHasRefs gates that sweep), so the common
	// all-singleton flush never copies a message at all.
	batching   bool
	inCallback bool
	outHasRefs bool
	outBufs    [][]byte
	outCounts  []int
	outRefs    [][]byte
	outDirty   []wire.NodeID
	batchHist  *telemetry.Histogram

	// Frame-cumulative acknowledgment (the multiplexed-runtime ACK fast
	// path). Sender side: trackers registered since the last flush form
	// the current flush window [winStart, len(trackers)), and winCover
	// is the intersection of the destination sets of the window's
	// tracked multicasts (winCoverFull: no subset seen yet, the cover is
	// the whole roster). A destination inside the cover received every
	// tracked message of the window, so its multi-message frame is
	// marked frame-ackable and indexed in frameIdx under its envelope
	// tag: one ACK from the recipient sets one bit in the window's
	// shared frameGroup, crediting every tracker at closeRound via the
	// union count. Destinations outside the cover — and every
	// destination once winMixed records a failed multicast leg — get
	// ordinary frames and answer with per-message digest ACKs. Receiver
	// side: while a marked frame is being delivered (frameAckOn),
	// SendAck calls for its messages are deferred into pendAcks; if
	// every delivered message was acknowledged, one valueless ACK
	// carrying the frame tag in Seq replaces them all, otherwise (or on
	// any mid-frame flush) they materialize as classic digest ACKs.
	winStart       int
	winMixed       bool
	winCoverFull   bool
	winCover       nodeBitset
	winScratch     nodeBitset
	frameIdx       map[frameKey]*frameGroup
	frameAckOn     bool
	frameAckSrc    wire.NodeID
	frameAckTag    uint64
	frameDelivered int
	pendAcks       []pendAck
}

// NewPeer verifies the roster's attestation quotes (F3, property P1),
// establishes a blinded channel to every other peer, and returns the
// runtime. The peer's own quote must be at index enclave.ID().
func NewPeer(encl *enclave.Enclave, tr Transport, roster Roster, cfg Config) (*Peer, error) {
	if encl == nil || tr == nil {
		return nil, errors.New("runtime: nil enclave or transport")
	}
	if cfg.N != len(roster.Quotes) {
		return nil, fmt.Errorf("runtime: roster has %d quotes, config N=%d", len(roster.Quotes), cfg.N)
	}
	if cfg.N < 2 || cfg.T < 0 {
		return nil, fmt.Errorf("runtime: invalid sizes N=%d T=%d", cfg.N, cfg.T)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("runtime: invalid delta %v", cfg.Delta)
	}
	if cfg.Sealer == nil {
		cfg.Sealer = channel.RealSealer{}
	}
	p := &Peer{
		encl:     encl,
		tr:       tr,
		cfg:      cfg,
		links:    make([]*channel.Link, cfg.N),
		seqs:     make([]uint64, cfg.N),
		trace:    cfg.Trace,
		ctr:      newCounters(cfg.Metrics),
		batching: !cfg.DisableBatching,
		spans:    cfg.Trace.SpansEnabled(),
	}
	if cfg.Metrics != nil && p.batching {
		p.batchHist = cfg.Metrics.Histogram("runtime_batch_msgs", batchMsgBounds)
	}
	chanCtr := channel.NewCounters(cfg.Metrics)
	self := int(encl.ID())
	for id, q := range roster.Quotes {
		if id == self {
			continue
		}
		if !roster.PreVerified {
			if err := enclave.VerifyQuote(roster.ServiceKey, roster.Measurement, q); err != nil {
				return nil, fmt.Errorf("runtime: attestation of peer %d: %w", id, err)
			}
		}
		if q.NodeID != wire.NodeID(id) {
			return nil, fmt.Errorf("runtime: quote %d claims node id %d", id, q.NodeID)
		}
		link, err := channel.NewLink(encl, wire.NodeID(id), q.DHPublic, cfg.Sealer)
		if err != nil {
			return nil, fmt.Errorf("runtime: link to %d: %w", id, err)
		}
		link.SetCounters(chanCtr)
		p.links[id] = link
	}
	tr.SetHandler(p.receive)
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() wire.NodeID { return p.encl.ID() }

// N returns the network size.
func (p *Peer) N() int { return p.cfg.N }

// T returns the byzantine bound.
func (p *Peer) T() int { return p.cfg.T }

// Delta returns the delivery bound.
func (p *Peer) Delta() time.Duration { return p.cfg.Delta }

// Enclave exposes the peer's enclave to the protocol layer (which is
// trusted code; the OS layer never holds a *Peer).
func (p *Peer) Enclave() *enclave.Enclave { return p.encl }

// Stats returns a snapshot of the runtime counters.
func (p *Peer) Stats() Stats { return p.stats }

// Metrics exposes the deployment's metrics registry to the protocol layer
// (nil when the deployment runs without one).
func (p *Peer) Metrics() *telemetry.Metrics { return p.cfg.Metrics }

// Trace records a protocol-layer event against this peer's current round,
// attributed to the peer's current instance (epoch). Protocols call it
// for their own milestones (INIT/ECHO/accept, cluster sampling,
// decisions); runtime-level events are recorded internally.
func (p *Peer) Trace(kind telemetry.Kind, peer wire.NodeID, arg uint64) {
	if p.trace != nil {
		p.trace.RecordInst(p.ID(), p.round, p.instanceID, kind, peer, arg, "")
	}
}

// traceInst records a protocol-layer event attributed to an explicit
// instance id — the entry point a Mux's instance handles route their
// Trace through, so every milestone of a multiplexed run names the
// instance that produced it.
func (p *Peer) traceInst(instance uint32, kind telemetry.Kind, peer wire.NodeID, arg uint64) {
	if p.trace != nil {
		p.trace.RecordInst(p.ID(), p.round, instance, kind, peer, arg, "")
	}
}

// Halted reports whether this peer has churned itself out.
func (p *Peer) Halted() bool { return p.encl.Halted() }

// Round returns the current lockstep round (0 before Start).
func (p *Peer) Round() uint32 { return p.round }

// Now returns the transport's current time (virtual in simulation).
func (p *Peer) Now() time.Duration { return p.tr.Now() }

// Instance returns the current protocol instance (epoch) number.
func (p *Peer) Instance() uint32 { return p.instanceID }

// InitialSeq draws this peer's initial sequence number inside the enclave
// (setup phase; property P6).
func (p *Peer) InitialSeq() (uint64, error) {
	return p.encl.RandomSeq()
}

// InstallSeqs installs the sequence numbers of all peers, as exchanged
// over the blinded channels during setup. In the simulator the exchange is
// orchestrated by Setup; in the TCP deployment it is a real message round.
func (p *Peer) InstallSeqs(seqs []uint64) error {
	if len(seqs) != p.cfg.N {
		return fmt.Errorf("runtime: got %d seqs, want %d", len(seqs), p.cfg.N)
	}
	copy(p.seqs, seqs)
	return nil
}

// SeqOf returns the expected current sequence number of a peer.
func (p *Peer) SeqOf(id wire.NodeID) uint64 { return p.seqs[int(id)] }

// AddPeer extends the membership with a newly joined node (the dynamic
// join of Appendix G / assumption S1): the quote is verified, a blinded
// channel is established, and the joiner's initial sequence number is
// recorded. The new node's id must be the next dense index.
func (p *Peer) AddPeer(roster Roster, q enclave.Quote, seq uint64) error {
	if p.Halted() {
		return ErrHalted
	}
	if q.NodeID != wire.NodeID(len(p.links)) {
		return fmt.Errorf("runtime: joiner id %d is not the next index %d", q.NodeID, len(p.links))
	}
	if err := enclave.VerifyQuote(roster.ServiceKey, roster.Measurement, q); err != nil {
		return fmt.Errorf("runtime: attestation of joiner %d: %w", q.NodeID, err)
	}
	link, err := channel.NewLink(p.encl, q.NodeID, q.DHPublic, p.cfg.Sealer)
	if err != nil {
		return fmt.Errorf("runtime: link to joiner %d: %w", q.NodeID, err)
	}
	link.SetCounters(channel.NewCounters(p.cfg.Metrics))
	p.links = append(p.links, link)
	p.seqs = append(p.seqs, seq)
	p.cfg.N++
	return nil
}

// AlignInstance sets the instance (epoch) counter; a joining node calls
// it so its message-freshness state matches the network it joined.
func (p *Peer) AlignInstance(instance uint32) {
	p.instanceID = instance
}

// BumpSeqs increments every peer's sequence number after a completed
// instance ("After every valid instance of the protocol, nodes will
// increase all sequence numbers by 1") and advances the instance id.
func (p *Peer) BumpSeqs() {
	for i := range p.seqs {
		p.seqs[i]++
	}
	p.instanceID++
}

// Start begins a protocol instance: the enclave's trusted-time reference
// is reset to "now" (synchronized start, S2), and rounds 1..rounds are
// scheduled every 2*Delta. OnFinish fires at the end of the last round.
func (p *Peer) Start(proto Protocol, rounds int) {
	p.StartIn(proto, rounds, 0)
}

// StartIn begins a protocol instance whose round 1 fires after the given
// delay. Live (TCP) deployments use it to arm every peer ahead of the
// agreed start instant, so no round-1 message can arrive at a peer that
// has not started yet — the synchronized-start assumption S2 realized
// across processes.
func (p *Peer) StartIn(proto Protocol, rounds int, startDelay time.Duration) {
	if startDelay < 0 {
		startDelay = 0
	}
	p.proto = proto
	p.rounds = uint32(rounds)
	p.round = 0
	p.started = true
	p.finished = false
	p.winStart = 0
	p.winMixed = false
	p.winCoverFull = true
	p.frameAckOn = false
	p.pendAcks = p.pendAcks[:0]
	p.early = nil
	if p.frameIdx != nil {
		clear(p.frameIdx)
	}
	p.encl.ResetReference()
	p.startOffset = startDelay
	p.scheduleTick(1)
}

func (p *Peer) scheduleTick(rnd uint32) {
	delay := p.startOffset + time.Duration(rnd-1)*2*p.cfg.Delta
	p.tickRound = rnd
	if p.tickFn == nil {
		p.tickFn = func() { p.tick(p.tickRound) }
	}
	// Re-anchor against the enclave's trusted elapsed time so a byzantine
	// OS cannot skew the tick (F4 / lockstep P5).
	p.tr.After(delay-p.encl.ElapsedTime(), p.tickFn)
}

func (p *Peer) tick(rnd uint32) {
	if p.Halted() || !p.started {
		return
	}
	p.closeRound()
	if p.Halted() {
		return
	}
	if rnd > p.rounds {
		p.finished = true
		p.inCallback = true
		p.proto.OnFinish()
		p.inCallback = false
		p.flushOutbox()
		return
	}
	p.round = rnd
	if p.trace != nil {
		p.trace.Record(p.ID(), rnd, telemetry.KindRound, wire.NoNode, 0, "")
	}
	p.inCallback = true
	p.proto.OnRound(rnd)
	p.inCallback = false
	p.replayEarly()
	// Flush the callback's coalesced frames at the same virtual instant
	// the unbatched runtime would have sent them: still inside the tick
	// event, before any 2Δ of the round has elapsed, so the lockstep
	// round stamps and the P4 ACK window are unchanged (messages arrive
	// within Δ, ACKs return within the same round).
	p.flushOutbox()
	if !p.Halted() {
		p.scheduleTick(rnd + 1)
	}
}

// closeRound evaluates the ACK trackers of the round that just ended: a
// multicast that gathered fewer than threshold acknowledgments halts the
// peer (property P4, the Halt function of Algorithm 2).
func (p *Peer) closeRound() {
	trackers := p.trackers
	p.trackers = nil
	if p.trackerIdx != nil {
		clear(p.trackerIdx)
	}
	if p.frameIdx != nil {
		clear(p.frameIdx)
	}
	p.winStart = 0
	p.winMixed = false
	p.winCoverFull = true
	for _, tk := range trackers {
		if tk.ackCount() < tk.threshold {
			p.haltSelf("ack-threshold")
			return
		}
	}
}

// Stop withdraws the peer from its protocol instance without executing
// halt-on-divergence: pending round ticks become no-ops, inbound
// deliveries are dropped, and ACK trackers are discarded. It models a
// machine crash (the chaos engine's CrashAt), where the node simply
// vanishes instead of deliberately churning out; the enclave is NOT
// halted — its state is lost with the machine, and the node can only
// come back as a freshly launched enclave (deploy.Restart).
//
// Stop flushes the outbox first — deterministically, every time — so a
// message the protocol already handed to Multicast/Send is on the wire
// exactly as it would be unbatched, where sends leave during the callback.
// Frames in flight at the moment the machine vanishes are dropped by the
// transport's detach epoch: a coalesced frame lost there drops all of its
// messages at once, the whole-batch omission the chaos suite exercises.
func (p *Peer) Stop() {
	p.flushOutbox()
	p.started = false
	p.proto = nil
	p.trackers = nil
	p.early = nil
	if p.frameIdx != nil {
		clear(p.frameIdx)
	}
	p.winStart = 0
	p.winMixed = false
	p.winCoverFull = true
	p.frameAckOn = false
}

// HaltSelf executes halt-on-divergence: the enclave state becomes bottom
// and the node churns out of the network.
func (p *Peer) HaltSelf() { p.haltSelf("") }

// haltSelf is HaltSelf with a trace annotation naming the trigger. The
// outbox is flushed before the enclave halts and the transport detaches:
// unbatched, every message sent earlier in the same callback was already
// on the wire when the halt struck, so coalescing must put them there too.
func (p *Peer) haltSelf(why string) {
	if p.Halted() {
		return
	}
	p.flushOutbox()
	p.stats.Halts++
	if p.ctr != nil {
		p.ctr.halts.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindHalt, wire.NoNode, 0, why)
	}
	p.encl.Halt()
	p.tr.Detach()
}

// Digest computes H(val), the message digest ACKs carry. A nil message
// is reported as ErrNilMessage rather than a panic.
func Digest(msg *wire.Message) (wire.Value, error) {
	var d wire.Value
	if msg == nil {
		return d, ErrNilMessage
	}
	enc, err := msg.Encode()
	if err != nil {
		return d, err
	}
	return DigestEncoded(enc), nil
}

// DigestEncoded computes H(val) from an already-encoded message. The hot
// paths (multicast, ACK of a just-received message) hold the encoding
// already; hashing it directly avoids a second Encode of the same bytes.
func DigestEncoded(encoded []byte) wire.Value {
	return sha256.Sum256(encoded)
}

// Multicast seals msg for every destination and sends it. If ackThreshold
// is positive the runtime tracks acknowledgments until the end of the
// current round and halts the peer if fewer than ackThreshold arrive.
// Destinations nil means "all other peers". Per-destination failures
// degrade to omissions (see multicastOne); the error return is reserved
// for encode failures and a halted sender.
//
// The message is encoded exactly once, into the peer's reused encode
// scratch; each link seals the shared encoding into a fresh envelope
// (channel.SealEncodedAppend), so a multicast to N-1 destinations costs
// zero steady-state encode allocations and exactly one exactly-sized
// allocation per envelope.
func (p *Peer) Multicast(dsts []wire.NodeID, msg *wire.Message, ackThreshold int) error {
	if p.Halted() {
		return ErrHalted
	}
	if p.outHasRefs {
		p.copyOutboxRefs()
	}
	encoded, err := msg.AppendEncode(p.encodeBuf[:0])
	if err != nil {
		return err
	}
	p.encodeBuf = encoded
	if ackThreshold > 0 {
		tk := &ackTracker{
			digest:    DigestEncoded(encoded),
			round:     p.round,
			threshold: ackThreshold,
		}
		p.trackers = append(p.trackers, tk)
		p.indexTracker(tk)
	}
	if dsts == nil {
		for id := 0; id < p.cfg.N; id++ {
			if wire.NodeID(id) == p.ID() {
				continue
			}
			if err := p.multicastOne(wire.NodeID(id), encoded); err != nil {
				return err
			}
		}
		return nil
	}
	if ackThreshold > 0 {
		p.narrowCover(dsts)
	}
	for _, dst := range dsts {
		if dst == p.ID() {
			continue
		}
		if err := p.multicastOne(dst, encoded); err != nil {
			return err
		}
	}
	return nil
}

// narrowCover intersects the flush window's destination cover with the
// explicit destination list of a tracked multicast: only destinations
// that received every tracked message of the window may acknowledge a
// frame cumulatively. An explicit list covering the whole roster
// narrows the cover to exactly the roster, so it behaves like
// dsts == nil; disjoint subsets narrow it to nothing and every frame
// degrades to per-message ACKs. Both bitsets are reused scratch —
// zero allocations once grown to roster size.
func (p *Peer) narrowCover(dsts []wire.NodeID) {
	if p.winCoverFull {
		p.winCoverFull = false
		p.winCover.reset()
		for _, d := range dsts {
			p.winCover.set(d)
		}
		return
	}
	p.winScratch.reset()
	for _, d := range dsts {
		p.winScratch.set(d)
	}
	p.winCover.intersect(&p.winScratch)
}

// multicastOne seals and sends one multicast leg. A per-destination
// failure — an unknown or vanished peer, a seal error on its link — is
// recorded and swallowed: under the omission model a dead destination is
// indistinguishable from an omitting network, and aborting the loop
// would silently starve every destination after the failed one (the
// multicast wedge the chaos crash schedules exposed). Only ErrHalted
// aborts: a halted sender must not keep transmitting.
func (p *Peer) multicastOne(dst wire.NodeID, encoded []byte) error {
	err := p.sendEncoded(dst, encoded)
	if err == nil || errors.Is(err, ErrHalted) {
		return err
	}
	// The failed leg's destination now sees a frame missing this message:
	// the window's frames are no longer uniform, so a frame-cumulative
	// ACK from that destination would over-credit the tracker of a
	// message it never received. Degrade the window.
	p.winMixed = true
	p.stats.SendFailures++
	if p.ctr != nil {
		p.ctr.sendFailures.Inc()
	}
	if p.trace != nil {
		inst, _ := wire.PeekInstance(encoded)
		p.trace.RecordInst(p.ID(), p.round, inst, telemetry.KindSendFail, dst, 0, "")
	}
	return nil
}

// Send seals msg for one destination and hands it to the transport.
func (p *Peer) Send(dst wire.NodeID, msg *wire.Message) error {
	if p.outHasRefs {
		p.copyOutboxRefs()
	}
	encoded, err := msg.AppendEncode(p.encodeBuf[:0])
	if err != nil {
		return err
	}
	p.encodeBuf = encoded
	return p.sendEncoded(dst, encoded)
}

// sendEncoded seals an already-encoded message for one destination and
// hands the envelope to the transport — or, while a protocol callback
// runs with batching on, appends it to the destination's outbox buffer
// for the end-of-callback flush. The unknown-peer check stays here, at
// enqueue time, so Multicast's omission accounting is identical in both
// modes. Envelopes are sealed into the peer's reused seal scratch: the
// Transport.Send contract makes the payload valid only during the call,
// so a transport (or adversary wrapper) that keeps the envelope copies
// it, and the runtime pays no per-envelope allocation.
func (p *Peer) sendEncoded(dst wire.NodeID, encoded []byte) error {
	if p.Halted() {
		return ErrHalted
	}
	if int(dst) >= len(p.links) || p.links[dst] == nil {
		return ErrUnknownPeer
	}
	if p.batching && p.inCallback {
		p.enqueueBatch(dst, encoded)
		return nil
	}
	sp := p.trace.BeginSpan()
	env, err := p.links[dst].SealEncodedAppend(p.sealBuf[:0], encoded)
	if err != nil {
		return err
	}
	if p.spans {
		sp.Finish(p.ID(), p.round, 0, telemetry.KindSeal, dst, channel.FrameTag(env))
	}
	p.sealBuf = env
	if p.ctr != nil {
		p.ctr.envelopesSent.Inc()
	}
	p.tr.Send(dst, env)
	return nil
}

// enqueueBatch appends one encoded message to dst's outbox buffer. The
// destination was validated by sendEncoded; enqueueing cannot fail —
// seal errors surface at flush time, where they degrade to omissions
// exactly like a failed multicast leg.
func (p *Peer) enqueueBatch(dst wire.NodeID, encoded []byte) {
	if len(p.outBufs) < len(p.links) {
		bufs := make([][]byte, len(p.links))
		copy(bufs, p.outBufs)
		p.outBufs = bufs
		counts := make([]int, len(p.links))
		copy(counts, p.outCounts)
		p.outCounts = counts
		refs := make([][]byte, len(p.links))
		copy(refs, p.outRefs)
		p.outRefs = refs
	}
	if p.outCounts[dst] == 0 {
		// First message to dst this flush window: borrow the encoded
		// bytes instead of copying them. The borrow lives in encodeBuf,
		// which is not reused before copyOutboxRefs materializes it.
		p.outDirty = append(p.outDirty, dst)
		p.outRefs[dst] = encoded
		p.outCounts[dst] = 1
		p.outHasRefs = true
		return
	}
	if r := p.outRefs[dst]; r != nil {
		// Same encoding enqueued twice to one dst (duplicate entries in
		// an explicit Multicast dsts list) — no intervening encode ran,
		// so materialize the borrow here before appending.
		p.outBufs[dst] = wire.AppendBatchEntry(p.outBufs[dst][:0], r)
		p.outRefs[dst] = nil
	}
	p.outBufs[dst] = wire.AppendBatchEntry(p.outBufs[dst], encoded)
	p.outCounts[dst]++
}

// copyOutboxRefs materializes every borrowed outbox reference into its
// destination's batch buffer. It runs just before the encode scratch is
// reused — until that moment a singleton outbox entry is only a view of
// the bytes the last encode produced. A callback that encodes once and
// flushes (one multicast, or one ACK — the steady state of every
// protocol in this repo) therefore never copies a message between
// encode and seal.
func (p *Peer) copyOutboxRefs() {
	for _, dst := range p.outDirty {
		if r := p.outRefs[dst]; r != nil {
			p.outBufs[dst] = wire.AppendBatchEntry(p.outBufs[dst][:0], r)
			p.outRefs[dst] = nil
		}
	}
	p.outHasRefs = false
}

// Flush forces the round-scoped outbox onto the wire immediately: the
// escape hatch for trusted code that must have its frames in flight
// before its callback returns (e.g. a protocol that waits on the ACKs
// of a multicast it just issued). With batching off, or an empty
// outbox, it is a no-op.
func (p *Peer) Flush() { p.flushOutbox() }

// flushOutbox seals and sends every dirty outbox buffer: one envelope
// per destination covering all messages a callback emitted to it. A
// buffer holding a single message is sent as the bare encoded message —
// byte-identical framing to an unbatched send — so coalescing only ever
// changes the wire when it has something to coalesce. Buffers keep
// their capacity for the next round; flush order is first-enqueue
// order, which is deterministic, keeping trace streams and simulated
// network schedules bit-reproducible per seed.
func (p *Peer) flushOutbox() {
	if len(p.pendAcks) > 0 {
		// A mid-delivery flush (halt, stop, or a protocol Flush) must put
		// the deferred acknowledgments on the wire exactly where the
		// unbatched runtime would have: before anything that follows.
		p.materializePendAcks()
	}
	if len(p.outDirty) == 0 {
		p.closeWindow()
		return
	}
	dirty := p.outDirty
	// The flush window's trackers, shared by every frame of this flush:
	// with no subset-destination multicast in the window, every dirty
	// destination's frame carries every tracked message registered since
	// the previous flush. The frameGroup they will share is allocated
	// lazily, only if a frame is actually marked.
	var group []*ackTracker
	if !p.winMixed && p.winStart < len(p.trackers) {
		group = p.trackers[p.winStart:]
	}
	var fg *frameGroup
	for _, dst := range dirty {
		n := p.outCounts[dst]
		p.outCounts[dst] = 0
		if n == 0 {
			continue
		}
		marked := false
		plaintext := p.outRefs[dst]
		if plaintext != nil {
			// Borrowed singleton: the bare encoded message, still alive
			// in encodeBuf — already in unbatched framing, zero copies.
			p.outRefs[dst] = nil
		} else {
			buf := p.outBufs[dst]
			p.outBufs[dst] = buf[:0]
			plaintext = buf
			if n == 1 {
				// Strip the container: magic byte + one length prefix.
				plaintext = buf[5:]
			} else if len(group) > 0 && (p.winCoverFull || p.winCover.has(dst)) {
				// Multi-message frame to a destination inside the window's
				// cover — it carries every tracked message of the window:
				// invite one frame-cumulative ACK for the whole frame.
				wire.MarkBatchAcked(buf)
				marked = true
			}
		}
		sp := p.trace.BeginSpan()
		env, err := p.links[dst].SealEncodedAppend(p.sealBuf[:0], plaintext)
		if err != nil {
			// Degrade the whole frame to omissions, one per buffered
			// message, mirroring the per-leg accounting of multicastOne.
			p.stats.SendFailures += uint64(n)
			if p.ctr != nil {
				p.ctr.sendFailures.Add(uint64(n))
			}
			if p.trace != nil {
				p.trace.Record(p.ID(), p.round, telemetry.KindSendFail, dst, uint64(n), "")
			}
			continue
		}
		if p.ctr != nil {
			p.ctr.envelopesSent.Inc()
		}
		if p.spans {
			// Arg counts the seal of the whole coalesced frame; the hop is
			// attributed to the frame tag every entry's delivery inherits.
			sp.Finish(p.ID(), p.round, 0, telemetry.KindSeal, dst, channel.FrameTag(env))
		}
		if p.trace != nil {
			p.trace.Record(p.ID(), p.round, telemetry.KindBatchFlush, dst, uint64(n), "")
		}
		if p.batchHist != nil {
			p.batchHist.Observe(float64(n))
		}
		if marked {
			if fg == nil {
				fg = &frameGroup{}
				for _, tk := range group {
					tk.group = fg
				}
			}
			p.registerFrame(dst, channel.FrameTag(env), fg)
		}
		p.sealBuf = env
		p.tr.Send(dst, env)
	}
	p.outDirty = p.outDirty[:0]
	p.outHasRefs = false
	p.closeWindow()
}

// closeWindow ends the current flush window: trackers registered from
// here on belong to the next window's frames, under a fresh cover.
func (p *Peer) closeWindow() {
	p.winStart = len(p.trackers)
	p.winMixed = false
	p.winCoverFull = true
}

// registerFrame indexes one flushed frame-ackable frame under its
// envelope tag so a frame-cumulative ACK from dst can credit the whole
// window's trackers through the shared frameGroup. The index lives
// until closeRound retires the round's trackers. A duplicate key
// chains the colliding groups (frameGroup.next) so neither window
// starves.
func (p *Peer) registerFrame(dst wire.NodeID, tag uint64, fg *frameGroup) {
	if p.frameIdx == nil {
		p.frameIdx = make(map[frameKey]*frameGroup, 2*len(p.links))
	}
	k := frameKey{dst: dst, round: p.round, tag: tag}
	if prev, dup := p.frameIdx[k]; dup {
		for g := prev; g != fg; g = g.next {
			if g.next == nil {
				g.next = fg
				break
			}
		}
		return
	}
	p.frameIdx[k] = fg
}

// SendAck acknowledges a valid received message: ACKs carry the digest
// H(val) of the acknowledged message, the initiator's sequence number and
// the current round, per Section 4's val format.
//
// When the acknowledged message is the one currently being delivered by
// receive (the common case — protocols ACK from inside OnMessage), the
// digest is taken from the plaintext the channel just opened instead of
// re-encoding the message.
//
// A nil received message is rejected with ErrNilMessage instead of
// panicking inside the digest computation.
func (p *Peer) SendAck(dst wire.NodeID, received *wire.Message) error {
	if received == nil {
		return ErrNilMessage
	}
	if p.frameAckOn && dst == p.frameAckSrc && received == p.delivering {
		// The message arrived in a frame-ackable batch and is being
		// acknowledged to that frame's sender: defer the wire message.
		// If every delivered message of the frame is acknowledged this
		// way, one frame-cumulative ACK replaces them all; otherwise the
		// deferred entries materialize as classic digest ACKs. Stats and
		// trace record the logical acknowledgment here either way.
		p.pendAcks = append(p.pendAcks, pendAck{
			enc:       p.deliveringEncoded,
			initiator: received.Initiator,
			instance:  received.Instance,
			seq:       received.Seq,
		})
		p.stats.AcksSent++
		if p.ctr != nil {
			p.ctr.acksSent.Inc()
		}
		if p.trace != nil {
			p.trace.RecordInst(p.ID(), p.round, received.Instance, telemetry.KindAckSent, dst, 0, "")
		}
		return nil
	}
	var digest wire.Value
	if received == p.delivering {
		digest = DigestEncoded(p.deliveringEncoded)
	} else {
		var err error
		digest, err = Digest(received)
		if err != nil {
			return err
		}
	}
	ack := &wire.Message{
		Type:      wire.TypeAck,
		Sender:    p.ID(),
		Initiator: received.Initiator,
		Instance:  received.Instance,
		Seq:       received.Seq,
		Round:     p.round,
		HasValue:  true,
		Value:     digest,
	}
	p.stats.AcksSent++
	if p.ctr != nil {
		p.ctr.acksSent.Inc()
	}
	if p.trace != nil {
		p.trace.RecordInst(p.ID(), p.round, received.Instance, telemetry.KindAckSent, dst, 0, "")
	}
	return p.Send(dst, ack)
}

// receive is the transport delivery callback: it opens the envelope,
// unbatches coalesced frames, enforces the lockstep round check per
// message, consumes ACKs, and forwards protocol messages. Anything the
// protocol sent from its OnMessage callbacks is flushed when the
// delivery event ends — the same virtual instant an unbatched runtime
// would have sent it, and one frame per destination even when several
// batch entries each ACKed the same peer.
func (p *Peer) receive(src wire.NodeID, payload []byte) {
	if p.Halted() || !p.started || p.finished {
		return
	}
	if int(src) >= len(p.links) || p.links[src] == nil {
		return
	}
	// Envelopes are decrypted into the peer's reused open scratch: the
	// plaintext is only alive while this delivery runs (the decoded
	// messages share no bytes with it), so a warm receive pays no
	// plaintext allocation.
	sp := p.trace.BeginSpan()
	plaintext, err := p.links[src].OpenRawAppend(p.openBuf[:0], payload)
	if err != nil {
		p.recvFailure(src)
		return
	}
	if p.spans {
		// The frame tag reads the same sealed bytes the sender hashed, so
		// this open hop and the sender's seal hop share one span id.
		p.curSpan = channel.FrameTag(payload)
		sp.Finish(p.ID(), p.round, 0, telemetry.KindOpen, src, p.curSpan)
	}
	p.openBuf = plaintext
	if wire.IsBatch(plaintext) {
		if wire.IsAckedBatch(plaintext) {
			p.beginFrameAcks(src, channel.FrameTag(payload))
		}
		clean := p.receiveBatch(src, plaintext)
		p.finishFrameAcks(clean)
	} else {
		p.receiveOne(src, plaintext)
	}
	p.flushOutbox()
}

// beginFrameAcks arms frame-cumulative acknowledgment for one marked
// batch frame: SendAck calls for its messages are deferred until the
// frame's delivery completes.
func (p *Peer) beginFrameAcks(src wire.NodeID, tag uint64) {
	p.frameAckOn = true
	p.frameAckSrc = src
	p.frameAckTag = tag
	p.frameDelivered = 0
}

// finishFrameAcks settles the deferred acknowledgments of a marked
// frame. clean reports that every entry was delivered: only then, and
// only when the protocol acknowledged every delivered message, does one
// valueless ACK carrying the frame tag replace the per-message digest
// ACKs — anything else (a cut-short frame, a selective protocol, a
// double ACK) falls back to materializing them individually, which is
// exactly the unbatched wire behaviour.
func (p *Peer) finishFrameAcks(clean bool) {
	on := p.frameAckOn
	p.frameAckOn = false
	pend := p.pendAcks
	delivered := p.frameDelivered
	p.frameDelivered = 0
	if !on || len(pend) == 0 {
		return
	}
	p.pendAcks = pend[:0]
	if clean && len(pend) == delivered {
		wasIn := p.inCallback
		p.inCallback = true
		// Instance carries the number of per-message acknowledgments the
		// frame ACK stands for — frame ACKs span instances by design, so
		// the field is free. The sender uses it only for accounting
		// (Stats.AcksReceived stays a count of logical acknowledgments in
		// every mode); tracker crediting never trusts it.
		ack := wire.Message{
			Type:      wire.TypeAck,
			Sender:    p.ID(),
			Initiator: wire.NoNode,
			Instance:  uint32(len(pend)),
			Seq:       p.frameAckTag,
			Round:     p.round,
		}
		p.ackSendFailed(p.Send(p.frameAckSrc, &ack))
		p.inCallback = wasIn
		return
	}
	p.emitPendAcks(pend)
}

// materializePendAcks converts every deferred acknowledgment into its
// classic per-message digest ACK. It runs when something flushes the
// outbox mid-frame (halt, stop, protocol Flush): the unbatched runtime
// would have had those ACKs on the wire already, so they must leave
// with this flush.
func (p *Peer) materializePendAcks() {
	pend := p.pendAcks
	p.pendAcks = pend[:0]
	p.frameAckOn = false
	p.emitPendAcks(pend)
}

// emitPendAcks sends one digest ACK per deferred entry, in deferral
// order. inCallback is forced on so the ACKs join the round-scoped
// outbox and coalesce exactly like ACKs sent from inside OnMessage.
func (p *Peer) emitPendAcks(pend []pendAck) {
	wasIn := p.inCallback
	p.inCallback = true
	for i := range pend {
		a := &pend[i]
		ack := wire.Message{
			Type:      wire.TypeAck,
			Sender:    p.ID(),
			Initiator: a.initiator,
			Instance:  a.instance,
			Seq:       a.seq,
			Round:     p.round,
			HasValue:  true,
			Value:     DigestEncoded(a.enc),
		}
		p.ackSendFailed(p.Send(p.frameAckSrc, &ack))
	}
	p.inCallback = wasIn
}

// ackSendFailed applies multicastOne's omission accounting to a deferred
// acknowledgment's send result: a failed ACK is indistinguishable from
// an omitting network, and a halted sender has already stopped counting.
func (p *Peer) ackSendFailed(err error) {
	if err == nil || errors.Is(err, ErrHalted) {
		return
	}
	p.stats.SendFailures++
	if p.ctr != nil {
		p.ctr.sendFailures.Inc()
	}
}

// receiveOne handles a bare (non-coalesced) frame: one encoded message.
func (p *Peer) receiveOne(src wire.NodeID, encoded []byte) {
	msg := &p.rxMsg
	if err := wire.DecodeInto(msg, encoded); err != nil || msg.Sender != src {
		p.recvFailure(src)
		return
	}
	p.deliverOne(src, msg, encoded)
}

// receiveBatch walks a coalesced frame entry by entry. The envelope MAC
// covered the whole container, so with honest enclaves every entry
// decodes; a malformed entry means the frame was not produced by this
// link's enclave after all and the remainder is dropped as one omission
// (entries already delivered stay delivered — omission cuts a prefix,
// exactly like a lost unbatched suffix). Every entry gets the same
// per-message round/replay checks and telemetry attribution an
// unbatched delivery gets, and the delivery guards are re-checked
// between entries because OnMessage may halt or stop the peer.
// It reports whether the frame was delivered clean — every entry parsed
// and handed through deliverOne without the peer halting, stopping or
// finishing mid-frame — which is what a frame-cumulative ACK certifies.
func (p *Peer) receiveBatch(src wire.NodeID, plaintext []byte) bool {
	it, err := wire.IterBatch(plaintext)
	if err != nil {
		p.recvFailure(src)
		return false
	}
	for {
		raw, ok, nerr := it.Next()
		if nerr != nil {
			p.recvFailure(src)
			return false
		}
		if !ok {
			return true
		}
		msg := &p.rxMsg
		if derr := wire.DecodeInto(msg, raw); derr != nil || msg.Sender != src {
			p.recvFailure(src)
			return false
		}
		p.deliverOne(src, msg, raw)
		if p.Halted() || !p.started || p.finished {
			return false
		}
	}
}

// earlyMsg is one parked early arrival: the decoded message by value
// (the shared rxMsg scratch is overwritten by the next delivery) and its
// exact transmitted encoding, copied out of the reused open scratch so
// SendAck digests the same bytes a live delivery would.
type earlyMsg struct {
	src wire.NodeID
	msg wire.Message
	enc []byte
	// span is the frame tag of the envelope the message arrived in,
	// restored at replay so the delayed delivery still joins its span.
	span uint64
}

// earlyPerPeer bounds the early buffer at earlyPerPeer*N messages —
// comfortably one round of multiplexed traffic, far below what a
// flooding peer would need to matter.
const earlyPerPeer = 64

// replayEarly delivers the messages parked for the round that just
// ticked. It runs inside the tick event after the protocol's OnRound, so
// a replayed message is processed at the same lockstep point as one
// arriving over the wire moments later; acknowledgments it triggers join
// the tick's outbox flush. Entries from a previous instance (the peer
// restarted while they were parked) no longer match the current round
// and fall through deliverOne's stale drop.
func (p *Peer) replayEarly() {
	if len(p.early) == 0 {
		return
	}
	parked := p.early
	p.early = nil
	for i := range parked {
		if p.Halted() || !p.started || p.finished {
			return
		}
		e := &parked[i]
		p.curSpan = e.span
		p.deliverOne(e.src, &e.msg, e.enc)
	}
	p.curSpan = 0
}

// recvFailure records an envelope (or batch entry) that failed
// authentication, decoding or sender binding: forged, corrupted,
// cross-program or mis-addressed input reduces to an omission
// (Theorem A.2).
func (p *Peer) recvFailure(src wire.NodeID) {
	p.stats.AuthFailures++
	if p.ctr != nil {
		p.ctr.authFailures.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindAuthFail, src, 0, "")
	}
}

// deliverOne applies the runtime checks to one authenticated message and
// hands it to the protocol: ACK consumption, the lockstep round check,
// and delivery bookkeeping — identical whether the message arrived bare
// or inside a batch. encoded is the message's exact transmitted
// encoding (a batch entry sub-slice or the whole bare plaintext), so
// SendAck digests the same bytes in both modes.
func (p *Peer) deliverOne(src wire.NodeID, msg *wire.Message, encoded []byte) {
	if msg.Type == wire.TypeAck {
		// A frame-cumulative ACK (valueless) stands for msg.Instance
		// logical acknowledgments; count them so Stats.AcksReceived means
		// "acknowledgments received" identically in every batching mode.
		// The count is sender-asserted and purely diagnostic — tracker
		// crediting below is one bit per (frame, recipient) regardless.
		n := uint64(1)
		if !msg.HasValue && msg.Instance > 1 {
			n = uint64(msg.Instance)
		}
		p.stats.AcksReceived += n
		if p.ctr != nil {
			p.ctr.acksReceived.Add(n)
		}
		if p.trace != nil {
			p.trace.RecordInst(p.ID(), p.round, msg.Instance, telemetry.KindAckRecv, src, n, "")
		}
		p.handleAck(src, msg)
		return
	}
	// A message stamped exactly one round ahead arrived from a peer
	// whose wall clock ticked marginally earlier — inevitable when the
	// lockstep schedule runs on real clocks across processes, impossible
	// in the virtual-time simnet. Park it until our own tick catches up:
	// delivering it during round+1 is exactly when the lockstep model
	// says it arrives, so the buffer grants a byzantine sender no power
	// it lacks (it could as well have sent the message next round). The
	// buffer is bounded; overflow degrades to the stale-drop omission.
	if msg.Round == p.round+1 && msg.Round <= p.rounds && len(p.early) < earlyPerPeer*p.cfg.N {
		p.stats.EarlyBuffered++
		if p.ctr != nil {
			p.ctr.earlyBuffered.Inc()
		}
		if p.trace != nil {
			p.trace.RecordInst(p.ID(), p.round, msg.Instance, telemetry.KindEarly, src, uint64(msg.Round), "")
		}
		p.early = append(p.early, earlyMsg{
			src:  src,
			msg:  *msg,
			enc:  append([]byte(nil), encoded...),
			span: p.curSpan,
		})
		return
	}
	// Lockstep execution (P5): a message stamped with a different round
	// than the receiver's current round is a delayed or replayed message
	// and is ignored, i.e. treated as omitted.
	if msg.Round != p.round {
		p.stats.RoundMismatches++
		if p.ctr != nil {
			p.ctr.roundMismatches.Inc()
		}
		if p.trace != nil {
			p.trace.RecordInst(p.ID(), p.round, msg.Instance, telemetry.KindStale, src, uint64(msg.Round), "")
		}
		return
	}
	p.stats.Delivered++
	if p.ctr != nil {
		p.ctr.delivered.Inc()
	}
	if p.trace != nil {
		if p.spans {
			// Span-attributed delivery: Arg keeps the wire message type,
			// the span ties it to the envelope's seal/open hops.
			p.trace.RecordSpan(p.ID(), p.round, msg.Instance, telemetry.KindDeliver, src, uint64(msg.Type), p.curSpan)
		} else {
			p.trace.RecordInst(p.ID(), p.round, msg.Instance, telemetry.KindDeliver, src, uint64(msg.Type), "")
		}
	}
	if p.frameAckOn {
		p.frameDelivered++
	}
	p.delivering, p.deliveringEncoded = msg, encoded
	sp := p.trace.BeginSpan()
	p.inCallback = true
	p.proto.OnMessage(msg)
	p.inCallback = false
	if p.spans {
		sp.Finish(p.ID(), p.round, msg.Instance, telemetry.KindHandled, src, p.curSpan)
	}
	p.delivering, p.deliveringEncoded = nil, nil
}

// indexTracker adds a freshly registered tracker to the digest index once
// the round holds enough trackers for the linear scan to lose. The index
// is first-insert-wins: should two multicasts of one round share a digest
// (identical re-broadcasts), the linear scan credits only the first — the
// map keeps the same winner, so both lookup paths starve the duplicate
// identically and halt-on-divergence fires in both.
func (p *Peer) indexTracker(tk *ackTracker) {
	if p.trackerIdx == nil {
		if len(p.trackers) <= ackIndexMin {
			return
		}
		p.trackerIdx = make(map[ackKey]*ackTracker, 2*len(p.trackers))
		for _, prev := range p.trackers {
			k := ackKey{round: prev.round, digest: prev.digest}
			if _, dup := p.trackerIdx[k]; !dup {
				p.trackerIdx[k] = prev
			}
		}
		return
	}
	k := ackKey{round: tk.round, digest: tk.digest}
	if _, dup := p.trackerIdx[k]; !dup {
		p.trackerIdx[k] = tk
	}
}

// handleAck credits an acknowledgment to the matching tracker. ACKs are
// only valid within the round of the multicast they acknowledge. Rounds
// with few trackers scan linearly; a multiplexed round past ackIndexMin
// trackers resolves through the digest index instead, turning the per-ACK
// cost from O(instances) to O(1).
func (p *Peer) handleAck(src wire.NodeID, ack *wire.Message) {
	if !ack.HasValue {
		// Frame-cumulative ACK: Seq names a sealed frame this peer sent
		// to src (channel.FrameTag); one bit in the window's shared
		// frameGroup credits every tracker whose message the frame
		// carried. The key binds the crediting peer, so only the frame's
		// actual recipient can credit it.
		if fg, ok := p.frameIdx[frameKey{dst: src, round: ack.Round, tag: ack.Seq}]; ok {
			for g := fg; g != nil; g = g.next {
				g.acked.set(src)
			}
		}
		return
	}
	if p.trackerIdx != nil {
		if tk, ok := p.trackerIdx[ackKey{round: ack.Round, digest: ack.Value}]; ok {
			tk.acked.set(src)
		}
		return
	}
	for _, tk := range p.trackers {
		if tk.round == ack.Round && tk.digest == ack.Value {
			tk.acked.set(src)
			return
		}
	}
}

// Setup performs the one-time setup phase for a set of peers living in the
// same simulation: it distributes every peer's enclave-drawn initial
// sequence number to all others. This models the O(N^2) secure exchange of
// Section 4.1 — byzantine nodes cannot misreport their sequence number
// because it is drawn and sent by enclave code over the blinded channel.
func Setup(peers []*Peer) error {
	seqs := make([]uint64, len(peers))
	for i, p := range peers {
		if p == nil {
			return fmt.Errorf("runtime: nil peer %d in setup", i)
		}
		s, err := p.InitialSeq()
		if err != nil {
			return fmt.Errorf("runtime: peer %d initial seq: %w", i, err)
		}
		seqs[i] = s
	}
	for i, p := range peers {
		if err := p.InstallSeqs(seqs); err != nil {
			return fmt.Errorf("runtime: peer %d install seqs: %w", i, err)
		}
	}
	return nil
}
