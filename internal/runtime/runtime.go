// Package runtime implements the peer runtime shared by the enclaved
// protocols: the setup phase of Section 4.1 (mutual remote attestation,
// Diffie-Hellman link establishment and initial sequence-number exchange),
// lockstep round scheduling (property P5, rounds of 2*Delta), the
// authenticated multicast with ACK counting that realizes
// halt-on-divergence (property P4), and the per-peer sequence tables that
// realize message freshness (property P6).
//
// Protocols (internal/core/erb, internal/core/erng) are state machines
// driven by two callbacks: OnRound at the start of every round and
// OnMessage for every message that survived the channel's authentication
// and the runtime's lockstep round check. Everything a protocol sends
// travels through Peer.Multicast / Peer.Send, which seal per-link
// envelopes and hand them to the Transport — where a byzantine OS (see
// internal/adversary) may interfere, but only by omitting, holding or
// replaying envelopes.
package runtime

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/channel"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// Transport is the narrow network interface the runtime needs. It is
// satisfied by *simnet.Port (simulation) and *tcpnet.Port (live TCP).
type Transport interface {
	// Send transmits a sealed envelope to dst. Ownership of the slice
	// passes to the transport.
	Send(dst wire.NodeID, payload []byte)
	// SetHandler registers the delivery callback.
	SetHandler(h func(src wire.NodeID, payload []byte))
	// Detach removes this node from the network (halt-on-divergence).
	Detach()
	// After schedules fn after a delay on the node's event loop.
	After(d time.Duration, fn func())
	// Now returns the transport's current time.
	Now() time.Duration
}

// Protocol is the state-machine interface protocols implement.
type Protocol interface {
	// OnRound fires at the start of every round, 1-based.
	OnRound(rnd uint32)
	// OnMessage fires for every authenticated message whose stamped
	// round matches the current round. ACKs are consumed by the runtime
	// and never reach the protocol.
	OnMessage(msg *wire.Message)
	// OnFinish fires once, at the end of the final round.
	OnFinish()
}

// Roster describes the network membership every peer knows (assumptions
// S1/S5): the attestation quotes of all peers indexed by NodeID, the
// attestation service's verification key, and the expected program
// measurement.
type Roster struct {
	Quotes      []enclave.Quote
	ServiceKey  xcrypto.VerifyKey
	Measurement xcrypto.Measurement
	// PreVerified marks a roster whose quotes were already verified by
	// the deployment builder, letting NewPeer skip the per-peer
	// re-verification (which is O(N^2) signature checks across a
	// simulated deployment sharing one process). Live deployments leave
	// it false so every node verifies for itself.
	PreVerified bool
}

// Config carries the protocol-independent parameters of a deployment.
type Config struct {
	// N is the network size; T the byzantine bound (N >= 2T+1 for ERB).
	N, T int
	// Delta is the one-way delivery bound; a round lasts 2*Delta (S3).
	Delta time.Duration
	// Sealer builds this peer's sealer. Nil defaults to the real
	// AES+HMAC sealer.
	Sealer channel.Sealer
	// Trace, when non-nil, receives the peer's round-structured event
	// stream (round ticks, deliveries, ACK traffic, halts). Nil disables
	// tracing at the cost of one pointer check per event site.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, is the registry the peer's counters (and its
	// links' channel counters) register into. Nil disables metrics.
	Metrics *telemetry.Metrics
}

// Errors returned by peer construction and messaging.
var (
	// ErrHalted is returned by operations on a peer that has churned
	// itself out of the network.
	ErrHalted = errors.New("runtime: peer halted")
	// ErrUnknownPeer indicates a destination outside the roster.
	ErrUnknownPeer = errors.New("runtime: unknown peer")
	// ErrNilMessage indicates an attempt to acknowledge or digest a nil
	// message.
	ErrNilMessage = errors.New("runtime: nil message")
)

// Stats counts runtime-level events, used by tests and experiments.
type Stats struct {
	// Delivered counts messages passed to the protocol.
	Delivered uint64
	// AuthFailures counts envelopes rejected by the channel (forgeries,
	// corruption, wrong program) — treated as omissions per Theorem A.2.
	AuthFailures uint64
	// RoundMismatches counts authenticated messages dropped by the
	// lockstep check (delay/replay attacks surfacing as stale rounds).
	RoundMismatches uint64
	// AcksSent and AcksReceived count the P4 acknowledgment traffic.
	AcksSent     uint64
	AcksReceived uint64
	// Halts is 1 once the peer executed halt-on-divergence.
	Halts uint64
	// SendFailures counts multicast destinations that could not be sealed
	// or addressed (e.g. a peer that vanished mid-round). They degrade to
	// omissions — the rest of the multicast proceeds — so a crashed peer
	// cannot wedge a broadcast.
	SendFailures uint64
}

// counters are the peer's registered metric handles, mirroring Stats in
// the telemetry registry; nil when the deployment runs without one, so
// every hot-path update is behind a single pointer check.
type counters struct {
	delivered       *telemetry.Counter
	authFailures    *telemetry.Counter
	roundMismatches *telemetry.Counter
	acksSent        *telemetry.Counter
	acksReceived    *telemetry.Counter
	halts           *telemetry.Counter
	sendFailures    *telemetry.Counter
	envelopesSent   *telemetry.Counter
}

func newCounters(m *telemetry.Metrics) *counters {
	if m == nil {
		return nil
	}
	return &counters{
		delivered:       m.Counter("runtime_delivered_total"),
		authFailures:    m.Counter("runtime_auth_failures_total"),
		roundMismatches: m.Counter("runtime_round_mismatches_total"),
		acksSent:        m.Counter("runtime_acks_sent_total"),
		acksReceived:    m.Counter("runtime_acks_received_total"),
		halts:           m.Counter("runtime_halts_total"),
		sendFailures:    m.Counter("runtime_send_failures_total"),
		envelopesSent:   m.Counter("runtime_envelopes_sent_total"),
	}
}

// nodeBitset is a dense set of NodeIDs. The ACK tracker of a multicast
// previously used a map[wire.NodeID]bool, one allocation per multicast
// plus hashing per ACK; node ids are dense small integers, so a bitset
// does the same job with a single word-slice allocation.
type nodeBitset struct {
	words []uint64
	count int
}

// set records id and reports whether it was newly set, so duplicate ACKs
// (replays) are not double-counted.
func (b *nodeBitset) set(id wire.NodeID) bool {
	w, bit := int(id)/64, uint(id)%64
	if w >= len(b.words) {
		// Joins (AddPeer) can grow membership past the size the tracker
		// was created for.
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	if b.words[w]&(1<<bit) != 0 {
		return false
	}
	b.words[w] |= 1 << bit
	b.count++
	return true
}

// ackTracker tracks acknowledgments for one multicast.
type ackTracker struct {
	digest    wire.Value
	round     uint32
	threshold int
	acked     nodeBitset
}

// Peer is one node's runtime.
type Peer struct {
	encl  *enclave.Enclave
	tr    Transport
	cfg   Config
	links []*channel.Link

	proto       Protocol
	rounds      uint32
	round       uint32
	started     bool
	finished    bool
	seqs        []uint64
	instanceID  uint32
	trackers    []*ackTracker
	startOffset time.Duration
	stats       Stats
	trace       *telemetry.Tracer
	ctr         *counters

	// delivering is the message currently being handed to the protocol by
	// receive, together with the channel plaintext it was decoded from.
	// SendAck recognizes the pointer and hashes that plaintext directly,
	// so acknowledging a received message costs zero extra Encodes.
	delivering        *wire.Message
	deliveringEncoded []byte

	// encodeBuf and openBuf are per-peer scratch buffers for the two
	// halves of the envelope hot path: Multicast/Send encode messages
	// into encodeBuf (wire.AppendEncode) and receive decrypts envelopes
	// into openBuf (channel.OpenEncodedAppend). Both are safe to reuse
	// because the peer's sends and deliveries are serialized on one
	// event loop and neither encoding outlives its call: envelopes are
	// sealed into fresh buffers (they escape to the transport, where the
	// adversary may hold or replay them) and decoded messages share no
	// bytes with the plaintext they were parsed from.
	encodeBuf []byte
	openBuf   []byte
}

// NewPeer verifies the roster's attestation quotes (F3, property P1),
// establishes a blinded channel to every other peer, and returns the
// runtime. The peer's own quote must be at index enclave.ID().
func NewPeer(encl *enclave.Enclave, tr Transport, roster Roster, cfg Config) (*Peer, error) {
	if encl == nil || tr == nil {
		return nil, errors.New("runtime: nil enclave or transport")
	}
	if cfg.N != len(roster.Quotes) {
		return nil, fmt.Errorf("runtime: roster has %d quotes, config N=%d", len(roster.Quotes), cfg.N)
	}
	if cfg.N < 2 || cfg.T < 0 {
		return nil, fmt.Errorf("runtime: invalid sizes N=%d T=%d", cfg.N, cfg.T)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("runtime: invalid delta %v", cfg.Delta)
	}
	if cfg.Sealer == nil {
		cfg.Sealer = channel.RealSealer{}
	}
	p := &Peer{
		encl:  encl,
		tr:    tr,
		cfg:   cfg,
		links: make([]*channel.Link, cfg.N),
		seqs:  make([]uint64, cfg.N),
		trace: cfg.Trace,
		ctr:   newCounters(cfg.Metrics),
	}
	chanCtr := channel.NewCounters(cfg.Metrics)
	self := int(encl.ID())
	for id, q := range roster.Quotes {
		if id == self {
			continue
		}
		if !roster.PreVerified {
			if err := enclave.VerifyQuote(roster.ServiceKey, roster.Measurement, q); err != nil {
				return nil, fmt.Errorf("runtime: attestation of peer %d: %w", id, err)
			}
		}
		if q.NodeID != wire.NodeID(id) {
			return nil, fmt.Errorf("runtime: quote %d claims node id %d", id, q.NodeID)
		}
		link, err := channel.NewLink(encl, wire.NodeID(id), q.DHPublic, cfg.Sealer)
		if err != nil {
			return nil, fmt.Errorf("runtime: link to %d: %w", id, err)
		}
		link.SetCounters(chanCtr)
		p.links[id] = link
	}
	tr.SetHandler(p.receive)
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() wire.NodeID { return p.encl.ID() }

// N returns the network size.
func (p *Peer) N() int { return p.cfg.N }

// T returns the byzantine bound.
func (p *Peer) T() int { return p.cfg.T }

// Delta returns the delivery bound.
func (p *Peer) Delta() time.Duration { return p.cfg.Delta }

// Enclave exposes the peer's enclave to the protocol layer (which is
// trusted code; the OS layer never holds a *Peer).
func (p *Peer) Enclave() *enclave.Enclave { return p.encl }

// Stats returns a snapshot of the runtime counters.
func (p *Peer) Stats() Stats { return p.stats }

// Metrics exposes the deployment's metrics registry to the protocol layer
// (nil when the deployment runs without one).
func (p *Peer) Metrics() *telemetry.Metrics { return p.cfg.Metrics }

// Trace records a protocol-layer event against this peer's current round.
// Protocols call it for their own milestones (INIT/ECHO/accept, cluster
// sampling, decisions); runtime-level events are recorded internally.
func (p *Peer) Trace(kind telemetry.Kind, peer wire.NodeID, arg uint64) {
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, kind, peer, arg, "")
	}
}

// Halted reports whether this peer has churned itself out.
func (p *Peer) Halted() bool { return p.encl.Halted() }

// Round returns the current lockstep round (0 before Start).
func (p *Peer) Round() uint32 { return p.round }

// Now returns the transport's current time (virtual in simulation).
func (p *Peer) Now() time.Duration { return p.tr.Now() }

// Instance returns the current protocol instance (epoch) number.
func (p *Peer) Instance() uint32 { return p.instanceID }

// InitialSeq draws this peer's initial sequence number inside the enclave
// (setup phase; property P6).
func (p *Peer) InitialSeq() (uint64, error) {
	return p.encl.RandomSeq()
}

// InstallSeqs installs the sequence numbers of all peers, as exchanged
// over the blinded channels during setup. In the simulator the exchange is
// orchestrated by Setup; in the TCP deployment it is a real message round.
func (p *Peer) InstallSeqs(seqs []uint64) error {
	if len(seqs) != p.cfg.N {
		return fmt.Errorf("runtime: got %d seqs, want %d", len(seqs), p.cfg.N)
	}
	copy(p.seqs, seqs)
	return nil
}

// SeqOf returns the expected current sequence number of a peer.
func (p *Peer) SeqOf(id wire.NodeID) uint64 { return p.seqs[int(id)] }

// AddPeer extends the membership with a newly joined node (the dynamic
// join of Appendix G / assumption S1): the quote is verified, a blinded
// channel is established, and the joiner's initial sequence number is
// recorded. The new node's id must be the next dense index.
func (p *Peer) AddPeer(roster Roster, q enclave.Quote, seq uint64) error {
	if p.Halted() {
		return ErrHalted
	}
	if q.NodeID != wire.NodeID(len(p.links)) {
		return fmt.Errorf("runtime: joiner id %d is not the next index %d", q.NodeID, len(p.links))
	}
	if err := enclave.VerifyQuote(roster.ServiceKey, roster.Measurement, q); err != nil {
		return fmt.Errorf("runtime: attestation of joiner %d: %w", q.NodeID, err)
	}
	link, err := channel.NewLink(p.encl, q.NodeID, q.DHPublic, p.cfg.Sealer)
	if err != nil {
		return fmt.Errorf("runtime: link to joiner %d: %w", q.NodeID, err)
	}
	link.SetCounters(channel.NewCounters(p.cfg.Metrics))
	p.links = append(p.links, link)
	p.seqs = append(p.seqs, seq)
	p.cfg.N++
	return nil
}

// AlignInstance sets the instance (epoch) counter; a joining node calls
// it so its message-freshness state matches the network it joined.
func (p *Peer) AlignInstance(instance uint32) {
	p.instanceID = instance
}

// BumpSeqs increments every peer's sequence number after a completed
// instance ("After every valid instance of the protocol, nodes will
// increase all sequence numbers by 1") and advances the instance id.
func (p *Peer) BumpSeqs() {
	for i := range p.seqs {
		p.seqs[i]++
	}
	p.instanceID++
}

// Start begins a protocol instance: the enclave's trusted-time reference
// is reset to "now" (synchronized start, S2), and rounds 1..rounds are
// scheduled every 2*Delta. OnFinish fires at the end of the last round.
func (p *Peer) Start(proto Protocol, rounds int) {
	p.StartIn(proto, rounds, 0)
}

// StartIn begins a protocol instance whose round 1 fires after the given
// delay. Live (TCP) deployments use it to arm every peer ahead of the
// agreed start instant, so no round-1 message can arrive at a peer that
// has not started yet — the synchronized-start assumption S2 realized
// across processes.
func (p *Peer) StartIn(proto Protocol, rounds int, startDelay time.Duration) {
	if startDelay < 0 {
		startDelay = 0
	}
	p.proto = proto
	p.rounds = uint32(rounds)
	p.round = 0
	p.started = true
	p.finished = false
	p.encl.ResetReference()
	p.startOffset = startDelay
	p.scheduleTick(1)
}

func (p *Peer) scheduleTick(rnd uint32) {
	delay := p.startOffset + time.Duration(rnd-1)*2*p.cfg.Delta
	// Re-anchor against the enclave's trusted elapsed time so a byzantine
	// OS cannot skew the tick (F4 / lockstep P5).
	p.tr.After(delay-p.encl.ElapsedTime(), func() { p.tick(rnd) })
}

func (p *Peer) tick(rnd uint32) {
	if p.Halted() || !p.started {
		return
	}
	p.closeRound()
	if p.Halted() {
		return
	}
	if rnd > p.rounds {
		p.finished = true
		p.proto.OnFinish()
		return
	}
	p.round = rnd
	if p.trace != nil {
		p.trace.Record(p.ID(), rnd, telemetry.KindRound, wire.NoNode, 0, "")
	}
	p.proto.OnRound(rnd)
	if !p.Halted() {
		p.scheduleTick(rnd + 1)
	}
}

// closeRound evaluates the ACK trackers of the round that just ended: a
// multicast that gathered fewer than threshold acknowledgments halts the
// peer (property P4, the Halt function of Algorithm 2).
func (p *Peer) closeRound() {
	trackers := p.trackers
	p.trackers = nil
	for _, tk := range trackers {
		if tk.acked.count < tk.threshold {
			p.haltSelf("ack-threshold")
			return
		}
	}
}

// Stop withdraws the peer from its protocol instance without executing
// halt-on-divergence: pending round ticks become no-ops, inbound
// deliveries are dropped, and ACK trackers are discarded. It models a
// machine crash (the chaos engine's CrashAt), where the node simply
// vanishes instead of deliberately churning out; the enclave is NOT
// halted — its state is lost with the machine, and the node can only
// come back as a freshly launched enclave (deploy.Restart).
func (p *Peer) Stop() {
	p.started = false
	p.proto = nil
	p.trackers = nil
}

// HaltSelf executes halt-on-divergence: the enclave state becomes bottom
// and the node churns out of the network.
func (p *Peer) HaltSelf() { p.haltSelf("") }

// haltSelf is HaltSelf with a trace annotation naming the trigger.
func (p *Peer) haltSelf(why string) {
	if p.Halted() {
		return
	}
	p.stats.Halts++
	if p.ctr != nil {
		p.ctr.halts.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindHalt, wire.NoNode, 0, why)
	}
	p.encl.Halt()
	p.tr.Detach()
}

// Digest computes H(val), the message digest ACKs carry. A nil message
// is reported as ErrNilMessage rather than a panic.
func Digest(msg *wire.Message) (wire.Value, error) {
	var d wire.Value
	if msg == nil {
		return d, ErrNilMessage
	}
	enc, err := msg.Encode()
	if err != nil {
		return d, err
	}
	return DigestEncoded(enc), nil
}

// DigestEncoded computes H(val) from an already-encoded message. The hot
// paths (multicast, ACK of a just-received message) hold the encoding
// already; hashing it directly avoids a second Encode of the same bytes.
func DigestEncoded(encoded []byte) wire.Value {
	return sha256.Sum256(encoded)
}

// Multicast seals msg for every destination and sends it. If ackThreshold
// is positive the runtime tracks acknowledgments until the end of the
// current round and halts the peer if fewer than ackThreshold arrive.
// Destinations nil means "all other peers". Per-destination failures
// degrade to omissions (see multicastOne); the error return is reserved
// for encode failures and a halted sender.
//
// The message is encoded exactly once, into the peer's reused encode
// scratch; each link seals the shared encoding into a fresh envelope
// (channel.SealEncodedAppend), so a multicast to N-1 destinations costs
// zero steady-state encode allocations and exactly one exactly-sized
// allocation per envelope.
func (p *Peer) Multicast(dsts []wire.NodeID, msg *wire.Message, ackThreshold int) error {
	if p.Halted() {
		return ErrHalted
	}
	encoded, err := msg.AppendEncode(p.encodeBuf[:0])
	if err != nil {
		return err
	}
	p.encodeBuf = encoded
	if ackThreshold > 0 {
		p.trackers = append(p.trackers, &ackTracker{
			digest:    DigestEncoded(encoded),
			round:     p.round,
			threshold: ackThreshold,
		})
	}
	if dsts == nil {
		for id := 0; id < p.cfg.N; id++ {
			if wire.NodeID(id) == p.ID() {
				continue
			}
			if err := p.multicastOne(wire.NodeID(id), encoded); err != nil {
				return err
			}
		}
		return nil
	}
	for _, dst := range dsts {
		if dst == p.ID() {
			continue
		}
		if err := p.multicastOne(dst, encoded); err != nil {
			return err
		}
	}
	return nil
}

// multicastOne seals and sends one multicast leg. A per-destination
// failure — an unknown or vanished peer, a seal error on its link — is
// recorded and swallowed: under the omission model a dead destination is
// indistinguishable from an omitting network, and aborting the loop
// would silently starve every destination after the failed one (the
// multicast wedge the chaos crash schedules exposed). Only ErrHalted
// aborts: a halted sender must not keep transmitting.
func (p *Peer) multicastOne(dst wire.NodeID, encoded []byte) error {
	err := p.sendEncoded(dst, encoded)
	if err == nil || errors.Is(err, ErrHalted) {
		return err
	}
	p.stats.SendFailures++
	if p.ctr != nil {
		p.ctr.sendFailures.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindSendFail, dst, 0, "")
	}
	return nil
}

// Send seals msg for one destination and hands it to the transport.
func (p *Peer) Send(dst wire.NodeID, msg *wire.Message) error {
	encoded, err := msg.AppendEncode(p.encodeBuf[:0])
	if err != nil {
		return err
	}
	p.encodeBuf = encoded
	return p.sendEncoded(dst, encoded)
}

// sendEncoded seals an already-encoded message for one destination and
// hands the envelope to the transport. The envelope is sealed into a
// fresh exactly-sized buffer: ownership passes to the transport, where
// the adversarial OS may hold or replay it indefinitely, so envelope
// buffers are never reused by the runtime.
func (p *Peer) sendEncoded(dst wire.NodeID, encoded []byte) error {
	if p.Halted() {
		return ErrHalted
	}
	if int(dst) >= len(p.links) || p.links[dst] == nil {
		return ErrUnknownPeer
	}
	env, err := p.links[dst].SealEncodedAppend(nil, encoded)
	if err != nil {
		return err
	}
	if p.ctr != nil {
		p.ctr.envelopesSent.Inc()
	}
	p.tr.Send(dst, env)
	return nil
}

// SendAck acknowledges a valid received message: ACKs carry the digest
// H(val) of the acknowledged message, the initiator's sequence number and
// the current round, per Section 4's val format.
//
// When the acknowledged message is the one currently being delivered by
// receive (the common case — protocols ACK from inside OnMessage), the
// digest is taken from the plaintext the channel just opened instead of
// re-encoding the message.
//
// A nil received message is rejected with ErrNilMessage instead of
// panicking inside the digest computation.
func (p *Peer) SendAck(dst wire.NodeID, received *wire.Message) error {
	if received == nil {
		return ErrNilMessage
	}
	var digest wire.Value
	if received == p.delivering {
		digest = DigestEncoded(p.deliveringEncoded)
	} else {
		var err error
		digest, err = Digest(received)
		if err != nil {
			return err
		}
	}
	ack := &wire.Message{
		Type:      wire.TypeAck,
		Sender:    p.ID(),
		Initiator: received.Initiator,
		Instance:  received.Instance,
		Seq:       received.Seq,
		Round:     p.round,
		HasValue:  true,
		Value:     digest,
	}
	p.stats.AcksSent++
	if p.ctr != nil {
		p.ctr.acksSent.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindAckSent, dst, 0, "")
	}
	return p.Send(dst, ack)
}

// receive is the transport delivery callback: it opens the envelope,
// enforces the lockstep round check, consumes ACKs, and forwards protocol
// messages.
func (p *Peer) receive(src wire.NodeID, payload []byte) {
	if p.Halted() || !p.started || p.finished {
		return
	}
	if int(src) >= len(p.links) || p.links[src] == nil {
		return
	}
	// Envelopes are decrypted into the peer's reused open scratch: the
	// plaintext is only alive while this delivery runs (the decoded
	// message shares no bytes with it), so a warm receive pays no
	// plaintext allocation.
	msg, encoded, err := p.links[src].OpenEncodedAppend(p.openBuf[:0], payload)
	if err != nil {
		// Forged, corrupted, cross-program or mis-addressed envelopes
		// reduce to omissions (Theorem A.2).
		p.stats.AuthFailures++
		if p.ctr != nil {
			p.ctr.authFailures.Inc()
		}
		if p.trace != nil {
			p.trace.Record(p.ID(), p.round, telemetry.KindAuthFail, src, 0, "")
		}
		return
	}
	p.openBuf = encoded
	if msg.Type == wire.TypeAck {
		p.stats.AcksReceived++
		if p.ctr != nil {
			p.ctr.acksReceived.Inc()
		}
		if p.trace != nil {
			p.trace.Record(p.ID(), p.round, telemetry.KindAckRecv, src, 0, "")
		}
		p.handleAck(src, msg)
		return
	}
	// Lockstep execution (P5): a message stamped with a different round
	// than the receiver's current round is a delayed or replayed message
	// and is ignored, i.e. treated as omitted.
	if msg.Round != p.round {
		p.stats.RoundMismatches++
		if p.ctr != nil {
			p.ctr.roundMismatches.Inc()
		}
		if p.trace != nil {
			p.trace.Record(p.ID(), p.round, telemetry.KindStale, src, uint64(msg.Round), "")
		}
		return
	}
	p.stats.Delivered++
	if p.ctr != nil {
		p.ctr.delivered.Inc()
	}
	if p.trace != nil {
		p.trace.Record(p.ID(), p.round, telemetry.KindDeliver, src, uint64(msg.Type), "")
	}
	p.delivering, p.deliveringEncoded = msg, encoded
	p.proto.OnMessage(msg)
	p.delivering, p.deliveringEncoded = nil, nil
}

// handleAck credits an acknowledgment to the matching tracker. ACKs are
// only valid within the round of the multicast they acknowledge.
func (p *Peer) handleAck(src wire.NodeID, ack *wire.Message) {
	if !ack.HasValue {
		return
	}
	for _, tk := range p.trackers {
		if tk.round == ack.Round && tk.digest == ack.Value {
			tk.acked.set(src)
			return
		}
	}
}

// Setup performs the one-time setup phase for a set of peers living in the
// same simulation: it distributes every peer's enclave-drawn initial
// sequence number to all others. This models the O(N^2) secure exchange of
// Section 4.1 — byzantine nodes cannot misreport their sequence number
// because it is drawn and sent by enclave code over the blinded channel.
func Setup(peers []*Peer) error {
	seqs := make([]uint64, len(peers))
	for i, p := range peers {
		if p == nil {
			return fmt.Errorf("runtime: nil peer %d in setup", i)
		}
		s, err := p.InitialSeq()
		if err != nil {
			return fmt.Errorf("runtime: peer %d initial seq: %w", i, err)
		}
		seqs[i] = s
	}
	for i, p := range peers {
		if err := p.InstallSeqs(seqs); err != nil {
			return fmt.Errorf("runtime: peer %d install seqs: %w", i, err)
		}
	}
	return nil
}
