package runtime_test

import (
	"testing"
	"time"

	"sgxp2p/internal/deploy"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// probe is a minimal protocol recording runtime callbacks; behaviour is
// customized per test through the hook functions.
type probe struct {
	peer   *runtime.Peer
	rounds []uint32
	// msgs holds clones: delivered messages are borrowed (valid only
	// during OnMessage), so a retaining protocol copies what it keeps.
	msgs     []*wire.Message
	finished bool
	onRound  func(rnd uint32)
	onMsg    func(m *wire.Message)
}

func (p *probe) OnRound(rnd uint32) {
	p.rounds = append(p.rounds, rnd)
	if p.onRound != nil {
		p.onRound(rnd)
	}
}

func (p *probe) OnMessage(m *wire.Message) {
	p.msgs = append(p.msgs, m.Clone())
	if p.onMsg != nil {
		p.onMsg(m)
	}
}

func (p *probe) OnFinish() { p.finished = true }

func newDeployment(t *testing.T, n, byz int) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 1})
	if err != nil {
		t.Fatalf("deploy.New: %v", err)
	}
	return d
}

// startAll attaches a probe to every peer and starts the given number of
// rounds.
func startAll(d *deploy.Deployment, rounds int) []*probe {
	probes := make([]*probe, len(d.Peers))
	for i, p := range d.Peers {
		probes[i] = &probe{peer: p}
		p.Start(probes[i], rounds)
	}
	return probes
}

func TestDeployValidation(t *testing.T) {
	if _, err := deploy.New(deploy.Options{N: 1, T: 0}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := deploy.New(deploy.Options{N: 5, T: 3}); err == nil {
		t.Error("t beyond N/2 accepted")
	}
	if _, err := deploy.New(deploy.Options{N: 5, T: -1}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestRoundScheduling(t *testing.T) {
	d := newDeployment(t, 3, 1)
	probes := startAll(d, 4)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pr := range probes {
		if len(pr.rounds) != 4 {
			t.Fatalf("peer %d saw rounds %v, want 4 rounds", i, pr.rounds)
		}
		for j, r := range pr.rounds {
			if r != uint32(j+1) {
				t.Fatalf("peer %d round sequence %v", i, pr.rounds)
			}
		}
		if !pr.finished {
			t.Fatalf("peer %d never finished", i)
		}
	}
	// 4 rounds of 2*Delta each.
	if got, want := d.Sim.Now(), 4*d.RoundDuration(); got != want {
		t.Fatalf("finished at %v, want %v", got, want)
	}
}

func TestMulticastDeliversWithinRound(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true,
			Value: wire.Value{0xAB},
		}
		if err := sender.peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if len(probes[i].msgs) != 1 {
			t.Fatalf("peer %d got %d messages, want 1", i, len(probes[i].msgs))
		}
		got := probes[i].msgs[0]
		if got.Type != wire.TypeInit || got.Sender != 0 || got.Value != (wire.Value{0xAB}) {
			t.Fatalf("peer %d got %v", i, got)
		}
	}
	if len(probes[0].msgs) != 0 {
		t.Fatal("sender delivered its own multicast")
	}
}

func TestAckSatisfiedNoHalt(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{1},
		}
		// Threshold t=2: four honest receivers will all ACK.
		if err := sender.peer.Multicast(nil, msg, 2); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	for _, pr := range probes[1:] {
		pr := pr
		pr.onMsg = func(m *wire.Message) {
			if err := pr.peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("SendAck: %v", err)
			}
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if probes[0].peer.Halted() {
		t.Fatal("sender halted despite sufficient ACKs")
	}
	st := probes[0].peer.Stats()
	if st.AcksReceived != 4 {
		t.Fatalf("sender received %d acks, want 4", st.AcksReceived)
	}
}

func TestHaltOnMissingAcks(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 3)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{1},
		}
		if err := sender.peer.Multicast(nil, msg, 2); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	// Nobody ACKs: the sender must churn itself out at the end of round 1
	// (halt-on-divergence, P4).
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !sender.peer.Halted() {
		t.Fatal("sender did not halt without ACKs")
	}
	if got := len(sender.rounds); got != 1 {
		t.Fatalf("halted sender saw %d rounds, want 1", got)
	}
	if sender.finished {
		t.Fatal("halted sender reported finish")
	}
	if !d.Net.Detached(0) {
		t.Fatal("halted peer not detached from the network")
	}
	if st := sender.peer.Stats(); st.Halts != 1 {
		t.Fatalf("halts = %d, want 1", st.Halts)
	}
}

func TestPartialAcksBelowThresholdHalts(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{1},
		}
		if err := sender.peer.Multicast(nil, msg, 2); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	// Only peer 1 ACKs; threshold is 2.
	probes[1].onMsg = func(m *wire.Message) {
		if err := probes[1].peer.SendAck(m.Sender, m); err != nil {
			t.Errorf("SendAck: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !sender.peer.Halted() {
		t.Fatal("sender with 1 < 2 ACKs did not halt")
	}
}

func TestRoundMismatchDropped(t *testing.T) {
	d := newDeployment(t, 3, 1)
	probes := startAll(d, 3)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		// Stamp a stale round: receivers are in round 1, message claims 3.
		msg := &wire.Message{
			Type: wire.TypeEcho, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 3, HasValue: true, Value: wire.Value{1},
		}
		if err := sender.peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if len(probes[i].msgs) != 0 {
			t.Fatalf("peer %d delivered a round-mismatched message", i)
		}
		if st := probes[i].peer.Stats(); st.RoundMismatches != 1 {
			t.Fatalf("peer %d round mismatches = %d, want 1", i, st.RoundMismatches)
		}
	}
}

// TestEarlyMessageBufferedOneRound pins the live-clock skew tolerance: a
// message stamped one round ahead of the receiver is not an omission —
// it parks in the early buffer and is delivered when the round ticks,
// exactly as if it had arrived over the wire a moment later.
func TestEarlyMessageBufferedOneRound(t *testing.T) {
	d := newDeployment(t, 3, 1)
	probes := startAll(d, 3)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		// Receivers are still in round 1; the message claims round 2 —
		// the shape a marginally faster peer's tick produces over TCP.
		msg := &wire.Message{
			Type: wire.TypeEcho, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 2, HasValue: true, Value: wire.Value{7},
		}
		if err := sender.peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		pr := probes[i]
		if len(pr.msgs) != 1 || pr.msgs[0].Round != 2 || pr.msgs[0].Value != (wire.Value{7}) {
			t.Fatalf("peer %d delivered %v, want the round-2 message once", i, pr.msgs)
		}
		st := pr.peer.Stats()
		if st.EarlyBuffered != 1 {
			t.Fatalf("peer %d early-buffered = %d, want 1", i, st.EarlyBuffered)
		}
		if st.RoundMismatches != 0 {
			t.Fatalf("peer %d counted %d round mismatches, want 0", i, st.RoundMismatches)
		}
	}
}

// TestEarlyMessageBeyondOneRoundStillDropped pins the buffer's scope: two
// or more rounds ahead is outside any honest clock skew and stays a
// stale-drop omission (the existing TestRoundMismatchDropped covers the
// delayed/replayed direction).
func TestEarlyMessageBeyondOneRoundStillDropped(t *testing.T) {
	d := newDeployment(t, 3, 1)
	probes := startAll(d, 4)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeEcho, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 3, HasValue: true, Value: wire.Value{9},
		}
		if err := sender.peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		pr := probes[i]
		if len(pr.msgs) != 0 {
			t.Fatalf("peer %d delivered a message stamped two rounds ahead", i)
		}
		if st := pr.peer.Stats(); st.RoundMismatches != 1 || st.EarlyBuffered != 0 {
			t.Fatalf("peer %d stats = %+v, want one stale drop, no buffering", i, st)
		}
	}
}

func TestSeqTableConsistentAfterSetup(t *testing.T) {
	d := newDeployment(t, 4, 1)
	for id := wire.NodeID(0); id < 4; id++ {
		want := d.Peers[0].SeqOf(id)
		for _, p := range d.Peers[1:] {
			if got := p.SeqOf(id); got != want {
				t.Fatalf("seq of %d differs across peers: %d vs %d", id, got, want)
			}
		}
	}
	before := d.Peers[0].SeqOf(2)
	inst := d.Peers[0].Instance()
	d.Peers[0].BumpSeqs()
	if got := d.Peers[0].SeqOf(2); got != before+1 {
		t.Fatalf("BumpSeqs: seq = %d, want %d", got, before+1)
	}
	if got := d.Peers[0].Instance(); got != inst+1 {
		t.Fatalf("BumpSeqs: instance = %d, want %d", got, inst+1)
	}
}

func TestHaltedPeerRefusesOperations(t *testing.T) {
	d := newDeployment(t, 3, 1)
	startAll(d, 1)
	p := d.Peers[0]
	p.HaltSelf()
	p.HaltSelf() // idempotent
	if st := p.Stats(); st.Halts != 1 {
		t.Fatalf("halts = %d, want 1", st.Halts)
	}
	msg := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Round: 1}
	if err := p.Multicast(nil, msg, 0); err != runtime.ErrHalted {
		t.Fatalf("Multicast after halt: %v, want ErrHalted", err)
	}
	if err := p.Send(1, msg); err != runtime.ErrHalted {
		t.Fatalf("Send after halt: %v, want ErrHalted", err)
	}
}

func TestSendUnknownPeer(t *testing.T) {
	d := newDeployment(t, 3, 1)
	msg := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Round: 1}
	if err := d.Peers[0].Send(77, msg); err != runtime.ErrUnknownPeer {
		t.Fatalf("Send to unknown: %v, want ErrUnknownPeer", err)
	}
	if err := d.Peers[0].Send(0, msg); err != runtime.ErrUnknownPeer {
		t.Fatalf("Send to self: %v, want ErrUnknownPeer", err)
	}
}

func TestMulticastSubset(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 1)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		msg := &wire.Message{
			Type: wire.TypeChosen, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1,
		}
		if err := sender.peer.Multicast([]wire.NodeID{1, 3, 0}, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{0, 1, 0, 1, 0}
	for i, pr := range probes {
		if len(pr.msgs) != wantCounts[i] {
			t.Fatalf("peer %d got %d messages, want %d", i, len(pr.msgs), wantCounts[i])
		}
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	m1 := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Seq: 5, Round: 1, HasValue: true, Value: wire.Value{1}}
	m2 := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Seq: 5, Round: 1, HasValue: true, Value: wire.Value{1}}
	m3 := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Seq: 5, Round: 2, HasValue: true, Value: wire.Value{1}}
	d1, err := runtime.Digest(m1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := runtime.Digest(m2)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := runtime.Digest(m3)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	if d1 == d3 {
		t.Fatal("digest insensitive to round")
	}
}

func TestRealCryptoDeploymentWorks(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 3, T: 1, Seed: 2, RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := startAll(d, 1)
	probes[0].onRound = func(rnd uint32) {
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: probes[0].peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{9},
		}
		if err := probes[0].peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if len(probes[i].msgs) != 1 {
			t.Fatalf("peer %d got %d messages under real crypto", i, len(probes[i].msgs))
		}
	}
}

func TestRoundTickTiming(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 3, T: 1, Seed: 1, Delta: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var tickTimes []time.Duration
	pr := &probe{peer: d.Peers[0]}
	pr.onRound = func(uint32) { tickTimes = append(tickTimes, d.Sim.Now()) }
	d.Peers[0].Start(pr, 3)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, time.Second, 2 * time.Second}
	if len(tickTimes) != len(want) {
		t.Fatalf("ticks at %v, want %v", tickTimes, want)
	}
	for i := range want {
		if tickTimes[i] != want[i] {
			t.Fatalf("round %d tick at %v, want %v", i+1, tickTimes[i], want[i])
		}
	}
}

func TestNewPeerValidation(t *testing.T) {
	d := newDeployment(t, 3, 1)
	encl := d.Peers[0].Enclave()
	roster := d.Roster
	tr := d.Net.Port(0)

	if _, err := runtime.NewPeer(nil, tr, roster, runtime.Config{N: 3, T: 1, Delta: time.Second}); err == nil {
		t.Error("nil enclave accepted")
	}
	if _, err := runtime.NewPeer(encl, nil, roster, runtime.Config{N: 3, T: 1, Delta: time.Second}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := runtime.NewPeer(encl, tr, roster, runtime.Config{N: 5, T: 1, Delta: time.Second}); err == nil {
		t.Error("roster size mismatch accepted")
	}
	if _, err := runtime.NewPeer(encl, tr, roster, runtime.Config{N: 3, T: -1, Delta: time.Second}); err == nil {
		t.Error("negative T accepted")
	}
	if _, err := runtime.NewPeer(encl, tr, roster, runtime.Config{N: 3, T: 1}); err == nil {
		t.Error("zero delta accepted")
	}
	// Corrupted quote in the roster must be caught when not pre-verified.
	bad := roster
	bad.PreVerified = false
	bad.Quotes = append([]enclave.Quote(nil), roster.Quotes...)
	bad.Quotes[1].Signature = append([]byte(nil), bad.Quotes[1].Signature...)
	bad.Quotes[1].Signature[0] ^= 1
	if _, err := runtime.NewPeer(encl, tr, bad, runtime.Config{N: 3, T: 1, Delta: time.Second}); err == nil {
		t.Error("corrupted quote accepted")
	}
	// A quote claiming the wrong node id must be caught even pre-verified.
	swapped := roster
	swapped.Quotes = append([]enclave.Quote(nil), roster.Quotes...)
	swapped.Quotes[1], swapped.Quotes[2] = swapped.Quotes[2], swapped.Quotes[1]
	if _, err := runtime.NewPeer(encl, tr, swapped, runtime.Config{N: 3, T: 1, Delta: time.Second}); err == nil {
		t.Error("id-swapped roster accepted")
	}
}

func TestInstallSeqsValidation(t *testing.T) {
	d := newDeployment(t, 3, 1)
	if err := d.Peers[0].InstallSeqs([]uint64{1, 2}); err == nil {
		t.Error("short seq table accepted")
	}
}

func TestAccessors(t *testing.T) {
	d := newDeployment(t, 3, 1)
	p := d.Peers[1]
	if p.N() != 3 || p.T() != 1 || p.Delta() != time.Second || p.ID() != 1 {
		t.Fatalf("accessors: N=%d T=%d Delta=%v ID=%d", p.N(), p.T(), p.Delta(), p.ID())
	}
	if p.Enclave() == nil {
		t.Fatal("nil enclave")
	}
	if p.Round() != 0 {
		t.Fatal("round before start must be 0")
	}
	_ = p.Now()
}

func TestStartInDelaysFirstRound(t *testing.T) {
	d := newDeployment(t, 3, 1)
	var firstTick time.Duration
	pr := &probe{peer: d.Peers[0]}
	pr.onRound = func(rnd uint32) {
		if rnd == 1 {
			firstTick = d.Sim.Now()
		}
	}
	d.Peers[0].StartIn(pr, 2, 3*time.Second)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if firstTick != 3*time.Second {
		t.Fatalf("round 1 at %v, want 3s", firstTick)
	}
	if !pr.finished {
		t.Fatal("protocol did not finish")
	}
}

func TestAddPeerValidation(t *testing.T) {
	d := newDeployment(t, 3, 1)
	p := d.Peers[0]
	// Wrong id: quote for an existing node rather than the next index.
	if err := p.AddPeer(d.Roster, d.Roster.Quotes[1], 9); err == nil {
		t.Error("joiner with non-next id accepted")
	}
	p.HaltSelf()
	if err := p.AddPeer(d.Roster, d.Roster.Quotes[1], 9); err != runtime.ErrHalted {
		t.Errorf("halted AddPeer: %v, want ErrHalted", err)
	}
}

func TestAlignInstance(t *testing.T) {
	d := newDeployment(t, 3, 1)
	d.Peers[0].AlignInstance(7)
	if got := d.Peers[0].Instance(); got != 7 {
		t.Fatalf("instance = %d, want 7", got)
	}
}

func TestRelaunchedEnclaveCannotRejoin(t *testing.T) {
	// Section 3.1 / P6: "If an adversarial node restarts or relaunches its
	// enclave, all the data in the enclave will be removed ... it cannot
	// re-join the same or any on-going execution." A relaunched enclave
	// has fresh key material, so everything it sends fails authentication
	// at peers still holding the original quote.
	d := newDeployment(t, 4, 1)
	probes := startAll(d, 2)

	// Relaunch node 1's enclave (fresh entropy) and attest it anew.
	clock := fakeSimClock{d: d}
	fresh, err := enclave.Launch(deploy.DefaultProgram, 1, nil, clock, enclave.WithModelKEX())
	if err != nil {
		t.Fatal(err)
	}
	rogueRoster := d.Roster
	rogueRoster.Quotes = append([]enclave.Quote(nil), d.Roster.Quotes...)
	rogueRoster.Quotes[1] = d.Service.Attest(fresh)
	roguePort := d.Net.Port(1) // hijacks node 1's network position
	rogue, err := runtime.NewPeer(fresh, roguePort, rogueRoster, runtime.Config{
		N: 4, T: 1, Delta: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.InstallSeqs([]uint64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	rogueProbe := &probe{peer: rogue}
	rogueProbe.onRound = func(rnd uint32) {
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 1, Initiator: 1,
			Seq: 0, Round: rnd, HasValue: true, Value: wire.Value{0xBD},
		}
		_ = rogue.Multicast(nil, msg, 0)
	}
	rogue.Start(rogueProbe, 2)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	var authFails uint64
	for _, i := range []int{0, 2, 3} {
		if len(probes[i].msgs) != 0 {
			t.Fatalf("peer %d accepted a message from the relaunched enclave", i)
		}
		authFails += probes[i].peer.Stats().AuthFailures
	}
	if authFails == 0 {
		t.Fatal("relaunched enclave's envelopes produced no auth failures")
	}
}

// fakeSimClock adapts a deployment's simulator for test enclaves.
type fakeSimClock struct{ d *deploy.Deployment }

func (c fakeSimClock) Now() time.Duration { return c.d.Sim.Now() }
