package runtime

import (
	"testing"

	"sgxp2p/internal/wire"
)

func TestNodeBitsetDedupAndGrowth(t *testing.T) {
	var b nodeBitset
	if !b.set(3) {
		t.Fatal("first set of 3 not reported as new")
	}
	if b.set(3) {
		t.Fatal("duplicate set of 3 reported as new")
	}
	if b.count != 1 {
		t.Fatalf("count = %d, want 1", b.count)
	}
	// Ids beyond the current word capacity (joins grow membership).
	for _, id := range []wire.NodeID{63, 64, 200} {
		if !b.set(id) {
			t.Fatalf("first set of %d not reported as new", id)
		}
		if b.set(id) {
			t.Fatalf("duplicate set of %d reported as new", id)
		}
	}
	if b.count != 4 {
		t.Fatalf("count = %d, want 4", b.count)
	}
}

func TestNodeBitsetHasResetIntersect(t *testing.T) {
	var b nodeBitset
	for _, id := range []wire.NodeID{1, 5, 64} {
		b.set(id)
	}
	for _, id := range []wire.NodeID{1, 5, 64} {
		if !b.has(id) {
			t.Fatalf("has(%d) = false after set", id)
		}
	}
	// Probes past the allocated words must not panic or report membership.
	for _, id := range []wire.NodeID{0, 2, 63, 65, 1024} {
		if b.has(id) {
			t.Fatalf("has(%d) = true, never set", id)
		}
	}

	var o nodeBitset
	for _, id := range []wire.NodeID{5, 63, 64, 200} {
		o.set(id)
	}
	b.intersect(&o)
	if b.count != 2 || !b.has(5) || !b.has(64) {
		t.Fatalf("intersect: count = %d, has(5)=%v has(64)=%v, want {5, 64}", b.count, b.has(5), b.has(64))
	}
	if b.has(1) || b.has(200) {
		t.Fatal("intersect kept an id outside the intersection")
	}

	// Intersecting with a shorter set must drop ids beyond its words.
	var short nodeBitset
	short.set(5)
	b.intersect(&short)
	if b.count != 1 || !b.has(5) || b.has(64) {
		t.Fatalf("intersect with shorter set: count = %d, want exactly {5}", b.count)
	}

	b.reset()
	if b.count != 0 || b.has(5) {
		t.Fatal("reset did not clear membership")
	}
	if !b.set(5) {
		t.Fatal("set after reset not reported as new")
	}
}

func TestNodeBitsetUnionCount(t *testing.T) {
	var a, b nodeBitset
	for _, id := range []wire.NodeID{1, 2, 64} {
		a.set(id)
	}
	for _, id := range []wire.NodeID{2, 3, 200} {
		b.set(id)
	}
	// Overlap on 2 counts once; length mismatch both ways.
	if got := a.unionCount(&b); got != 5 {
		t.Fatalf("a.unionCount(b) = %d, want 5", got)
	}
	if got := b.unionCount(&a); got != 5 {
		t.Fatalf("b.unionCount(a) = %d, want 5", got)
	}
	var empty nodeBitset
	if got := a.unionCount(&empty); got != a.count {
		t.Fatalf("unionCount with empty = %d, want %d", got, a.count)
	}
	if got := empty.unionCount(&empty); got != 0 {
		t.Fatalf("unionCount of two empties = %d, want 0", got)
	}
}

func TestDigestEncodedMatchesDigest(t *testing.T) {
	msg := &wire.Message{
		Type: wire.TypeInit, Sender: 2, Initiator: 2,
		Seq: 11, Round: 3, HasValue: true, Value: wire.Value{0x42},
	}
	viaMsg, err := Digest(msg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if viaMsg != DigestEncoded(enc) {
		t.Fatal("DigestEncoded(Encode(msg)) != Digest(msg)")
	}
}
