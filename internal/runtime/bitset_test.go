package runtime

import (
	"testing"

	"sgxp2p/internal/wire"
)

func TestNodeBitsetDedupAndGrowth(t *testing.T) {
	var b nodeBitset
	if !b.set(3) {
		t.Fatal("first set of 3 not reported as new")
	}
	if b.set(3) {
		t.Fatal("duplicate set of 3 reported as new")
	}
	if b.count != 1 {
		t.Fatalf("count = %d, want 1", b.count)
	}
	// Ids beyond the current word capacity (joins grow membership).
	for _, id := range []wire.NodeID{63, 64, 200} {
		if !b.set(id) {
			t.Fatalf("first set of %d not reported as new", id)
		}
		if b.set(id) {
			t.Fatalf("duplicate set of %d reported as new", id)
		}
	}
	if b.count != 4 {
		t.Fatalf("count = %d, want 4", b.count)
	}
}

func TestDigestEncodedMatchesDigest(t *testing.T) {
	msg := &wire.Message{
		Type: wire.TypeInit, Sender: 2, Initiator: 2,
		Seq: 11, Round: 3, HasValue: true, Value: wire.Value{0x42},
	}
	viaMsg, err := Digest(msg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if viaMsg != DigestEncoded(enc) {
		t.Fatal("DigestEncoded(Encode(msg)) != Digest(msg)")
	}
}
