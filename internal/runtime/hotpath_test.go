package runtime_test

import (
	"errors"
	"testing"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// TestSendAckNilMessage pins the robustness fix: acknowledging a nil
// message reports ErrNilMessage instead of panicking inside the digest
// computation.
func TestSendAckNilMessage(t *testing.T) {
	d := newDeployment(t, 3, 0)
	if err := d.Peers[0].SendAck(1, nil); !errors.Is(err, runtime.ErrNilMessage) {
		t.Fatalf("SendAck(nil) = %v, want ErrNilMessage", err)
	}
	if _, err := runtime.Digest(nil); !errors.Is(err, runtime.ErrNilMessage) {
		t.Fatalf("Digest(nil) = %v, want ErrNilMessage", err)
	}
}

// TestScratchBuffersSurviveTraffic drives several rounds of multicast,
// ACK and receive traffic through the reused per-peer scratch buffers
// (encode, seal, open, and the scratch Message deliveries are decoded
// into) and checks that every message observed during OnMessage is
// intact and that copies taken there survive — the borrowed-message
// contract: a delivery is valid for the duration of the callback, and
// what a protocol keeps it must copy.
func TestScratchBuffersSurviveTraffic(t *testing.T) {
	d := newDeployment(t, 4, 1)
	probes := make([]*probe, len(d.Peers))
	want := map[wire.NodeID]wire.Value{}
	for i, p := range d.Peers {
		probes[i] = &probe{peer: p}
		peer := p
		id := wire.NodeID(i)
		val := wire.Value{byte(i + 1), 0xBE, 0xEF}
		want[id] = val
		probes[i].onRound = func(rnd uint32) {
			msg := &wire.Message{
				Type: wire.TypeEcho, Sender: peer.ID(), Initiator: peer.ID(),
				Seq: peer.SeqOf(peer.ID()), Round: rnd, HasValue: true, Value: val,
			}
			if err := peer.Multicast(nil, msg, 1); err != nil {
				t.Errorf("peer %d multicast: %v", peer.ID(), err)
			}
		}
		probes[i].onMsg = func(m *wire.Message) {
			if err := peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("peer %d ack: %v", peer.ID(), err)
			}
		}
		p.Start(probes[i], 3)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pr := range probes {
		if len(pr.msgs) == 0 {
			t.Fatalf("peer %d received nothing", i)
		}
		for _, m := range pr.msgs {
			if m.Value != want[m.Sender] {
				t.Fatalf("peer %d: message from %d carries value %v, want %v (scratch aliasing?)",
					i, m.Sender, m.Value, want[m.Sender])
			}
		}
		if pr.peer.Halted() {
			t.Fatalf("peer %d halted despite full ACK coverage", i)
		}
	}
}
