package runtime

import (
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Errors returned by the multiplexer.
var (
	// ErrMuxBacklog is returned by Spawn when the admission backlog is
	// full: the flow-control signal callers shed load on instead of
	// queueing unboundedly.
	ErrMuxBacklog = errors.New("runtime: mux spawn backlog full")
	// ErrMuxUnadmitted marks an instance whose run ended before the
	// admission window reached it.
	ErrMuxUnadmitted = errors.New("runtime: mux run ended before instance was admitted")
)

// MuxConfig bounds a Mux's concurrency. Zero values mean unlimited.
type MuxConfig struct {
	// MaxInFlight caps the instances running concurrently. Spawns past
	// the cap wait in the backlog and are admitted FIFO at round
	// boundaries as running instances retire — the bound that keeps a
	// node's per-round work (and the sealed frames it coalesces) flat no
	// matter how many broadcasts are requested.
	MaxInFlight int
	// MaxBacklog caps the admission backlog; Spawn returns ErrMuxBacklog
	// beyond it, pushing backpressure to the caller.
	MaxBacklog int
}

// Mux multiplexes many lightweight protocol instances over one Peer: one
// Transport, one set of sealed links, one round-scoped outbox. Instances
// are plain state machines behind cheap *Instance handles; everything
// heavy — cipher state, scratch buffers, the batch coalescing path — is
// the shared Peer's. All frames the hosted instances emit toward one
// destination in one round leave in a single sealed batch frame, which is
// where the sustained-throughput win over serial runs comes from: the
// per-frame seal and transport costs amortize across every instance.
//
// The Mux is itself a Protocol driven by the shared Peer's lockstep
// rounds: OnRound retires expired instances, admits backlogged ones FIFO
// under MaxInFlight, and ticks every running instance in spawn order;
// OnMessage routes by the instance id carried in every wire.Message.
// All scheduling decisions depend only on spawn order and round numbers,
// so identically-spawned Muxes on different nodes make identical
// decisions — the cross-node determinism lockstep protocols need.
//
// A Mux is confined to its Peer's event loop, like the Peer itself.
type Mux struct {
	peer *Peer
	cfg  MuxConfig

	// baseID is the peer's epoch at construction; hosted instances are
	// numbered baseID+1 onward so their wire ids never collide with the
	// single-instance epochs that preceded the mux run.
	baseID uint32
	nextID uint32

	backlog []*Instance // spawned, not yet admitted (FIFO)
	running []*Instance // admitted, in spawn order
	byID    []*Instance // every spawn ever, indexed by id-baseID-1

	unknownDrops uint64

	mRunning  *telemetry.Gauge
	mBacklog  *telemetry.Gauge
	mSpawned  *telemetry.Counter
	mRetired  *telemetry.Counter
	mUnknown  *telemetry.Counter
	mBuildErr *telemetry.Counter
}

// NewMux builds a multiplexer over p. The peer must not be mid-instance;
// the caller drives the mux run with p.Start(mux, mux.PlannedRounds()).
func NewMux(p *Peer, cfg MuxConfig) *Mux {
	m := &Mux{peer: p, cfg: cfg, baseID: p.Instance(), nextID: p.Instance() + 1}
	if reg := p.Metrics(); reg != nil {
		m.mRunning = reg.Gauge("mux_running_instances")
		m.mBacklog = reg.Gauge("mux_backlog_instances")
		m.mSpawned = reg.Counter("mux_spawned_total")
		m.mRetired = reg.Counter("mux_retired_total")
		m.mUnknown = reg.Counter("mux_unknown_drops_total")
		m.mBuildErr = reg.Counter("mux_build_failures_total")
	}
	return m
}

// Peer returns the shared peer the mux runs over.
func (m *Mux) Peer() *Peer { return m.peer }

// NextID returns the id the next spawn will receive — after a finished
// run, the value a caller passes to AlignInstance so later epochs never
// reuse a multiplexed instance id.
func (m *Mux) NextID() uint32 { return m.nextID }

// UnknownDrops counts messages addressed to no live instance (retired,
// unadmitted or foreign ids) — dropped as omissions.
func (m *Mux) UnknownDrops() uint64 { return m.unknownDrops }

// Spawn registers a protocol instance that will run for windowRounds
// consecutive rounds once admitted. build constructs the protocol against
// the instance handle — its Host view of the shared peer — and runs at
// admission time, when the instance's StartRound is known. Spawn itself
// only queues: admission happens at round boundaries, FIFO, under
// MaxInFlight. ErrMuxBacklog reports a full backlog (flow control); a
// build error is deferred to admission and surfaces on the handle's Err.
//
// For cross-node determinism every node must spawn the same instances in
// the same order with the same windows — the same discipline that already
// governs which protocol a deployment starts.
func (m *Mux) Spawn(windowRounds int, build func(*Instance) (Protocol, error)) (*Instance, error) {
	if windowRounds <= 0 {
		return nil, fmt.Errorf("runtime: mux window %d rounds, want >= 1", windowRounds)
	}
	if build == nil {
		return nil, errors.New("runtime: nil mux build function")
	}
	if m.cfg.MaxBacklog > 0 && len(m.backlog) >= m.cfg.MaxBacklog {
		return nil, ErrMuxBacklog
	}
	it := &Instance{mux: m, id: m.nextID, window: uint32(windowRounds), build: build}
	m.nextID++
	m.backlog = append(m.backlog, it)
	m.byID = append(m.byID, it)
	m.mSpawned.Inc()
	m.mBacklog.Set(int64(len(m.backlog)))
	return it, nil
}

// PlannedRounds simulates the admission schedule over the current backlog
// and running set and returns the last round any instance occupies — the
// round count to pass to Peer.Start so every spawned instance gets its
// full window. The simulation replays exactly what OnRound will do
// (retire, then admit FIFO under MaxInFlight), so plan and execution
// cannot drift.
func (m *Mux) PlannedRounds() int {
	last := uint32(0)
	var ends []uint32
	for _, it := range m.running {
		ends = append(ends, it.endRound)
		if it.endRound > last {
			last = it.endRound
		}
	}
	backlog := m.backlog
	for rnd := m.peer.Round() + 1; len(backlog) > 0; rnd++ {
		kept := ends[:0]
		for _, end := range ends {
			if rnd <= end {
				kept = append(kept, end)
			}
		}
		ends = kept
		for len(backlog) > 0 && (m.cfg.MaxInFlight <= 0 || len(ends) < m.cfg.MaxInFlight) {
			end := rnd + backlog[0].window - 1
			backlog = backlog[1:]
			ends = append(ends, end)
			if end > last {
				last = end
			}
		}
	}
	return int(last)
}

// OnRound drives one lockstep round across the hosted instances: retire
// the ones whose window ended, admit backlogged ones into the freed
// slots, then tick every running instance in spawn order. Newly admitted
// instances tick in the same round they were admitted — their StartRound.
func (m *Mux) OnRound(rnd uint32) {
	m.retireExpired(rnd)
	m.admit(rnd)
	for _, it := range m.running {
		if m.peer.Halted() || !m.peer.started {
			return
		}
		it.proto.OnRound(rnd)
	}
}

// OnMessage routes one delivered message to the hosted instance named by
// its wire instance id. Messages for retired, unadmitted or foreign
// instances are dropped — indistinguishable from omissions, exactly how
// a dedicated peer treats traffic from another epoch.
func (m *Mux) OnMessage(msg *wire.Message) {
	it := m.lookup(msg.Instance)
	if it == nil || !it.running {
		m.unknownDrops++
		m.mUnknown.Inc()
		return
	}
	it.proto.OnMessage(msg)
}

// OnFinish ends the mux run: every still-running instance finishes, and
// anything left in the backlog (possible only if the run was started with
// fewer rounds than PlannedRounds) fails with ErrMuxUnadmitted.
func (m *Mux) OnFinish() {
	for _, it := range m.running {
		m.finish(it, nil)
	}
	m.running = m.running[:0]
	for _, it := range m.backlog {
		it.done, it.err = true, ErrMuxUnadmitted
	}
	m.backlog = m.backlog[:0]
	m.mRunning.Set(0)
	m.mBacklog.Set(0)
}

// retireExpired finishes every running instance whose window ended before
// rnd, preserving spawn order among the survivors.
func (m *Mux) retireExpired(rnd uint32) {
	if len(m.running) == 0 {
		return
	}
	kept := m.running[:0]
	for _, it := range m.running {
		if rnd > it.endRound {
			m.finish(it, nil)
		} else {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(m.running); i++ {
		m.running[i] = nil
	}
	m.running = kept
	m.mRunning.Set(int64(len(m.running)))
}

// admit moves backlogged instances into the running set, FIFO, while
// MaxInFlight allows. Admission fixes the instance's round window and
// runs its deferred build; a failed build consumes the admission attempt
// and surfaces on the handle.
func (m *Mux) admit(rnd uint32) {
	changed := false
	for len(m.backlog) > 0 && (m.cfg.MaxInFlight <= 0 || len(m.running) < m.cfg.MaxInFlight) {
		it := m.backlog[0]
		m.backlog[0] = nil
		m.backlog = m.backlog[1:]
		changed = true
		it.startRound = rnd
		it.endRound = rnd + it.window - 1
		proto, err := it.build(it)
		if err != nil {
			it.done, it.err = true, err
			m.mBuildErr.Inc()
			continue
		}
		it.proto = proto
		it.running = true
		m.running = append(m.running, it)
	}
	if changed {
		m.mRunning.Set(int64(len(m.running)))
		m.mBacklog.Set(int64(len(m.backlog)))
	}
}

// finish retires one instance: its protocol's OnFinish fires (unless the
// instance failed with err) and the handle becomes Done.
func (m *Mux) finish(it *Instance, err error) {
	it.running = false
	it.done = true
	it.err = err
	if err == nil && it.proto != nil {
		it.proto.OnFinish()
	}
	m.mRetired.Inc()
}

// lookup resolves a wire instance id to its handle (nil when the id was
// never spawned by this mux). byID is dense — ids are assigned
// sequentially from baseID+1 — so routing is one bounds check and one
// slice index, no map.
func (m *Mux) lookup(id uint32) *Instance {
	if id <= m.baseID {
		return nil
	}
	i := int(id - m.baseID - 1)
	if i >= len(m.byID) {
		return nil
	}
	return m.byID[i]
}

var _ Protocol = (*Mux)(nil)

// Instance is the handle of one multiplexed protocol instance: the Host
// its protocol programs against. Every capability delegates to the shared
// peer except identity — Instance() returns the per-instance wire id, so
// messages the protocol sends are stamped with it and telemetry events
// carry it — which is all a protocol needs to coexist with a thousand
// neighbors on the same links.
type Instance struct {
	mux    *Mux
	id     uint32
	window uint32
	build  func(*Instance) (Protocol, error)

	proto      Protocol
	startRound uint32
	endRound   uint32
	running    bool
	done       bool
	err        error
}

// ID returns the node id of the hosting peer.
func (it *Instance) ID() wire.NodeID { return it.mux.peer.ID() }

// N returns the network size.
func (it *Instance) N() int { return it.mux.peer.N() }

// T returns the byzantine bound.
func (it *Instance) T() int { return it.mux.peer.T() }

// Delta returns the delivery bound.
func (it *Instance) Delta() time.Duration { return it.mux.peer.Delta() }

// Instance returns this instance's wire id.
func (it *Instance) Instance() uint32 { return it.id }

// Round returns the shared peer's current lockstep round.
func (it *Instance) Round() uint32 { return it.mux.peer.Round() }

// Now returns the transport's current time.
func (it *Instance) Now() time.Duration { return it.mux.peer.Now() }

// Halted reports whether the hosting peer churned itself out.
func (it *Instance) Halted() bool { return it.mux.peer.Halted() }

// SeqOf returns the expected sequence number of a peer (P6).
func (it *Instance) SeqOf(id wire.NodeID) uint64 { return it.mux.peer.SeqOf(id) }

// Enclave exposes the hosting peer's enclave.
func (it *Instance) Enclave() *enclave.Enclave { return it.mux.peer.Enclave() }

// Metrics exposes the deployment's metric registry.
func (it *Instance) Metrics() *telemetry.Metrics { return it.mux.peer.Metrics() }

// Trace records a protocol-layer event attributed to this instance.
func (it *Instance) Trace(kind telemetry.Kind, peer wire.NodeID, arg uint64) {
	it.mux.peer.traceInst(it.id, kind, peer, arg)
}

// Multicast sends through the shared peer; frames coalesce with every
// other instance's traffic of the same callback.
func (it *Instance) Multicast(dsts []wire.NodeID, msg *wire.Message, ackThreshold int) error {
	return it.mux.peer.Multicast(dsts, msg, ackThreshold)
}

// Send sends one message through the shared peer.
func (it *Instance) Send(dst wire.NodeID, msg *wire.Message) error {
	return it.mux.peer.Send(dst, msg)
}

// SendAck acknowledges a received message through the shared peer.
func (it *Instance) SendAck(dst wire.NodeID, received *wire.Message) error {
	return it.mux.peer.SendAck(dst, received)
}

// Flush forces the shared round-scoped outbox onto the wire.
func (it *Instance) Flush() { it.mux.peer.Flush() }

// StartRound returns the round the instance was admitted in (0 while it
// waits in the backlog) — the protocol's absolute round origin.
func (it *Instance) StartRound() uint32 { return it.startRound }

// EndRound returns the last round of the instance's window (0 while it
// waits in the backlog).
func (it *Instance) EndRound() uint32 { return it.endRound }

// Running reports whether the instance is currently admitted.
func (it *Instance) Running() bool { return it.running }

// Done reports whether the instance's window ended (or it failed).
func (it *Instance) Done() bool { return it.done }

// Err returns why the instance never ran to completion: a build error,
// ErrMuxUnadmitted, or nil for a clean retirement.
func (it *Instance) Err() error { return it.err }

var _ Host = (*Instance)(nil)
