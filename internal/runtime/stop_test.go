package runtime_test

import (
	"testing"

	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// TestStopFreezesPeer pins the crash semantics behind the chaos engine's
// CrashAt: after Stop the peer's pending round ticks are no-ops, inbound
// deliveries are dropped, OnFinish never fires — and, unlike HaltSelf,
// the enclave is not burned.
func TestStopFreezesPeer(t *testing.T) {
	d := newDeployment(t, 4, 1)
	probes := startAll(d, 3)
	d.Sim.Schedule(d.Sim.Now()+3*d.Opts.Delta, func() { d.Peers[2].Stop() })
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	stopped := probes[2]
	if got := len(stopped.rounds); got != 2 {
		t.Fatalf("stopped peer observed %d rounds (%v), want 2 (crash mid-round-2)", got, stopped.rounds)
	}
	if stopped.finished {
		t.Fatal("stopped peer ran OnFinish")
	}
	if d.Peers[2].Halted() {
		t.Fatal("Stop must not halt the enclave (machine crash, not P4 churn)")
	}
	if st := d.Peers[2].Stats(); st.Halts != 0 {
		t.Fatalf("stats: %+v, want no halts", st)
	}
	for i, pr := range probes {
		if i == 2 {
			continue
		}
		if !pr.finished || len(pr.rounds) != 3 {
			t.Fatalf("peer %d disturbed by a crash elsewhere: finished=%v rounds=%v", i, pr.finished, pr.rounds)
		}
	}
}

// TestStoppedPeerDropsDeliveries: envelopes arriving after Stop are
// discarded without reaching a protocol (whose pointer is gone).
func TestStoppedPeerDropsDeliveries(t *testing.T) {
	d := newDeployment(t, 3, 1)
	probes := startAll(d, 2)
	probes[0].onRound = func(rnd uint32) {
		if rnd != 2 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeChosen, Sender: 0, Initiator: 0,
			Seq: probes[0].peer.SeqOf(0), Round: 2,
		}
		if err := probes[0].peer.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	// Stop node 1 just before round 2's multicast is sent.
	d.Sim.Schedule(d.Sim.Now()+2*d.Opts.Delta, func() { d.Peers[1].Stop() })
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if len(probes[1].msgs) != 0 {
		t.Fatalf("stopped peer received %d messages", len(probes[1].msgs))
	}
	if len(probes[2].msgs) != 1 {
		t.Fatalf("live peer received %d messages, want 1", len(probes[2].msgs))
	}
}

// TestMulticastDegradesFailuresToOmissions pins the crash-tolerance fix:
// a destination that cannot be addressed no longer aborts the multicast
// loop — the remaining destinations are still served and the failure is
// counted, exactly like an omitting network.
func TestMulticastDegradesFailuresToOmissions(t *testing.T) {
	d := newDeployment(t, 4, 1)
	probes := startAll(d, 1)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		msg := &wire.Message{
			Type: wire.TypeChosen, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1,
		}
		// 9 is outside the roster; 1 and 3 come after it in the loop and
		// must still be reached.
		if err := sender.peer.Multicast([]wire.NodeID{9, 1, 3}, msg, 0); err != nil {
			t.Errorf("Multicast with vanished destination: %v", err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if st := sender.peer.Stats(); st.SendFailures != 1 {
		t.Fatalf("stats: %+v, want 1 send failure", st)
	}
	for _, i := range []int{1, 3} {
		if len(probes[i].msgs) != 1 {
			t.Fatalf("peer %d got %d messages, want 1 (multicast wedged)", i, len(probes[i].msgs))
		}
	}
	if len(probes[2].msgs) != 0 {
		t.Fatalf("peer 2 got %d messages, want 0", len(probes[2].msgs))
	}
}

// newDeploymentBatching is newDeployment with the coalescing knob
// exposed, for tests that pin behaviour in both batching modes.
func newDeploymentBatching(t *testing.T, n, byz int, disableBatching bool) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: 1, DisableBatching: disableBatching})
	if err != nil {
		t.Fatalf("deploy.New: %v", err)
	}
	return d
}

// TestRoundBoundaryFlushOrdering pins the flush point of the
// round-scoped outbox against the lockstep round check: a message
// multicast from round r's callback is delivered during round r on
// every receiver, in both batching modes. If a flush ever slipped past
// the round boundary, the receivers' lockstep check would reject the
// stale round — so the test asserts full delivery AND zero round
// mismatches, which together rule out late batches.
func TestRoundBoundaryFlushOrdering(t *testing.T) {
	const rounds = 3
	for _, mode := range []struct {
		name            string
		disableBatching bool
	}{
		{"batched", false},
		{"unbatched", true},
	} {
		d := newDeploymentBatching(t, 4, 1, mode.disableBatching)
		probes := startAll(d, rounds)
		sender := probes[0]
		sender.onRound = func(rnd uint32) {
			msg := &wire.Message{
				Type: wire.TypeChosen, Sender: 0, Initiator: 0,
				Seq: sender.peer.SeqOf(0), Round: rnd,
			}
			if err := sender.peer.Multicast(nil, msg, 0); err != nil {
				t.Errorf("%s: round %d multicast: %v", mode.name, rnd, err)
			}
		}
		for _, pr := range probes[1:] {
			pr := pr
			pr.onMsg = func(m *wire.Message) {
				if at := pr.peer.Round(); m.Round != at {
					t.Errorf("%s: peer %d got a round-%d message while in round %d",
						mode.name, pr.peer.ID(), m.Round, at)
				}
			}
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		for i, pr := range probes[1:] {
			if got := len(pr.msgs); got != rounds {
				t.Errorf("%s: peer %d delivered %d messages, want %d (a batch crossed a round boundary and was dropped)",
					mode.name, i+1, got, rounds)
			}
			for j, m := range pr.msgs {
				if int(m.Round) != j+1 {
					t.Errorf("%s: peer %d message %d carries round %d, want %d",
						mode.name, i+1, j, m.Round, j+1)
				}
			}
			if st := pr.peer.Stats(); st.RoundMismatches != 0 {
				t.Errorf("%s: peer %d counted %d round mismatches, want 0", mode.name, i+1, st.RoundMismatches)
			}
		}
	}
}

// TestStopMidRoundFlushesOutbox pins the Stop/flush interaction: a peer
// that multicasts from its round callback and then crashes (Stop)
// before the callback returns still gets its buffered frame onto the
// wire — Stop flushes the outbox first, deterministically, in both
// batching modes — and goes silent afterwards.
func TestStopMidRoundFlushesOutbox(t *testing.T) {
	for _, mode := range []struct {
		name            string
		disableBatching bool
	}{
		{"batched", false},
		{"unbatched", true},
	} {
		d := newDeploymentBatching(t, 4, 1, mode.disableBatching)
		probes := startAll(d, 3)
		sender := probes[0]
		sender.onRound = func(rnd uint32) {
			if rnd != 2 {
				return
			}
			msg := &wire.Message{
				Type: wire.TypeChosen, Sender: 0, Initiator: 0,
				Seq: sender.peer.SeqOf(0), Round: 2,
			}
			if err := sender.peer.Multicast(nil, msg, 0); err != nil {
				t.Errorf("%s: multicast: %v", mode.name, err)
			}
			sender.peer.Stop()
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		for i, pr := range probes[1:] {
			if got := len(pr.msgs); got != 1 {
				t.Errorf("%s: peer %d delivered %d messages, want 1 (Stop stranded or duplicated the outbox)",
					mode.name, i+1, got)
			}
		}
		if got := len(sender.rounds); got != 2 {
			t.Errorf("%s: stopped sender observed %d rounds (%v), want 2", mode.name, got, sender.rounds)
		}
		if sender.finished {
			t.Errorf("%s: stopped sender ran OnFinish", mode.name)
		}
	}
}

// TestMulticastHaltedStillAborts: ErrHalted is the one per-destination
// error that must NOT degrade to an omission — a halted sender stops.
func TestMulticastHaltedStillAborts(t *testing.T) {
	d := newDeployment(t, 3, 1)
	startAll(d, 1)
	p := d.Peers[0]
	p.HaltSelf()
	msg := &wire.Message{Type: wire.TypeInit, Sender: 0, Initiator: 0, Round: 1}
	if err := p.Multicast([]wire.NodeID{1, 2}, msg, 0); err != runtime.ErrHalted {
		t.Fatalf("Multicast after halt: %v, want ErrHalted", err)
	}
	if st := p.Stats(); st.SendFailures != 0 {
		t.Fatalf("halted sender counted send failures: %+v", st)
	}
}
