package runtime_test

import (
	"testing"

	"sgxp2p/internal/wire"
)

// TestAckWithClonedMessageMatchesStash pins the equivalence of SendAck's
// two digest paths: acknowledging the delivered message pointer (digest
// from the channel plaintext) and acknowledging a copy of it (digest by
// re-encoding) must credit the same multicast tracker. Half the receivers
// ACK the delivered pointer, half ACK a clone; the sender must see all
// four and not halt.
func TestAckWithClonedMessageMatchesStash(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{7},
		}
		if err := sender.peer.Multicast(nil, msg, 4); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	for i, pr := range probes[1:] {
		pr, clone := pr, i%2 == 0
		pr.onMsg = func(m *wire.Message) {
			if clone {
				c := *m
				m = &c
			}
			if err := pr.peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("SendAck: %v", err)
			}
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if probes[0].peer.Halted() {
		t.Fatal("sender halted: cloned-message ACK digests did not match the multicast digest")
	}
	if st := probes[0].peer.Stats(); st.AcksReceived != 4 {
		t.Fatalf("sender received %d acks, want 4", st.AcksReceived)
	}
}

// TestDuplicateAcksNotDoubleCounted proves a replaying acker cannot
// inflate the ACK count: one receiver acknowledging twice still counts
// once, so a threshold of 2 with a single (duplicated) acker halts the
// sender.
func TestDuplicateAcksNotDoubleCounted(t *testing.T) {
	d := newDeployment(t, 5, 2)
	probes := startAll(d, 2)
	sender := probes[0]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Seq: sender.peer.SeqOf(0), Round: 1, HasValue: true, Value: wire.Value{7},
		}
		if err := sender.peer.Multicast(nil, msg, 2); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}
	probes[1].onMsg = func(m *wire.Message) {
		for k := 0; k < 2; k++ {
			if err := probes[1].peer.SendAck(m.Sender, m); err != nil {
				t.Errorf("SendAck: %v", err)
			}
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if st := sender.peer.Stats(); st.AcksReceived != 2 {
		t.Fatalf("sender received %d acks, want 2", st.AcksReceived)
	}
	if !sender.peer.Halted() {
		t.Fatal("sender with one distinct acker met threshold 2: duplicate ACKs were double-counted")
	}
}
