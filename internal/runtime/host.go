package runtime

import (
	"time"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Host is the runtime surface a protocol instance programs against: the
// identity, timing and messaging services of the node it runs on. Both a
// dedicated *Peer (the pre-multiplexing single-instance mode) and a Mux's
// *Instance handle satisfy it, so the same protocol code (internal/core)
// runs one-per-peer or a thousand-per-peer without change.
//
// The interface deliberately excludes the Transport, the links and their
// cipher state: those belong to the shared Peer/Mux layer, where sealing
// and frame coalescing amortize across every hosted instance. Protocol
// code reaching below Host defeats that sharing — the muxboundary lint
// check enforces the split.
type Host interface {
	// ID returns the node id of the hosting peer.
	ID() wire.NodeID
	// N returns the network size, T the byzantine bound, Delta the
	// one-way delivery bound (a lockstep round lasts 2*Delta).
	N() int
	T() int
	Delta() time.Duration
	// Instance returns the protocol instance id messages of this
	// instance are stamped with (an epoch counter on a dedicated Peer, a
	// per-instance id under a Mux).
	Instance() uint32
	// Round returns the current lockstep round (0 before the run starts).
	Round() uint32
	// Now returns the current time (virtual in simulation).
	Now() time.Duration
	// Halted reports whether the hosting peer churned itself out (P4).
	Halted() bool
	// SeqOf returns the expected sequence number of a peer (P6).
	SeqOf(id wire.NodeID) uint64
	// Enclave exposes the node's enclave to the (trusted) protocol layer.
	Enclave() *enclave.Enclave
	// Metrics exposes the deployment's metric registry (nil without one).
	Metrics() *telemetry.Metrics
	// Trace records a protocol-layer event, attributed to this instance.
	Trace(kind telemetry.Kind, peer wire.NodeID, arg uint64)
	// Multicast, Send and SendAck are the sealed messaging primitives of
	// the shared runtime (see the *Peer methods for their contracts).
	Multicast(dsts []wire.NodeID, msg *wire.Message, ackThreshold int) error
	Send(dst wire.NodeID, msg *wire.Message) error
	SendAck(dst wire.NodeID, received *wire.Message) error
	// Flush forces the round-scoped outbox onto the wire immediately.
	Flush()
}

var _ Host = (*Peer)(nil)
