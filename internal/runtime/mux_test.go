package runtime_test

import (
	"errors"
	"testing"

	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// instProbe is a minimal multiplexed protocol recording its callbacks.
type instProbe struct {
	inst     *runtime.Instance
	rounds   []uint32
	msgs     []*wire.Message
	finished bool
	onRound  func(rnd uint32)
}

func (p *instProbe) OnRound(rnd uint32) {
	p.rounds = append(p.rounds, rnd)
	if p.onRound != nil {
		p.onRound(rnd)
	}
}

func (p *instProbe) OnMessage(m *wire.Message) { p.msgs = append(p.msgs, m.Clone()) }

func (p *instProbe) OnFinish() { p.finished = true }

// spawnProbe spawns one instProbe instance on a mux.
func spawnProbe(t *testing.T, m *runtime.Mux, window int) *instProbe {
	t.Helper()
	pr := &instProbe{}
	it, err := m.Spawn(window, func(inst *runtime.Instance) (runtime.Protocol, error) {
		if inst != pr.inst {
			t.Errorf("build handle differs from Spawn handle")
		}
		return pr, nil
	})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	pr.inst = it
	return pr
}

func TestMuxSpawnValidation(t *testing.T) {
	d := newDeployment(t, 3, 1)
	m := runtime.NewMux(d.Peers[0], runtime.MuxConfig{})
	if _, err := m.Spawn(0, func(*runtime.Instance) (runtime.Protocol, error) { return nil, nil }); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := m.Spawn(2, nil); err == nil {
		t.Error("nil build accepted")
	}
}

func TestMuxBacklogLimit(t *testing.T) {
	d := newDeployment(t, 3, 1)
	m := runtime.NewMux(d.Peers[0], runtime.MuxConfig{MaxBacklog: 1})
	spawnProbe(t, m, 2)
	_, err := m.Spawn(2, func(*runtime.Instance) (runtime.Protocol, error) { return nil, nil })
	if !errors.Is(err, runtime.ErrMuxBacklog) {
		t.Fatalf("second spawn: %v, want ErrMuxBacklog", err)
	}
}

// TestMuxAdmissionSchedule pins the FIFO admission under MaxInFlight: five
// 2-round windows through two slots occupy rounds 1-2, 3-4 and 5-6, and
// PlannedRounds predicts exactly that before the run.
func TestMuxAdmissionSchedule(t *testing.T) {
	d := newDeployment(t, 3, 1)
	muxes := make([]*runtime.Mux, 3)
	probes := make([][]*instProbe, 3)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: 2})
		muxes[i] = m
		for k := 0; k < 5; k++ {
			probes[i] = append(probes[i], spawnProbe(t, m, 2))
		}
		if got := m.PlannedRounds(); got != 6 {
			t.Fatalf("PlannedRounds = %d, want 6", got)
		}
		p.Start(m, m.PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	wantStart := []uint32{1, 1, 3, 3, 5}
	for i := range d.Peers {
		for k, pr := range probes[i] {
			if got := pr.inst.StartRound(); got != wantStart[k] {
				t.Fatalf("node %d instance %d started round %d, want %d", i, k, got, wantStart[k])
			}
			if len(pr.rounds) != 2 {
				t.Fatalf("node %d instance %d saw rounds %v, want 2", i, k, pr.rounds)
			}
			if pr.rounds[0] != wantStart[k] || pr.rounds[1] != wantStart[k]+1 {
				t.Fatalf("node %d instance %d rounds %v", i, k, pr.rounds)
			}
			if !pr.finished || !pr.inst.Done() || pr.inst.Err() != nil {
				t.Fatalf("node %d instance %d not cleanly finished (done=%v err=%v)", i, k, pr.inst.Done(), pr.inst.Err())
			}
		}
	}
}

// TestMuxRouting checks that deliveries reach exactly the instance whose
// id the message carries, and that traffic for unknown ids is dropped and
// counted rather than misrouted.
func TestMuxRouting(t *testing.T) {
	d := newDeployment(t, 3, 1)
	muxes := make([]*runtime.Mux, 3)
	probes := make([][]*instProbe, 3)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{})
		muxes[i] = m
		for k := 0; k < 2; k++ {
			probes[i] = append(probes[i], spawnProbe(t, m, 2))
		}
	}
	// Node 0's second instance multicasts in its first round; node 0 also
	// sends one message with a never-spawned instance id.
	sender := probes[0][1]
	sender.onRound = func(rnd uint32) {
		if rnd != 1 {
			return
		}
		inst := sender.inst
		msg := &wire.Message{
			Type: wire.TypeInit, Sender: 0, Initiator: 0,
			Instance: inst.Instance(), Seq: inst.SeqOf(0), Round: rnd,
			HasValue: true, Value: wire.Value{0x42},
		}
		if err := inst.Multicast(nil, msg, 0); err != nil {
			t.Errorf("Multicast: %v", err)
		}
		ghost := msg.Clone()
		ghost.Instance = inst.Instance() + 100
		if err := inst.Multicast(nil, ghost, 0); err != nil {
			t.Errorf("ghost Multicast: %v", err)
		}
	}
	for i, p := range d.Peers {
		p.Start(muxes[i], muxes[i].PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if len(probes[i][0].msgs) != 0 {
			t.Fatalf("node %d instance 0 got %d messages, want 0", i, len(probes[i][0].msgs))
		}
		if len(probes[i][1].msgs) != 1 {
			t.Fatalf("node %d instance 1 got %d messages, want 1", i, len(probes[i][1].msgs))
		}
		got := probes[i][1].msgs[0]
		if got.Instance != probes[i][1].inst.Instance() || got.Value != (wire.Value{0x42}) {
			t.Fatalf("node %d instance 1 got %+v", i, got)
		}
		if drops := muxes[i].UnknownDrops(); drops != 1 {
			t.Fatalf("node %d unknown drops = %d, want 1", i, drops)
		}
	}
}

// TestMuxBuildError checks that a failed build consumes its admission and
// surfaces on the handle without disturbing its neighbors.
func TestMuxBuildError(t *testing.T) {
	d := newDeployment(t, 3, 1)
	boom := errors.New("boom")
	muxes := make([]*runtime.Mux, 3)
	bad := make([]*runtime.Instance, 3)
	good := make([][]*instProbe, 3)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{})
		muxes[i] = m
		it, err := m.Spawn(2, func(*runtime.Instance) (runtime.Protocol, error) { return nil, boom })
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		bad[i] = it
		good[i] = append(good[i], spawnProbe(t, m, 2))
		p.Start(m, m.PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range d.Peers {
		if !bad[i].Done() || !errors.Is(bad[i].Err(), boom) {
			t.Fatalf("node %d bad instance done=%v err=%v", i, bad[i].Done(), bad[i].Err())
		}
		if !good[i][0].finished || good[i][0].inst.Err() != nil {
			t.Fatalf("node %d good instance did not finish cleanly", i)
		}
	}
}

// TestMuxUnadmitted checks that a run shorter than the plan fails the
// leftover backlog with ErrMuxUnadmitted instead of leaving it limbo.
func TestMuxUnadmitted(t *testing.T) {
	d := newDeployment(t, 3, 1)
	muxes := make([]*runtime.Mux, 3)
	probes := make([][]*instProbe, 3)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: 1})
		muxes[i] = m
		probes[i] = append(probes[i], spawnProbe(t, m, 2), spawnProbe(t, m, 2))
		p.Start(m, 2) // plan would be 4
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range d.Peers {
		first, second := probes[i][0], probes[i][1]
		if !first.finished {
			t.Fatalf("node %d first instance unfinished", i)
		}
		if second.finished {
			t.Fatalf("node %d second instance ran despite the short plan", i)
		}
		if !second.inst.Done() || !errors.Is(second.inst.Err(), runtime.ErrMuxUnadmitted) {
			t.Fatalf("node %d second instance done=%v err=%v, want ErrMuxUnadmitted",
				i, second.inst.Done(), second.inst.Err())
		}
	}
}
