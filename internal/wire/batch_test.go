package wire

import (
	"bytes"
	"errors"
	"testing"
)

// batchOf builds a batch container from the given messages.
func batchOf(t testing.TB, msgs ...*Message) []byte {
	t.Helper()
	var buf []byte
	for _, m := range msgs {
		enc, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		buf = AppendBatchEntry(buf, enc)
	}
	return buf
}

// TestBatchRoundTrip pins the container format: encode N messages,
// decode the batch, get the same messages back in order.
func TestBatchRoundTrip(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		{Type: TypeAck, Sender: 9, Initiator: 3, Seq: 42, Round: 1, HasValue: true, Value: Value{0xFF}},
		{Type: TypeFinal, Sender: 2, Initiator: 2, Round: 10,
			Set: []SetEntry{{Initiator: 1, Value: Value{0xA}}, {Initiator: 5, Value: Value{0xB}}}},
	}
	data := batchOf(t, msgs...)
	if !IsBatch(data) {
		t.Fatal("batch container not recognized by IsBatch")
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		want, _ := msgs[i].Encode()
		re, err := m.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, want) {
			t.Fatalf("message %d did not round-trip", i)
		}
	}
}

// TestBatchSingleMessageDistinct pins the framing invariant the runtime
// relies on: a bare encoded message is never a batch, and a batch of one
// is not the bare encoding.
func TestBatchSingleMessageDistinct(t *testing.T) {
	enc, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if IsBatch(enc) {
		t.Fatal("bare message misdetected as batch")
	}
	b := AppendBatchEntry(nil, enc)
	if bytes.Equal(b, enc) {
		t.Fatal("batch of one is byte-identical to the bare message")
	}
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted a batch container")
	}
	if _, err := DecodeBatch(enc); !errors.Is(err, ErrNotBatch) {
		t.Fatalf("DecodeBatch(bare message) = %v, want ErrNotBatch", err)
	}
}

// TestBatchAppendReusesScratch pins the outbox buffer contract: resetting
// with buf[:0] and re-appending rebuilds a fresh container in place.
func TestBatchAppendReusesScratch(t *testing.T) {
	enc, _ := sampleMessage().Encode()
	buf := AppendBatchEntry(nil, enc)
	first := append([]byte(nil), buf...)
	buf = AppendBatchEntry(buf[:0], enc)
	if !bytes.Equal(buf, first) {
		t.Fatal("rebuilt batch differs after buf[:0] reset")
	}
}

// TestDecodeBatchRejects enumerates every non-canonical shape the strict
// decoder must refuse.
func TestDecodeBatchRejects(t *testing.T) {
	enc, _ := sampleMessage().Encode()
	good := AppendBatchEntry(nil, enc)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, ErrNotBatch},
		{"wrong magic", append([]byte{0x7F}, good[1:]...), ErrNotBatch},
		{"empty container", []byte{BatchMagic}, ErrEmptyBatch},
		{"truncated length prefix", good[:3], ErrTruncated},
		{"length past end", good[:len(good)-1], ErrTruncated},
		{"trailing garbage", append(append([]byte(nil), good...), 0xEE), ErrTruncated},
		{"trailing entry-shaped garbage", append(append([]byte(nil), good...), 4, 0, 0, 0, 1, 2, 3, 4), ErrTruncated},
		{"entry with trailing byte", func() []byte {
			padded := append(append([]byte(nil), enc...), 0)
			return AppendBatchEntry(nil, padded)
		}(), ErrTrailing},
		{"entry too short", AppendBatchEntry(nil, enc[:headerSize-1]), ErrTruncated},
		{"zero-length entry", []byte{BatchMagic, 0, 0, 0, 0}, ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := DecodeBatch(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeBatch = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestBatchIterRawEntries pins the hot-path contract: the iterator hands
// back the exact transmitted sub-slices (the bytes ACK digests cover).
func TestBatchIterRawEntries(t *testing.T) {
	a, _ := sampleMessage().Encode()
	b, _ := (&Message{Type: TypeAck, Sender: 1, Round: 2, HasValue: true}).Encode()
	data := AppendBatchEntry(AppendBatchEntry(nil, a), b)
	it, err := IterBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{a, b} {
		raw, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("entry %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("entry %d bytes differ from encoded input", i)
		}
	}
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("exhausted iterator returned ok=%v err=%v", ok, err)
	}
}

// FuzzDecodeBatch feeds arbitrary bytes to the batch decoder: it must
// never panic, and any accepted batch must re-encode to exactly the
// input (container canonicality, mirroring FuzzDecode for entries).
func FuzzDecodeBatch(f *testing.F) {
	one, _ := sampleMessage().Encode()
	ack, _ := (&Message{Type: TypeAck, Sender: 1, Initiator: 2, Seq: 3, Round: 4, HasValue: true}).Encode()
	final, _ := (&Message{Type: TypeFinal, Sender: 2, Initiator: 2, Round: 1,
		Set: []SetEntry{{Initiator: 0, Value: Value{1}}}}).Encode()
	single := AppendBatchEntry(nil, one)
	multi := AppendBatchEntry(AppendBatchEntry(AppendBatchEntry(nil, one), ack), final)
	f.Add(single)
	f.Add(multi)
	f.Add([]byte{BatchMagic})                                        // empty container
	f.Add(single[:3])                                                // truncated length prefix
	f.Add(multi[:len(multi)-1])                                      // truncated last entry
	f.Add(append(append([]byte(nil), single...), 0xEE))              // trailing garbage
	f.Add(append(append([]byte(nil), single...), 0, 0, 0, 0))        // trailing zero-length entry
	f.Add(AppendBatchEntry(nil, append(one[:len(one):len(one)], 0))) // entry with trailing byte
	// Multi-instance frame: the coalesced shape a mux produces, entries
	// of one round interleaving several instance ids toward one link.
	var muxed []byte
	for inst := uint32(1); inst <= 4; inst++ {
		e, _ := (&Message{Type: TypeEcho, Sender: 1, Initiator: 2, Instance: inst,
			Seq: 9, Round: 2, HasValue: true, Value: Value{byte(inst)}}).Encode()
		muxed = AppendBatchEntry(muxed, e)
		a, _ := (&Message{Type: TypeAck, Sender: 1, Initiator: 2, Instance: inst,
			Seq: 9, Round: 2, HasValue: true}).Encode()
		muxed = AppendBatchEntry(muxed, a)
	}
	f.Add(muxed)
	f.Add(muxed[:len(muxed)-3]) // truncated mid-entry
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(msgs) == 0 {
			t.Fatal("DecodeBatch accepted input but returned no messages")
		}
		var re []byte
		for _, m := range msgs {
			enc, err := m.AppendEncode(nil)
			if err != nil {
				t.Fatalf("decoded entry failed to re-encode: %v", err)
			}
			re = AppendBatchEntry(re, enc)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("batch decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
