package wire

import (
	"encoding/binary"
	"errors"
)

// Batch container: all same-round messages one peer sends another are
// coalesced into a single sealed frame (ROADMAP item 4a). The container
// is one magic byte followed by length-prefixed encoded messages:
//
//	0xFF [uint32 LE len][len bytes: one Encode output] ...
//
// 0xFF is not a valid message Type, so the first plaintext byte
// distinguishes a batch from a bare message and old frames can never be
// misparsed as batches (or vice versa). The decoder is canonical in the
// same sense as Decode's ErrBadFlags strictness: exactly one byte string
// encodes a given message sequence, and anything else — an empty batch,
// a truncated length prefix, a truncated or non-canonical entry,
// trailing bytes after the last entry — is rejected.
const BatchMagic = 0xFF

// BatchAckedMagic marks a batch container whose sender accepts a
// frame-cumulative acknowledgment: instead of one digest ACK per entry,
// the receiver may answer with a single ACK naming the sealed frame (by
// its envelope tag) that covers every message it carried. 0xFE is not a
// valid message Type either, so the dispatch stays a one-byte check.
// Senders set the marker at flush time (wire.MarkBatchAcked); everything
// else about the container — entry framing, canonicality, iteration —
// is identical to a BatchMagic container.
const BatchAckedMagic = 0xFE

// Errors returned by the batch decoder, alongside the Decode errors
// entries can fail with.
var (
	ErrNotBatch   = errors.New("wire: not a batch container")
	ErrEmptyBatch = errors.New("wire: empty batch container")
)

// IsBatch reports whether a plaintext frame is a batch container (as
// opposed to a single encoded message), with either magic byte.
func IsBatch(data []byte) bool {
	return len(data) > 0 && (data[0] == BatchMagic || data[0] == BatchAckedMagic)
}

// IsAckedBatch reports whether a batch container invites a
// frame-cumulative acknowledgment (BatchAckedMagic).
func IsAckedBatch(data []byte) bool {
	return len(data) > 0 && data[0] == BatchAckedMagic
}

// MarkBatchAcked rewrites a container built by AppendBatchEntry to carry
// the frame-acknowledgment marker. The sender decides at flush time —
// after the container is fully built — whether it can credit the frame's
// acknowledgment as a unit, so the marker is a one-byte rewrite instead
// of an AppendBatchEntry parameter.
func MarkBatchAcked(buf []byte) {
	if len(buf) > 0 && buf[0] == BatchMagic {
		buf[0] = BatchAckedMagic
	}
}

// AppendBatchEntry appends one encoded message to a batch under
// construction and returns the extended buffer. An empty buf is started
// with the magic byte, so per-destination scratch buffers reset with
// buf[:0] rebuild the container header for free. buf must be empty or
// the result of previous AppendBatchEntry calls.
func AppendBatchEntry(buf, encoded []byte) []byte {
	if len(buf) == 0 {
		buf = append(buf, BatchMagic)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(encoded)))
	return append(buf, encoded...)
}

// BatchIter walks the raw entries of a batch container without decoding
// them. The receive hot path iterates raw entries so it can digest the
// exact transmitted bytes for ACKs before per-entry Decode.
type BatchIter struct {
	rest []byte
}

// IterBatch starts iterating a batch container. It rejects frames
// without the magic byte (ErrNotBatch) and the empty container
// (ErrEmptyBatch: a flush with nothing buffered must send nothing, so
// an empty batch on the wire is non-canonical by construction).
func IterBatch(data []byte) (BatchIter, error) {
	if !IsBatch(data) {
		return BatchIter{}, ErrNotBatch
	}
	if len(data) == 1 {
		return BatchIter{}, ErrEmptyBatch
	}
	return BatchIter{rest: data[1:]}, nil
}

// Next returns the next raw entry, or ok=false when the container is
// exhausted. A length prefix that is truncated or runs past the end of
// the container yields ErrTruncated.
func (it *BatchIter) Next() (entry []byte, ok bool, err error) {
	if len(it.rest) == 0 {
		return nil, false, nil
	}
	if len(it.rest) < 4 {
		return nil, false, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(it.rest))
	if len(it.rest)-4 < n {
		return nil, false, ErrTruncated
	}
	entry = it.rest[4 : 4+n]
	it.rest = it.rest[4+n:]
	return entry, true, nil
}

// DecodeBatch parses a batch container into its messages, enforcing
// canonicality end to end: container framing via IterBatch/Next, each
// entry via Decode (which already rejects trailing bytes inside an
// entry, so entries cannot overlap or pad).
func DecodeBatch(data []byte) ([]*Message, error) {
	it, err := IterBatch(data)
	if err != nil {
		return nil, err
	}
	var msgs []*Message
	for {
		raw, ok, nerr := it.Next()
		if nerr != nil {
			return nil, nerr
		}
		if !ok {
			return msgs, nil
		}
		m, derr := Decode(raw)
		if derr != nil {
			return nil, derr
		}
		msgs = append(msgs, m)
	}
}
